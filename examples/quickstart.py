#!/usr/bin/env python3
"""Quickstart: suppress the overlay alert with draw-and-destroy cycles.

Boots one simulated Android device (the paper's demo Pixel 2 on Android
11), runs the draw-and-destroy overlay attack at a safe attacking window
D, and shows that the overlay-presence notification alert stays at Λ1 —
fully suppressed — while the overlays intercept a user's touches. Then
re-runs with D past the device's Table II boundary to show the alert
escaping.

Also replays the sub-boundary attack under the `adversarial` fault
profile — deterministic render jitter, dropped frames, Binder delays and
GC pauses — to show the timing margins eroding under noise.

Finally, fans the full reproduction suite out over worker processes with
the parallel runner — the same `run_all` the CLI report uses — and prints
its per-experiment wall times (at SMOKE scale; results are identical at
any job count).

Run:  python examples/quickstart.py
"""

from repro import (
    AlertMode,
    DrawAndDestroyOverlayAttack,
    OverlayAttackConfig,
    Permission,
    build_stack,
    reference_device,
)
from repro.windows.geometry import Point


def run_attack(attacking_window_ms: float, taps: int = 10,
               faults: str = "none") -> None:
    profile = reference_device()
    stack = build_stack(seed=42, profile=profile, alert_mode=AlertMode.ANALYTIC,
                        faults=faults)
    attack = DrawAndDestroyOverlayAttack(
        stack, OverlayAttackConfig(attacking_window_ms=attacking_window_ms)
    )
    stack.permissions.grant(attack.package, Permission.SYSTEM_ALERT_WINDOW)

    attack.start()
    # A user taps the screen every 300 ms while the attack cycles.
    for i in range(taps):
        stack.run_for(300.0)
        stack.touch.tap(Point(540.0, 1200.0 + i))
    stack.run_for(500.0)
    worst = stack.system_ui.worst_outcome()
    attack.stop()
    stack.run_for(500.0)
    worst = max(worst, stack.system_ui.worst_outcome())

    captured = attack.stats.captured_count
    print(f"  D = {attacking_window_ms:5.0f} ms | "
          f"alert outcome: {worst.label} "
          f"({'suppressed' if worst.suppressed else 'VISIBLE'}) | "
          f"touches intercepted: {captured}/{taps} | "
          f"cycles: {attack.stats.cycles}")


def run_suite(jobs: int = 2) -> None:
    from repro.api import run_all
    from repro.experiments import SMOKE

    results = run_all(SMOKE, jobs=jobs)
    slowest = sorted(results.timings, key=lambda t: t.seconds, reverse=True)
    total = sum(t.seconds for t in results.timings)
    print(f"  {len(results.timings)} experiments, "
          f"{total:.1f} s of experiment wall time, jobs={jobs}")
    for timing in slowest[:3]:
        print(f"  slowest: {timing.name:18s} {timing.seconds:5.2f} s")
    print(f"  Fig. 7 capture-rate means (%): "
          f"{[round(m, 1) for m in results.fig7.means()]}")


def main() -> None:
    profile = reference_device()
    print(f"Device: {profile.key}")
    print(f"Published Table II upper bound of D: "
          f"{profile.published_upper_bound_d:.0f} ms\n")

    print("Attacking below the boundary (alert suppressed, inputs stolen):")
    run_attack(attacking_window_ms=profile.published_upper_bound_d - 30.0)

    print("\nAttacking above the boundary (the built-in defense wins):")
    run_attack(attacking_window_ms=profile.published_upper_bound_d + 60.0)

    # Deterministic chaos: the same attack on a jittery, frame-dropping,
    # GC-pausing device (CLI equivalent: --faults adversarial). Same seed
    # and profile always reproduce the same perturbed run.
    print("\nSame sub-boundary attack under adversarial fault injection:")
    run_attack(attacking_window_ms=profile.published_upper_bound_d - 30.0,
               faults="adversarial")

    print("\nRunning the reproduction suite in parallel (SMOKE scale):")
    run_suite(jobs=2)


if __name__ == "__main__":
    main()
