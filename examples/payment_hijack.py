#!/usr/bin/env python3
"""Payment hijack: the paper's third named application (Section I).

Combines the building blocks for a payment-UI deception:

1. a **content-hiding toast** covers the payment summary of a wallet app,
   showing the amount/recipient the user *expects* while the app beneath
   has been manipulated to show something else;
2. a **clickjacking decoy** (NOT_TOUCHABLE, draw-and-destroy-cycled)
   covers the confirm button with an innocuous label; the user's tap
   passes straight through to the real "Confirm payment" button;
3. the overlay-presence alert stays suppressed throughout.

No real payment system is involved — the point is to show the primitives
composing into the scenario the paper sketches.

Run:  python examples/payment_hijack.py
"""

from repro import AlertMode, Permission, build_stack
from repro.attacks.clickjacking import ClickjackingAttack, ContentHidingAttack
from repro.windows import Window, WindowType
from repro.windows.geometry import Point, Rect

SUMMARY_RECT = Rect(80, 500, 1000, 760)
CONFIRM_RECT = Rect(240, 1500, 840, 1650)


class WalletApp:
    """A minimal payment app: a summary area and a confirm button."""

    def __init__(self, stack):
        self.stack = stack
        self.displayed_summary = "Pay $950.00 to unknown-merchant-7731"
        self.confirmed_payments = []
        self.window = Window(
            "com.wallet.app", WindowType.BASE_APPLICATION,
            Rect(0, 0, 1080, 2160), on_touch=self._on_touch,
            label="wallet",
        )
        stack.system_server.add_window_direct(self.window)

    def _on_touch(self, window, point, time) -> None:
        if CONFIRM_RECT.contains(point):
            self.confirmed_payments.append((time, self.displayed_summary))


def main() -> None:
    stack = build_stack(seed=99, alert_mode=AlertMode.ANALYTIC)
    wallet = WalletApp(stack)
    stack.run_for(100.0)

    print("Victim wallet actually shows :", wallet.displayed_summary)

    # 1. Hide the real summary behind a benign-looking toast.
    hider = ContentHidingAttack(
        stack, cover_rect=SUMMARY_RECT,
        fake_content="Pay $9.50 to coffee-shop",
    )
    hider.start()  # toasts: no permission needed

    # 2. Cover the confirm button with a pass-through decoy.
    decoy = ClickjackingAttack(
        stack, decoy_rect=CONFIRM_RECT, decoy_content="Continue",
    )
    stack.permissions.grant(decoy.package, Permission.SYSTEM_ALERT_WINDOW)
    decoy.start()

    stack.run_for(1500.0)
    print("User sees (toast cover)      :",
          hider.displayed_content_at(stack.now))
    print("User sees (button decoy)     : 'Continue'")

    # 3. The user taps what looks like an innocuous Continue button.
    stack.touch.tap(Point(540.0, 1575.0))
    stack.run_for(200.0)

    outcome = stack.system_ui.worst_outcome()
    print("\nAfter the tap:")
    print(f"  payments confirmed by wallet : {len(wallet.confirmed_payments)}")
    if wallet.confirmed_payments:
        _, summary = wallet.confirmed_payments[0]
        print(f"  what was actually confirmed  : {summary!r}")
    print(f"  overlay alert outcome        : {outcome.label} "
          f"({'suppressed' if outcome.suppressed else 'visible'})")

    hider.stop()
    decoy.stop()
    stack.run_for(5000.0)


if __name__ == "__main__":
    main()
