#!/usr/bin/env python3
"""Explore the animation timings that make the attacks possible.

Prints ASCII renderings of the paper's Fig. 2 and Fig. 4 curves, the
attacker's per-device timing budget (Eq. 3), and the expected mistouch
trade-off (Eq. 2) that governs the choice of attacking window D.

Run:  python examples/animation_timing_explorer.py
"""

from repro.attacks import expected_mistouch_for_profile
from repro.devices import DEVICES
from repro.api import run_experiment


def ascii_curve(series, width=60, height=12, label=""):
    print(f"\n  {label}")
    points = series.points
    rows = []
    for row in range(height, -1, -1):
        threshold = row / height * 100.0
        line = ""
        for col in range(width + 1):
            t = col / width * series.duration_ms
            value = series.completeness_at(t)
            line += "#" if value >= threshold > value - 100.0 / height else " "
        rows.append(f"  {threshold:5.0f}% |{line}")
    print("\n".join(rows))
    print("         +" + "-" * (width + 1))
    print(f"          0 ms{' ' * (width - 12)}{series.duration_ms:.0f} ms")


def main() -> None:
    print("Fig. 2 — FastOutSlowIn notification slide-in (the attacker's"
          " friend):")
    fig2 = run_experiment("fig2")
    ascii_curve(fig2.curve, label="completeness vs time, 360 ms")
    print(f"\n  first 10 ms frame renders {fig2.completeness_at_10ms:.2f}% "
          f"= {fig2.pixels_at_10ms_of_72px_view} px of a 72 px view")
    print(f"  at 100 ms only {fig2.completeness_at_100ms:.1f}% is shown "
          "(paper: < 50%)")

    fig4 = run_experiment("fig4")
    print("\nFig. 4 — toast fades (fade-out lingers, fade-in snaps):")
    ascii_curve(fig4.accelerate, label="fade-out progress (Accelerate), 500 ms")
    ascii_curve(fig4.decelerate, label="fade-in progress (Decelerate), 500 ms")

    print("\nPer-device attacking-window budget (Eq. 3, calibrated to "
          "Table II):")
    print(f"  {'device':42s} {'Tn':>6s} {'Tv':>4s} {'Ta':>4s} "
          f"{'Tmis':>5s} {'bound':>6s}")
    for profile in sorted(DEVICES, key=lambda p: p.published_upper_bound_d):
        print(f"  {profile.key:42s} {profile.tn.mean_ms:6.1f} "
              f"{profile.tv.mean_ms:4.0f} {profile.first_visible_frame_ms:4.0f} "
              f"{profile.mean_tmis_ms:5.1f} "
              f"{profile.predicted_upper_bound_d:6.0f}")

    print("\nEq. 2 — expected mistouch time over a 10 s attack "
          "(Xiaomi mi8, Android 10):")
    mi8 = next(d for d in DEVICES
               if d.model == "mi8" and d.android_version.label == "10")
    for d in (50.0, 100.0, 150.0, 200.0, 290.0):
        est = expected_mistouch_for_profile(mi8, 10_000.0, d)
        bar = "#" * int(est.expected_mistouch_fraction * 400)
        print(f"  D = {d:5.0f} ms: E[Tm] = {est.expected_mistouch_ms:7.1f} ms "
              f"({est.expected_mistouch_fraction * 100:4.1f}% of taps at "
              f"risk) {bar}")
    print("\n  -> larger D loses fewer touches, but D must stay below the "
          "device's Λ1 boundary.")


if __name__ == "__main__":
    main()
