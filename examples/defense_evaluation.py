#!/usr/bin/env python3
"""Evaluating the paper's defenses (Section VII) against the attacks.

Three mitigations, each demonstrated attack-vs-defense:

1. IPC-based detection — a minor Binder hook feeds addView/removeView
   transactions to an analyzer whose decision rule flags the
   draw-and-destroy pattern and terminates the app, while a benign
   floating-widget app stays untouched.
2. Enhanced notification — System Server delays the alert-hide by 690 ms;
   a re-added overlay keeps the alert animating to full visibility, so no
   attacking window D suppresses it anymore.
3. Toast spacing — a scheduling gap between successive toasts turns the
   imperceptible fake-keyboard switch into a visible flicker.

Run:  python examples/defense_evaluation.py
"""

from repro import (
    AlertMode,
    DrawAndDestroyOverlayAttack,
    EnhancedNotificationDefense,
    IpcDetector,
    OverlayAttackConfig,
    Permission,
    build_stack,
)
from repro.defenses import BenignOverlayApp, ToastSpacingDefense
from repro.api import run_experiment
from repro.experiments import QUICK, ExperimentRequest


def demo_ipc_detector() -> None:
    print("=== 1. IPC-based detection (Binder monitoring) ===")
    stack = build_stack(seed=7, alert_mode=AlertMode.ANALYTIC)
    detector = IpcDetector(stack.router, stack.system_server)

    benign = BenignOverlayApp(stack, dwell_ms=20_000.0, pause_ms=5_000.0)
    stack.permissions.grant(benign.package, Permission.SYSTEM_ALERT_WINDOW)
    benign.start()

    attack = DrawAndDestroyOverlayAttack(
        stack, OverlayAttackConfig(attacking_window_ms=150.0)
    )
    stack.permissions.grant(attack.package, Permission.SYSTEM_ALERT_WINDOW)
    attack.start()

    stack.run_for(60_000.0)
    benign.stop()
    stack.run_for(1000.0)

    for detection in detector.detections:
        print(f"  flagged {detection.caller} after {detection.time:.0f} ms "
              f"({detection.pairs_observed} rapid add/remove pairs)")
    print(f"  malicious app terminated : {attack.package in stack.system_server.terminated_apps}")
    print(f"  benign widget flagged    : {detector.is_flagged(benign.package)}")
    per_txn = (detector.monitor.overhead_ms + detector.overhead_ms) / max(
        detector.monitor.transactions_seen, 1
    )
    print(f"  overhead                 : {per_txn * 1000:.1f} µs per transaction\n")


def demo_enhanced_notification() -> None:
    print("=== 2. Enhanced notification (690 ms hide delay) ===")
    for defended in (False, True):
        stack = build_stack(seed=8, alert_mode=AlertMode.ANALYTIC)
        if defended:
            EnhancedNotificationDefense(stack.system_server).install()
        attack = DrawAndDestroyOverlayAttack(
            stack, OverlayAttackConfig(attacking_window_ms=150.0)
        )
        stack.permissions.grant(attack.package, Permission.SYSTEM_ALERT_WINDOW)
        attack.start()
        stack.run_for(6000.0)
        outcome = stack.system_ui.worst_outcome()
        attack.stop()
        label = "with defense   " if defended else "without defense"
        print(f"  {label}: alert outcome {outcome.label} "
              f"({'user sees the alert' if not outcome.suppressed else 'suppressed'})")
    print()


def demo_toast_spacing() -> None:
    print("=== 3. Toast spacing (scheduling gap between toasts) ===")
    plain = run_experiment(ExperimentRequest(
        name="toast_continuity", scale=QUICK, derive_seed=False,
        params={"inter_toast_gap_ms": 0.0}))
    spaced = run_experiment(ExperimentRequest(
        name="toast_continuity", scale=QUICK, derive_seed=False,
        params={"inter_toast_gap_ms": ToastSpacingDefense(
            build_stack(seed=1).notification_manager).gap_ms}))
    print(f"  undefended : min switch coverage "
          f"{plain.min_switch_coverage * 100:5.1f}%  -> imperceptible: "
          f"{plain.imperceptible}")
    print(f"  defended   : min switch coverage "
          f"{spaced.min_switch_coverage * 100:5.1f}%  -> imperceptible: "
          f"{spaced.imperceptible}")


def main() -> None:
    demo_ipc_detector()
    demo_enhanced_notification()
    demo_toast_spacing()


if __name__ == "__main__":
    main()
