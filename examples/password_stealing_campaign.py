#!/usr/bin/env python3
"""The full password-stealing attack against the Bank of America app.

Recreates the paper's video demo (Section VI-C3): a participant opens the
login screen, focuses the password field — which triggers the malware via
the accessibility service — and types the demo password "tk&%48GH" on what
they believe is the system keyboard. The fake toast keyboard tracks
subkeyboard switches, the transparent draw-and-destroy overlays intercept
every coordinate, and nearest-center inference recovers the password.

Also runs the Alipay variant, where the hardened password field forces the
username-widget getParent() workaround.

Run:  python examples/password_stealing_campaign.py
"""

from repro.apps.catalog import bank_of_america, spec_by_name
from repro.experiments.scenarios import run_password_trial
from repro.sim import SeededRng
from repro.users import generate_participants


def show_trial(title, trial):
    print(f"\n=== {title} ===")
    print(f"  trigger path        : {trial.trigger_path}")
    print(f"  attacking window D  : {trial.attacking_window_ms:.0f} ms")
    print(f"  typed (ground truth): {trial.truth!r}")
    print(f"  stolen (derived)    : {trial.derived!r}")
    print(f"  result              : {trial.error_type.value}")
    print(f"  fake kbd switches   : {trial.keyboard_switches}")
    print(f"  victim noticed alert: {trial.alert_noticed}")
    print(f"  victim saw flicker  : {trial.flicker_noticed}")


def main() -> None:
    pool = generate_participants(SeededRng(2022, "campaign"), count=30)
    pixel2 = next(p for p in pool if p.device.model == "pixel 2")

    # The paper's video-demo scenario.
    trial = run_password_trial(pixel2, "tk&%48GH", seed=65)
    show_trial(f"Bank of America on {pixel2.device.key}", trial)

    # The hardened app: Alipay disables password-field accessibility.
    trial = run_password_trial(
        pool[3], "Secur3!Pw", seed=66, victim_spec=spec_by_name("Alipay")
    )
    show_trial(f"Alipay on {pool[3].device.key} (extra effort needed)", trial)

    # A mini-campaign: the same password stolen across ten devices.
    print("\n=== Campaign: 'aB3$xy9!' across ten devices ===")
    stolen = 0
    for index, participant in enumerate(pool[:10]):
        trial = run_password_trial(participant, "aB3$xy9!", seed=100 + index,
                                   victim_spec=bank_of_america())
        status = "stolen" if trial.success else trial.error_type.value
        stolen += trial.success
        print(f"  {participant.device.key:42s} -> {status}")
    print(f"  success: {stolen}/10  "
          "(paper: 88% for 8-character passwords)")


if __name__ == "__main__":
    main()
