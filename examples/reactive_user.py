#!/usr/bin/env python3
"""The human in the loop: what happens when the attacker misjudges D.

Android's built-in defense is only as good as the user behind it: the
alert must *appear* (defeating the draw-and-destroy suppression) and the
user must act on it ("press on the alert to open the system Settings app,
which can prohibit an app from displaying overlays", paper Section II-A2).

This example runs the same attack twice against a reactive user:

* with a correctly probed attacking window — the alert never appears and
  the user never reacts; the attack runs to completion;
* with a misjudged (too large) window — the alert slides in, the user
  notices, opens Settings, revokes SYSTEM_ALERT_WINDOW, and the attack's
  overlays are torn down mid-run.

Run:  python examples/reactive_user.py
"""

from repro import (
    AlertMode,
    DrawAndDestroyOverlayAttack,
    OverlayAttackConfig,
    Permission,
    build_stack,
)
from repro.apps import AlertResponder, SettingsApp
from repro.attacks import DeviceProber
from repro.users import PerceptionModel
from repro.windows.geometry import Point


def run_scenario(title: str, attacking_window_ms: float) -> None:
    print(f"=== {title} (D = {attacking_window_ms:.0f} ms) ===")
    stack = build_stack(seed=123, alert_mode=AlertMode.ANALYTIC)
    settings = SettingsApp(stack)
    responder = AlertResponder(
        stack, settings, PerceptionModel(), reaction_delay_ms=1500.0
    )
    responder.start()

    attack = DrawAndDestroyOverlayAttack(
        stack, OverlayAttackConfig(attacking_window_ms=attacking_window_ms)
    )
    stack.permissions.grant(attack.package, Permission.SYSTEM_ALERT_WINDOW)
    attack.start()

    captured = 0
    for second in range(15):
        stack.run_for(1000.0)
        before = attack.stats.captured_count
        stack.touch.tap(Point(540.0, 1200.0))
        stack.run_for(50.0)
        captured += attack.stats.captured_count - before

    outcome = stack.system_ui.worst_outcome()
    print(f"  alert outcome        : {outcome.label}")
    if responder.noticed_at is not None:
        print(f"  user noticed at      : {responder.noticed_at / 1000:.1f} s")
    if responder.reacted:
        print(f"  permission revoked at: {responder.revoked_at / 1000:.1f} s")
        print(f"  overlays left        : "
              f"{len(stack.screen.windows_of(attack.package))}")
    else:
        print("  user never noticed anything")
    print(f"  touches intercepted  : {captured}/15 over 15 s\n")
    attack.stop()


def main() -> None:
    stack = build_stack(seed=1)
    bound = stack.profile.published_upper_bound_d
    chosen = DeviceProber().probe(stack.profile).chosen_window_ms
    print(f"Device: {stack.profile.key} — Table II bound {bound:.0f} ms; "
          f"the prober picks D = {chosen:.0f} ms\n")
    run_scenario("Careful attacker (probed D)", chosen)
    run_scenario("Sloppy attacker (bound + 90 ms)", bound + 90.0)


if __name__ == "__main__":
    main()
