#!/usr/bin/env python3
"""Render the paper's Fig. 3 and Fig. 5 sequence charts from live traces.

Every Binder transaction and service action in the simulation is traced;
this example replays both attacks and renders the entity-interaction
diagrams straight from those traces — the same diagrams the paper draws by
hand.

Run:  python examples/attack_trace_diagrams.py
"""

from repro import (
    AlertMode,
    DrawAndDestroyOverlayAttack,
    DrawAndDestroyToastAttack,
    OverlayAttackConfig,
    Permission,
    ToastAttackConfig,
    build_stack,
)
from repro.analysis import (
    render_overlay_attack_figure,
    render_toast_attack_figure,
)
from repro.windows.geometry import Rect


def overlay_figure() -> None:
    print("=" * 76)
    print("Fig. 3 — entity interaction in the draw-and-destroy overlay attack")
    print("=" * 76)
    stack = build_stack(seed=2, alert_mode=AlertMode.ANALYTIC)
    attack = DrawAndDestroyOverlayAttack(
        stack, OverlayAttackConfig(attacking_window_ms=150.0)
    )
    stack.permissions.grant(attack.package, Permission.SYSTEM_ALERT_WINDOW)
    attack.start()
    stack.run_for(650.0)
    attack.stop()
    stack.run_for(100.0)
    print(render_overlay_attack_figure(stack.simulation.trace, 140.0, 480.0))
    print("\nNote the cycle: removeView then addView; the window churns in"
          "\nSystem Server while the notification is cancelled before it"
          "\never reaches System UI — outcome Λ1.\n")


def toast_figure() -> None:
    print("=" * 76)
    print("Fig. 5 — entity interaction in the draw-and-destroy toast attack")
    print("=" * 76)
    stack = build_stack(seed=3, alert_mode=AlertMode.ANALYTIC)
    attack = DrawAndDestroyToastAttack(
        stack,
        ToastAttackConfig(rect=Rect(0, 1400, 1080, 2160), duration_ms=3500.0),
        content_provider=lambda: "fake-keyboard",
    )
    attack.start()
    stack.run_for(8200.0)
    attack.stop()
    stack.run_for(4500.0)
    print(render_toast_attack_figure(stack.simulation.trace, 0.0, 8200.0))
    print("\nNote: each toast's fade-out (removeView) immediately fetches"
          "\nthe next token, so the successor is on screen while the old"
          "\ntoast is still nearly opaque — no flicker.\n")


if __name__ == "__main__":
    overlay_figure()
    toast_figure()
