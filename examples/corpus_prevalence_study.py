#!/usr/bin/env python3
"""Section VI-C2 corpus study: could the malware live in an app store?

Generates a synthetic AndroZoo-like corpus, runs the aapt-style manifest
analyzer and the FlowDroid-style reachability analyzer over every app, and
reports the prevalence of the capabilities the attacks need — scaled to
the paper's 890,855-app corpus for comparison against its published counts
(4,405 / 18,887 / 15,179).

Run:  python examples/corpus_prevalence_study.py [corpus_size]
"""

import sys
import time

from repro.staticanalysis import (
    PrevalenceCounts,
    SyntheticCorpus,
    run_prevalence_study,
)


def main() -> None:
    size = int(sys.argv[1]) if len(sys.argv) > 1 else 120_000
    print(f"Generating and analyzing a synthetic corpus of {size:,} apps...")
    corpus = SyntheticCorpus(size=size, seed=2022)

    started = time.time()
    counts = run_prevalence_study(corpus)
    elapsed = time.time() - started
    print(f"Analyzed {counts.total:,} apps in {elapsed:.1f} s "
          f"({counts.total / max(elapsed, 1e-9):,.0f} apps/s)\n")

    scaled = counts.scaled_to(890_855)
    paper = PrevalenceCounts.paper_reference()
    print(f"{'metric':32s} {'raw':>8s} {'scaled':>8s} {'paper':>8s}")
    rows = [
        ("SYSTEM_ALERT_WINDOW + a11y svc", "saw_and_accessibility"),
        ("addView & removeView & SAW", "addremove_and_saw"),
        ("customized toast", "custom_toast"),
    ]
    for label, attr in rows:
        print(f"{label:32s} {getattr(counts, attr):8,d} "
              f"{getattr(scaled, attr):8,d} {getattr(paper, attr):8,d}")
    print("\n-> App stores demonstrably host apps with every capability the "
          "attacks require;")
    print("   none of these permissions or methods is suspicious on its own.")


if __name__ == "__main__":
    main()
