"""repro — reproduction of "Implication of Animation on Android Security"
(ICDCS 2022).

The package simulates the Android UI stack (Binder IPC, Window Manager,
System UI notification pipeline, toast scheduling, animations) as a
deterministic discrete-event system, implements the paper's
draw-and-destroy overlay attack, draw-and-destroy toast attack and
password-stealing attack on top of it, reproduces every table and figure
of the evaluation, and implements the proposed defenses.

Quickstart::

    from repro import build_stack, DrawAndDestroyOverlayAttack, \
        OverlayAttackConfig, Permission

    stack = build_stack(seed=1)
    attack = DrawAndDestroyOverlayAttack(
        stack, OverlayAttackConfig(attacking_window_ms=150))
    stack.permissions.grant(attack.package, Permission.SYSTEM_ALERT_WINDOW)
    attack.start()
    stack.run_for(5_000)
    print(stack.system_ui.worst_outcome())   # Λ1: alert fully suppressed

Experiments go through the :mod:`repro.api` facade::

    from repro import run_experiment
    fig7 = run_experiment("fig7")            # capture rate vs D

See docs/API.md for the full public surface, DESIGN.md for the
architecture and EXPERIMENTS.md for the paper-vs-measured comparison.
"""

from .api import (
    FULL,
    QUICK,
    SMOKE,
    ExperimentRequest,
    ExperimentScale,
    FeasibilityQuery,
    FeasibilityReport,
    RunPolicy,
    ScenarioMatrix,
    format_report,
    query_feasibility,
    run_all,
    run_experiment,
    run_matrix,
)
# Concrete modules, not the ``repro.attacks`` aliases: the top-level
# names are supported API and must construct without a deprecation
# warning; only the package-level re-exports are deprecated.
from .attacks.overlay_attack import (
    DrawAndDestroyOverlayAttack,
    OverlayAttackConfig,
)
from .attacks.password_stealing import (
    PasswordStealingAttack,
    PasswordStealingConfig,
)
from .attacks.toast_attack import DrawAndDestroyToastAttack, ToastAttackConfig
from .defenses import (
    EnhancedNotificationDefense,
    IpcDetector,
    ToastSpacingDefense,
)
from .devices import DEVICES, DeviceProfile, device, reference_device
from .sim import Simulation
from .stack import AndroidStack, build_stack
from .systemui import AlertMode, NotificationOutcome
from .windows import Permission

__version__ = "1.0.0"

# The pinned public surface. tests/test_api_surface.py snapshots this
# list — additions are deliberate API growth, removals are breaking.
__all__ = [
    "AlertMode",
    "AndroidStack",
    "DEVICES",
    "DeviceProfile",
    "DrawAndDestroyOverlayAttack",
    "DrawAndDestroyToastAttack",
    "EnhancedNotificationDefense",
    "ExperimentRequest",
    "ExperimentScale",
    "FULL",
    "FeasibilityQuery",
    "FeasibilityReport",
    "IpcDetector",
    "NotificationOutcome",
    "OverlayAttackConfig",
    "PasswordStealingAttack",
    "PasswordStealingConfig",
    "Permission",
    "QUICK",
    "RunPolicy",
    "SMOKE",
    "ScenarioMatrix",
    "Simulation",
    "ToastAttackConfig",
    "ToastSpacingDefense",
    "build_stack",
    "device",
    "format_report",
    "query_feasibility",
    "reference_device",
    "run_all",
    "run_experiment",
    "run_matrix",
    "__version__",
]
