"""Registered user models: the victims typing under attack.

Two behaviors ship:

* ``stochastic-human`` — the paper's participant model re-expressed
  under the perceive/decide/act contract: perception is effectively
  instantaneous, the delay between steps is the inter-key typing
  interval, and aim/commit noise come from the same
  :class:`~repro.users.models.TouchModel` the pinned scenarios use.
* ``gui-agent`` — a screenshot-then-click GUI automation agent
  (arXiv:2604.18860 regime): it perceives by taking a screenshot, then
  spends hundreds of milliseconds of inference before the click lands.
  Its percepts are *stale* by design — a long, predictable
  perceive-to-act gap that gives a draw-and-destroy attacker a new,
  much wider timing window than a human thumb ever would.
"""

from __future__ import annotations

from typing import Callable, List

from ..apps.keyboard import KeyboardSpec, KeyPress
from ..sim.rng import SeededRng
from ..stack import AndroidStack
from ..users.models import TouchModel, TypingModel
from ..windows.geometry import Point
from .base import Percept, UserAction, UserModel
from .registry import Registry

_USERS: Registry[UserModel] = Registry("user")


def user(name: str) -> Callable[[type], type]:
    """Register a :class:`UserModel` subclass under ``name``.

    Mirrors ``@scenario``/``@attacker``: instantiates the model once at
    class definition time and files it in the registry.
    """

    def register(cls: type) -> type:
        model = cls()
        model.name = name
        _USERS.register(name)(model)
        return cls

    return register


def get_user(name: str) -> UserModel:
    return _USERS.get(name)


def user_names() -> List[str]:
    return _USERS.names()


def _percept_now(stack: AndroidStack, spec: KeyboardSpec,
                 press: KeyPress) -> Percept:
    """Snapshot the key's rect and the window currently covering it."""
    key_rect = spec.layout(press.layout).keys[press.key]
    return Percept(
        time=stack.simulation.now,
        press=press,
        key_rect=key_rect,
        top_owner=UserModel.top_owner_at(stack, key_rect.center),
    )


@user("stochastic-human")
class StochasticHumanUser(UserModel):
    """The paper's participant behavior under the step contract.

    Perception is treated as free (humans track the key they are about
    to hit continuously); the perceive-to-act delay *is* the inter-key
    typing interval, so percepts are at most one keystroke stale.
    """

    def __init__(self,
                 typing_model: TypingModel = TypingModel(),
                 touch_model: TouchModel = TouchModel()) -> None:
        self.typing_model = typing_model
        self.touch_model = touch_model

    def perceive(self, stack: AndroidStack, spec: KeyboardSpec,
                 press: KeyPress, rng: SeededRng) -> Percept:
        return _percept_now(stack, spec, press)

    def decide(self, stack: AndroidStack, percept: Percept,
               rng: SeededRng) -> UserAction:
        return UserAction(
            delay_ms=self.typing_model.next_interval(rng),
            point=self.touch_model.aim_at(rng, percept.key_rect),
            commit_ms=self.touch_model.commit_latency(rng),
        )


@user("gui-agent")
class GuiAgentUser(UserModel):
    """A screenshot-then-click agent driving the victim UI.

    The agent's loop is screenshot -> model inference -> dispatched
    click. The screenshot freezes the screen state inside the percept;
    everything it decides is aimed at that frozen frame. Against
    draw-and-destroy this *inverts* the timing problem: the attacker no
    longer needs to fit inside a ~10 ms animation race — any overlay
    swap inside the agent's inference window (hundreds of ms) lands a
    click meant for the frame before it.
    """

    #: Screenshot capture + encode cost (ms), paid before inference.
    screenshot_ms: float = 45.0
    #: Model inference latency distribution (ms).
    inference_mean_ms: float = 600.0
    inference_std_ms: float = 200.0
    inference_min_ms: float = 250.0
    #: Synthetic click dispatch: tight aim, fixed short commit.
    aim_sigma_px: float = 1.5
    commit_ms: float = 8.0

    def perceive(self, stack: AndroidStack, spec: KeyboardSpec,
                 press: KeyPress, rng: SeededRng) -> Percept:
        return _percept_now(stack, spec, press)

    def decide(self, stack: AndroidStack, percept: Percept,
               rng: SeededRng) -> UserAction:
        center = percept.key_rect.center
        point = Point(
            rng.gauss_clipped(center.x, self.aim_sigma_px,
                              percept.key_rect.left + 1.0,
                              percept.key_rect.right - 1.0),
            rng.gauss_clipped(center.y, self.aim_sigma_px,
                              percept.key_rect.top + 1.0,
                              percept.key_rect.bottom - 1.0),
        )
        latency = self.screenshot_ms + rng.gauss_clipped(
            self.inference_mean_ms, self.inference_std_ms,
            minimum=self.inference_min_ms,
        )
        return UserAction(delay_ms=latency, point=point,
                          commit_ms=self.commit_ms)
