"""Registered attacker models wrapping the concrete attack classes.

Each model turns one attack family into a sweepable label: the trial
engine resolves ``TrialSpec.attacker`` through :func:`get_attacker` and
hands the model to the scenario, which calls ``launch(stack, **params)``
with the cell's merged config. Models pick out the knobs they
understand and ignore the rest (``**_``), so one matrix can sweep an
``attackers`` axis across models with different parameter sets.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional

from ..apps.keyboard import default_keyboard_rect
from ..attacks.clickjacking import ClickjackingAttack
from ..attacks.flooding import (
    FloodingConfig,
    NotificationFloodingAttack,
)
from ..attacks.overlay_attack import (
    DrawAndDestroyOverlayAttack,
    OverlayAttackConfig,
)
from ..attacks.password_stealing import PasswordStealingAttack
from ..attacks.toast_attack import DrawAndDestroyToastAttack, ToastAttackConfig
from ..stack import AndroidStack
from ..toast.toast import TOAST_LENGTH_LONG_MS
from ..windows.geometry import Rect
from ..windows.permissions import Permission
from .base import AttackerModel
from .registry import Registry

_ATTACKERS: Registry[AttackerModel] = Registry("attacker")


def attacker(name: str) -> Callable[[type], type]:
    """Register an :class:`AttackerModel` subclass under ``name``.

    Mirrors ``@scenario``: applied at class definition time, instantiates
    the (stateless) model once and files it in the registry.
    """

    def register(cls: type) -> type:
        model = cls()
        model.name = name
        _ATTACKERS.register(name)(model)
        return cls

    return register


def get_attacker(name: str) -> AttackerModel:
    return _ATTACKERS.get(name)


def attacker_names() -> List[str]:
    return _ATTACKERS.names()


def _default_window_ms(stack: AndroidStack) -> float:
    """The device-aware default D: just under the published Λ1 bound."""
    return max(20.0, stack.profile.published_upper_bound_d - 10.0)


@attacker("draw-and-destroy")
class DrawAndDestroyAttacker(AttackerModel):
    """The paper's Section III overlay attack, racing the alert slide-in."""

    def launch(self, stack: AndroidStack, *,
               attacking_window_ms: Optional[float] = None,
               adaptive: bool = False,
               overlay_rect: Optional[Rect] = None,
               remove_then_add: bool = True,
               **_: Any) -> DrawAndDestroyOverlayAttack:
        attack = DrawAndDestroyOverlayAttack(
            stack,
            OverlayAttackConfig(
                attacking_window_ms=(attacking_window_ms
                                     if attacking_window_ms is not None
                                     else _default_window_ms(stack)),
                adaptive=adaptive,
                overlay_rect=overlay_rect,
                remove_then_add=remove_then_add,
            ),
        )
        stack.permissions.grant(attack.package,
                                Permission.SYSTEM_ALERT_WINDOW)
        attack.start()
        return attack

    def withdraw(self, handle: DrawAndDestroyOverlayAttack) -> None:
        handle.stop()


@attacker("draw-and-destroy-toast")
class DrawAndDestroyToastAttacker(AttackerModel):
    """The Section IV toast attack: a customized toast that never fades."""

    def launch(self, stack: AndroidStack, *,
               toast_rect: Optional[Rect] = None,
               toast_duration_ms: float = TOAST_LENGTH_LONG_MS,
               toast_content: Any = "fake-keyboard",
               **_: Any) -> DrawAndDestroyToastAttack:
        rect = toast_rect or default_keyboard_rect(
            stack.profile.screen_width_px, stack.profile.screen_height_px)
        attack = DrawAndDestroyToastAttack(
            stack,
            ToastAttackConfig(rect=rect, duration_ms=toast_duration_ms),
            content_provider=lambda: toast_content,
        )
        attack.start()
        return attack

    def withdraw(self, handle: DrawAndDestroyToastAttack) -> None:
        handle.stop()


@attacker("clickjacking")
class ClickjackingAttacker(AttackerModel):
    """The NOT_TOUCHABLE decoy variant: taps fall through to the victim."""

    def launch(self, stack: AndroidStack, *,
               decoy_rect: Optional[Rect] = None,
               decoy_content: Any = "decoy",
               attacking_window_ms: Optional[float] = None,
               **_: Any) -> ClickjackingAttack:
        width = stack.profile.screen_width_px
        height = stack.profile.screen_height_px
        rect = decoy_rect or Rect(
            width * 0.25, height * 0.4, width * 0.75, height * 0.6)
        attack = ClickjackingAttack(
            stack, rect, decoy_content=decoy_content,
            attacking_window_ms=attacking_window_ms,
        )
        stack.permissions.grant(attack.package,
                                Permission.SYSTEM_ALERT_WINDOW)
        attack.start()
        return attack

    def withdraw(self, handle: ClickjackingAttack) -> None:
        handle.stop()


@attacker("password-stealing")
class PasswordStealingAttacker(AttackerModel):
    """The Section V composition: fake keyboard over the real one.

    Needs the victim-side wiring (accessibility bus, victim app,
    keyboard spec) in ``params`` — the password scenario owns those
    objects, the model only assembles and arms the attack.
    """

    def launch(self, stack: AndroidStack, *, bus: Any, victim: Any,
               keyboard_spec: Any, attack_config: Any = None,
               **_: Any) -> PasswordStealingAttack:
        attack = PasswordStealingAttack(
            stack, bus, victim, keyboard_spec, config=attack_config)
        stack.permissions.grant(attack.package,
                                Permission.SYSTEM_ALERT_WINDOW)
        attack.arm()
        return attack

    def withdraw(self, handle: PasswordStealingAttack) -> None:
        if not handle.finished:
            handle.finish()


@attacker("notification-flooding")
class NotificationFloodingAttacker(AttackerModel):
    """Channel saturation instead of animation racing (Knock-Knock).

    One persistent overlay (the alert completes — Λ5), then a stream of
    junk notifications buries it below the drawer fold. Issues a single
    ``addView``, so the pairing-based IPC detector never fires.
    """

    def launch(self, stack: AndroidStack, *,
               flood_interval_ms: float = 150.0,
               flood_count: int = 0,
               first_post_delay_ms: float = 50.0,
               overlay_rect: Optional[Rect] = None,
               **_: Any) -> NotificationFloodingAttack:
        attack = NotificationFloodingAttack(
            stack,
            FloodingConfig(
                flood_interval_ms=flood_interval_ms,
                flood_count=flood_count,
                first_post_delay_ms=first_post_delay_ms,
                overlay_rect=overlay_rect,
            ),
        )
        stack.permissions.grant(attack.package,
                                Permission.SYSTEM_ALERT_WINDOW)
        attack.start()
        return attack

    def withdraw(self, handle: NotificationFloodingAttack) -> None:
        handle.stop()
