"""Actor protocols: attacker, user, and alert-channel behavior models.

The paper's result is that one primitive (draw-and-destroy racing an
animation window) generalizes across UI channels; this layer makes the
*behaviors* around that primitive pluggable the same way scenarios are:

* an :class:`AttackerModel` builds an attack instance on a booted stack
  and controls its lifecycle (``launch``/``withdraw``);
* a :class:`UserModel` produces the victim's input under an explicit
  ``perceive -> decide -> act`` step contract, so a stochastic human
  thumb and a screenshot-then-click GUI agent are the same kind of
  object with different latencies between the three steps;
* an :class:`AlertChannelModel` wraps one alert surface (notification
  drawer, toast layer) so channel saturation and occlusion are
  first-class measurements instead of ad-hoc SystemUi queries.

Concrete models register in :mod:`repro.actors.attackers`,
:mod:`repro.actors.users` and :mod:`repro.actors.channels`; the trial
engine resolves ``TrialSpec.attacker`` / ``TrialSpec.user`` labels
through those registries and hands the model objects to the scenario.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any, List, Optional

from ..apps.keyboard import KeyboardSpec, KeyPress, plan_key_sequence
from ..sim.process import SimProcess
from ..stack import AndroidStack
from ..windows.geometry import Point, Rect
from ..windows.touch import TapRecord


class AttackerModel(abc.ABC):
    """Builds and drives one attack instance against a booted stack.

    A model is *stateless configuration*; :meth:`launch` binds it to a
    stack (granting whatever permissions the attack needs) and returns a
    handle — usually the underlying attack ``App`` — that the model's
    ``withdraw`` tears down again. One model instance may launch on many
    stacks over its life (the executor reuses models across trials).
    """

    #: Registry label, set by the ``@attacker`` decorator.
    name: str = ""

    @abc.abstractmethod
    def launch(self, stack: AndroidStack, **params: Any) -> Any:
        """Create, permission, and start the attack; return its handle.

        ``params`` carries the sweep's merged cell config. Models must
        tolerate (and ignore) keys addressed to other models, so one
        matrix can sweep an ``attackers`` axis over models with
        different knobs.
        """

    @abc.abstractmethod
    def withdraw(self, handle: Any) -> None:
        """Stop the attack behind ``handle`` (idempotent)."""


# ---------------------------------------------------------------------------
# User models: the perceive -> decide -> act contract
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Percept:
    """What the user saw when they looked at the screen.

    For a human this is effectively instantaneous; for a GUI agent it is
    a *screenshot* — by the time the decided action lands, the screen may
    have changed (the TOCTOU window the draw-and-destroy primitive
    exploits a second time).
    """

    time: float
    press: KeyPress
    key_rect: Rect
    #: Owner of the topmost touchable window over the key at perceive
    #: time (None when nothing intercepts).
    top_owner: Optional[str]


@dataclass(frozen=True)
class UserAction:
    """The decided response to one percept."""

    #: Perceive-to-act latency (ms): reaction + planning + motor time for
    #: a human, screenshot + inference + click dispatch for an agent.
    delay_ms: float
    #: Where the tap lands (aimed off the *percept*, not the live screen).
    point: Point
    #: Gesture commit latency handed to the touch pipeline.
    commit_ms: float


@dataclass
class ActorTap:
    """One executed user action joined with its dispatch outcome."""

    percept: Percept
    action: UserAction
    tap: TapRecord
    #: Age of the percept when the tap landed (== action.delay_ms).
    percept_age_ms: float
    #: True when the topmost window changed between perceive and act —
    #: the action was decided against a stale screen.
    stale: bool


@dataclass
class ActorSession:
    """The full record of one user-model input session."""

    text: str
    presses: List[KeyPress]
    taps: List[ActorTap] = field(default_factory=list)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None

    @property
    def complete(self) -> bool:
        return self.finished_at is not None

    def captured_by(self, package: str) -> int:
        """Taps whose ACTION_DOWN landed on ``package``'s window."""
        return sum(1 for t in self.taps if t.tap.target_owner == package)

    @property
    def stale_count(self) -> int:
        return sum(1 for t in self.taps if t.stale)

    @property
    def mean_percept_age_ms(self) -> float:
        if not self.taps:
            return 0.0
        return sum(t.percept_age_ms for t in self.taps) / len(self.taps)


class UserModel(abc.ABC):
    """A victim input behavior under the perceive/decide/act contract.

    :meth:`type_text` is the generic driver: it walks the planned key
    sequence, calling :meth:`perceive` then :meth:`decide` for each
    press and dispatching the tap ``delay_ms`` later. Subclasses supply
    only the two cognitive steps; the motor step (the tap itself) is
    identical for every model — whatever window is topmost *at act time*
    receives it, exactly as the window system dictates.
    """

    #: Registry label, set by the ``@user`` decorator.
    name: str = ""

    @abc.abstractmethod
    def perceive(self, stack: AndroidStack, spec: KeyboardSpec,
                 press: KeyPress, rng: Any) -> Percept:
        """Look at the screen: locate the key, note what covers it."""

    @abc.abstractmethod
    def decide(self, stack: AndroidStack, percept: Percept,
               rng: Any) -> UserAction:
        """Turn a percept into a delayed, aimed, committed tap."""

    # ------------------------------------------------------------------
    def type_text(
        self,
        stack: AndroidStack,
        spec: KeyboardSpec,
        text: str,
        start_layout: str = "lower",
        initial_delay_ms: float = 0.0,
    ) -> ActorSession:
        """Type ``text`` through the step contract; returns immediately,
        drive the simulation until ``session.complete``."""
        presses = plan_key_sequence(spec, text, start_layout)
        driver = _UserDriver(stack, self, spec,
                             ActorSession(text=text, presses=presses))
        driver.begin(initial_delay_ms)
        return driver.session

    @staticmethod
    def top_owner_at(stack: AndroidStack, point: Point) -> Optional[str]:
        """Owner of the topmost touchable window over ``point`` now."""
        window = stack.screen.topmost_touchable_at(point)
        return window.owner if window is not None else None


class _UserDriver(SimProcess):
    """Schedules one session's perceive/decide/act steps on the clock."""

    def __init__(self, stack: AndroidStack, model: UserModel,
                 spec: KeyboardSpec, session: ActorSession) -> None:
        super().__init__(stack.simulation, f"user:{model.name or 'model'}")
        self.stack = stack
        self.model = model
        self.spec = spec
        self.session = session

    def begin(self, initial_delay_ms: float) -> None:
        if not self.session.presses:
            self.schedule(initial_delay_ms, self._finish, name="user-done")
            return
        self.schedule(initial_delay_ms, lambda: self._step(0),
                      name="user-perceive")

    # ------------------------------------------------------------------
    def _step(self, index: int) -> None:
        if self.session.started_at is None:
            self.session.started_at = self.now
        percept = self.model.perceive(
            self.stack, self.spec, self.session.presses[index], self.rng)
        action = self.model.decide(self.stack, percept, self.rng)
        self.schedule(action.delay_ms,
                      lambda: self._act(index, percept, action),
                      name="user-act")

    def _act(self, index: int, percept: Percept, action: UserAction) -> None:
        owner_now = UserModel.top_owner_at(self.stack, action.point)
        tap = self.stack.touch.tap(action.point, commit_ms=action.commit_ms)
        self.session.taps.append(ActorTap(
            percept=percept,
            action=action,
            tap=tap,
            percept_age_ms=self.now - percept.time,
            stale=owner_now != percept.top_owner,
        ))
        if index + 1 < len(self.session.presses):
            self._step(index + 1)
        else:
            # Let the last gesture commit before declaring completion.
            self.schedule(action.commit_ms + 1.0, self._finish,
                          name="user-done")

    def _finish(self) -> None:
        if self.session.started_at is None:
            self.session.started_at = self.now
        self.session.finished_at = self.now


# ---------------------------------------------------------------------------
# Alert channels
# ---------------------------------------------------------------------------

class AlertChannelModel(abc.ABC):
    """One alert surface the system can warn the user through.

    The draw-and-destroy attack defeats the notification channel by
    racing its animation; the flooding attack defeats it by *saturating*
    it. A channel model makes both failure modes measurable with the
    same three questions: how many distinct alerts fit, how full is the
    surface, and would this user actually notice this app's alert.
    """

    #: Registry label, set by the ``@channel`` decorator.
    name: str = ""

    @abc.abstractmethod
    def capacity(self, stack: AndroidStack) -> int:
        """Distinct alerts the surface can present at once."""

    @abc.abstractmethod
    def saturation(self, stack: AndroidStack,
                   as_of: Optional[float] = None) -> float:
        """Fraction of the surface currently consumed (can exceed 1)."""

    @abc.abstractmethod
    def alert_conspicuous(self, stack: AndroidStack, app: str,
                          perception: Any,
                          as_of: Optional[float] = None) -> bool:
        """Would a user with ``perception`` notice ``app``'s alert?"""
