"""Pluggable actor layer: attacker, user, and alert-channel models.

The trial engine resolves ``TrialSpec.attacker`` / ``TrialSpec.user``
labels through the registries exported here; scenarios receive the
resolved model objects and drive them through the abstract contracts in
:mod:`repro.actors.base`.
"""

from .base import (
    ActorSession,
    ActorTap,
    AlertChannelModel,
    AttackerModel,
    Percept,
    UserAction,
    UserModel,
)
from .registry import Registry, suggest_label, unknown_label_error
from .attackers import attacker, attacker_names, get_attacker
from .channels import channel, channel_names, get_channel
from .users import get_user, user, user_names

__all__ = [
    "ActorSession",
    "ActorTap",
    "AlertChannelModel",
    "AttackerModel",
    "Percept",
    "Registry",
    "UserAction",
    "UserModel",
    "attacker",
    "attacker_names",
    "channel",
    "channel_names",
    "get_attacker",
    "get_channel",
    "get_user",
    "suggest_label",
    "unknown_label_error",
    "user",
    "user_names",
]
