"""Registered alert channels: the surfaces a warning can reach a user on.

The paper's defense discussion assumes the overlay-presence alert is
*deliverable* — that an alert which survives the animation race will be
seen. A channel model makes that assumption explicit and testable:

* ``notification-drawer`` — the status-bar/drawer surface the
  overlay-presence alert lives on. Capacity is the status bar's icon
  slots; saturation is how deep the drawer is stacked; an alert is
  conspicuous only if the user's perception thresholds are met *and*
  junk posts have not pushed it below the fold (the flooding attack's
  failure mode).
* ``toast`` — the toast layer. Capacity is one (a single toast surface
  is visible at a time); saturation is the combined toast opacity on
  screen; an app's toast is conspicuous while it is the one showing at
  perceptible opacity.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from ..stack import AndroidStack
from ..systemui.system_ui import STATUS_BAR_ICON_SLOTS
from ..users.perception import PerceptionModel
from .base import AlertChannelModel
from .registry import Registry

_CHANNELS: Registry[AlertChannelModel] = Registry("channel")


def channel(name: str) -> Callable[[type], type]:
    """Register an :class:`AlertChannelModel` subclass under ``name``."""

    def register(cls: type) -> type:
        model = cls()
        model.name = name
        _CHANNELS.register(name)(model)
        return cls

    return register


def get_channel(name: str) -> AlertChannelModel:
    return _CHANNELS.get(name)


def channel_names() -> List[str]:
    return _CHANNELS.names()


@channel("notification-drawer")
class NotificationDrawerChannel(AlertChannelModel):
    """The status bar + drawer surface the overlay-presence alert uses."""

    def capacity(self, stack: AndroidStack) -> int:
        return STATUS_BAR_ICON_SLOTS

    def saturation(self, stack: AndroidStack,
                   as_of: Optional[float] = None) -> float:
        posted = stack.system_ui.posted_count(as_of=as_of)
        return posted / STATUS_BAR_ICON_SLOTS

    def alert_conspicuous(self, stack: AndroidStack, app: str,
                          perception: PerceptionModel,
                          as_of: Optional[float] = None) -> bool:
        """Perceptible *and* still within the visible drawer region.

        Draw-and-destroy defeats the first conjunct (the alert never
        accrues visible time); flooding defeats the second (the alert is
        fully drawn but buried).
        """
        if not perception.notices_alert(stack.system_ui, as_of=as_of):
            return False
        return not stack.system_ui.alert_occluded(app, as_of=as_of)


@channel("toast")
class ToastChannel(AlertChannelModel):
    """The toast layer as an alert surface."""

    def capacity(self, stack: AndroidStack) -> int:
        return 1

    def saturation(self, stack: AndroidStack,
                   as_of: Optional[float] = None) -> float:
        time = stack.simulation.now if as_of is None else as_of
        return stack.notification_manager.coverage_at(time)

    def alert_conspicuous(self, stack: AndroidStack, app: str,
                          perception: PerceptionModel,
                          as_of: Optional[float] = None) -> bool:
        """Is ``app``'s toast the one currently showing, visibly?

        A toast below the perception model's flicker-coverage threshold
        reads as background, not as an alert.
        """
        time = stack.simulation.now if as_of is None else as_of
        current = stack.notification_manager.current_toast
        if current is None or current.owner != app:
            return False
        coverage = stack.notification_manager.coverage_at(time, current.rect)
        return coverage >= perception.flicker_coverage_threshold
