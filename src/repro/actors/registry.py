"""Generic label registries with consistent error ergonomics.

Every pluggable axis of the suite — scenarios, attacker models, user
models, alert channels, device models, Android versions — is a flat
``name -> entry`` mapping populated by decorators at import time. This
module owns that pattern once: duplicate registrations are rejected
eagerly, and an unknown label raises a :class:`KeyError` that lists the
registered labels *and* the nearest match (so a typo like
``"draw-and-destory"`` points straight at ``"draw-and-destroy"``).

The module is deliberately dependency-free (stdlib only): the scenario
engine and the device registry import it without creating cycles.
"""

from __future__ import annotations

import difflib
from typing import Callable, Dict, Generic, Iterable, List, TypeVar

T = TypeVar("T")


def suggest_label(label: str, known: Iterable[str]) -> str:
    """``" (did you mean 'x'?)"`` for the closest known label, or ``""``.

    Uses difflib's ratio with a forgiving cutoff — registries hold a
    handful of hand-typed names, so near-misses are almost always typos.
    """
    matches = difflib.get_close_matches(label, list(known), n=1, cutoff=0.5)
    if not matches:
        return ""
    return f" (did you mean {matches[0]!r}?)"


def unknown_label_error(kind: str, label: str,
                        known: Iterable[str]) -> KeyError:
    """The uniform lookup failure: known labels plus the nearest match."""
    names = sorted(known)
    listing = ", ".join(names) or "<none>"
    return KeyError(
        f"unknown {kind} {label!r}; registered {kind}s: {listing}"
        f"{suggest_label(label, names)}"
    )


class Registry(Generic[T]):
    """One named axis of pluggable entries.

    Mirrors the ``@scenario`` idiom: ``register(name)`` is a decorator,
    duplicate names raise :class:`ValueError` at import time, and
    :meth:`get` raises the suggesting :func:`unknown_label_error`.
    """

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self._entries: Dict[str, T] = {}

    def register(self, name: str) -> Callable[[T], T]:
        def add(entry: T) -> T:
            if name in self._entries:
                raise ValueError(
                    f"{self.kind} {name!r} is already registered")
            self._entries[name] = entry
            return entry

        return add

    def get(self, name: str) -> T:
        try:
            return self._entries[name]
        except KeyError:
            raise unknown_label_error(self.kind, name, self._entries) \
                from None

    def names(self) -> List[str]:
        return sorted(self._entries)

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    def __len__(self) -> int:
        return len(self._entries)
