"""The stable public API of the reproduction suite.

Everything an external caller needs lives behind four entry points:

* :func:`build_stack` — boot one simulated Android device;
* :func:`run_experiment` — run one named experiment of the suite;
* :func:`run_matrix` — run a declarative :class:`ScenarioMatrix` sweep
  with stack reuse;
* :func:`run_campaign` — run a fleet-scale matrix as a sharded,
  supervised, resumable campaign with streaming aggregates;
* :func:`run_all` / :func:`format_report` — the whole suite and its
  paper-vs-measured report.

The historical per-module entry points (``repro.experiments.run_fig7``
and friends) still work but emit :class:`DeprecationWarning`; they all
route to the same implementations this module fronts.

Metrics compose ambiently: wrap any of these calls in
``with repro.obs.use_metrics(registry):`` and the simulation's
instruments feed ``registry`` without changing a single result byte.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import Any, List, Optional

from .experiments.campaign import (
    CampaignManifest,
    CampaignResult,
    matrix_from_spec,
    run_campaign,
)
from .experiments.config import FULL, QUICK, SMOKE, ExperimentScale
from .experiments.engine import (
    ScenarioMatrix,
    TrialExecutor,
    TrialOutcome,
    scoped_executor,
    use_executor,
)
from .experiments.parallel import (
    _SPEC_BY_NAME,
    _reset_global_id_allocators,
    _run_one,
    experiment_names,
)
from .experiments.resilience import ExperimentFailure, RunPolicy
from .experiments.runner import AllResults, format_report, run_all
from .sim.faults import use_default_profile
from .stack import AndroidStack, build_stack

__all__ = [
    "AllResults",
    "AndroidStack",
    "CampaignManifest",
    "CampaignResult",
    "ExperimentFailure",
    "ExperimentScale",
    "FULL",
    "QUICK",
    "RunPolicy",
    "SMOKE",
    "ScenarioMatrix",
    "TrialExecutor",
    "TrialOutcome",
    "build_stack",
    "experiment_names",
    "format_report",
    "matrix_from_spec",
    "run_all",
    "run_campaign",
    "run_experiment",
    "run_matrix",
]


def run_experiment(
    name: str,
    *,
    scale: ExperimentScale = QUICK,
    faults: Optional[str] = None,
    jobs: int = 1,
    derive_seed: bool = True,
    **params: Any,
) -> Any:
    """Run one named experiment and return its result dataclass.

    ``name`` is an entry of :func:`experiment_names` (``"fig7"``,
    ``"table3"``, ...). ``faults`` overrides the scale's ambient fault
    regime (``"none"``, ``"mild"``, ``"pixel-loaded"``,
    ``"adversarial"``). Extra keyword ``params`` pass through to the
    experiment function (e.g. ``durations=(50.0, 200.0)`` for fig7).

    ``derive_seed=True`` (the default) reproduces exactly what
    ``run_all`` does for this experiment: the seed is derived from
    ``(scale.name, scale.seed, name)``, the global id allocators restart,
    and the scale's fault regime plus a fresh stack-reuse executor are
    installed ambiently — so the result is bit-identical to the same
    experiment's slot in the full suite. ``derive_seed=False`` instead
    calls the implementation directly with ``scale`` as given — the
    historical behaviour of the per-module entry points, for callers that
    pin their own seeds.

    ``jobs=1`` runs in-process. Any other value runs the experiment in a
    worker subprocess for isolation — one experiment never fans wider
    than one worker, so this only buys a clean process, not speed.
    """
    spec = _SPEC_BY_NAME.get(name)
    if spec is None:
        known = ", ".join(experiment_names())
        raise KeyError(f"unknown experiment {name!r}; known: {known}")
    if faults is not None:
        scale = scale.with_faults(faults)
    if not derive_seed:
        if spec.takes_scale:
            return spec.runner(scale, **params)
        return spec.runner(**params)
    if jobs != 1:
        if params:
            raise ValueError(
                "extra experiment params cannot cross the process "
                "boundary; use jobs=1"
            )
        with ProcessPoolExecutor(max_workers=1) as pool:
            _, result, _, _, _ = pool.submit(_run_one, name, scale).result()
        return result
    if not params:
        _, result, _, _, _ = _run_one(name, scale)
        return result
    # Same discipline as the worker path, with params threaded through.
    _reset_global_id_allocators()
    with use_default_profile(scale.faults), use_executor(TrialExecutor()):
        if spec.takes_scale:
            return spec.runner(scale.for_experiment(name), **params)
        return spec.runner(**params)


def run_matrix(
    matrix: ScenarioMatrix,
    *,
    executor: Optional[TrialExecutor] = None,
) -> List[TrialOutcome]:
    """Run every cell of ``matrix``, pairing each spec with its result.

    Without an explicit ``executor`` the ambient one is used when an
    enclosing experiment installed it, otherwise a fresh stack-reuse
    executor scoped to this call. Under an ambient metrics registry each
    outcome carries its per-trial metric delta.
    """
    if executor is not None:
        return executor.run_matrix(matrix)
    with scoped_executor() as scoped:
        return scoped.run_matrix(matrix)
