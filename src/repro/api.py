"""The stable public API of the reproduction suite.

Everything an external caller needs lives behind six entry points:

* :func:`build_stack` — boot one simulated Android device;
* :func:`run_experiment` — run one named experiment of the suite, from a
  typed :class:`ExperimentRequest` or the legacy string form;
* :func:`run_matrix` — run a declarative :class:`ScenarioMatrix` sweep
  with stack reuse;
* :func:`run_campaign` — run a fleet-scale matrix as a sharded,
  supervised, resumable campaign with streaming aggregates;
* :func:`query_feasibility` — answer one typed
  :class:`FeasibilityQuery` (*which D suppresses the alert on this
  device, and what capture exposure follows?*) through the exact
  execution path the ``repro serve`` service uses;
* :func:`run_all` / :func:`format_report` — the whole suite and its
  paper-vs-measured report.

The historical per-module entry points (``repro.experiments.run_fig7``
and friends) still work but emit :class:`DeprecationWarning`; they all
route to the same implementations this module fronts. Likewise the
loose-kwargs form of :func:`run_experiment` (extra ``**params``) warns
and forwards to the :class:`ExperimentRequest` path.

Metrics compose ambiently: wrap any of these calls in
``with repro.obs.use_metrics(registry):`` and the simulation's
instruments feed ``registry`` without changing a single result byte.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import Any, List, Optional, Union

from ._deprecation import _warn_once
from .experiments.campaign import (
    CampaignManifest,
    CampaignResult,
    matrix_from_spec,
    run_campaign,
)
from .experiments.config import FULL, QUICK, SMOKE, ExperimentScale
from .experiments.engine import (
    ScenarioMatrix,
    TrialExecutor,
    TrialOutcome,
    scoped_executor,
    use_executor,
)
from .experiments.parallel import (
    ExperimentRequest,
    experiment_names,
    experiment_spec,
    reset_id_allocators,
    run_one_isolated,
)
from .experiments.resilience import ExperimentFailure, RunPolicy
from .experiments.runner import AllResults, format_report, run_all
from .serve import (
    FeasibilityQuery,
    FeasibilityReport,
    QueryResponse,
    execute_query,
)
from .sim.faults import use_default_profile
from .stack import AndroidStack, build_stack

__all__ = [
    "AllResults",
    "AndroidStack",
    "CampaignManifest",
    "CampaignResult",
    "ExperimentFailure",
    "ExperimentRequest",
    "ExperimentScale",
    "FULL",
    "FeasibilityQuery",
    "FeasibilityReport",
    "QUICK",
    "QueryResponse",
    "RunPolicy",
    "SMOKE",
    "ScenarioMatrix",
    "TrialExecutor",
    "TrialOutcome",
    "build_stack",
    "experiment_names",
    "format_report",
    "matrix_from_spec",
    "query_feasibility",
    "run_all",
    "run_campaign",
    "run_experiment",
    "run_matrix",
]


def _execute_request(request: ExperimentRequest) -> Any:
    """The one implementation both request forms route through."""
    spec = experiment_spec(request.name)
    scale = request.effective_scale()
    if not request.derive_seed:
        if spec.takes_scale:
            return spec.runner(scale, **request.params)
        return spec.runner(**request.params)
    if request.jobs != 1:
        with ProcessPoolExecutor(max_workers=1) as pool:
            return pool.submit(run_one_isolated, request.name, scale).result()
    if not request.params:
        return run_one_isolated(request.name, scale)
    # Same discipline as the worker path, with params threaded through.
    reset_id_allocators()
    with use_default_profile(scale.faults), use_executor(TrialExecutor()):
        if spec.takes_scale:
            return spec.runner(scale.for_experiment(request.name),
                               **request.params)
        return spec.runner(**request.params)


def run_experiment(
    request: Union[ExperimentRequest, str],
    *,
    scale: ExperimentScale = QUICK,
    faults: Optional[str] = None,
    jobs: int = 1,
    derive_seed: bool = True,
    **params: Any,
) -> Any:
    """Run one named experiment and return its result dataclass.

    The typed form — ``run_experiment(ExperimentRequest(name="fig7",
    params={"durations": (50.0, 200.0)}))`` — validates everything
    eagerly (unknown names, unknown fault profiles, params with
    ``jobs != 1``, ``derive_seed=False`` with ``jobs != 1``) and is the
    form the feasibility service speaks. Passing an
    :class:`ExperimentRequest` together with any other argument is a
    :class:`TypeError`: the request already carries them all.

    The legacy form takes the experiment name as a string with the same
    keyword options spread alongside. It keeps working unchanged, except
    that extra ``**params`` (the undocumented loose-kwargs path) emit a
    once-per-process :class:`DeprecationWarning` pointing at
    ``ExperimentRequest(params={...})``.

    ``derive_seed=True`` (the default) reproduces exactly what
    ``run_all`` does for this experiment: the seed is derived from
    ``(scale.name, scale.seed, name)``, the global id allocators restart,
    and the scale's fault regime plus a fresh stack-reuse executor are
    installed ambiently — so the result is bit-identical to the same
    experiment's slot in the full suite. ``derive_seed=False`` instead
    calls the implementation directly with ``scale`` as given — the
    historical behaviour of the per-module entry points, for callers that
    pin their own seeds.

    ``jobs=1`` runs in-process. Any other value runs the experiment in a
    worker subprocess — one experiment never fans wider than one worker,
    so this only buys a clean process, not speed.
    """
    if isinstance(request, ExperimentRequest):
        if (scale is not QUICK or faults is not None or jobs != 1
                or derive_seed is not True or params):
            raise TypeError(
                "pass scale/faults/jobs/derive_seed/params on the "
                "ExperimentRequest itself, not alongside it")
        return _execute_request(request)
    if params:
        _warn_once(
            "repro.api.run_experiment(**params)",
            "loose keyword params to run_experiment are deprecated; pass "
            "ExperimentRequest(name=..., params={...}) instead")
    return _execute_request(ExperimentRequest(
        name=request, scale=scale, faults=faults, jobs=jobs,
        derive_seed=derive_seed, params=dict(params)))


def query_feasibility(
    query: Optional[FeasibilityQuery] = None, **fields: Any
) -> FeasibilityReport:
    """Answer one attack-feasibility query in-process.

    Either pass a built :class:`FeasibilityQuery`, or its fields directly
    (``query_feasibility(device="pixel 2", d_max_ms=300.0)``). This is
    the *same* execution path the ``repro serve`` service schedules on
    its worker pool — same scenarios, same seed derivation — so the
    report is byte-identical to a served answer; only caching, queueing
    and supervision differ.
    """
    if query is None:
        query = FeasibilityQuery(**fields)
    elif fields:
        raise TypeError(
            "pass query fields on the FeasibilityQuery itself, not "
            "alongside it")
    return execute_query(query)


def run_matrix(
    matrix: ScenarioMatrix,
    *,
    executor: Optional[TrialExecutor] = None,
) -> List[TrialOutcome]:
    """Run every cell of ``matrix``, pairing each spec with its result.

    Without an explicit ``executor`` the ambient one is used when an
    enclosing experiment installed it, otherwise a fresh stack-reuse
    executor scoped to this call. Under an ambient metrics registry each
    outcome carries its per-trial metric delta.
    """
    if executor is not None:
        return executor.run_matrix(matrix)
    with scoped_executor() as scoped:
        return scoped.run_matrix(matrix)
