"""Warn-once deprecation shims for pre-facade entry points.

The per-module ``run_<experiment>`` functions predate :mod:`repro.api`;
they keep working forever as thin wrappers created by
:func:`deprecated_entry_point`, but new code should go through
``repro.api.run_experiment``. Each shim warns at most once per process so
sweep loops don't drown in repeats, yet ``-W error::DeprecationWarning``
(the CI leg guarding the suite itself) still trips on the first call.
"""

from __future__ import annotations

import functools
import warnings
from typing import Any, Callable, Set

_warned: Set[str] = set()


def reset_deprecation_warnings() -> None:
    """Forget which shims already warned (test hook)."""
    _warned.clear()


def _warn_once(old_name: str, message: str) -> None:
    if old_name in _warned:
        return
    _warned.add(old_name)
    warnings.warn(message, DeprecationWarning, stacklevel=3)


def deprecated_entry_point(
    old_name: str, impl: Callable[..., Any], instead: str
) -> Callable[..., Any]:
    """Wrap ``impl`` so calling it under ``old_name`` warns, then delegates.

    The wrapper passes through args and return value verbatim — results
    are bit-identical to calling ``impl`` — so migration is never urgent;
    the warning just points at the ``repro.api`` replacement.
    """

    @functools.wraps(impl)
    def shim(*args: Any, **kwargs: Any) -> Any:
        _warn_once(old_name,
                   f"{old_name}() is deprecated; use {instead} instead")
        return impl(*args, **kwargs)

    shim.__name__ = old_name
    shim.__qualname__ = old_name
    return shim


def deprecated_class(old_name: str, cls: type, instead: str) -> type:
    """A subclass of ``cls`` that warns once on construction.

    Used to keep legacy import sites (``from repro.attacks import
    DrawAndDestroyOverlayAttack``) working while steering new code at the
    concrete module or the actor registry. The shim *is-a* ``cls``, so
    instances pass every ``isinstance`` check against the real class and
    behave identically after the warning.
    """

    def __init__(self: Any, *args: Any, **kwargs: Any) -> None:
        _warn_once(old_name,
                   f"{old_name} is deprecated; use {instead} instead")
        cls.__init__(self, *args, **kwargs)

    shim = type(cls.__name__, (cls,), {
        "__init__": __init__,
        "__doc__": cls.__doc__,
        "__module__": cls.__module__,
        "__qualname__": cls.__qualname__,
    })
    return shim
