"""Warn-once deprecation shims for pre-facade entry points.

The per-module ``run_<experiment>`` functions predate :mod:`repro.api`;
they keep working forever as thin wrappers created by
:func:`deprecated_entry_point`, but new code should go through
``repro.api.run_experiment``. Each shim warns at most once per process so
sweep loops don't drown in repeats, yet ``-W error::DeprecationWarning``
(the CI leg guarding the suite itself) still trips on the first call.
"""

from __future__ import annotations

import functools
import warnings
from typing import Any, Callable, Set

_warned: Set[str] = set()


def reset_deprecation_warnings() -> None:
    """Forget which shims already warned (test hook)."""
    _warned.clear()


def deprecated_entry_point(
    old_name: str, impl: Callable[..., Any], instead: str
) -> Callable[..., Any]:
    """Wrap ``impl`` so calling it under ``old_name`` warns, then delegates.

    The wrapper passes through args and return value verbatim — results
    are bit-identical to calling ``impl`` — so migration is never urgent;
    the warning just points at the ``repro.api`` replacement.
    """

    @functools.wraps(impl)
    def shim(*args: Any, **kwargs: Any) -> Any:
        if old_name not in _warned:
            _warned.add(old_name)
            warnings.warn(
                f"{old_name}() is deprecated; use {instead} instead",
                DeprecationWarning,
                stacklevel=2,
            )
        return impl(*args, **kwargs)

    shim.__name__ = old_name
    shim.__qualname__ = old_name
    return shim
