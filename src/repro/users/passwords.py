"""Random password generation matching the paper's experiments.

"a password is random and may contain lower case and upper case characters,
numbers and special symbols on different sub-keyboards" (Section I); the
user study types passwords of length 4, 6, 8, 10 and 12 (Section VI-C1).
"""

from __future__ import annotations

from typing import List, Optional

from ..apps.keyboard import KeyboardSpec
from ..sim.rng import SeededRng

LOWERCASE = "abcdefghijklmnopqrstuvwxyz"
UPPERCASE = "ABCDEFGHIJKLMNOPQRSTUVWXYZ"
DIGITS = "1234567890"
#: Special symbols available on the symbols sub-layout.
SYMBOLS = "!@#$%^&*()-_=+;:'\"/?<>"

#: Password lengths evaluated in Table III.
TABLE_III_LENGTHS = (4, 6, 8, 10, 12)


class PasswordGenerator:
    """Draws random passwords over the keyboard's typable alphabet."""

    def __init__(self, rng: SeededRng, spec: Optional[KeyboardSpec] = None) -> None:
        self._rng = rng
        if spec is not None:
            typable = set(spec.typable_characters())
            self._classes = [
                [c for c in LOWERCASE if c in typable],
                [c for c in UPPERCASE if c in typable],
                [c for c in DIGITS if c in typable],
                [c for c in SYMBOLS if c in typable],
            ]
        else:
            self._classes = [list(LOWERCASE), list(UPPERCASE), list(DIGITS), list(SYMBOLS)]
        for cls in self._classes:
            if not cls:
                raise ValueError("keyboard cannot type one of the password classes")

    def generate(self, length: int, require_all_classes: bool = True) -> str:
        """One random password of ``length`` characters.

        With ``require_all_classes`` (and length >= 4) the password contains
        at least one character from each class, forcing subkeyboard
        switches — the hard case for the attack."""
        if length < 1:
            raise ValueError(f"length must be >= 1, got {length}")
        chars: List[str] = []
        if require_all_classes and length >= len(self._classes):
            for cls in self._classes:
                chars.append(self._rng.choice(cls))
        alphabet = [c for cls in self._classes for c in cls]
        while len(chars) < length:
            chars.append(self._rng.choice(alphabet))
        self._rng.shuffle(chars)
        return "".join(chars[:length])

    def generate_letters(self, length: int) -> str:
        """A lowercase-only random string (the Fig. 7 testing-app input)."""
        return "".join(self._rng.choice(self._classes[0]) for _ in range(length))
