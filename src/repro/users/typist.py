"""The simulated user actually typing on the screen.

A :class:`Typist` executes a planned key-press sequence with human timing
and aim noise, issuing tap gestures through the stack's
:class:`~repro.windows.touch.TouchDispatcher`. Whatever window sits on top
— the victim app's keyboard, or the attacker's transparent overlay —
receives (or misses) those taps exactly as the window system dictates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from ..apps.keyboard import KeyboardSpec, KeyPress, plan_key_sequence
from ..sim.process import SimProcess
from ..stack import AndroidStack
from ..windows.geometry import Point
from ..windows.touch import TapRecord
from .models import TouchModel, TypingModel


@dataclass
class ExecutedTap:
    """One tap the user performed, joined with its dispatch outcome."""

    planned: KeyPress
    #: The key actually aimed at (differs from planned on a misspelling).
    actual_key: str
    point: Point
    tap: TapRecord
    misspelled: bool = False


@dataclass
class TypingSession:
    """The full record of one typed string."""

    text: str
    presses: List[KeyPress]
    taps: List[ExecutedTap] = field(default_factory=list)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None

    @property
    def complete(self) -> bool:
        return self.finished_at is not None


class Typist(SimProcess):
    """Drives tap gestures for key sequences on a keyboard geometry."""

    def __init__(
        self,
        stack: AndroidStack,
        spec: KeyboardSpec,
        typing_model: TypingModel,
        touch_model: TouchModel,
        name: str = "user",
    ) -> None:
        super().__init__(stack.simulation, name)
        self.stack = stack
        self.spec = spec
        self.typing_model = typing_model
        self.touch_model = touch_model
        self.sessions: List[TypingSession] = []

    # ------------------------------------------------------------------
    def type_text(
        self,
        text: str,
        start_layout: str = "lower",
        on_done: Optional[Callable[[TypingSession], None]] = None,
        initial_delay_ms: float = 0.0,
    ) -> TypingSession:
        """Type ``text`` (including any needed subkeyboard switches)."""
        presses = plan_key_sequence(self.spec, text, start_layout)
        return self.type_presses(text, presses, on_done, initial_delay_ms)

    def type_presses(
        self,
        text: str,
        presses: List[KeyPress],
        on_done: Optional[Callable[[TypingSession], None]] = None,
        initial_delay_ms: float = 0.0,
    ) -> TypingSession:
        session = TypingSession(text=text, presses=presses)
        self.sessions.append(session)

        def do_press(index: int) -> None:
            if session.started_at is None:
                session.started_at = self.now
            press = presses[index]
            actual_key, misspelled = self._maybe_misspell(press)
            key_rect = self.spec.layout(press.layout).keys[actual_key]
            point = self.touch_model.aim_at(self.rng, key_rect)
            commit = self.touch_model.commit_latency(self.rng)
            tap = self.stack.touch.tap(point, commit_ms=commit)
            session.taps.append(
                ExecutedTap(
                    planned=press,
                    actual_key=actual_key,
                    point=point,
                    tap=tap,
                    misspelled=misspelled,
                )
            )
            if index + 1 < len(presses):
                interval = self.typing_model.next_interval(self.rng)
                self.schedule(interval, lambda: do_press(index + 1), name="keypress")
            else:
                # Let the last gesture commit before declaring completion.
                def finish() -> None:
                    session.finished_at = self.now
                    if on_done is not None:
                        on_done(session)

                self.schedule(commit + 1.0, finish, name="typing-done")

        first_delay = initial_delay_ms + self.typing_model.next_interval(self.rng)
        self.schedule(first_delay, lambda: do_press(0), name="keypress")
        return session

    # ------------------------------------------------------------------
    def _maybe_misspell(self, press: KeyPress):
        """Occasionally substitute an adjacent character key."""
        if len(press.key) != 1:
            return press.key, False  # special keys are big; no misspells
        if not self.rng.chance(self.typing_model.misspell_probability):
            return press.key, False
        layout = self.spec.layout(press.layout)
        target_rect = layout.keys[press.key]
        neighbour_limit = target_rect.width * 1.6
        neighbours = [
            key
            for key, rect in layout.keys.items()
            if len(key) == 1
            and key != press.key
            and rect.center.distance_to(target_rect.center) <= neighbour_limit
        ]
        if not neighbours:
            return press.key, False
        return self.rng.choice(neighbours), True
