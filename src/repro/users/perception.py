"""User perception: what a victim can actually notice.

Three channels matter to the paper's stealthiness claims:

* the notification alert — perceptible only if frames with >= 1 rendered
  pixel stay up long enough (the draw-and-destroy overlay attack keeps the
  alert at Λ1, below any perceptible exposure);
* toast-switch flicker — perceptible only if combined toast opacity dips
  deep enough for long enough (the fade-out/fade-in overlap keeps the dip
  in the hundredths);
* lag — the occasional sluggishness one of the paper's 30 participants
  reported (Section VI-C3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..sim.rng import SeededRng
from ..systemui.outcomes import NotificationOutcome
from ..systemui.system_ui import SystemUi
from ..toast.lifecycle import ToastSwitch


@dataclass(frozen=True)
class PerceptionModel:
    """Detection thresholds of one user."""

    #: Minimum total time (ms) the alert must show >= 1 px to be noticed.
    alert_visible_threshold_ms: float = 120.0
    #: A toast switch is a visible flicker if combined opacity dips below
    #: this...
    flicker_coverage_threshold: float = 0.75
    #: ...for at least this long (ms).
    flicker_duration_threshold_ms: float = 40.0
    #: Probability this user reports lag after an attacked session.
    lag_report_probability: float = 0.03

    # ------------------------------------------------------------------
    def notices_alert(self, system_ui: SystemUi, as_of: Optional[float] = None) -> bool:
        """Did the overlay-presence alert become perceptible?"""
        worst = system_ui.worst_outcome(as_of=as_of)
        if worst is NotificationOutcome.LAMBDA1:
            return False
        if worst >= NotificationOutcome.LAMBDA3:
            # A fully drawn view was up: the slide-in alone took 360 ms.
            return True
        return system_ui.total_visible_ms(as_of=as_of) >= self.alert_visible_threshold_ms

    def notices_flicker(
        self,
        switches: Sequence[ToastSwitch],
        background_identical: bool = False,
    ) -> bool:
        """Did any toast transition produce a perceptible flicker?

        With ``background_identical`` (the password attack: the fake
        keyboard sits over the visually identical real keyboard), a
        transparency dip reveals the same image, so only a deep, sustained
        dip — enough to expose a sub-layout mismatch — is perceptible.
        """
        if background_identical:
            coverage_threshold = 0.35
            duration_threshold = 80.0
        else:
            coverage_threshold = self.flicker_coverage_threshold
            duration_threshold = self.flicker_duration_threshold_ms
        return any(
            s.min_coverage < coverage_threshold
            and s.time_below_threshold_ms >= duration_threshold
            for s in switches
        )

    def reports_lag(self, rng: SeededRng) -> bool:
        return rng.chance(self.lag_report_probability)
