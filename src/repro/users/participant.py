"""Participants: the simulated counterpart of the paper's user study.

The paper recruited 30 participants (5 female, 25 male, ages 22–33, mean
25), each with their own smartphone — the 30 devices of Table I. A
:class:`Participant` bundles one device profile with per-person typing,
touch, and perception models drawn around population means.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..devices.profiles import DeviceProfile
from ..devices.registry import DEVICES
from ..sim.rng import SeededRng
from .models import TouchModel, TypingModel
from .perception import PerceptionModel

#: Demographics from paper Section VI-A.
STUDY_SIZE = 30
STUDY_FEMALE = 5
STUDY_AGE_RANGE = (22, 33)


@dataclass(frozen=True)
class Participant:
    """One user-study participant and their phone."""

    participant_id: int
    age: int
    gender: str
    device: DeviceProfile
    typing: TypingModel
    touch: TouchModel
    perception: PerceptionModel

    @property
    def key(self) -> str:
        return f"P{self.participant_id:02d}/{self.device.key}"


def generate_participants(
    rng: SeededRng,
    count: int = STUDY_SIZE,
    devices: Optional[Sequence[DeviceProfile]] = None,
) -> List[Participant]:
    """Draw a participant pool.

    Each participant is assigned one device (cycling through the registry,
    so the default count of 30 covers all 30 Table I devices exactly once)
    and individual speed/aim/perception variation.
    """
    if count <= 0:
        raise ValueError(f"count must be positive, got {count}")
    pool = list(devices) if devices is not None else list(DEVICES)
    participants: List[Participant] = []
    base_typing = TypingModel()
    base_touch = TouchModel()
    for index in range(count):
        person_rng = rng.child(f"participant-{index}")
        speed_factor = person_rng.gauss_clipped(1.0, 0.15, minimum=0.65, maximum=1.5)
        typing = base_typing.scaled(speed_factor)
        touch = TouchModel(
            aim_sigma_fraction=person_rng.gauss_clipped(
                base_touch.aim_sigma_fraction, 0.03, minimum=0.08, maximum=0.3
            ),
            commit_mean_ms=person_rng.gauss_clipped(
                base_touch.commit_mean_ms, 2.0, minimum=6.0, maximum=22.0
            ),
        )
        perception = PerceptionModel(
            lag_report_probability=person_rng.gauss_clipped(
                0.03, 0.02, minimum=0.0, maximum=0.15
            )
        )
        participants.append(
            Participant(
                participant_id=index + 1,
                age=person_rng.randint(*STUDY_AGE_RANGE),
                gender="female" if index < STUDY_FEMALE else "male",
                device=pool[index % len(pool)],
                typing=typing,
                touch=touch,
                perception=perception,
            )
        )
    return participants
