"""Stochastic models of human typing and touching.

These models generate the inputs the paper collected from its 30
participants: tap timing (typing speed), tap placement (aim noise around
key centers), the input-pipeline commit latency that decides whether a tap
survives an overlay swap, and occasional misspellings.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sim.rng import SeededRng
from ..windows.geometry import Point, Rect


@dataclass(frozen=True)
class TypingModel:
    """Inter-key timing of one user."""

    mean_interval_ms: float = 280.0
    std_interval_ms: float = 60.0
    min_interval_ms: float = 140.0
    #: Probability of hitting an adjacent key instead of the intended one
    #: ("misspelling by a user may result in such an error case", paper
    #: Table III discussion).
    misspell_probability: float = 0.004

    def next_interval(self, rng: SeededRng) -> float:
        return rng.gauss_clipped(
            self.mean_interval_ms, self.std_interval_ms, minimum=self.min_interval_ms
        )

    def scaled(self, factor: float) -> "TypingModel":
        """A slower/faster variant of this model (per-participant spread)."""
        return TypingModel(
            mean_interval_ms=self.mean_interval_ms * factor,
            std_interval_ms=self.std_interval_ms * factor,
            min_interval_ms=self.min_interval_ms,
            misspell_probability=self.misspell_probability,
        )


@dataclass(frozen=True)
class TouchModel:
    """Tap placement and gesture-commit behaviour of one user."""

    #: Aim noise as a fraction of the key's smaller dimension.
    aim_sigma_fraction: float = 0.16
    #: Input pipeline commit latency (ms): the window during which removing
    #: the target window cancels the gesture.
    commit_mean_ms: float = 12.0
    commit_std_ms: float = 3.0
    commit_min_ms: float = 4.0

    def aim_at(self, rng: SeededRng, key_rect: Rect) -> Point:
        """A touch point aimed at the key's center with Gaussian spread,
        clamped to stay inside the key (users rarely miss a key they are
        looking at; cross-key errors are modelled as misspellings)."""
        sigma = min(key_rect.width, key_rect.height) * self.aim_sigma_fraction
        x = rng.gauss_clipped(
            key_rect.center.x, sigma, key_rect.left + 1.0, key_rect.right - 1.0
        )
        y = rng.gauss_clipped(
            key_rect.center.y, sigma, key_rect.top + 1.0, key_rect.bottom - 1.0
        )
        return Point(x, y)

    def commit_latency(self, rng: SeededRng) -> float:
        return rng.gauss_clipped(
            self.commit_mean_ms, self.commit_std_ms, minimum=self.commit_min_ms
        )
