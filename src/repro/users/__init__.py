"""Human substrate: passwords, typing/touch models, the simulated typist,
perception thresholds and the 30-person study pool."""

from .models import TouchModel, TypingModel
from .participant import (
    STUDY_AGE_RANGE,
    STUDY_FEMALE,
    STUDY_SIZE,
    Participant,
    generate_participants,
)
from .passwords import (
    DIGITS,
    LOWERCASE,
    SYMBOLS,
    TABLE_III_LENGTHS,
    UPPERCASE,
    PasswordGenerator,
)
from .perception import PerceptionModel
from .typist import ExecutedTap, Typist, TypingSession

__all__ = [
    "DIGITS",
    "ExecutedTap",
    "LOWERCASE",
    "Participant",
    "PasswordGenerator",
    "PerceptionModel",
    "STUDY_AGE_RANGE",
    "STUDY_FEMALE",
    "STUDY_SIZE",
    "SYMBOLS",
    "TABLE_III_LENGTHS",
    "TouchModel",
    "Typist",
    "TypingModel",
    "TypingSession",
    "UPPERCASE",
    "generate_participants",
]
