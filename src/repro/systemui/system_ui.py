"""System UI: drawer, status bar, and the alert slide-in controller.

System UI is the process that actually draws the overlay-presence alert.
On ``notifyOverlayShown`` it constructs the notification view (cost ``Tv``)
and calls ``startTopAnimation()`` — the 360 ms FastOutSlowIn slide-in. On
``notifyOverlayHidden`` it stops the animation and removes the view (in
reverse). The draw-and-destroy overlay attack wins when the hide always
arrives before the animation's first visible frame.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..animation.animator import ANIMATION_DURATION_STANDARD, Animator
from ..animation.interpolators import FastOutSlowInInterpolator
from ..animation.kernels import frame_table
from ..binder.router import BinderRouter
from ..binder.transaction import BinderTransaction
from ..devices.profiles import DeviceProfile
from ..sim.event import EventHandle
from ..sim.process import SimProcess
from ..sim.simulation import Simulation
from ..windows.system_server import SYSTEM_UI
from .notification import NotificationEntry, NotificationRecord
from .outcomes import NotificationOutcome, NotificationSnapshot, classify

#: The slide-in easing curve. Stateless, so one shared instance serves all
#: alerts (and keys the same frame table for every System UI on a device).
_ALERT_INTERPOLATOR = FastOutSlowInInterpolator()


class AlertMode(enum.Enum):
    """How the slide-in animation is evaluated.

    ``FRAME`` schedules a real animator frame every refresh interval —
    maximal fidelity, and the mode that produces per-frame traces.
    ``ANALYTIC`` relies on :class:`NotificationEntry`'s closed-form timeline
    (bit-identical outcomes, far fewer simulation events) — the mode the
    large parameter sweeps use.
    """

    FRAME = "frame"
    ANALYTIC = "analytic"


@dataclass
class _PendingAlert:
    handle: EventHandle
    requested_at: float


@dataclass
class _ActiveAlert:
    entry: NotificationEntry
    animator: Optional[Animator]


@dataclass(frozen=True)
class PostedNotification:
    """One ordinary notification posted into the drawer.

    Unlike the overlay-presence alert (which System Server originates),
    these arrive through the public ``postNotification`` surface — the
    channel a flooding attacker saturates (Knock-Knock style) to push
    the alert below the fold instead of racing its animation.
    """

    package: str
    time: float


#: Maximum notification icons the status bar can show (paper Section
#: II-A2: "Android 10 of Google Pixel 2 can show 4 icons").
STATUS_BAR_ICON_SLOTS = 4


class SystemUi(SimProcess):
    """Simulated System UI process."""

    def __init__(
        self,
        simulation: Simulation,
        router: BinderRouter,
        profile: DeviceProfile,
        mode: AlertMode = AlertMode.FRAME,
        name: str = SYSTEM_UI,
    ) -> None:
        super().__init__(simulation, name)
        self._router = router
        self._profile = profile
        self._mode = mode
        self._pending: Dict[str, _PendingAlert] = {}
        self._active: Dict[str, _ActiveAlert] = {}
        self._records: List[NotificationRecord] = []
        self._posted: List[PostedNotification] = []
        self._ignored_shows = 0
        router.register_many(
            name,
            {
                "notifyOverlayShown": self._handle_shown,
                "notifyOverlayHidden": self._handle_hidden,
                "postNotification": self._handle_post,
            },
        )
        # Prewarm the slide-in frame tables at boot (no-ops with kernels
        # off): the first alert of the first trial then hits the cache
        # instead of paying table construction mid-simulation. One table
        # per consumer shape — the entry's pixel table and the FRAME-mode
        # animator's completeness-only (height 0) table.
        frame_table(_ALERT_INTERPOLATOR, ANIMATION_DURATION_STANDARD,
                    profile.refresh_interval_ms,
                    profile.notification_view_height_px)
        frame_table(_ALERT_INTERPOLATOR, ANIMATION_DURATION_STANDARD,
                    profile.refresh_interval_ms, 0)

    def rearm(self) -> None:
        """Reset to boot state for stack reuse; the alert mode is part of
        the stack's identity and survives (the executor pools per mode)."""
        super().rearm()
        self._pending.clear()
        self._active.clear()
        self._records.clear()
        self._posted.clear()
        self._ignored_shows = 0
        self._router.register_many(
            self.name,
            {
                "notifyOverlayShown": self._handle_shown,
                "notifyOverlayHidden": self._handle_hidden,
                "postNotification": self._handle_post,
            },
        )

    # ------------------------------------------------------------------
    # Binder handlers
    # ------------------------------------------------------------------
    def _handle_shown(self, txn: BinderTransaction) -> None:
        app = txn.payload["app"]
        if app in self._pending or app in self._active:
            # The previous alert is still up (its hide was suppressed): the
            # animation simply continues — the failure mode of a mistimed
            # attack (paper Section III-C Step 2).
            self._ignored_shows += 1
            self.trace("systemui.show_ignored", app=app)
            return
        tv = self._profile.tv.sample(self.rng)
        handle = self.schedule(tv, lambda: self._create_entry(app), name="create-view")
        self._pending[app] = _PendingAlert(handle=handle, requested_at=self.now)
        self.trace("systemui.view_requested", app=app, tv_ms=round(tv, 4))

    def _handle_hidden(self, txn: BinderTransaction) -> None:
        app = txn.payload["app"]
        pending = self._pending.pop(app, None)
        if pending is not None:
            pending.handle.cancel_if_pending()
            # The view was never constructed: nothing could have been seen.
            self._records.append(
                NotificationRecord(
                    app=app,
                    anim_start=pending.requested_at,
                    removed_at=self.now,
                    snapshot=NotificationSnapshot(
                        view_progress=0.0,
                        max_pixels=0,
                        message_progress=0.0,
                        icon_shown=False,
                    ),
                    outcome=NotificationOutcome.LAMBDA1,
                    visible_ms=0.0,
                )
            )
            self.trace("systemui.view_cancelled_precreation", app=app)
            return
        active = self._active.pop(app, None)
        if active is None:
            self.trace("systemui.hide_noop", app=app)
            return
        entry = active.entry
        entry.removed_at = self.now
        if active.animator is not None:
            active.animator.cancel()
        snapshot = entry.snapshot_at(self.now)
        outcome = classify(snapshot)
        self._records.append(
            NotificationRecord(
                app=app,
                anim_start=entry.anim_start,
                removed_at=self.now,
                snapshot=snapshot,
                outcome=outcome,
                visible_ms=entry.visible_time_ms(self.now),
            )
        )
        self.trace("systemui.alert_removed", app=app, outcome=outcome.label,
                   pixels=snapshot.max_pixels)

    def _handle_post(self, txn: BinderTransaction) -> None:
        self.post_notification(txn.payload["package"])

    def post_notification(self, package: str) -> PostedNotification:
        """Accept one ordinary notification into the drawer.

        Posting is deliberately cheap and unthrottled — exactly the
        property the flooding attack abuses. Rate limiting belongs to a
        defense layer, not to this surface.
        """
        posted = PostedNotification(package=package, time=self.now)
        self._posted.append(posted)
        self.trace("systemui.notification_posted", package=package)
        return posted

    # ------------------------------------------------------------------
    def _create_entry(self, app: str) -> None:
        self._pending.pop(app, None)
        entry = NotificationEntry(
            app=app,
            anim_start=self.now,
            view_height_px=self._profile.notification_view_height_px,
            refresh_interval_ms=self._profile.refresh_interval_ms,
            duration_ms=ANIMATION_DURATION_STANDARD,
        )
        animator: Optional[Animator] = None
        if self._mode is AlertMode.FRAME:
            animator = Animator(
                simulation=self.simulation,
                interpolator=_ALERT_INTERPOLATOR,
                duration_ms=ANIMATION_DURATION_STANDARD,
                refresh_interval_ms=self._profile.refresh_interval_ms,
                name=f"alert:{app}",
            )
            animator.start()
        self._active[app] = _ActiveAlert(entry=entry, animator=animator)
        self.trace("systemui.animation_started", app=app)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def mode(self) -> AlertMode:
        return self._mode

    @property
    def records(self) -> List[NotificationRecord]:
        return list(self._records)

    @property
    def ignored_shows(self) -> int:
        return self._ignored_shows

    def active_entry(self, app: str) -> Optional[NotificationEntry]:
        active = self._active.get(app)
        return active.entry if active else None

    def active_animator(self, app: str) -> Optional[Animator]:
        active = self._active.get(app)
        return active.animator if active else None

    def has_alert(self, app: str) -> bool:
        return app in self._pending or app in self._active

    def active_apps(self):
        """Apps with an alert currently in the drawer (view created)."""
        return list(self._active)

    def worst_outcome(self, as_of: Optional[float] = None) -> NotificationOutcome:
        """Most-visible Λ outcome across all alert instances so far,
        including alerts still on screen (evaluated as of ``as_of`` /
        now)."""
        time = self.now if as_of is None else as_of
        worst = NotificationOutcome.LAMBDA1
        for record in self._records:
            if record.outcome > worst:
                worst = record.outcome
        for active in self._active.values():
            outcome = active.entry.outcome_at(time)
            if outcome > worst:
                worst = outcome
        return worst

    def outcome_counts(self) -> Dict[NotificationOutcome, int]:
        counts: Dict[NotificationOutcome, int] = {o: 0 for o in NotificationOutcome}
        for record in self._records:
            counts[record.outcome] += 1
        return counts

    def total_visible_ms(self, as_of: Optional[float] = None) -> float:
        """Total time any alert had >= 1 rendered pixel."""
        time = self.now if as_of is None else as_of
        total = sum(record.visible_ms for record in self._records)
        total += sum(
            active.entry.visible_time_ms(time) for active in self._active.values()
        )
        return total

    def posted_notifications(self) -> List[PostedNotification]:
        """Ordinary notifications accepted so far, in posting order."""
        return list(self._posted)

    def posted_count(self, as_of: Optional[float] = None) -> int:
        time = self.now if as_of is None else as_of
        return sum(1 for p in self._posted if p.time <= time)

    def alert_drawer_depth(self, app: str,
                           as_of: Optional[float] = None) -> Optional[int]:
        """Notifications stacked *above* ``app``'s alert in the drawer.

        The drawer lists newest first, so the depth is the count of
        ordinary notifications posted after the alert's animation
        started. ``None`` when ``app`` has no alert up (pending alerts
        count from their request time: the view will materialize below
        anything posted meanwhile).
        """
        time = self.now if as_of is None else as_of
        active = self._active.get(app)
        if active is not None:
            anchor = active.entry.anim_start
        else:
            pending = self._pending.get(app)
            if pending is None:
                return None
            anchor = pending.requested_at
        return sum(1 for p in self._posted if anchor < p.time <= time)

    def alert_occluded(self, app: str, slots: int = STATUS_BAR_ICON_SLOTS,
                       as_of: Optional[float] = None) -> bool:
        """Is ``app``'s alert pushed out of the visible drawer region?

        With ``slots`` newer notifications above it, the alert's icon no
        longer fits the status bar and its row sits below the drawer
        fold — the user must scroll to ever see it (paper Section II-A2
        caps the Pixel 2 status bar at 4 icons).
        """
        depth = self.alert_drawer_depth(app, as_of=as_of)
        return depth is not None and depth >= slots

    def status_bar_icons(self, as_of: Optional[float] = None) -> int:
        """Icons currently shown in the status bar (capped at 4 slots)."""
        time = self.now if as_of is None else as_of
        icons = sum(
            1
            for active in self._active.values()
            if active.entry.snapshot_at(time).icon_shown
        )
        return min(icons, STATUS_BAR_ICON_SLOTS)
