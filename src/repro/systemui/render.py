"""ASCII rendering of notification-drawer states (the paper's Fig. 6).

Fig. 6 shows five screenshots of the notification drawer under growing
attacking windows. The renderer draws the same five states from a
:class:`~repro.systemui.outcomes.NotificationSnapshot`: nothing (Λ1), a
partially slid-in view (Λ2), the full container without content (Λ3), a
partially rendered message (Λ4), and the complete alert with icon (Λ5).
"""

from __future__ import annotations

from typing import List

from .notification import NotificationEntry
from .outcomes import NotificationSnapshot, classify

#: The alert text Android shows (paraphrased from the real notification).
ALERT_MESSAGE = "App is displaying over other apps"

#: Rendered drawer width in characters.
_WIDTH = 44
#: Full view height in text rows.
_ROWS = 4


def render_snapshot(snapshot: NotificationSnapshot) -> str:
    """Draw the drawer region for one rendering snapshot.

    The drawer is the outer box; the notification *entry* is an inner box
    that slides in from the top: absent at Λ1, partially drawn at Λ2, a
    complete-but-empty container at Λ3, then message (Λ4) and icon (Λ5).
    """
    outcome = classify(snapshot)
    inner_width = _WIDTH - 4
    entry_rows: List[str] = []
    if snapshot.max_pixels > 0:
        visible_rows = max(1, round(snapshot.view_progress * _ROWS))
        message = ""
        if snapshot.message_progress > 0.0:
            cut = max(1, round(len(ALERT_MESSAGE) * snapshot.message_progress))
            message = ALERT_MESSAGE[:cut]
        icon = "[!]" if snapshot.icon_shown else "   "
        complete = snapshot.view_progress >= 1.0
        entry_rows.append("╔" + "═" * inner_width + "╗")
        for row in range(max(1, visible_rows - 1)):
            body = f" {icon} {message}" if row == 0 else ""
            entry_rows.append("║" + body.ljust(inner_width)[:inner_width] + "║")
        if complete:
            entry_rows.append("╚" + "═" * inner_width + "╝")
        # A partially slid-in entry is cut off by the drawer edge.
        entry_rows = entry_rows[: _ROWS]

    lines: List[str] = [f"┌{'─' * _WIDTH}┐  (drawer)"]
    for row in range(_ROWS):
        if row < len(entry_rows):
            content = f"  {entry_rows[row]}  "
        else:
            content = " " * _WIDTH
        lines.append(f"│{content[:_WIDTH].ljust(_WIDTH)}│")
    lines.append(f"└{'─' * _WIDTH}┘  outcome: {outcome.label}")
    return "\n".join(lines)


def render_entry(entry: NotificationEntry, time: float) -> str:
    """Draw what the drawer shows for ``entry`` at ``time``."""
    return render_snapshot(entry.snapshot_at(time))


def render_outcome_gallery() -> str:
    """All five Λ states side by side — the textual Fig. 6."""
    samples = [
        ("Λ1", NotificationSnapshot(0.0, 0, 0.0, False)),
        ("Λ2", NotificationSnapshot(0.45, 32, 0.0, False)),
        ("Λ3", NotificationSnapshot(1.0, 72, 0.0, False)),
        ("Λ4", NotificationSnapshot(1.0, 72, 0.55, False)),
        ("Λ5", NotificationSnapshot(1.0, 72, 1.0, True)),
    ]
    blocks = []
    for label, snapshot in samples:
        blocks.append(f"{label}:\n{render_snapshot(snapshot)}")
    return "\n\n".join(blocks)
