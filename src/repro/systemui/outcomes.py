"""Notification-view outcome classification (paper Fig. 6).

The paper distinguishes five outcomes of the notification alert under an
increasing attacking window ``D``:

* **Λ1** — the animation never rendered a visible pixel; no alert at all
  (best case for the attacker);
* **Λ2** — the slide-in started but never completed; the view is partially
  visible;
* **Λ3** — the view is fully visible, but neither message nor icon was
  drawn ("other elements in the notification view ... are not displayed
  until the notification view has been drawn completely");
* **Λ4** — the view is fully visible and the message partially rendered;
* **Λ5** — the animation fully completed: view, message and icon all shown
  (worst case for the attacker).
"""

from __future__ import annotations

import enum
import functools
from dataclasses import dataclass


@functools.total_ordering
class NotificationOutcome(enum.Enum):
    """Λ1–Λ5 ordered by how much the user could have seen."""

    LAMBDA1 = 1
    LAMBDA2 = 2
    LAMBDA3 = 3
    LAMBDA4 = 4
    LAMBDA5 = 5

    def __lt__(self, other: "NotificationOutcome") -> bool:
        if not isinstance(other, NotificationOutcome):
            return NotImplemented
        return self.value < other.value

    @property
    def label(self) -> str:
        return f"Λ{self.value}"

    @property
    def suppressed(self) -> bool:
        """Whether the alert was fully suppressed (the attacker's goal)."""
        return self is NotificationOutcome.LAMBDA1


@dataclass(frozen=True)
class NotificationSnapshot:
    """What one notification entry had rendered when it went away."""

    view_progress: float
    max_pixels: int
    message_progress: float
    icon_shown: bool

    def __post_init__(self) -> None:
        if not 0.0 <= self.view_progress <= 1.0:
            raise ValueError(f"view_progress out of range: {self.view_progress}")
        if not 0.0 <= self.message_progress <= 1.0:
            raise ValueError(f"message_progress out of range: {self.message_progress}")
        if self.max_pixels < 0:
            raise ValueError(f"max_pixels must be >= 0: {self.max_pixels}")


def classify(snapshot: NotificationSnapshot) -> NotificationOutcome:
    """Map a rendering snapshot to its Λ outcome."""
    if snapshot.max_pixels == 0:
        return NotificationOutcome.LAMBDA1
    if snapshot.view_progress < 1.0:
        return NotificationOutcome.LAMBDA2
    if snapshot.icon_shown and snapshot.message_progress >= 1.0:
        return NotificationOutcome.LAMBDA5
    if snapshot.message_progress <= 0.0:
        return NotificationOutcome.LAMBDA3
    return NotificationOutcome.LAMBDA4
