"""Notification entries in the notification drawer.

An entry's rendering timeline is fully deterministic once its animation
start time is fixed: frames fire every refresh interval, the slide-in eases
along the FastOutSlowIn Bezier for 360 ms, and the message/icon render only
after the view completes. :class:`NotificationEntry` exposes that timeline
analytically (``progress_at`` / ``snapshot_at``), which lets large sweeps
classify outcomes without simulating each 10 ms frame, while the
frame-driven :class:`~repro.animation.animator.Animator` path renders the
identical values (asserted by the cross-validation tests).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

from ..animation.animator import ANIMATION_DURATION_STANDARD, rendered_pixels
from ..animation.interpolators import FastOutSlowInInterpolator, Interpolator
from ..animation.kernels import frame_table
from .outcomes import NotificationOutcome, NotificationSnapshot, classify

#: Delay between the view completing and the message text starting to
#: render (layout/measure pass), ms.
MESSAGE_RENDER_DELAY_MS = 30.0
#: Time for the message text to render fully, ms.
MESSAGE_RENDER_DURATION_MS = 120.0
#: Delay after the message completes until the icon is drawn, ms.
ICON_RENDER_DELAY_MS = 60.0

_SHARED_INTERPOLATOR = FastOutSlowInInterpolator()


@dataclass
class NotificationEntry:
    """One overlay-presence alert living in the notification drawer."""

    app: str
    anim_start: float
    view_height_px: int
    refresh_interval_ms: float
    duration_ms: float = ANIMATION_DURATION_STANDARD
    interpolator: Interpolator = field(default=_SHARED_INTERPOLATOR)
    removed_at: Optional[float] = None

    def __post_init__(self) -> None:
        # Kernel fast path: one memoized per-frame table shared by every
        # entry with the same (curve, duration, refresh, height). The
        # analytic timeline quantizes queries to frame indices, and a
        # table row's completeness is built by the exact float expression
        # `progress_at` would evaluate — byte-identical by construction.
        # None when kernels are off or the interpolator is uncacheable.
        self._table = frame_table(
            self.interpolator,
            self.duration_ms,
            self.refresh_interval_ms,
            self.view_height_px,
        )

    # ------------------------------------------------------------------
    # Analytic rendering timeline
    # ------------------------------------------------------------------
    def progress_at(self, time: float) -> float:
        """Frame-quantized slide-in completeness at ``time``.

        Only what a frame actually drew counts: progress between frames is
        invisible, which is what gives the attacker a whole extra refresh
        interval of slack."""
        elapsed = time - self.anim_start
        if elapsed < self.refresh_interval_ms:
            return 0.0
        frames = math.floor(elapsed / self.refresh_interval_ms)
        if self._table is not None:
            return self._table.completeness_at_frame(frames)
        frame_time = min(frames * self.refresh_interval_ms, self.duration_ms)
        return self.interpolator.value(frame_time / self.duration_ms)

    def pixels_at(self, time: float) -> int:
        elapsed = time - self.anim_start
        if elapsed < self.refresh_interval_ms:
            return 0
        if self._table is not None:
            frames = math.floor(elapsed / self.refresh_interval_ms)
            return self._table.pixels_at_frame(frames)
        return rendered_pixels(self.progress_at(time), self.view_height_px)

    @property
    def view_complete_at(self) -> float:
        """Time the final animation frame fires."""
        frames = math.ceil(self.duration_ms / self.refresh_interval_ms)
        return self.anim_start + frames * self.refresh_interval_ms

    @property
    def message_start_at(self) -> float:
        return self.view_complete_at + MESSAGE_RENDER_DELAY_MS

    @property
    def message_complete_at(self) -> float:
        return self.message_start_at + MESSAGE_RENDER_DURATION_MS

    @property
    def icon_shown_at(self) -> float:
        return self.message_complete_at + ICON_RENDER_DELAY_MS

    def message_progress_at(self, time: float) -> float:
        if time <= self.message_start_at:
            return 0.0
        progress = (time - self.message_start_at) / MESSAGE_RENDER_DURATION_MS
        return min(progress, 1.0)

    def first_visible_at(self) -> Optional[float]:
        """Earliest time a frame renders >= 1 px, or None if the entry was
        removed before that happened."""
        frame = 1
        while True:
            t = self.anim_start + frame * self.refresh_interval_ms
            if self.removed_at is not None and t >= self.removed_at:
                return None
            if self.pixels_at(t) >= 1:
                return t
            if t >= self.view_complete_at:
                return None
            frame += 1

    # ------------------------------------------------------------------
    # Snapshots and classification
    # ------------------------------------------------------------------
    def snapshot_at(self, time: float) -> NotificationSnapshot:
        """Rendering high-water marks as of ``time`` (or removal time if
        the entry was removed earlier)."""
        if self.removed_at is not None:
            time = min(time, self.removed_at)
        return NotificationSnapshot(
            view_progress=self.progress_at(time),
            max_pixels=self.pixels_at(time),
            message_progress=self.message_progress_at(time),
            icon_shown=time >= self.icon_shown_at,
        )

    def outcome_at(self, time: float) -> NotificationOutcome:
        return classify(self.snapshot_at(time))

    def visible_time_ms(self, until: float) -> float:
        """Total wall time with >= 1 rendered pixel, up to ``until``."""
        end = until if self.removed_at is None else min(self.removed_at, until)
        first = self.first_visible_at()
        if first is None or first >= end:
            return 0.0
        return end - first


@dataclass(frozen=True)
class NotificationRecord:
    """Immutable history record of one retired notification entry."""

    app: str
    anim_start: float
    removed_at: float
    snapshot: NotificationSnapshot
    outcome: NotificationOutcome
    visible_ms: float
