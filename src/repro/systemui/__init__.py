"""System UI substrate: the notification drawer, the alert slide-in
controller and the Λ1–Λ5 outcome classifier of the paper's Fig. 6."""

from .notification import (
    ICON_RENDER_DELAY_MS,
    MESSAGE_RENDER_DELAY_MS,
    MESSAGE_RENDER_DURATION_MS,
    NotificationEntry,
    NotificationRecord,
)
from .outcomes import NotificationOutcome, NotificationSnapshot, classify
from .render import render_entry, render_outcome_gallery, render_snapshot
from .system_ui import STATUS_BAR_ICON_SLOTS, AlertMode, SystemUi

__all__ = [
    "AlertMode",
    "ICON_RENDER_DELAY_MS",
    "MESSAGE_RENDER_DELAY_MS",
    "MESSAGE_RENDER_DURATION_MS",
    "NotificationEntry",
    "NotificationOutcome",
    "NotificationRecord",
    "NotificationSnapshot",
    "STATUS_BAR_ICON_SLOTS",
    "SystemUi",
    "classify",
    "render_entry",
    "render_outcome_gallery",
    "render_snapshot",
]
