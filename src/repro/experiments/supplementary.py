"""Supplementary analyses beyond the paper's tables.

* :func:`run_table3_by_version` — Table III broken down by Android major
  version: the version effect (Android 10/11's larger mistouch gap) shows
  up directly in password-stealing success, a split the paper does not
  report but its model predicts;
* :func:`run_fig7_with_cis` — Fig. 7 means with bootstrap confidence
  intervals over participants, quantifying how tight the 30-person study
  actually is.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..serialization import SerializableMixin
from .._deprecation import deprecated_entry_point
from ..analysis.statistics import ConfidenceInterval, bootstrap_mean_ci, wilson_interval
from ..apps.keyboard import KeyboardSpec, default_keyboard_rect
from ..devices.registry import devices_by_version
from ..sim.rng import SeededRng
from ..users.participant import Participant, generate_participants
from ..users.passwords import PasswordGenerator
from .capture_rate import _run_fig7
from .config import ExperimentScale, FIG7_DURATIONS, QUICK
from .engine import scoped_executor
from .scenarios import run_password_trial


@dataclass(frozen=True)
class VersionSuccessRow(SerializableMixin):
    """Password-stealing outcomes for one Android major version."""

    version: str
    attempts: int
    successes: int
    ci: ConfidenceInterval

    @property
    def success_rate(self) -> float:
        return 100.0 * self.successes / self.attempts if self.attempts else 0.0


@dataclass(frozen=True)
class Table3ByVersionResult(SerializableMixin):
    password_length: int
    rows: Tuple[VersionSuccessRow, ...]

    def row(self, version: str) -> VersionSuccessRow:
        for row in self.rows:
            if row.version == version:
                return row
        raise KeyError(f"version {version!r} not evaluated")

    @property
    def newer_versions_harder(self) -> bool:
        """Android 10 succeeds less often than 9 (larger Tmis)."""
        return self.row("10").success_rate <= self.row("9").success_rate + 2.0


def _run_table3_by_version(
    scale: ExperimentScale = QUICK,
    password_length: int = 8,
) -> Table3ByVersionResult:
    """Password-stealing success split by Android version."""
    per_group = max(2, scale.participants // 4)
    rows: List[VersionSuccessRow] = []
    with scoped_executor():
        _table3_by_version_rows(rows, scale, password_length, per_group)
    return Table3ByVersionResult(password_length=password_length,
                                 rows=tuple(rows))


def _table3_by_version_rows(
    rows: List[VersionSuccessRow],
    scale: ExperimentScale,
    password_length: int,
    per_group: int,
) -> None:
    for version, devices in sorted(devices_by_version().items()):
        members: Sequence[Participant] = generate_participants(
            SeededRng(scale.seed, f"t3v-participants/{version}"),
            count=min(per_group, len(devices)) if scale.participants < 30
            else len(devices),
            devices=devices,
        )
        attempts = 0
        successes = 0
        for participant in members:
            spec = KeyboardSpec(
                default_keyboard_rect(
                    participant.device.screen_width_px,
                    participant.device.screen_height_px,
                )
            )
            stream = SeededRng(
                scale.seed, f"t3v/{version}/{participant.participant_id}"
            )
            generator = PasswordGenerator(stream.child("pw"), spec)
            for _ in range(scale.passwords_per_length):
                trial = run_password_trial(
                    participant,
                    generator.generate(password_length),
                    seed=stream.randint(0, 2**31 - 1),
                    type_username_first=False,
                )
                attempts += 1
                successes += trial.success
        rows.append(
            VersionSuccessRow(
                version=version,
                attempts=attempts,
                successes=successes,
                ci=wilson_interval(successes, attempts),
            )
        )


@dataclass(frozen=True)
class Fig7CiRow(SerializableMixin):
    attacking_window_ms: float
    mean: float
    ci: ConfidenceInterval


@dataclass(frozen=True)
class Fig7WithCisResult(SerializableMixin):
    rows: Tuple[Fig7CiRow, ...]

    @property
    def all_cis_reasonably_tight(self) -> bool:
        return all(row.ci.width < 25.0 for row in self.rows)


def _run_fig7_with_cis(
    scale: ExperimentScale = QUICK,
    durations: Sequence[float] = FIG7_DURATIONS,
) -> Fig7WithCisResult:
    """Fig. 7 means with 95% bootstrap CIs over participants."""
    base = _run_fig7(scale, durations=durations)
    rows: List[Fig7CiRow] = []
    for stats in base.stats:
        ci = bootstrap_mean_ci(
            stats.per_participant, seed=scale.seed, resamples=1000
        )
        rows.append(
            Fig7CiRow(
                attacking_window_ms=stats.attacking_window_ms,
                mean=stats.mean,
                ci=ci,
            )
        )
    return Fig7WithCisResult(rows=tuple(rows))


run_table3_by_version = deprecated_entry_point(
    "run_table3_by_version", _run_table3_by_version, "repro.api.run_experiment('table3_by_version', ...)")

run_fig7_with_cis = deprecated_entry_point(
    "run_fig7_with_cis", _run_fig7_with_cis, "repro.api.run_experiment('fig7_cis', ...)")
