"""Table III and the stealthiness study (Sections VI-C1 and VI-C3).

Table III: passwords of length 4/6/8/10/12, each participant typing
``passwords_per_length`` random passwords mixing all four character
classes; the attack runs at each device's calibrated optimal D. Reported:
success rate plus the three error categories (length, wrong-key,
capitalization).

Stealthiness: participants type passwords on the Bank of America app with
and without the malware installed; afterwards each reports whether they
noticed anything (alert, flicker) or felt lag. The paper observed 1/30
reporting lag and nobody noticing the attack.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..serialization import SerializableMixin
from .._deprecation import deprecated_entry_point
from ..apps.catalog import bank_of_america
from ..apps.keyboard import KeyboardSpec, default_keyboard_rect
from ..attacks.password_stealing import PasswordErrorType
from ..sim.rng import SeededRng
from ..users.participant import Participant, generate_participants
from ..users.passwords import TABLE_III_LENGTHS, PasswordGenerator
from .config import ExperimentScale, QUICK, TABLE_III_PAPER
from .engine import scoped_executor
from .scenarios import (
    PasswordTrialResult,
    run_control_trial,
    run_password_trial,
)


@dataclass(frozen=True)
class Table3Row(SerializableMixin):
    """Aggregated outcomes for one password length."""

    length: int
    attempts: int = 0
    successes: int = 0
    length_errors: int = 0
    capitalization_errors: int = 0
    wrong_key_errors: int = 0
    other_errors: int = 0

    @property
    def success_rate(self) -> float:
        return 100.0 * self.successes / self.attempts if self.attempts else 0.0

    @classmethod
    def from_outcomes(
        cls, length: int, outcomes: Sequence[PasswordErrorType]
    ) -> "Table3Row":
        """Aggregate one length's trial outcomes into a row."""
        counts = Counter(outcomes)
        known = (PasswordErrorType.SUCCESS, PasswordErrorType.LENGTH_ERROR,
                 PasswordErrorType.CAPITALIZATION_ERROR,
                 PasswordErrorType.WRONG_KEY_ERROR)
        return cls(
            length=length,
            attempts=len(outcomes),
            successes=counts[PasswordErrorType.SUCCESS],
            length_errors=counts[PasswordErrorType.LENGTH_ERROR],
            capitalization_errors=counts[
                PasswordErrorType.CAPITALIZATION_ERROR],
            wrong_key_errors=counts[PasswordErrorType.WRONG_KEY_ERROR],
            other_errors=sum(n for t, n in counts.items() if t not in known),
        )


@dataclass(frozen=True)
class Table3Result(SerializableMixin):
    rows: Tuple[Table3Row, ...]
    paper_reference: Dict[int, Dict[str, float]] = field(
        default_factory=lambda: dict(TABLE_III_PAPER)
    )

    def row(self, length: int) -> Table3Row:
        for row in self.rows:
            if row.length == length:
                return row
        raise KeyError(f"length {length} not evaluated")

    @property
    def success_rates(self) -> List[float]:
        return [row.success_rate for row in self.rows]

    @property
    def is_decreasing_with_length(self) -> bool:
        rates = self.success_rates
        return all(a >= b - 3.0 for a, b in zip(rates, rates[1:]))


def _run_table3(
    scale: ExperimentScale = QUICK,
    lengths: Sequence[int] = TABLE_III_LENGTHS,
    participants: Optional[Sequence[Participant]] = None,
) -> Table3Result:
    """The full password-stealing study across lengths and participants."""
    pool = list(participants) if participants is not None else generate_participants(
        SeededRng(scale.seed, "participants"), count=scale.participants
    )
    rows: List[Table3Row] = []
    with scoped_executor():
        for length in lengths:
            outcomes: List[PasswordErrorType] = []
            for participant in pool:
                spec = KeyboardSpec(
                    default_keyboard_rect(
                        participant.device.screen_width_px,
                        participant.device.screen_height_px,
                    )
                )
                stream = SeededRng(scale.seed, f"table3/{length}/{participant.participant_id}")
                generator = PasswordGenerator(stream.child("passwords"), spec)
                for attempt in range(scale.passwords_per_length):
                    password = generator.generate(length)
                    trial = run_password_trial(
                        participant,
                        password,
                        seed=stream.randint(0, 2**31 - 1),
                        type_username_first=False,
                    )
                    outcomes.append(trial.error_type)
            rows.append(Table3Row.from_outcomes(length, outcomes))
    return Table3Result(rows=tuple(rows))


# ---------------------------------------------------------------------------
# Stealthiness (Section VI-C3)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class StealthinessResult(SerializableMixin):
    """User-reported observations with and without the malware."""

    participants: int
    noticed_alert: int
    noticed_flicker: int
    reported_lag: int
    noticed_anything_without_malware: int

    @property
    def noticed_attack(self) -> int:
        return self.noticed_alert + self.noticed_flicker


def _run_stealthiness(
    scale: ExperimentScale = QUICK,
    password_length: int = 8,
) -> StealthinessResult:
    """BofA typing sessions with the malware; perception statistics."""
    pool = generate_participants(
        SeededRng(scale.seed, "participants"), count=scale.participants
    )
    noticed_alert = 0
    noticed_flicker = 0
    reported_lag = 0
    control_noticed = 0
    with scoped_executor():
        for participant in pool:
            spec = KeyboardSpec(
                default_keyboard_rect(
                    participant.device.screen_width_px,
                    participant.device.screen_height_px,
                )
            )
            stream = SeededRng(scale.seed, f"stealth/{participant.participant_id}")
            generator = PasswordGenerator(stream.child("passwords"), spec)
            trial: PasswordTrialResult = run_password_trial(
                participant,
                generator.generate(password_length),
                seed=stream.randint(0, 2**31 - 1),
                victim_spec=bank_of_america(),
                type_username_first=False,
            )
            if trial.alert_noticed:
                noticed_alert += 1
            if trial.flicker_noticed:
                noticed_flicker += 1
            if trial.lag_reported:
                reported_lag += 1
            # Control arm: the same participant, same app, no malware.
            control = run_control_trial(
                participant,
                generator.generate(password_length),
                seed=stream.randint(0, 2**31 - 1),
                victim_spec=bank_of_america(),
            )
            if control.noticed_anything:
                control_noticed += 1
    return StealthinessResult(
        participants=len(pool),
        noticed_alert=noticed_alert,
        noticed_flicker=noticed_flicker,
        reported_lag=reported_lag,
        noticed_anything_without_malware=control_noticed,
    )


run_table3 = deprecated_entry_point(
    "run_table3", _run_table3, "repro.api.run_experiment('table3', ...)")

run_stealthiness = deprecated_entry_point(
    "run_stealthiness", _run_stealthiness, "repro.api.run_experiment('stealthiness', ...)")
