"""Experiment scaling presets.

Every experiment accepts an :class:`ExperimentScale`. ``FULL`` matches the
paper's protocol sizes (30 participants, 10 strings per D, 10 passwords
per length, the 890,855-app corpus); ``QUICK`` is a minutes-not-hours
preset for CI and pytest-benchmark runs. Counts are scaled, protocols are
identical.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass, replace
from typing import Optional


@dataclass(frozen=True, kw_only=True)
class ExperimentScale:
    """Knobs controlling experiment cost."""

    name: str
    #: Participants drawn from the study pool (paper: 30).
    participants: int = 30
    #: Random 10-char strings typed per participant per D (paper: 10).
    strings_per_d: int = 10
    #: Characters per string (paper: 10).
    chars_per_string: int = 10
    #: Passwords typed per participant per length (paper: 10).
    passwords_per_length: int = 10
    #: Simulation trials per probed D in the boundary search.
    boundary_trials_per_d: int = 3
    #: Duration of one boundary-search attack trial (ms).
    boundary_trial_ms: float = 3000.0
    #: Synthetic corpus size (paper: 890,855).
    corpus_size: int = 890_855
    #: Toast-attack observation length (ms) for continuity analysis.
    toast_observation_ms: float = 30_000.0
    #: Base seed; every trial derives its own stream from it.
    seed: int = 20220701
    #: Named fault profile applied ambiently to every stack the experiments
    #: build (``"none"``, ``"mild"``, ``"pixel-loaded"``, ``"adversarial"``).
    #: Part of the cache key but *not* of the seed derivation, so the same
    #: seed under different regimes draws the same base streams.
    faults: str = "none"

    def with_seed(self, seed: int) -> "ExperimentScale":
        return replace(self, seed=seed)

    def with_faults(self, faults: str) -> "ExperimentScale":
        return replace(self, faults=faults)

    def for_experiment(self, experiment_name: str) -> "ExperimentScale":
        """Derive the scale used to run one named experiment.

        The derived seed is a pure function of ``(name, seed,
        experiment_name)``, so every experiment owns an independent RNG
        universe: experiments can run in any order, on any worker process,
        and still draw exactly the same streams. The same derivation is the
        on-disk cache key, which is why the tuple must stay stable across
        releases.
        """
        digest = hashlib.sha256(
            f"{self.name}:{self.seed}:{experiment_name}".encode("utf-8")
        ).digest()
        return self.with_seed(int.from_bytes(digest[:8], "big"))


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalize a ``--jobs`` value: ``None``/``0`` mean "all cores"."""
    if jobs is None or jobs == 0:
        return os.cpu_count() or 1
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0, got {jobs}")
    return jobs


FULL = ExperimentScale(name="full")

QUICK = ExperimentScale(
    name="quick",
    participants=8,
    strings_per_d=2,
    chars_per_string=10,
    passwords_per_length=2,
    boundary_trials_per_d=2,
    boundary_trial_ms=2000.0,
    corpus_size=60_000,
    toast_observation_ms=12_000.0,
)

SMOKE = ExperimentScale(
    name="smoke",
    participants=3,
    strings_per_d=1,
    chars_per_string=8,
    passwords_per_length=1,
    boundary_trials_per_d=1,
    boundary_trial_ms=1500.0,
    corpus_size=8_000,
    toast_observation_ms=8_000.0,
)

#: Attacking windows evaluated in Fig. 7 / Fig. 8 (ms).
FIG7_DURATIONS = (50.0, 75.0, 100.0, 125.0, 150.0, 175.0, 200.0)

#: Paper Fig. 7 mean capture rates (%), same order as FIG7_DURATIONS.
FIG7_PAPER_MEANS = (61.0, 79.8, 86.7, 89.0, 91.0, 92.8, 92.8)

#: Paper Table III reference rows.
TABLE_III_PAPER = {
    4: {"length_errors": 10, "wrong_touched_keys": 7, "capitalization_errors": 6,
        "success_rate": 92.3},
    6: {"length_errors": 15, "wrong_touched_keys": 8, "capitalization_errors": 7,
        "success_rate": 90.0},
    8: {"length_errors": 19, "wrong_touched_keys": 8, "capitalization_errors": 9,
        "success_rate": 88.0},
    10: {"length_errors": 23, "wrong_touched_keys": 9, "capitalization_errors": 9,
         "success_rate": 86.3},
    12: {"length_errors": 26, "wrong_touched_keys": 9, "capitalization_errors": 12,
         "success_rate": 84.3},
}
