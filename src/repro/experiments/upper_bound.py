"""Table II: the upper boundary of D per device — plus the load study.

For every one of the 30 evaluation devices, the boundary finder runs the
simulated draw-and-destroy overlay attack across candidate attacking
windows and reports the largest D that still keeps every trial at Λ1,
reproducing the per-phone Table II measurement (and, as a sanity check,
its version-level structure: Android 10/11 bounds are larger thanks to the
ANA dispatch delay).

The load study (Section VI-B "Impact of the load") re-measures one
device's boundary with 0 / 3 / 5 background apps and confirms the shift is
negligible (well under one animation frame).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..serialization import SerializableMixin
from .._deprecation import deprecated_entry_point
from ..attacks.timing import BoundarySearchResult, UpperBoundFinder
from ..devices.profiles import DeviceProfile
from ..devices.registry import DEVICES, device
from ..systemui.outcomes import NotificationOutcome
from .config import ExperimentScale, QUICK
from .engine import scoped_executor
from .scenarios import run_notification_trial


@dataclass(frozen=True)
class Table2Result(SerializableMixin):
    """Measured vs published boundary per device."""

    rows: Tuple[BoundarySearchResult, ...]

    @property
    def max_abs_error_ms(self) -> float:
        return max(abs(r.error_ms) for r in self.rows)

    @property
    def mean_abs_error_ms(self) -> float:
        return sum(abs(r.error_ms) for r in self.rows) / len(self.rows)

    def version_means(self) -> Dict[str, float]:
        """Mean measured boundary per Android major version."""
        sums: Dict[str, List[float]] = {}
        for row, profile in zip(self.rows, DEVICES):
            sums.setdefault(str(profile.android_version.major), []).append(
                row.measured_upper_bound_d
            )
        return {k: sum(v) / len(v) for k, v in sums.items()}


def _make_finder(scale: ExperimentScale) -> UpperBoundFinder:
    def trial(profile: DeviceProfile, d: float, seed: int) -> NotificationOutcome:
        return run_notification_trial(
            profile, d, seed=seed, duration_ms=scale.boundary_trial_ms
        )

    return UpperBoundFinder(
        run_trial=trial,
        trials_per_d=scale.boundary_trials_per_d,
        step_ms=5.0,
        base_seed=scale.seed,
    )


def _run_table2(
    scale: ExperimentScale = QUICK,
    profiles: Optional[Sequence[DeviceProfile]] = None,
) -> Table2Result:
    """Recover the Table II boundary for every device (or a subset)."""
    finder = _make_finder(scale)
    with scoped_executor():
        rows = tuple(finder.find(profile) for profile in (profiles or DEVICES))
    return Table2Result(rows=rows)


# ---------------------------------------------------------------------------
# Load impact (Section VI-B)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class LoadImpactResult(SerializableMixin):
    """Boundary vs number of background apps on one device."""

    device_key: str
    bounds_by_load: Tuple[Tuple[int, float], ...]

    @property
    def max_shift_ms(self) -> float:
        bounds = [b for _, b in self.bounds_by_load]
        return max(bounds) - min(bounds)


def _run_load_impact(
    scale: ExperimentScale = QUICK,
    model: str = "mi8",
    version_label: str = "9",
    background_app_counts: Sequence[int] = (0, 3, 5),
) -> LoadImpactResult:
    """Measure the Λ1 boundary under background load (paper: no app /
    three popular apps / five popular apps — all nearly identical)."""
    base = device(model, version_label)
    finder = _make_finder(scale)
    bounds: List[Tuple[int, float]] = []
    with scoped_executor():
        for count in background_app_counts:
            loaded = base.with_load(count)
            result = finder.find(loaded)
            bounds.append((count, result.measured_upper_bound_d))
    return LoadImpactResult(device_key=base.key, bounds_by_load=tuple(bounds))


run_table2 = deprecated_entry_point(
    "run_table2", _run_table2, "repro.api.run_experiment('table2', ...)")

run_load_impact = deprecated_entry_point(
    "run_load_impact", _run_load_impact, "repro.api.run_experiment('load_impact', ...)")
