"""Fig. 2 and Fig. 4: animation completeness curves.

Fig. 2 plots the FastOutSlowIn notification slide-in (360 ms); Fig. 4
plots the toast fade-out (Accelerate) and fade-in (Decelerate) over 500 ms.
These are deterministic interpolator evaluations; the result object embeds
the paper's qualitative anchors so tests and benches can assert them:

* less than 50% of the view is shown within the first 100 ms of the
  slide-in;
* the first 10 ms frame renders ~0.17% (0 px of a 72 px view);
* fade-out starts slow (low completeness early), fade-in starts fast.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..serialization import SerializableMixin
from .._deprecation import deprecated_entry_point
from ..animation.animator import (
    ANIMATION_DURATION_STANDARD,
    DEFAULT_REFRESH_INTERVAL,
    TOAST_ANIMATION_DURATION,
    rendered_pixels,
)
from ..animation.interpolators import (
    AccelerateInterpolator,
    DecelerateInterpolator,
    FastOutSlowInInterpolator,
)
from ..obs.context import current_metrics


def _replay_on_animator(interpolator, duration_ms: float) -> None:
    """Drive the curve through a live frame-driven :class:`Animator`.

    Only runs under the metrics plane: it feeds the compositor frame
    counters with the real frame machinery the analytic curves abstract
    over (frame quantization at the 10 ms refresh interval), on a private
    simulation. The result objects never read anything from it, so the
    figures are byte-identical with metrics on or off.
    """
    from ..animation.animator import Animator
    from ..sim.simulation import Simulation

    simulation = Simulation(seed=0, trace_enabled=False)
    animator = Animator(simulation, interpolator, duration_ms,
                        name="fig2-replay")
    animator.start()
    simulation.run_for(duration_ms + DEFAULT_REFRESH_INTERVAL)


@dataclass(frozen=True)
class CurveSeries(SerializableMixin):
    """One sampled curve: (time ms, completeness %) pairs."""

    name: str
    duration_ms: float
    points: Tuple[Tuple[float, float], ...]

    def completeness_at(self, time_ms: float) -> float:
        """Linear lookup of the nearest sampled point (samples are dense)."""
        best = min(self.points, key=lambda p: abs(p[0] - time_ms))
        return best[1]


@dataclass(frozen=True)
class Fig2Result(SerializableMixin):
    """The notification slide-in curve plus its paper anchors."""

    curve: CurveSeries
    completeness_at_100ms: float
    completeness_at_10ms: float
    pixels_at_10ms_of_72px_view: int


@dataclass(frozen=True)
class Fig4Result(SerializableMixin):
    """The toast fade curves."""

    accelerate: CurveSeries
    decelerate: CurveSeries


def _sample(name: str, interpolator, duration_ms: float, step_ms: float) -> CurveSeries:
    points: List[Tuple[float, float]] = []
    t = 0.0
    while t <= duration_ms + 1e-9:
        points.append((t, interpolator.value(t / duration_ms) * 100.0))
        t += step_ms
    return CurveSeries(name=name, duration_ms=duration_ms, points=tuple(points))


def _run_fig2(step_ms: float = 2.0) -> Fig2Result:
    interpolator = FastOutSlowInInterpolator()
    if current_metrics() is not None:
        _replay_on_animator(interpolator, ANIMATION_DURATION_STANDARD)
    curve = _sample(
        "fast-out-slow-in", interpolator, ANIMATION_DURATION_STANDARD, step_ms
    )
    at_10 = interpolator.value(10.0 / ANIMATION_DURATION_STANDARD)
    return Fig2Result(
        curve=curve,
        completeness_at_100ms=interpolator.value(100.0 / ANIMATION_DURATION_STANDARD)
        * 100.0,
        completeness_at_10ms=at_10 * 100.0,
        pixels_at_10ms_of_72px_view=rendered_pixels(at_10, 72),
    )


def _run_fig4(step_ms: float = 2.0) -> Fig4Result:
    return Fig4Result(
        accelerate=_sample(
            "accelerate", AccelerateInterpolator(), TOAST_ANIMATION_DURATION, step_ms
        ),
        decelerate=_sample(
            "decelerate", DecelerateInterpolator(), TOAST_ANIMATION_DURATION, step_ms
        ),
    )


run_fig2 = deprecated_entry_point(
    "run_fig2", _run_fig2, "repro.api.run_experiment('fig2', ...)")

run_fig4 = deprecated_entry_point(
    "run_fig4", _run_fig4, "repro.api.run_experiment('fig4', ...)")
