"""Fig. 2 and Fig. 4: animation completeness curves.

Fig. 2 plots the FastOutSlowIn notification slide-in (360 ms); Fig. 4
plots the toast fade-out (Accelerate) and fade-in (Decelerate) over 500 ms.
These are deterministic interpolator evaluations; the result object embeds
the paper's qualitative anchors so tests and benches can assert them:

* less than 50% of the view is shown within the first 100 ms of the
  slide-in;
* the first 10 ms frame renders ~0.17% (0 px of a 72 px view);
* fade-out starts slow (low completeness early), fade-in starts fast.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..animation.animator import (
    ANIMATION_DURATION_STANDARD,
    TOAST_ANIMATION_DURATION,
    rendered_pixels,
)
from ..animation.interpolators import (
    AccelerateInterpolator,
    DecelerateInterpolator,
    FastOutSlowInInterpolator,
)


@dataclass(frozen=True)
class CurveSeries:
    """One sampled curve: (time ms, completeness %) pairs."""

    name: str
    duration_ms: float
    points: Tuple[Tuple[float, float], ...]

    def completeness_at(self, time_ms: float) -> float:
        """Linear lookup of the nearest sampled point (samples are dense)."""
        best = min(self.points, key=lambda p: abs(p[0] - time_ms))
        return best[1]


@dataclass(frozen=True)
class Fig2Result:
    """The notification slide-in curve plus its paper anchors."""

    curve: CurveSeries
    completeness_at_100ms: float
    completeness_at_10ms: float
    pixels_at_10ms_of_72px_view: int


@dataclass(frozen=True)
class Fig4Result:
    """The toast fade curves."""

    accelerate: CurveSeries
    decelerate: CurveSeries


def _sample(name: str, interpolator, duration_ms: float, step_ms: float) -> CurveSeries:
    points: List[Tuple[float, float]] = []
    t = 0.0
    while t <= duration_ms + 1e-9:
        points.append((t, interpolator.value(t / duration_ms) * 100.0))
        t += step_ms
    return CurveSeries(name=name, duration_ms=duration_ms, points=tuple(points))


def run_fig2(step_ms: float = 2.0) -> Fig2Result:
    interpolator = FastOutSlowInInterpolator()
    curve = _sample(
        "fast-out-slow-in", interpolator, ANIMATION_DURATION_STANDARD, step_ms
    )
    at_10 = interpolator.value(10.0 / ANIMATION_DURATION_STANDARD)
    return Fig2Result(
        curve=curve,
        completeness_at_100ms=interpolator.value(100.0 / ANIMATION_DURATION_STANDARD)
        * 100.0,
        completeness_at_10ms=at_10 * 100.0,
        pixels_at_10ms_of_72px_view=rendered_pixels(at_10, 72),
    )


def run_fig4(step_ms: float = 2.0) -> Fig4Result:
    return Fig4Result(
        accelerate=_sample(
            "accelerate", AccelerateInterpolator(), TOAST_ANIMATION_DURATION, step_ms
        ),
        decelerate=_sample(
            "decelerate", DecelerateInterpolator(), TOAST_ANIMATION_DURATION, step_ms
        ),
    )
