"""Validating the paper's Eq. (2) against the simulated attack.

Section III-D derives the expected total mistouch time

    E(Tm) = (ceil(T/D) - 1) E(Tmis) + E(Tam) + E(Tas).

The simulation measures the *actual* uncovered time directly from the
window add/remove trace. This study runs the attack across attacking
windows and compares prediction vs measurement — the in-silico analogue of
the paper's "the experiment results match our analysis".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..serialization import SerializableMixin
from .._deprecation import deprecated_entry_point
from ..analysis.uncovered_time import measure_overlay_coverage
from ..attacks.overlay_attack import DrawAndDestroyOverlayAttack, OverlayAttackConfig
from ..attacks.timing import expected_mistouch_for_profile
from ..devices.profiles import DeviceProfile
from ..devices.registry import device
from ..stack import AndroidStack
from ..windows.permissions import Permission
from .config import ExperimentScale, QUICK
from .engine import TrialSpec, scenario, scoped_executor


@dataclass(frozen=True)
class EquationValidationRow(SerializableMixin):
    """Predicted vs measured mistouch budget at one attacking window."""

    attacking_window_ms: float
    attack_duration_ms: float
    predicted_ms: float
    measured_ms: float
    gap_count: int

    @property
    def relative_error(self) -> float:
        if self.predicted_ms == 0:
            return 0.0 if self.measured_ms == 0 else float("inf")
        return abs(self.measured_ms - self.predicted_ms) / self.predicted_ms


@dataclass(frozen=True)
class EquationValidationResult(SerializableMixin):
    device_key: str
    rows: Tuple[EquationValidationRow, ...]

    @property
    def max_relative_error(self) -> float:
        return max(row.relative_error for row in self.rows)

    @property
    def measured_decreases_with_d(self) -> bool:
        measured = [row.measured_ms for row in self.rows]
        return all(a >= b - 2.0 for a, b in zip(measured, measured[1:]))


@scenario("equation-validation")
def equation_validation_scenario(
    stack: AndroidStack, attacking_window_ms: float, attack_ms: float
) -> EquationValidationRow:
    """Attack at one D; compare Eq. (2) with trace-measured exposure."""
    attack = DrawAndDestroyOverlayAttack(
        stack, OverlayAttackConfig(attacking_window_ms=attacking_window_ms)
    )
    stack.permissions.grant(attack.package, Permission.SYSTEM_ALERT_WINDOW)
    start = stack.now
    attack.start()
    stack.run_for(attack_ms)
    coverage = measure_overlay_coverage(
        stack.simulation.trace, attack.package, start, stack.now
    )
    attack.stop()
    stack.run_for(500.0)
    predicted = expected_mistouch_for_profile(
        stack.profile, attack_ms, attacking_window_ms
    ).expected_mistouch_ms
    return EquationValidationRow(
        attacking_window_ms=attacking_window_ms,
        attack_duration_ms=attack_ms,
        predicted_ms=predicted,
        measured_ms=coverage.uncovered_ms,
        gap_count=coverage.gap_count,
    )


def _run_equation_validation(
    scale: ExperimentScale = QUICK,
    profile: Optional[DeviceProfile] = None,
    durations: Sequence[float] = (50.0, 100.0, 150.0, 200.0),
    attack_ms: float = 10_000.0,
) -> EquationValidationResult:
    """Attack at each D; compare Eq. (2) with trace-measured exposure."""
    profile = profile or device("pixel 4")  # Android 10: visible Tmis
    specs = [
        TrialSpec(
            scenario="equation-validation",
            seed=scale.seed + index,
            profile=profile,
            trace_enabled=True,
            params={"attacking_window_ms": float(d), "attack_ms": attack_ms},
        )
        for index, d in enumerate(durations)
    ]
    with scoped_executor() as executor:
        rows: List[EquationValidationRow] = executor.map(specs)
    return EquationValidationResult(device_key=profile.key, rows=tuple(rows))


run_equation_validation = deprecated_entry_point(
    "run_equation_validation", _run_equation_validation, "repro.api.run_experiment('equation_validation', ...)")
