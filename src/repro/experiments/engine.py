"""Declarative scenario engine: TrialSpec / ScenarioMatrix / TrialExecutor.

Every experiment in the suite boils down to the same skeleton: build a
simulated Android stack, wire a scenario onto it (attack, defense, user),
drive the simulation, and extract one measurement. This module owns that
skeleton once:

* a **scenario registry** — named functions ``fn(stack, **params)`` that
  run one trial on an already-booted :class:`~repro.stack.AndroidStack`;
* :class:`TrialSpec` — the declarative description of one trial (which
  scenario, which seed, which device, which fault regime, which params);
* :class:`ScenarioMatrix` — a sweep expressed as ``devices × versions ×
  attack configs × fault profiles × trials``, with per-cell seeds derived
  through :meth:`ExperimentScale.for_experiment` so every cell owns an
  independent RNG universe;
* :class:`TrialExecutor` — runs specs with **stack reuse**: one booted
  stack is kept per (device, alert mode, tracing) and
  :meth:`~repro.stack.AndroidStack.reset` between trials instead of
  rebuilt. The reset contract (see ``tests/sim/test_stack_reuse.py``)
  guarantees a reused stack is bit-identical to a fresh one, so reuse is
  purely a throughput optimization — results cannot change.

Experiments install an executor ambiently (:func:`scoped_executor`), and
the trial wrappers in :mod:`repro.experiments.scenarios` route through
:func:`run_trial`, which picks the ambient executor up; standalone callers
(unit tests, the CLI) get the old build-per-trial behaviour unchanged.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from .._registry import unknown_label_error
from ..devices.profiles import DeviceProfile
from ..devices.registry import devices_by_version, reference_device
from ..obs.context import current_metrics
from ..stack import AndroidStack, build_stack
from ..systemui.system_ui import AlertMode
from .config import ExperimentScale

#: A scenario takes a booted stack plus keyword params, runs one trial and
#: returns its measurement. It must leave nothing behind that
#: ``AndroidStack.reset`` does not undo (i.e. mutate only the stack and
#: objects it created itself).
ScenarioFn = Callable[..., Any]

_SCENARIOS: Dict[str, ScenarioFn] = {}


def scenario(name: str) -> Callable[[ScenarioFn], ScenarioFn]:
    """Register ``fn`` as the scenario called ``name``."""

    def register(fn: ScenarioFn) -> ScenarioFn:
        if name in _SCENARIOS:
            raise ValueError(f"scenario {name!r} is already registered")
        _SCENARIOS[name] = fn
        return fn

    return register


def get_scenario(name: str) -> ScenarioFn:
    try:
        return _SCENARIOS[name]
    except KeyError:
        raise unknown_label_error("scenario", name, _SCENARIOS) from None


def scenario_names() -> List[str]:
    return sorted(_SCENARIOS)


def drive_until(
    stack: AndroidStack,
    predicate: Callable[[], bool],
    step_ms: float = 500.0,
    max_ms: float = 600_000.0,
) -> None:
    """Advance the simulation until ``predicate()`` or the horizon."""
    deadline = stack.now + max_ms
    while not predicate() and stack.now < deadline:
        stack.run_for(step_ms)
    if not predicate():
        raise RuntimeError("scenario did not converge before the horizon")


# ---------------------------------------------------------------------------
# Trial specification
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class TrialSpec:
    """One trial, fully described: the unit the executor runs.

    ``params`` are passed verbatim to the scenario function; they may hold
    arbitrary objects (a :class:`~repro.users.participant.Participant`, an
    attack config) — the spec is declarative, not serializable.
    """

    scenario: str
    seed: int
    profile: Optional[DeviceProfile] = None
    alert_mode: AlertMode = AlertMode.ANALYTIC
    trace_enabled: bool = False
    #: Fault regime for the stack (profile name, FaultProfile, or ``None``
    #: for the ambient default) — same semantics as ``build_stack``.
    faults: Any = None
    params: Mapping[str, Any] = field(default_factory=dict)
    #: Optional behavior-model axes. Labels are resolved through the
    #: actor registries (:mod:`repro.actors`) at execution time and the
    #: resolved model objects merged into the scenario's params as
    #: ``attacker`` / ``user``. ``None`` (the default) leaves the
    #: scenario's own behavior untouched — specs that never mention the
    #: axes run exactly as they always have.
    attacker: Optional[str] = None
    user: Optional[str] = None


@dataclass(frozen=True)
class TrialOutcome:
    """A spec paired with what its scenario returned.

    When the trial ran under an ambient metrics registry,
    ``metrics`` holds the per-trial sample delta (what *this* trial
    contributed to the experiment's registry). Excluded from equality so
    outcomes compare by measurement alone — wall-clock series differ run
    to run even when results are identical.
    """

    spec: TrialSpec
    value: Any
    metrics: Optional[Tuple[Any, ...]] = field(
        default=None, compare=False, repr=False)


# ---------------------------------------------------------------------------
# Declarative sweeps
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ScenarioMatrix:
    """A sweep: ``devices × versions × configs × fault profiles × trials``.

    ``devices`` lists explicit device profiles; ``versions`` expands to
    every evaluation device running those Android versions (Table II).
    When both are empty the matrix runs on the reference device. Each
    entry of ``configs`` is a parameter mapping merged over
    ``base_params`` — the "attack config" axis. ``attackers`` and
    ``users`` sweep registered behavior models the same way; when left
    empty the axis collapses to a single unlabeled cell and the matrix
    — including every per-cell seed — is identical to one that predates
    the actor layer.

    Every cell derives its own seed through
    :meth:`ExperimentScale.for_experiment` on a stable cell key, so cells
    are order-independent, collision-free and reproducible — the same
    partitioning discipline the experiment registry uses.
    """

    name: str
    scenario: str
    scale: ExperimentScale
    devices: Tuple[DeviceProfile, ...] = ()
    versions: Tuple[str, ...] = ()
    configs: Tuple[Mapping[str, Any], ...] = ({},)
    fault_profiles: Tuple[str, ...] = ()
    trials: int = 1
    alert_mode: AlertMode = AlertMode.ANALYTIC
    trace_enabled: bool = False
    base_params: Mapping[str, Any] = field(default_factory=dict)
    #: Behavior-model axes: registered attacker / user labels to sweep.
    attackers: Tuple[str, ...] = ()
    users: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.trials < 1:
            raise ValueError(f"trials must be >= 1, got {self.trials}")
        if not self.configs:
            raise ValueError("configs must not be empty (use ({},) for one)")

    # ------------------------------------------------------------------
    def resolved_devices(self) -> Tuple[DeviceProfile, ...]:
        devices = list(self.devices)
        groups = devices_by_version()
        for version in self.versions:
            try:
                devices.extend(groups[version])
            except KeyError:
                known = ", ".join(sorted(groups, key=float))
                raise KeyError(
                    f"matrix {self.name!r}: no devices run Android "
                    f"{version!r}; evaluated versions: {known}"
                ) from None
        if not devices:
            devices = [reference_device()]
        return tuple(devices)

    def resolved_faults(self) -> Tuple[str, ...]:
        return self.fault_profiles or (self.scale.faults,)

    @staticmethod
    def _config_key(config: Mapping[str, Any]) -> str:
        if not config:
            return "default"
        return ",".join(f"{k}={config[k]!r}" for k in sorted(config))

    def cell_seed(self, device: DeviceProfile, config: Mapping[str, Any],
                  faults: str, trial: int,
                  attacker: Optional[str] = None,
                  user: Optional[str] = None) -> int:
        cell = (f"{self.name}/{device.key}/{self._config_key(config)}"
                f"/{faults}/{trial}")
        if attacker is not None or user is not None:
            # Only labeled cells extend the key: a matrix without behavior
            # axes derives byte-identical seeds to the pre-actor engine.
            cell += f"/attacker={attacker}/user={user}"
        return self.scale.for_experiment(cell).seed

    def _attacker_axis(self) -> Tuple[Optional[str], ...]:
        return self.attackers or (None,)

    def _user_axis(self) -> Tuple[Optional[str], ...]:
        return self.users or (None,)

    def cells(self) -> Iterator[TrialSpec]:
        """Yield one :class:`TrialSpec` per cell, in deterministic order."""
        for device in self.resolved_devices():
            for config in self.configs:
                for faults in self.resolved_faults():
                    for attacker in self._attacker_axis():
                        for user_label in self._user_axis():
                            for trial in range(self.trials):
                                params = dict(self.base_params)
                                params.update(config)
                                yield TrialSpec(
                                    scenario=self.scenario,
                                    seed=self.cell_seed(
                                        device, config, faults, trial,
                                        attacker=attacker, user=user_label),
                                    profile=device,
                                    alert_mode=self.alert_mode,
                                    trace_enabled=self.trace_enabled,
                                    faults=faults,
                                    params=params,
                                    attacker=attacker,
                                    user=user_label,
                                )

    def __len__(self) -> int:
        return (len(self.resolved_devices()) * len(self.configs)
                * len(self.resolved_faults()) * len(self._attacker_axis())
                * len(self._user_axis()) * self.trials)


# ---------------------------------------------------------------------------
# Execution with stack reuse
# ---------------------------------------------------------------------------

@dataclass
class ExecutorStats:
    """Throughput accounting: how much rebuild work reuse saved."""

    trials_run: int = 0
    stacks_built: int = 0
    stacks_reused: int = 0

    @property
    def reuse_fraction(self) -> float:
        total = self.stacks_built + self.stacks_reused
        return self.stacks_reused / total if total else 0.0


class TrialExecutor:
    """Runs trial specs against a pool of reusable Android stacks.

    One stack is pooled per ``(device, alert mode, tracing)`` — the
    dimensions baked in at boot. Everything else (seed, fault regime,
    scenario wiring) is per-trial and handled by
    :meth:`AndroidStack.reset`, which is proven bit-identical to a fresh
    ``build_stack`` by the reuse property suite. ``reuse=False`` degrades
    to build-per-trial (the benchmark's comparison arm).

    The executor is deliberately single-threaded: parallelism in this
    suite lives at the experiment level (``run_experiments`` fans whole
    experiments out to worker processes), where it composes with reuse
    instead of fighting it for the pooled stacks.
    """

    def __init__(self, reuse: bool = True) -> None:
        self._reuse = reuse
        self._pool: Dict[Tuple[int, AlertMode, bool], AndroidStack] = {}
        self.stats = ExecutorStats()

    # ------------------------------------------------------------------
    def lease(
        self,
        seed: int,
        profile: Optional[DeviceProfile] = None,
        alert_mode: AlertMode = AlertMode.ANALYTIC,
        trace_enabled: bool = False,
        faults: Any = None,
    ) -> AndroidStack:
        """Hand out a stack booted (or reset) for exactly these settings.

        The returned stack is valid until the next ``lease`` with the same
        (device, mode, tracing) — callers must finish extracting results
        before leasing again.
        """
        if profile is None:
            profile = reference_device()
        key = (id(profile), alert_mode, trace_enabled)
        stack = self._pool.get(key) if self._reuse else None
        reused = stack is not None
        if stack is None:
            stack = build_stack(
                seed=seed,
                profile=profile,
                alert_mode=alert_mode,
                trace_enabled=trace_enabled,
                faults=faults,
            )
            self._pool[key] = stack
            self.stats.stacks_built += 1
        else:
            stack.reset(seed, trace_enabled=trace_enabled, faults=faults)
            self.stats.stacks_reused += 1
        registry = current_metrics()
        if registry is not None:
            registry.counter("engine_stacks_reused_total" if reused
                             else "engine_stacks_built_total").inc()
            registry.gauge("engine_stack_reuse_hit_rate").set(
                self.stats.reuse_fraction)
        return stack

    # ------------------------------------------------------------------
    def run(self, spec: TrialSpec) -> Any:
        """Run one spec and return the scenario's measurement."""
        fn = get_scenario(spec.scenario)
        params: Mapping[str, Any] = spec.params
        if spec.attacker is not None or spec.user is not None:
            # Resolve behavior labels before leasing a stack so a typo
            # fails with the registry's suggesting KeyError, not mid-trial.
            from ..actors import get_attacker, get_user

            params = dict(params)
            if spec.attacker is not None:
                params["attacker"] = get_attacker(spec.attacker)
            if spec.user is not None:
                params["user"] = get_user(spec.user)
        registry = current_metrics()
        start = time.perf_counter() if registry is not None else 0.0
        stack = self.lease(
            seed=spec.seed,
            profile=spec.profile,
            alert_mode=spec.alert_mode,
            trace_enabled=spec.trace_enabled,
            faults=spec.faults,
        )
        self.stats.trials_run += 1
        value = fn(stack, **params)
        if registry is not None:
            # Wall-clock time per trial (lease + scenario). Observation
            # only — the value never feeds back into the simulation, so
            # results stay deterministic even though this number is not.
            registry.counter("engine_trials_total").inc()
            registry.histogram("engine_trial_wall_ms").observe(
                (time.perf_counter() - start) * 1000.0)
        return value

    def map(self, specs: Sequence[TrialSpec]) -> List[Any]:
        """Run specs in order, returning their measurements."""
        return [self.run(spec) for spec in specs]

    def run_matrix(self, matrix: ScenarioMatrix) -> List[TrialOutcome]:
        """Run every cell of a matrix, pairing specs with results.

        Under an ambient metrics registry each outcome additionally
        carries its per-trial metric delta (see :class:`TrialOutcome`).
        """
        registry = current_metrics()
        if registry is None:
            return [TrialOutcome(spec=spec, value=self.run(spec))
                    for spec in matrix.cells()]
        from ..obs.metrics import diff_samples

        outcomes = []
        before = registry.samples()
        for spec in matrix.cells():
            value = self.run(spec)
            after = registry.samples()
            outcomes.append(TrialOutcome(
                spec=spec, value=value,
                metrics=diff_samples(before, after)))
            before = after
        return outcomes


# ---------------------------------------------------------------------------
# Ambient executor
# ---------------------------------------------------------------------------

_ambient_executor: Optional[TrialExecutor] = None


def current_executor() -> Optional[TrialExecutor]:
    """The ambient executor installed by the enclosing experiment, if any."""
    return _ambient_executor


@contextmanager
def use_executor(executor: TrialExecutor) -> Iterator[TrialExecutor]:
    """Install ``executor`` ambiently for the duration of the block."""
    global _ambient_executor
    previous = _ambient_executor
    _ambient_executor = executor
    try:
        yield executor
    finally:
        _ambient_executor = previous


@contextmanager
def scoped_executor() -> Iterator[TrialExecutor]:
    """The ambient executor, or a fresh one scoped to this block.

    Experiments wrap their bodies in this: when the parallel runner (or an
    outer experiment — ``whatif`` calls into ``defense_eval``) already
    installed an executor, its stack pool is shared; otherwise the
    experiment gets reuse on its own, and the pool is dropped on exit.
    """
    if _ambient_executor is not None:
        yield _ambient_executor
        return
    with use_executor(TrialExecutor()) as executor:
        yield executor


def run_trial(spec: TrialSpec) -> Any:
    """Run one spec through the ambient executor, or fresh-build without.

    This is the single entry point the scenario wrappers use: under an
    experiment it gets stack reuse for free; standalone (unit tests, CLI
    one-offs) it behaves exactly like the historical build-per-trial path.
    """
    executor = current_executor()
    if executor is None:
        executor = TrialExecutor(reuse=False)
    return executor.run(spec)
