"""Noise sensitivity: how timing-window attacks degrade under faults.

The paper measured its attacks on real devices whose timing noise is
implicit in the numbers. This experiment makes the noise an axis: one base
fault regime (the ``adversarial`` profile) is swept across scale factors,
and at each point we measure

* the committed touch-capture rate (Fig. 7's metric) for the plain and the
  *adaptive* attack — the adaptive variant re-measures ``Trm`` and widens
  ``D`` after suppression failures;
* the actual mistouch exposure ``Tmis`` between overlay switches, read off
  the trace the way Eq. (2) validation does;
* the IPC detector's precision/recall — dispatch jitter stretches the
  add/remove gaps the pairing rule keys on, and Binder drops can remove
  one side of a pair.

The factor-0 point is bit-identical to a run with no fault layer at all
(``FaultProfile.scaled(0)`` is a no-op profile, and no-op regimes install
nothing), which the ``baseline_capture_rate`` field pins.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..serialization import SerializableMixin
from .._deprecation import deprecated_entry_point
from ..analysis.uncovered_time import measure_overlay_coverage
from ..attacks.overlay_attack import DrawAndDestroyOverlayAttack, OverlayAttackConfig
from ..defenses.benign import BenignOverlayApp
from ..defenses.ipc_detector import IpcDetector
from ..sim.faults import ADVERSARIAL, NONE, FaultProfile
from ..sim.rng import SeededRng
from ..stack import AndroidStack
from ..users.participant import generate_participants
from ..windows.permissions import Permission
from .config import ExperimentScale, QUICK
from .engine import TrialSpec, run_trial, scenario, scoped_executor
from .scenarios import run_capture_trial

#: Scale factors applied to the base profile (0 = the fault-free anchor).
NOISE_FACTORS = (0.0, 0.25, 0.5, 1.0)

#: Attacking window used throughout the sweep (the paper's reference D).
ATTACKING_WINDOW_MS = 100.0

#: Simulated observation length of the benign control stack (ms).
_BENIGN_OBSERVATION_MS = 60_000.0

#: Attack trials per factor for the detector-recall measurement.
_DETECTOR_TRIALS = 3


@dataclass(frozen=True)
class NoisePoint(SerializableMixin):
    """Every measurement taken at one jitter factor."""

    factor: float
    profile_name: str
    #: Mean committed capture rate (%) of the plain attack.
    capture_rate: float
    #: Mean committed capture rate (%) with adaptive window widening.
    adaptive_capture_rate: float
    #: Window widenings performed across the adaptive trials.
    adaptations: int
    #: Mean mistouch gap between overlay switches (ms), from the trace.
    tmis_ms: float
    #: Total uncovered time over the traced attack run (ms).
    uncovered_ms: float
    #: Number of uncovered gaps in the traced run.
    gap_count: int
    #: IPC detector recall over the attack trials (flagged / run).
    detector_recall: float
    #: IPC detector precision (attack flags / all flags; 1.0 when silent).
    detector_precision: float


@dataclass(frozen=True)
class NoiseSensitivityResult(SerializableMixin):
    """Capture rate, ``Tmis`` and detector quality vs noise magnitude."""

    base_profile: str
    attacking_window_ms: float
    points: Tuple[NoisePoint, ...]
    #: Capture rate (%) measured with the fault layer absent entirely;
    #: must equal the factor-0 point exactly (same seeds, same streams).
    baseline_capture_rate: float

    @property
    def degradation_is_monotonic(self) -> bool:
        """Capture rate never *rises* with noise beyond CI slack.

        Small samples jitter, so each step tolerates a 10-percentage-point
        rise; the property guards the trend, not each pair.
        """
        rates = [p.capture_rate for p in self.points]
        return all(b <= a + 10.0 for a, b in zip(rates, rates[1:]))

    def point_at(self, factor: float) -> NoisePoint:
        for point in self.points:
            if point.factor == factor:
                return point
        raise KeyError(f"no noise point at factor {factor}")


def _mean_capture_rate(
    pool,
    scale: ExperimentScale,
    faults: FaultProfile,
    adaptive: bool,
    stream_tag: str,
) -> float:
    """Mean committed capture rate (%) across the participant pool.

    Seeds derive from ``(scale.seed, participant, string index)`` only —
    *not* from the fault profile — so every factor (and the no-fault
    baseline) replays the same typing against the same base streams and
    differs only by the injected faults.
    """
    rates: List[float] = []
    for participant in pool:
        stream = SeededRng(
            scale.seed, f"noise/{stream_tag}/{participant.participant_id}"
        )
        captured = 0
        total = 0
        for _ in range(scale.strings_per_d):
            seed = stream.randint(0, 2**31 - 1)
            trial = run_capture_trial(
                participant,
                ATTACKING_WINDOW_MS,
                seed=seed,
                n_chars=scale.chars_per_string,
                faults=faults,
                adaptive=adaptive,
            )
            captured += trial.committed_to_overlay
            total += trial.total_taps
        rates.append(100.0 * captured / total if total else 0.0)
    return sum(rates) / len(rates) if rates else 0.0


@scenario("noise-tmis")
def noise_tmis_scenario(
    stack: AndroidStack, horizon_ms: float
) -> Tuple[float, float, int, int]:
    """(mean gap ms, uncovered ms, gap count, adaptations) of one traced run."""
    attack = DrawAndDestroyOverlayAttack(
        stack,
        OverlayAttackConfig(
            attacking_window_ms=ATTACKING_WINDOW_MS, adaptive=True
        ),
    )
    stack.permissions.grant(attack.package, Permission.SYSTEM_ALERT_WINDOW)
    attack.start()
    stack.run_for(horizon_ms)
    end = stack.now
    attack.stop()
    stack.run_for(500.0)
    timeline = measure_overlay_coverage(
        stack.simulation.trace, attack.package, 0.0, end
    )
    intervals = timeline.covered_intervals
    # Internal gaps between consecutive covered intervals are the per-cycle
    # mistouch windows (paper Eq. (1): Tmis = Tam + Tas - Trm, widened here
    # by whatever the fault layer injected).
    gaps = [
        later_start - earlier_end
        for (_, earlier_end), (later_start, _) in zip(intervals, intervals[1:])
    ]
    mean_gap = sum(gaps) / len(gaps) if gaps else 0.0
    return (
        mean_gap,
        timeline.uncovered_ms,
        timeline.gap_count,
        attack.stats.adaptations,
    )


def _measure_tmis(
    scale: ExperimentScale, faults: FaultProfile, seed: int
) -> Tuple[float, float, int, int]:
    return run_trial(TrialSpec(
        scenario="noise-tmis",
        seed=seed,
        trace_enabled=True,
        faults=faults,
        params={"horizon_ms": max(3000.0, scale.boundary_trial_ms)},
    ))


@scenario("noise-detector-attack")
def noise_detector_attack_scenario(
    stack: AndroidStack, attack_ms: float
) -> bool:
    """One attack run with the detector; True when it was flagged."""
    detector = IpcDetector(stack.router, stack.system_server)
    attack = DrawAndDestroyOverlayAttack(
        stack, OverlayAttackConfig(attacking_window_ms=ATTACKING_WINDOW_MS)
    )
    stack.permissions.grant(attack.package, Permission.SYSTEM_ALERT_WINDOW)
    attack.start()
    stack.run_for(attack_ms)
    attack.stop()
    stack.run_for(500.0)
    return detector.is_flagged(attack.package)


@scenario("noise-detector-benign")
def noise_detector_benign_scenario(stack: AndroidStack) -> int:
    """Benign floating-widget control run; returns false positives."""
    detector = IpcDetector(stack.router, stack.system_server)
    benign = []
    for i in range(2):
        app = BenignOverlayApp(
            stack, package=f"com.benign.noise{i}", dwell_ms=15_000.0,
            pause_ms=5_000.0,
        )
        stack.permissions.grant(app.package, Permission.SYSTEM_ALERT_WINDOW)
        app.start()
        benign.append(app)
    stack.run_for(_BENIGN_OBSERVATION_MS)
    for app in benign:
        app.stop()
    stack.run_for(500.0)
    return sum(1 for app in benign if detector.is_flagged(app.package))


def _detector_quality(
    scale: ExperimentScale, faults: FaultProfile, seed_base: int
) -> Tuple[float, float]:
    """(recall, precision) of the IPC detector under one fault regime."""
    attack_ms = max(3000.0, scale.boundary_trial_ms)
    true_positives = sum(
        1 for index in range(_DETECTOR_TRIALS)
        if run_trial(TrialSpec(
            scenario="noise-detector-attack",
            seed=seed_base + index,
            faults=faults,
            params={"attack_ms": attack_ms},
        ))
    )
    # Benign control: floating-widget apps under the same noise.
    false_positives = run_trial(TrialSpec(
        scenario="noise-detector-benign",
        seed=seed_base + 977,
        faults=faults,
    ))
    recall = true_positives / _DETECTOR_TRIALS
    flagged_total = true_positives + false_positives
    precision = true_positives / flagged_total if flagged_total else 1.0
    return recall, precision


def _run_noise_sensitivity(
    scale: ExperimentScale = QUICK,
    factors: Sequence[float] = NOISE_FACTORS,
    base: Optional[FaultProfile] = None,
) -> NoiseSensitivityResult:
    """Sweep the base fault profile across ``factors`` and measure."""
    base = base or ADVERSARIAL
    pool = generate_participants(
        SeededRng(scale.seed, "noise-participants"),
        count=max(2, scale.participants // 4),
    )
    trm_stream = SeededRng(scale.seed, "noise-tmis")
    detector_stream = SeededRng(scale.seed, "noise-detector")
    # Per-factor seeds are drawn up front in factor order so the sweep's
    # point list (not the execution details) fixes every stream.
    tmis_seeds = [trm_stream.randint(0, 2**31 - 1) for _ in factors]
    detector_seeds = [detector_stream.randint(0, 2**31 - 1) for _ in factors]

    points: List[NoisePoint] = []
    with scoped_executor():
        baseline_rate = _mean_capture_rate(
            pool, scale, NONE, adaptive=False, stream_tag="capture"
        )
        for index, factor in enumerate(factors):
            fault_profile = base.scaled(factor)
            plain_rate = _mean_capture_rate(
                pool, scale, fault_profile, adaptive=False, stream_tag="capture"
            )
            adaptive_rate = _mean_capture_rate(
                pool, scale, fault_profile, adaptive=True, stream_tag="capture"
            )
            tmis, uncovered, gap_count, adaptations = _measure_tmis(
                scale, fault_profile, tmis_seeds[index]
            )
            recall, precision = _detector_quality(
                scale, fault_profile, detector_seeds[index]
            )
            points.append(
                NoisePoint(
                    factor=factor,
                    profile_name=fault_profile.name,
                    capture_rate=plain_rate,
                    adaptive_capture_rate=adaptive_rate,
                    adaptations=adaptations,
                    tmis_ms=tmis,
                    uncovered_ms=uncovered,
                    gap_count=gap_count,
                    detector_recall=recall,
                    detector_precision=precision,
                )
            )
    return NoiseSensitivityResult(
        base_profile=base.name,
        attacking_window_ms=ATTACKING_WINDOW_MS,
        points=tuple(points),
        baseline_capture_rate=baseline_rate,
    )


run_noise_sensitivity = deprecated_entry_point(
    "run_noise_sensitivity", _run_noise_sensitivity, "repro.api.run_experiment('noise_sensitivity', ...)")
