"""One-shot experiment runner producing a paper-vs-measured report.

``run_all`` executes every experiment at the requested scale and returns a
result bundle; ``format_report`` renders it as the markdown used to update
EXPERIMENTS.md. Examples and benches call the individual experiment
functions directly.

Execution is delegated to :mod:`repro.experiments.parallel`: ``jobs=1``
(the default) is the in-process serial reference path, ``jobs=N`` fans out
over worker processes, and both derive each experiment's seed from the
same stable ``(scale, experiment name)`` key — which is what makes the two
paths produce field-for-field equal :class:`AllResults` (asserted by
``tests/experiments/test_parallel_determinism.py``).

Runs are *supervised* (PR 5): an experiment that fails permanently is
recorded on :attr:`AllResults.failures` instead of aborting the suite, its
result field stays ``None``, and ``format_report`` renders that section as
explicitly FAILED — a 20/21 run still produces a usable report.
"""

from __future__ import annotations

import io
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Optional, Tuple

from ..devices.registry import DEVICES
from ..obs.metrics import ExperimentMetrics
from ..serialization import SerializableMixin
from .animation_curves import Fig2Result, Fig4Result
from .capture_rate import Fig7Result, Fig8Result
from .config import ExperimentScale, QUICK
from .corpus_study import CorpusStudyResult
from .defense_tuning import DefenseTuningResult
from .equation_validation import EquationValidationResult
from .defense_eval import (
    IpcDefenseResult,
    NotificationDefenseResult,
    ToastDefenseResult,
)
from .noise_sensitivity import NoiseSensitivityResult
from .outcomes_vs_d import Fig6Result
from .password_study import StealthinessResult, Table3Result
from .real_world_apps import Table4Result
from .resilience import ExperimentFailure, RunJournal, RunPolicy
from .toast_continuity import ToastContinuityResult
from .supplementary import Fig7WithCisResult, Table3ByVersionResult
from .trigger_comparison import TriggerComparisonResult
from .parallel import ExperimentTiming
from .upper_bound import LoadImpactResult, Table2Result


@dataclass(frozen=True)
class AllResults(SerializableMixin):
    """Every reproduced table and figure from one run.

    Result fields default to ``None`` so a supervised run whose
    experiment failed permanently can still assemble: the failure record
    lives on :attr:`failures` and the report renders the section as
    FAILED instead of crashing.
    """

    scale_name: str
    fig2: Optional[Fig2Result] = None
    fig4: Optional[Fig4Result] = None
    fig6: Optional[Fig6Result] = None
    table2: Optional[Table2Result] = None
    load_impact: Optional[LoadImpactResult] = None
    fig7: Optional[Fig7Result] = None
    fig8: Optional[Fig8Result] = None
    table3: Optional[Table3Result] = None
    table4: Optional[Table4Result] = None
    stealthiness: Optional[StealthinessResult] = None
    toast_continuity: Optional[ToastContinuityResult] = None
    corpus: Optional[CorpusStudyResult] = None
    defense_ipc: Optional[IpcDefenseResult] = None
    defense_notification: Optional[NotificationDefenseResult] = None
    defense_toast: Optional[ToastDefenseResult] = None
    equation_validation: Optional[EquationValidationResult] = None
    defense_tuning: Optional[DefenseTuningResult] = None
    trigger_comparison: Optional[TriggerComparisonResult] = None
    table3_by_version: Optional[Table3ByVersionResult] = None
    fig7_cis: Optional[Fig7WithCisResult] = None
    noise_sensitivity: Optional[NoiseSensitivityResult] = None
    #: Per-experiment wall-clock accounting (``ExperimentTiming`` tuples).
    #: Excluded from equality: a parallel run and a serial run of the same
    #: scale compare equal even though their wall times differ.
    timings: Optional[Tuple["ExperimentTiming", ...]] = field(
        default=None, compare=False, repr=False)
    #: Per-experiment metric snapshots (``ExperimentMetrics`` tuples) when
    #: the run collected metrics, else ``None``. Excluded from equality
    #: for the same reason as ``timings``: metrics observe wall clocks and
    #: worker placement, results do not.
    metrics: Optional[Tuple[ExperimentMetrics, ...]] = field(
        default=None, compare=False, repr=False)
    #: Permanent :class:`ExperimentFailure` records, registry order.
    #: Excluded from equality (tracebacks and elapsed times vary); the
    #: failed experiments' ``None`` result fields already make two runs
    #: with different failures compare unequal.
    failures: Tuple[ExperimentFailure, ...] = field(
        default=(), compare=False, repr=False)

    @property
    def ok(self) -> bool:
        """True when every experiment produced a result."""
        return not self.failures


def run_all(
    scale: ExperimentScale = QUICK,
    verbose: bool = False,
    *,
    jobs: int = 1,
    cache_dir: Optional[Path] = None,
    collect_metrics: bool = False,
    profile_dir: Optional[Path] = None,
    policy: Optional[RunPolicy] = None,
    run_dir: Optional[Path] = None,
    resume: bool = False,
) -> AllResults:
    """Run the complete reproduction suite at one scale.

    Args:
        scale: experiment sizing preset (SMOKE/QUICK/FULL or custom).
        verbose: print per-experiment progress and wall times.
        jobs: worker processes; ``1`` is the serial reference path,
            ``0`` means one per core. Any value yields identical results.
        cache_dir: enable the on-disk result cache rooted here; ``None``
            disables caching.
        collect_metrics: run every experiment under a metrics registry and
            attach the snapshots as ``AllResults.metrics``. Metrics only
            observe, so all result fields (and the formatted report) are
            byte-identical with or without this flag.
        profile_dir: dump a cProfile ``<experiment>.prof`` per experiment
            into this directory.
        policy: supervision knobs (retries, deadlines, fail-fast). The
            default records failures and keeps going; it changes nothing
            about a fault-free run.
        run_dir: journal every completion into this directory (``run.json``
            plus atomic per-experiment markers) so a crashed or killed run
            can be resumed.
        resume: reuse an existing ``run_dir`` journal, skipping the
            experiments it already holds; requires ``run_dir``.
    """
    from .parallel import CACHE_VERSION, run_experiments

    journal = None
    if resume and run_dir is None:
        raise ValueError("resume=True requires run_dir")
    if run_dir is not None:
        opener = RunJournal.resume if resume else RunJournal.create
        journal = opener(run_dir, scale, CACHE_VERSION)
    outcome = run_experiments(
        scale, jobs=jobs, cache_dir=cache_dir, verbose=verbose,
        collect_metrics=collect_metrics, profile_dir=profile_dir,
        policy=policy, journal=journal,
    )
    return AllResults(scale_name=scale.name, timings=outcome.timings,
                      metrics=outcome.metrics, failures=outcome.failures,
                      **outcome.results)


# ---------------------------------------------------------------------------
# Report rendering
# ---------------------------------------------------------------------------

def _section(
    w: Callable[[str], None],
    results: AllResults,
    name: str,
    failures: Dict[str, ExperimentFailure],
    header: str,
) -> bool:
    """Write ``header``; render a FAILED block when ``name`` has no result.

    Returns True when the caller should render the section body. Keeping
    the happy path a plain header write preserves the byte-identical
    golden rendering of a clean run.
    """
    w(header)
    if getattr(results, name) is not None:
        return True
    failure = failures.get(name)
    detail = (f" after {failure.attempts} attempt(s): {failure.error}"
              if failure is not None else "")
    w(f"**FAILED** — experiment `{name}` produced no result{detail}.\n\n")
    return False


def format_report(results: AllResults, include_timings: bool = False) -> str:
    """Render a markdown paper-vs-measured report.

    Failed experiments render as explicitly FAILED sections (graceful
    degradation); a clean run's rendering is byte-identical to the
    pre-supervision format, which is what the golden snapshot pins.
    """
    failures = {f.name: f for f in results.failures}
    out = io.StringIO()
    w = out.write
    w(f"# Reproduction report (scale: {results.scale_name})\n\n")

    if failures:
        names = ", ".join(f"`{name}`" for name in failures)
        w(f"> **Degraded run:** {len(failures)} of "
          f"{len(results.timings or ()) or 21} experiments FAILED "
          f"({names}); their sections below carry the failure detail.\n\n")

    if _section(w, results, "fig2", failures,
                "## Fig. 2 — notification slide-in curve\n\n"):
        w(f"- completeness at 100 ms: {results.fig2.completeness_at_100ms:.1f}% "
          "(paper: < 50%)\n")
        w(f"- completeness at 10 ms: {results.fig2.completeness_at_10ms:.2f}% "
          "(paper: ~0.17%)\n")
        w(f"- pixels of a 72 px view at 10 ms: "
          f"{results.fig2.pixels_at_10ms_of_72px_view} (paper: 0)\n\n")

    if _section(w, results, "fig4", failures,
                "## Fig. 4 — toast fade curves\n\n"):
        acc100 = results.fig4.accelerate.completeness_at(100.0)
        dec100 = results.fig4.decelerate.completeness_at(100.0)
        w(f"- fade-out (Accelerate) at 100 ms: {acc100:.1f}% gone (slow start)\n")
        w(f"- fade-in (Decelerate) at 100 ms: {dec100:.1f}% shown (fast start)\n\n")

    fig6_suffix = (f" ({results.fig6.device_key})"
                   if results.fig6 is not None else "")
    if _section(w, results, "fig6", failures,
                "## Fig. 6 — notification outcomes vs D"
                f"{fig6_suffix}\n\n"):
        w("| D (ms) | outcome |\n|---|---|\n")
        for d, outcome in results.fig6.outcomes:
            w(f"| {d:.0f} | {outcome.label} |\n")
        w("\n")

    if _section(w, results, "table2", failures,
                "## Table II — upper boundary of D\n\n"):
        w("| device | published (ms) | measured (ms) | error |\n|---|---|---|---|\n")
        for row, profile in zip(results.table2.rows, DEVICES):
            w(f"| {profile.key} | {row.published_upper_bound_d:.0f} | "
              f"{row.measured_upper_bound_d:.0f} | {row.error_ms:+.0f} |\n")
        w(f"\nmean abs error: {results.table2.mean_abs_error_ms:.1f} ms; "
          f"version means: {results.table2.version_means()}\n\n")

    if _section(w, results, "load_impact", failures,
                "## Load impact (Section VI-B)\n\n"):
        for count, bound in results.load_impact.bounds_by_load:
            w(f"- {count} background apps: boundary {bound:.0f} ms\n")
        w(f"- max shift: {results.load_impact.max_shift_ms:.1f} ms "
          "(paper: negligible)\n\n")

    if _section(w, results, "fig7", failures,
                "## Fig. 7 — capture rate vs D\n\n"):
        w("| D (ms) | measured mean % | paper mean % |\n|---|---|---|\n")
        for stats, paper in zip(results.fig7.stats, results.fig7.paper_means):
            w(f"| {stats.attacking_window_ms:.0f} | {stats.mean:.1f} | {paper:.1f} |\n")
        w("\n")

    if _section(w, results, "fig8", failures,
                "## Fig. 8 — capture rate by Android version\n\n"):
        w("| version | " + " | ".join(f"{d:.0f}" for d in results.fig8.durations) + " |\n")
        w("|---|" + "---|" * len(results.fig8.durations) + "\n")
        for version, series in sorted(results.fig8.by_version.items()):
            w(f"| Android {version}.x | "
              + " | ".join(f"{v:.1f}" for v in series) + " |\n")
        w("\n")

    if _section(w, results, "table3", failures,
                "## Table III — password stealing\n\n"):
        w("| length | success % (paper) | length err | capitalization err | "
          "wrong key err | attempts |\n|---|---|---|---|---|---|\n")
        for row in results.table3.rows:
            paper = results.table3.paper_reference.get(row.length, {})
            w(f"| {row.length} | {row.success_rate:.1f} "
              f"({paper.get('success_rate', '—')}) | {row.length_errors} | "
              f"{row.capitalization_errors} | {row.wrong_key_errors} | "
              f"{row.attempts} |\n")
        w("\n")

    if _section(w, results, "table4", failures,
                "## Table IV — real-world apps\n\n"):
        w("| app | version | result | trigger |\n|---|---|---|---|\n")
        for row in results.table4.rows:
            w(f"| {row.app_name} | {row.version} | {row.marker} | "
              f"{row.trigger_path} |\n")
        w("\n")

    if _section(w, results, "stealthiness", failures,
                "## Stealthiness (Section VI-C3)\n\n"):
        s = results.stealthiness
        w(f"- participants: {s.participants}\n")
        w(f"- noticed the alert: {s.noticed_alert} (paper: 0)\n")
        w(f"- noticed toast flicker: {s.noticed_flicker} (paper: 0)\n")
        w(f"- reported lag: {s.reported_lag} (paper: 1/30)\n\n")

    if _section(w, results, "toast_continuity", failures,
                "## Toast continuity (Section IV)\n\n"):
        t = results.toast_continuity
        w(f"- toasts shown: {t.toasts_shown}; max queue depth: "
          f"{t.max_queue_depth_observed} (cap 50)\n")
        w(f"- min switch coverage: {t.min_switch_coverage * 100:.1f}% "
          f"(imperceptible: {t.imperceptible})\n")
        w(f"- coverage >= 95% for {t.coverage_fraction_above_95 * 100:.1f}% "
          "of the observation window\n\n")

    if _section(w, results, "corpus", failures,
                "## Corpus prevalence (Section VI-C2, scaled to 890,855 "
                "apps)\n\n"):
        c = results.corpus
        w("| metric | measured (scaled) | paper |\n|---|---|---|\n")
        w(f"| SAW + accessibility | {c.scaled_to_paper.saw_and_accessibility} | "
          f"{c.paper.saw_and_accessibility} |\n")
        w(f"| addView+removeView+SAW | {c.scaled_to_paper.addremove_and_saw} | "
          f"{c.paper.addremove_and_saw} |\n")
        w(f"| customized toast | {c.scaled_to_paper.custom_toast} | "
          f"{c.paper.custom_toast} |\n\n")

    # The defenses section aggregates three experiments; each line
    # degrades independently so two surviving defenses still report.
    w("## Defenses (Section VII)\n\n")
    ipc = results.defense_ipc
    if ipc is not None:
        w(f"- IPC detector: detection rate {ipc.detection_rate * 100:.0f}%, "
          f"median latency {ipc.median_detection_latency_ms or float('nan'):.0f} ms, "
          f"false positives {ipc.false_positives}/{ipc.benign_apps_observed}, "
          f"overhead {ipc.monitor_overhead_ms_per_txn * 1000:.1f} µs/transaction\n")
    else:
        w(f"- IPC detector: **FAILED**{_failure_note(failures, 'defense_ipc')}\n")
    nd = results.defense_notification
    if nd is not None:
        w(f"- enhanced notification (t={nd.hide_delay_ms:.0f} ms): "
          f"effective on all trials: {nd.all_effective} "
          f"(hides suppressed: {nd.hides_suppressed})\n")
    else:
        w("- enhanced notification: **FAILED**"
          f"{_failure_note(failures, 'defense_notification')}\n")
    td = results.defense_toast
    if td is not None:
        w(f"- toast spacing: undefended min coverage "
          f"{td.without_defense.min_switch_coverage * 100:.1f}% vs defended "
          f"{td.with_defense.min_switch_coverage * 100:.1f}% "
          f"(effective: {td.defense_effective})\n\n")
    else:
        w("- toast spacing: **FAILED**"
          f"{_failure_note(failures, 'defense_toast')}\n\n")

    if _section(w, results, "equation_validation", failures,
                "## Eq. (2) validation (Section III-D)\n\n"):
        w("| D (ms) | predicted (ms) | measured (ms) | error |\n|---|---|---|---|\n")
        for row in results.equation_validation.rows:
            w(f"| {row.attacking_window_ms:.0f} | {row.predicted_ms:.1f} | "
              f"{row.measured_ms:.1f} | {row.relative_error * 100:.1f}% |\n")
        w("\n")

    if _section(w, results, "defense_tuning", failures,
                "## IPC decision-rule tuning (Section VII-A, technical "
                "report)\n\n"):
        w("| min pairs | max gap (ms) | detection | latency (ms) | benign FP |\n")
        w("|---|---|---|---|---|\n")
        for p in results.defense_tuning.points:
            latency = (f"{p.mean_detection_latency_ms:.0f}"
                       if p.mean_detection_latency_ms is not None else "--")
            w(f"| {p.min_pairs} | {p.max_pair_gap_ms:.0f} | "
              f"{p.detection_rate * 100:.0f}% | {latency} | "
              f"{p.false_positive_rate * 100:.0f}% |\n")
        best = results.defense_tuning.best_point()
        if best is not None:
            w(f"\nrecommended rule: min_pairs={best.min_pairs}, "
              f"max_gap={best.max_pair_gap_ms:.0f} ms\n")
        w("\n")

    if _section(w, results, "trigger_comparison", failures,
                "## Trigger channels (Section VI-C2 note)\n\n"):
        w("| channel | victim | launched | latency (ms) | stolen |\n")
        w("|---|---|---|---|---|\n")
        for t in results.trigger_comparison.trials:
            latency = (f"{t.trigger_latency_ms:.1f}"
                       if t.trigger_latency_ms is not None else "--")
            w(f"| {t.channel} | {t.victim} | {t.launched} | {latency} | "
              f"{t.derived_matches} |\n")
        w("\n")

    if _section(w, results, "table3_by_version", failures,
                "## Supplementary: password stealing by Android version\n\n"):
        w("| version | success | 95% CI | attempts |\n|---|---|---|---|\n")
        for row in results.table3_by_version.rows:
            w(f"| Android {row.version}.x | {row.success_rate:.1f}% | "
              f"[{row.ci.lower * 100:.1f}, {row.ci.upper * 100:.1f}]% | "
              f"{row.attempts} |\n")
        w("\n")

    if _section(w, results, "fig7_cis", failures,
                "## Supplementary: Fig. 7 with 95% bootstrap CIs\n\n"):
        w("| D (ms) | mean % | CI |\n|---|---|---|\n")
        for row in results.fig7_cis.rows:
            w(f"| {row.attacking_window_ms:.0f} | {row.mean:.1f} | "
              f"[{row.ci.lower:.1f}, {row.ci.upper:.1f}] |\n")
        w("\n")

    if _section(w, results, "noise_sensitivity", failures,
                "## Noise sensitivity (fault injection)\n\n"):
        ns = results.noise_sensitivity
        w(f"Base profile `{ns.base_profile}` swept at D = "
          f"{ns.attacking_window_ms:.0f} ms; no-fault baseline capture rate "
          f"{ns.baseline_capture_rate:.1f}%.\n\n")
        w("| factor | capture % | adaptive % | Tmis (ms) | gaps | "
          "recall | precision |\n|---|---|---|---|---|---|---|\n")
        for p in ns.points:
            w(f"| {p.factor:g} | {p.capture_rate:.1f} | "
              f"{p.adaptive_capture_rate:.1f} | {p.tmis_ms:.1f} | "
              f"{p.gap_count} | {p.detector_recall * 100:.0f}% | "
              f"{p.detector_precision * 100:.0f}% |\n")
        w(f"\ncapture-rate degradation monotonic: "
          f"{ns.degradation_is_monotonic}\n")

    # Wall times vary run to run, so the appendix is opt-in: the golden
    # report test needs the default rendering to be byte-stable.
    if include_timings and results.timings:
        w("\n## Runner timings\n\n")
        w("| experiment | wall (s) | source |\n|---|---|---|\n")
        for t in results.timings:
            if t.failed:
                source = "FAILED"
            elif t.cached:
                source = "cache"
            else:
                source = "run"
            if t.attempts > 1:
                source += f" ({t.attempts} attempts)"
            w(f"| {t.name} | {t.seconds:.2f} | {source} |\n")
        total = sum(t.seconds for t in results.timings)
        hits = sum(1 for t in results.timings if t.cached)
        w(f"\ntotal experiment wall time: {total:.2f} s "
          f"({hits}/{len(results.timings)} cache hits)\n")
    return out.getvalue()


def _failure_note(failures: Dict[str, ExperimentFailure], name: str) -> str:
    failure = failures.get(name)
    if failure is None:
        return ""
    return f" ({failure.error})"
