"""Fault-tolerant experiment supervision: policies, failures, journals.

The parallel runner (:mod:`repro.experiments.parallel`) fans ~21
experiments over a process pool. Before this module existed, one worker
exception — or a worker dying and breaking the whole pool — aborted
``run_all`` and discarded every completed result, and the on-disk result
cache trusted any bytes that happened to unpickle. This module supplies
the pieces that make the runner survive the same kinds of partial
failure the paper exploits inside Android's UI pipeline:

* :class:`RunPolicy` — per-experiment deadlines, bounded retries and a
  *deterministic* exponential backoff whose jitter derives from
  ``(seed, experiment, attempt)``, so a retry schedule is as
  reproducible as the experiments themselves;
* :class:`ExperimentFailure` — what the runner records instead of
  raising: exception repr, traceback text, attempts and elapsed time,
  so a 20/21 run still renders a usable (explicitly degraded) report;
* a **checksummed envelope** for every persisted result
  (:func:`encode_envelope` / :func:`decode_envelope`): magic + version +
  sha256 over the pickle payload, so a corrupt, truncated or stale cache
  entry degrades to a miss instead of feeding garbage into a report;
* :class:`RunJournal` — ``run.json`` plus one atomically-written
  completion marker per experiment under a run directory, enabling
  ``repro report --resume RUN_DIR`` to re-run only the experiments a
  crash or Ctrl-C left unfinished;
* a **chaos harness** (:func:`chaos_action`) — env-keyed fault points
  that crash, hang, kill or poison specific ``(experiment, attempt)``
  pairs, mirroring the deterministic style of :mod:`repro.sim.faults`
  one layer up: the fault *injection* is configuration, never chance.

Nothing here touches experiment code or random streams: supervision
observes and schedules, so a run with the default policy and no faults
is byte-identical to an unsupervised one.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pickle
import re
import tempfile
import traceback as traceback_module
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, Optional, Tuple

from ..serialization import SerializableMixin
from .config import ExperimentScale

# ---------------------------------------------------------------------------
# Metric names (registered on the runner's registry and, for the cache,
# on the ambient ``repro.obs`` registry when one is installed)
# ---------------------------------------------------------------------------

RETRIES_METRIC = "runner_retries_total"
FAILURES_METRIC = "runner_failures_total"
DEADLINE_METRIC = "runner_deadline_exceeded_total"
CACHE_REJECTS_METRIC = "cache_integrity_rejects_total"


class DeadlineExceeded(RuntimeError):
    """An experiment ran longer than its :class:`RunPolicy` deadline."""


class ResultIntegrityError(RuntimeError):
    """A worker returned a payload the supervisor refuses to accept."""


class CacheIntegrityError(RuntimeError):
    """A persisted result failed envelope validation (treated as a miss)."""


class JournalError(RuntimeError):
    """A run directory cannot be (re)used for the requested run."""


class ChaosError(ValueError):
    """``REPRO_CHAOS`` does not parse."""


class ChaosCrash(RuntimeError):
    """The deterministic crash injected by a ``crash`` fault point."""


# ---------------------------------------------------------------------------
# Run policy
# ---------------------------------------------------------------------------

@dataclass(frozen=True, kw_only=True)
class RunPolicy:
    """Supervision knobs for one ``run_all`` pass.

    The defaults are deliberately inert: one attempt, no deadline, no
    backoff — a defaulted policy changes *nothing* about a fault-free
    run (the QUICK golden report stays byte-identical), it only changes
    what happens when an experiment fails: the failure is recorded and
    the run continues instead of aborting.
    """

    #: Times one experiment may run before it is recorded as failed.
    max_attempts: int = 1
    #: Per-experiment wall-clock budget in seconds (``None`` = unlimited).
    #: On the pool path a deadline preempts: the future is abandoned and
    #: the slot reclaimed. On the serial path it is enforced post-hoc
    #: (a single-process supervisor cannot interrupt its own experiment).
    deadline_seconds: Optional[float] = None
    #: First retry delay; 0 disables backoff entirely (no sleeping).
    backoff_base_seconds: float = 0.0
    #: Multiplier applied per additional attempt.
    backoff_factor: float = 2.0
    #: Ceiling on any single backoff delay.
    backoff_max_seconds: float = 30.0
    #: Relative jitter amplitude in ``[0, 1]``; the draw is a pure
    #: function of ``(seed, experiment, attempt)``, never wall clock.
    backoff_jitter: float = 0.1
    #: Restore the historical abort-on-first-error behaviour: the first
    #: *permanent* failure (attempts exhausted) re-raises instead of
    #: being recorded.
    fail_fast: bool = False

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.deadline_seconds is not None and self.deadline_seconds <= 0:
            raise ValueError(
                f"deadline_seconds must be > 0, got {self.deadline_seconds}")
        if self.backoff_base_seconds < 0:
            raise ValueError("backoff_base_seconds must be >= 0, got "
                             f"{self.backoff_base_seconds}")
        if self.backoff_factor < 1.0:
            raise ValueError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}")
        if self.backoff_max_seconds < 0:
            raise ValueError("backoff_max_seconds must be >= 0, got "
                             f"{self.backoff_max_seconds}")
        if not 0.0 <= self.backoff_jitter <= 1.0:
            raise ValueError(
                f"backoff_jitter must be in [0, 1], got {self.backoff_jitter}")

    def backoff_seconds(self, seed: int, name: str, attempt: int) -> float:
        """Delay before re-submitting ``name`` after failed ``attempt``.

        Exponential in the attempt number with seeded jitter: the jitter
        factor is derived from ``sha256(seed:name:attempt)``, so two runs
        of the same scale replay the exact same retry schedule — retry
        timing can never become a hidden source of nondeterminism.
        """
        if self.backoff_base_seconds <= 0:
            return 0.0
        delay = min(
            self.backoff_base_seconds * self.backoff_factor ** (attempt - 1),
            self.backoff_max_seconds,
        )
        if self.backoff_jitter == 0.0:
            return delay
        digest = hashlib.sha256(
            f"{seed}:{name}:{attempt}".encode("utf-8")).digest()
        unit = int.from_bytes(digest[:8], "big") / 2 ** 64  # [0, 1)
        return delay * (1.0 + self.backoff_jitter * (2.0 * unit - 1.0))


#: The inert policy ``run_all`` uses when none is given.
DEFAULT_POLICY = RunPolicy()


# ---------------------------------------------------------------------------
# Failure records
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ExperimentFailure(SerializableMixin):
    """One experiment's permanent failure, recorded instead of raised."""

    #: Experiment (``AllResults`` field) name.
    name: str
    #: ``"exception"``, ``"deadline"``, ``"pool"`` (worker died and broke
    #: the process pool) or ``"poisoned"`` (worker returned a payload the
    #: supervisor rejected).
    kind: str
    #: ``repr()`` of the terminal exception.
    error: str
    #: Formatted traceback text (empty when none crossed the boundary).
    traceback: str
    #: Attempts consumed, including the failing one.
    attempts: int
    #: Wall-clock seconds spent on the final attempt.
    elapsed_seconds: float


def classify_failure(exc: BaseException) -> str:
    """Map an exception to an :class:`ExperimentFailure` ``kind``."""
    from concurrent.futures.process import BrokenProcessPool

    if isinstance(exc, DeadlineExceeded):
        return "deadline"
    if isinstance(exc, ResultIntegrityError):
        return "poisoned"
    if isinstance(exc, BrokenProcessPool):
        return "pool"
    return "exception"


def make_failure(name: str, exc: BaseException, attempts: int,
                 elapsed_seconds: float) -> ExperimentFailure:
    """Build the failure record for ``name``'s terminal exception."""
    tb = "".join(traceback_module.format_exception(
        type(exc), exc, exc.__traceback__))
    return ExperimentFailure(
        name=name,
        kind=classify_failure(exc),
        error=repr(exc),
        traceback=tb,
        attempts=attempts,
        elapsed_seconds=elapsed_seconds,
    )


# ---------------------------------------------------------------------------
# Checksummed result envelope + atomic writes
# ---------------------------------------------------------------------------

#: First bytes of every persisted result (cache entry or journal marker).
ENVELOPE_MAGIC = b"repro-envelope\n"

_HEADER_RE = re.compile(r"v(\d+) sha256:([0-9a-f]{64})")


def encode_envelope(version: int, obj: object) -> bytes:
    """Wrap ``obj`` in the integrity envelope: magic, version, checksum.

    The sha256 covers the pickle payload, the version header covers the
    writer's ``CACHE_VERSION`` — so both bit rot and stale formats are
    detected *before* ``pickle.loads`` ever sees the bytes.
    """
    payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    digest = hashlib.sha256(payload).hexdigest()
    header = f"v{int(version)} sha256:{digest}\n".encode("ascii")
    return ENVELOPE_MAGIC + header + payload


def decode_envelope(version: int, data: bytes) -> object:
    """Validate and unwrap an envelope; raise :class:`CacheIntegrityError`.

    Every reject names its reason — bad magic (foreign or pre-envelope
    file), truncated or malformed header, stale version, checksum
    mismatch, or a payload that no longer unpickles.
    """
    if not data.startswith(ENVELOPE_MAGIC):
        raise CacheIntegrityError("missing envelope magic")
    try:
        header_end = data.index(b"\n", len(ENVELOPE_MAGIC))
    except ValueError:
        raise CacheIntegrityError("truncated envelope header") from None
    header = data[len(ENVELOPE_MAGIC):header_end].decode("ascii", "replace")
    match = _HEADER_RE.fullmatch(header)
    if match is None:
        raise CacheIntegrityError(f"malformed envelope header {header!r}")
    if int(match.group(1)) != int(version):
        raise CacheIntegrityError(
            f"stale envelope version v{match.group(1)} (expected "
            f"v{int(version)})")
    payload = data[header_end + 1:]
    if hashlib.sha256(payload).hexdigest() != match.group(2):
        raise CacheIntegrityError("payload checksum mismatch")
    try:
        return pickle.loads(payload)
    except Exception as exc:
        raise CacheIntegrityError(
            f"checksummed payload failed to unpickle: {exc!r}") from exc


def atomic_write_bytes(path: Path, data: bytes) -> None:
    """Write ``data`` to ``path`` via a collision-free temp file.

    ``tempfile.mkstemp`` in the destination directory gives every writer
    its own temp name (a shared ``<path>.tmp`` lets two concurrent
    ``run_all`` invocations clobber each other mid-write), and
    ``os.replace`` publishes atomically.
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=path.name + ".", suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(data)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


# ---------------------------------------------------------------------------
# Run journal (checkpoint / resume)
# ---------------------------------------------------------------------------

class RunJournal:
    """Crash-safe record of one ``run_all`` pass under a run directory.

    Layout::

        RUN_DIR/
          run.json            # scale + cache version manifest (atomic)
          results/<name>.pkl  # one envelope per completed experiment
          failures/<name>.json  # forensic record of permanent failures

    ``run.json`` pins exactly which run the directory belongs to; markers
    are written atomically as each experiment completes, so after a crash
    or SIGKILL the directory holds precisely the finished prefix of the
    run. :meth:`resume` refuses a directory journaling a *different*
    run — silently mixing scales would corrupt an ``AllResults``.
    """

    MANIFEST = "run.json"

    def __init__(self, root: Path, scale: ExperimentScale,
                 version: int) -> None:
        self.root = Path(root)
        self.scale = scale
        self.version = int(version)
        self.results_dir = self.root / "results"
        self.failures_dir = self.root / "failures"

    # -- construction ---------------------------------------------------
    @classmethod
    def create(cls, root: Path, scale: ExperimentScale,
               version: int) -> "RunJournal":
        """Start journaling a fresh run into ``root``.

        Refuses a directory that already holds completed results — that
        is either a finished run (nothing to do) or an interrupted one
        the caller probably meant to ``--resume``.
        """
        journal = cls(root, scale, version)
        if journal.manifest_path.exists() and journal.completed_names():
            raise JournalError(
                f"{journal.root} already contains completed results; "
                "resume it (--resume) or choose a fresh --run-dir")
        journal._write_manifest()
        return journal

    @classmethod
    def resume(cls, root: Path, scale: ExperimentScale,
               version: int) -> "RunJournal":
        """Open ``root`` for (re-)running ``scale``.

        A missing manifest starts a fresh journal (``--resume`` is safe
        on the very first run); an existing one must match the requested
        scale and cache version exactly.
        """
        journal = cls(root, scale, version)
        if not journal.manifest_path.exists():
            journal._write_manifest()
            return journal
        try:
            existing = json.loads(journal.manifest_path.read_text())
        except (OSError, ValueError) as exc:
            raise JournalError(
                f"unreadable journal manifest {journal.manifest_path}: "
                f"{exc}") from exc
        if existing != journal._manifest():
            raise JournalError(
                f"{journal.root} journals a different run (scale or cache "
                "version mismatch); choose a fresh --run-dir")
        return journal

    # -- manifest -------------------------------------------------------
    @property
    def manifest_path(self) -> Path:
        return self.root / self.MANIFEST

    def _manifest(self) -> dict:
        # Round-trip through JSON so the equality check against a parsed
        # manifest compares like with like (tuples become lists, etc.).
        return json.loads(json.dumps({
            "journal_format": 1,
            "cache_version": self.version,
            "scale": dataclasses.asdict(self.scale),
        }))

    def _write_manifest(self) -> None:
        atomic_write_bytes(
            self.manifest_path,
            json.dumps(self._manifest(), indent=2,
                       sort_keys=True).encode("utf-8") + b"\n")

    # -- completion markers --------------------------------------------
    def result_path(self, name: str) -> Path:
        return self.results_dir / f"{name}.pkl"

    def load(self, name: str):
        """The journaled result for ``name``, or ``None`` to re-run it."""
        try:
            data = self.result_path(name).read_bytes()
        except OSError:
            return None
        try:
            return decode_envelope(self.version, data)
        except CacheIntegrityError:
            return None

    def store(self, name: str, result: object) -> None:
        atomic_write_bytes(self.result_path(name),
                           encode_envelope(self.version, result))
        try:
            (self.failures_dir / f"{name}.json").unlink()
        except OSError:
            pass

    def store_failure(self, failure: ExperimentFailure) -> None:
        atomic_write_bytes(
            self.failures_dir / f"{failure.name}.json",
            json.dumps(failure.to_dict(), indent=2,
                       sort_keys=True).encode("utf-8") + b"\n")

    def completed_names(self) -> Tuple[str, ...]:
        if not self.results_dir.is_dir():
            return ()
        return tuple(sorted(p.stem for p in self.results_dir.glob("*.pkl")))


# ---------------------------------------------------------------------------
# Chaos harness (deterministic, env-keyed fault points)
# ---------------------------------------------------------------------------

#: Spec: comma-separated ``experiment:attempt:mode`` entries, where
#: ``experiment`` may be ``*`` (any), ``attempt`` an integer or ``*``,
#: and ``mode`` one of :data:`CHAOS_MODES`. The env channel is what lets
#: the injection reach pool worker processes untouched.
CHAOS_ENV = "REPRO_CHAOS"

#: Seconds a ``hang`` fault point sleeps (finite so abandoned workers
#: eventually exit; a deadline converts the hang into a failure long
#: before the sleep ends).
CHAOS_HANG_ENV = "REPRO_CHAOS_HANG_SECONDS"

CHAOS_MODES = ("crash", "hang", "kill", "poison")

_DEFAULT_HANG_SECONDS = 5.0


@dataclass(frozen=True)
class PoisonedResult:
    """Sentinel a ``poison`` fault point returns in place of a result.

    Pickles fine — the *supervisor* must be the layer that rejects it,
    which is exactly what the chaos tests assert.
    """

    name: str
    attempt: int


def chaos_hang_seconds() -> float:
    env = os.environ.get(CHAOS_HANG_ENV)
    if not env:
        return _DEFAULT_HANG_SECONDS
    return float(env)


def chaos_action(name: str, attempt: int) -> Optional[str]:
    """The fault mode injected for ``(name, attempt)``, if any.

    Parses :data:`CHAOS_ENV` on every call (it is consulted once per
    experiment attempt, never on a hot path) so tests can flip the spec
    between runs without process churn.
    """
    spec = os.environ.get(CHAOS_ENV, "")
    if not spec:
        return None
    for entry in spec.split(","):
        entry = entry.strip()
        if not entry:
            continue
        parts = entry.split(":")
        if len(parts) != 3:
            raise ChaosError(
                f"bad {CHAOS_ENV} entry {entry!r}; expected "
                "experiment:attempt:mode")
        target, raw_attempt, mode = parts
        if mode not in CHAOS_MODES:
            raise ChaosError(
                f"unknown chaos mode {mode!r}; valid: "
                f"{', '.join(CHAOS_MODES)}")
        if target not in ("*", name):
            continue
        if raw_attempt != "*" and int(raw_attempt) != attempt:
            continue
        return mode
    return None


@contextmanager
def chaos(spec: str, hang_seconds: Optional[float] = None) -> Iterator[None]:
    """Scoped chaos injection: install ``spec`` in the environment.

    Environment variables propagate to pool workers spawned inside the
    block, so this one context manager drives both the serial and the
    fanned-out paths.
    """
    saved = {key: os.environ.get(key) for key in (CHAOS_ENV, CHAOS_HANG_ENV)}
    os.environ[CHAOS_ENV] = spec
    if hang_seconds is not None:
        os.environ[CHAOS_HANG_ENV] = repr(float(hang_seconds))
    try:
        yield
    finally:
        for key, value in saved.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value
