"""Fault-tolerant experiment supervision: policies, failures, journals.

The parallel runner (:mod:`repro.experiments.parallel`) fans ~21
experiments over a process pool. Before this module existed, one worker
exception — or a worker dying and breaking the whole pool — aborted
``run_all`` and discarded every completed result, and the on-disk result
cache trusted any bytes that happened to unpickle. This module supplies
the pieces that make the runner survive the same kinds of partial
failure the paper exploits inside Android's UI pipeline:

* :class:`RunPolicy` — per-experiment deadlines, bounded retries and a
  *deterministic* exponential backoff whose jitter derives from
  ``(seed, experiment, attempt)``, so a retry schedule is as
  reproducible as the experiments themselves;
* :class:`ExperimentFailure` — what the runner records instead of
  raising: exception repr, traceback text, attempts and elapsed time,
  so a 20/21 run still renders a usable (explicitly degraded) report;
* a **checksummed envelope** for every persisted result
  (:func:`encode_envelope` / :func:`decode_envelope`): magic + version +
  sha256 over the pickle payload, so a corrupt, truncated or stale cache
  entry degrades to a miss instead of feeding garbage into a report;
* :class:`RunJournal` — ``run.json`` plus one atomically-written
  completion marker per experiment under a run directory, enabling
  ``repro report --resume RUN_DIR`` to re-run only the experiments a
  crash or Ctrl-C left unfinished;
* a **chaos harness** (:func:`chaos_action`) — env-keyed fault points
  that crash, hang, kill or poison specific ``(experiment, attempt)``
  pairs, mirroring the deterministic style of :mod:`repro.sim.faults`
  one layer up: the fault *injection* is configuration, never chance;
* the **generic supervised runner** (:func:`run_supervised`) — the
  retry/deadline/broken-pool state machine itself, factored out of the
  experiment runner so any unit of work (an experiment, a campaign
  shard) can be fanned out under the same policy semantics. The
  experiment suite (:mod:`repro.experiments.parallel`) and the campaign
  layer (:mod:`repro.experiments.campaign`) are both thin clients.

Nothing here touches experiment code or random streams: supervision
observes and schedules, so a run with the default policy and no faults
is byte-identical to an unsupervised one.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pickle
import re
import time
import traceback as traceback_module
from concurrent.futures import (
    FIRST_COMPLETED,
    Future,
    ProcessPoolExecutor,
    wait,
)
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Set,
    Tuple,
)

from ..serialization import SerializableMixin
from ..storage.faults import chaos_spec_text
from ..storage.store import DurableStore, atomic_write_bytes
from .config import ExperimentScale

# ---------------------------------------------------------------------------
# Metric names (registered on the runner's registry and, for the cache,
# on the ambient ``repro.obs`` registry when one is installed)
# ---------------------------------------------------------------------------

RETRIES_METRIC = "runner_retries_total"
FAILURES_METRIC = "runner_failures_total"
DEADLINE_METRIC = "runner_deadline_exceeded_total"
CACHE_REJECTS_METRIC = "cache_integrity_rejects_total"


class DeadlineExceeded(RuntimeError):
    """An experiment ran longer than its :class:`RunPolicy` deadline."""


class ResultIntegrityError(RuntimeError):
    """A worker returned a payload the supervisor refuses to accept."""


class CacheIntegrityError(RuntimeError):
    """A persisted result failed envelope validation (treated as a miss)."""


class JournalError(RuntimeError):
    """A run directory cannot be (re)used for the requested run."""


class ChaosError(ValueError):
    """``REPRO_CHAOS`` does not parse."""


class ChaosCrash(RuntimeError):
    """The deterministic crash injected by a ``crash`` fault point."""


# ---------------------------------------------------------------------------
# Run policy
# ---------------------------------------------------------------------------

@dataclass(frozen=True, kw_only=True)
class RunPolicy:
    """Supervision knobs for one ``run_all`` pass.

    The defaults are deliberately inert: one attempt, no deadline, no
    backoff — a defaulted policy changes *nothing* about a fault-free
    run (the QUICK golden report stays byte-identical), it only changes
    what happens when an experiment fails: the failure is recorded and
    the run continues instead of aborting.
    """

    #: Times one experiment may run before it is recorded as failed.
    max_attempts: int = 1
    #: Per-experiment wall-clock budget in seconds (``None`` = unlimited).
    #: On the pool path a deadline preempts: the future is abandoned and
    #: the slot reclaimed. On the serial path it is enforced post-hoc
    #: (a single-process supervisor cannot interrupt its own experiment).
    deadline_seconds: Optional[float] = None
    #: First retry delay; 0 disables backoff entirely (no sleeping).
    backoff_base_seconds: float = 0.0
    #: Multiplier applied per additional attempt.
    backoff_factor: float = 2.0
    #: Ceiling on any single backoff delay.
    backoff_max_seconds: float = 30.0
    #: Relative jitter amplitude in ``[0, 1]``; the draw is a pure
    #: function of ``(seed, experiment, attempt)``, never wall clock.
    backoff_jitter: float = 0.1
    #: Restore the historical abort-on-first-error behaviour: the first
    #: *permanent* failure (attempts exhausted) re-raises instead of
    #: being recorded.
    fail_fast: bool = False

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.deadline_seconds is not None and self.deadline_seconds <= 0:
            raise ValueError(
                f"deadline_seconds must be > 0, got {self.deadline_seconds}")
        if self.backoff_base_seconds < 0:
            raise ValueError("backoff_base_seconds must be >= 0, got "
                             f"{self.backoff_base_seconds}")
        if self.backoff_factor < 1.0:
            raise ValueError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}")
        if self.backoff_max_seconds < 0:
            raise ValueError("backoff_max_seconds must be >= 0, got "
                             f"{self.backoff_max_seconds}")
        if not 0.0 <= self.backoff_jitter <= 1.0:
            raise ValueError(
                f"backoff_jitter must be in [0, 1], got {self.backoff_jitter}")

    def backoff_seconds(self, seed: int, name: str, attempt: int) -> float:
        """Delay before re-submitting ``name`` after failed ``attempt``.

        Exponential in the attempt number with seeded jitter: the jitter
        factor is derived from ``sha256(seed:name:attempt)``, so two runs
        of the same scale replay the exact same retry schedule — retry
        timing can never become a hidden source of nondeterminism.
        """
        if self.backoff_base_seconds <= 0:
            return 0.0
        delay = min(
            self.backoff_base_seconds * self.backoff_factor ** (attempt - 1),
            self.backoff_max_seconds,
        )
        if self.backoff_jitter == 0.0:
            return delay
        digest = hashlib.sha256(
            f"{seed}:{name}:{attempt}".encode("utf-8")).digest()
        unit = int.from_bytes(digest[:8], "big") / 2 ** 64  # [0, 1)
        return delay * (1.0 + self.backoff_jitter * (2.0 * unit - 1.0))


#: The inert policy ``run_all`` uses when none is given.
DEFAULT_POLICY = RunPolicy()


# ---------------------------------------------------------------------------
# Failure records
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ExperimentFailure(SerializableMixin):
    """One experiment's permanent failure, recorded instead of raised."""

    #: Experiment (``AllResults`` field) name.
    name: str
    #: ``"exception"``, ``"deadline"``, ``"pool"`` (worker died and broke
    #: the process pool) or ``"poisoned"`` (worker returned a payload the
    #: supervisor rejected).
    kind: str
    #: ``repr()`` of the terminal exception.
    error: str
    #: Formatted traceback text (empty when none crossed the boundary).
    traceback: str
    #: Attempts consumed, including the failing one.
    attempts: int
    #: Wall-clock seconds spent on the final attempt.
    elapsed_seconds: float


def classify_failure(exc: BaseException) -> str:
    """Map an exception to an :class:`ExperimentFailure` ``kind``."""
    from concurrent.futures.process import BrokenProcessPool

    if isinstance(exc, DeadlineExceeded):
        return "deadline"
    if isinstance(exc, ResultIntegrityError):
        return "poisoned"
    if isinstance(exc, BrokenProcessPool):
        return "pool"
    return "exception"


def make_failure(name: str, exc: BaseException, attempts: int,
                 elapsed_seconds: float) -> ExperimentFailure:
    """Build the failure record for ``name``'s terminal exception."""
    tb = "".join(traceback_module.format_exception(
        type(exc), exc, exc.__traceback__))
    return ExperimentFailure(
        name=name,
        kind=classify_failure(exc),
        error=repr(exc),
        traceback=tb,
        attempts=attempts,
        elapsed_seconds=elapsed_seconds,
    )


# ---------------------------------------------------------------------------
# Checksummed result envelope + atomic writes
# ---------------------------------------------------------------------------

#: First bytes of every persisted result (cache entry or journal marker).
ENVELOPE_MAGIC = b"repro-envelope\n"

_HEADER_RE = re.compile(r"v(\d+) sha256:([0-9a-f]{64})")


def encode_envelope(version: int, obj: object) -> bytes:
    """Wrap ``obj`` in the integrity envelope: magic, version, checksum.

    The sha256 covers the pickle payload, the version header covers the
    writer's ``CACHE_VERSION`` — so both bit rot and stale formats are
    detected *before* ``pickle.loads`` ever sees the bytes.
    """
    payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    digest = hashlib.sha256(payload).hexdigest()
    header = f"v{int(version)} sha256:{digest}\n".encode("ascii")
    return ENVELOPE_MAGIC + header + payload


def decode_envelope(version: int, data: bytes) -> object:
    """Validate and unwrap an envelope; raise :class:`CacheIntegrityError`.

    Every reject names its reason — bad magic (foreign or pre-envelope
    file), truncated or malformed header, stale version, checksum
    mismatch, or a payload that no longer unpickles.
    """
    if not data.startswith(ENVELOPE_MAGIC):
        raise CacheIntegrityError("missing envelope magic")
    try:
        header_end = data.index(b"\n", len(ENVELOPE_MAGIC))
    except ValueError:
        raise CacheIntegrityError("truncated envelope header") from None
    header = data[len(ENVELOPE_MAGIC):header_end].decode("ascii", "replace")
    match = _HEADER_RE.fullmatch(header)
    if match is None:
        raise CacheIntegrityError(f"malformed envelope header {header!r}")
    if int(match.group(1)) != int(version):
        raise CacheIntegrityError(
            f"stale envelope version v{match.group(1)} (expected "
            f"v{int(version)})")
    payload = data[header_end + 1:]
    if hashlib.sha256(payload).hexdigest() != match.group(2):
        raise CacheIntegrityError("payload checksum mismatch")
    try:
        return pickle.loads(payload)
    except Exception as exc:
        raise CacheIntegrityError(
            f"checksummed payload failed to unpickle: {exc!r}") from exc


# ``atomic_write_bytes`` lived here through PR 9; it is now the raw
# primitive of :mod:`repro.storage.store` (imported above and still
# re-exported from this module), where the :class:`DurableStore`
# surfaces wrap it with fault injection and degradation policy.


# ---------------------------------------------------------------------------
# Run journal (checkpoint / resume)
# ---------------------------------------------------------------------------

class RunJournal:
    """Crash-safe record of one ``run_all`` pass under a run directory.

    Layout::

        RUN_DIR/
          run.json            # scale + cache version manifest (atomic)
          results/<name>.pkl  # one envelope per completed experiment
          failures/<name>.json  # forensic record of permanent failures

    ``run.json`` pins exactly which run the directory belongs to; markers
    are written atomically as each experiment completes, so after a crash
    or SIGKILL the directory holds precisely the finished prefix of the
    run. :meth:`resume` refuses a directory journaling a *different*
    run — silently mixing scales would corrupt an ``AllResults``.
    """

    MANIFEST = "run.json"

    #: :class:`DurableStore` funnel name — the fault-injection target
    #: key (``fs:journal:...``); :class:`CampaignManifest` overrides it.
    SURFACE = "journal"

    def __init__(self, root: Path, scale: ExperimentScale,
                 version: int) -> None:
        self.root = Path(root)
        self.scale = scale
        self.version = int(version)
        self.results_dir = self.root / "results"
        self.failures_dir = self.root / "failures"
        # Journals are a required-durability surface: a write that does
        # not land must surface as a typed error, never a silent gap.
        self._store = DurableStore(self.SURFACE, required=True)

    # -- construction ---------------------------------------------------
    @classmethod
    def create(cls, root: Path, scale: ExperimentScale,
               version: int) -> "RunJournal":
        """Start journaling a fresh run into ``root``.

        Refuses a directory that already holds completed results — that
        is either a finished run (nothing to do) or an interrupted one
        the caller probably meant to ``--resume``.
        """
        journal = cls(root, scale, version)
        if journal.manifest_path.exists() and journal.completed_names():
            raise JournalError(
                f"{journal.root} already contains completed results; "
                "resume it (--resume) or choose a fresh --run-dir")
        journal._write_manifest()
        return journal

    @classmethod
    def resume(cls, root: Path, scale: ExperimentScale,
               version: int) -> "RunJournal":
        """Open ``root`` for (re-)running ``scale``.

        A missing manifest starts a fresh journal (``--resume`` is safe
        on the very first run); an existing one must match the requested
        scale and cache version exactly.
        """
        journal = cls(root, scale, version)
        if not journal.manifest_path.exists():
            journal._write_manifest()
            return journal
        try:
            existing = json.loads(journal.manifest_path.read_text())
        except (OSError, ValueError) as exc:
            raise JournalError(
                f"unreadable journal manifest {journal.manifest_path}: "
                f"{exc}") from exc
        if existing != journal._manifest():
            raise JournalError(
                f"{journal.root} journals a different run (scale or cache "
                "version mismatch); choose a fresh --run-dir")
        journal.sweep_orphans()
        return journal

    # -- manifest -------------------------------------------------------
    @property
    def manifest_path(self) -> Path:
        return self.root / self.MANIFEST

    def _manifest(self) -> dict:
        # Round-trip through JSON so the equality check against a parsed
        # manifest compares like with like (tuples become lists, etc.).
        return json.loads(json.dumps({
            "journal_format": 1,
            "cache_version": self.version,
            "scale": dataclasses.asdict(self.scale),
        }))

    def _write_manifest(self) -> None:
        self._persist(
            self.manifest_path,
            json.dumps(self._manifest(), indent=2,
                       sort_keys=True).encode("utf-8") + b"\n")

    def _persist(self, path: Path, data: bytes) -> None:
        """Required-durability write: an ``OSError`` (real or injected)
        becomes a :class:`JournalError` refusal the caller can act on —
        the CLI exits 2 outside supervision; inside ``run_supervised``
        the ``on_success`` hook converts it into a recorded
        :class:`ExperimentFailure` for that unit of work."""
        try:
            self._store.write_bytes(path, data)
        except OSError as exc:
            raise JournalError(f"cannot persist {path}: {exc}") from exc

    # -- completion markers --------------------------------------------
    def result_path(self, name: str) -> Path:
        return self.results_dir / f"{name}.pkl"

    def load(self, name: str):
        """The journaled result for ``name``, or ``None`` to re-run it."""
        data = self._store.read_bytes(self.result_path(name))
        if data is None:
            return None
        try:
            return decode_envelope(self.version, data)
        except CacheIntegrityError:
            return None

    def store(self, name: str, result: object) -> None:
        self._persist(self.result_path(name),
                      encode_envelope(self.version, result))
        try:
            (self.failures_dir / f"{name}.json").unlink()
        except OSError:
            pass

    def store_failure(self, failure: ExperimentFailure) -> None:
        self._persist(
            self.failures_dir / f"{failure.name}.json",
            json.dumps(failure.to_dict(), indent=2,
                       sort_keys=True).encode("utf-8") + b"\n")

    def sweep_orphans(self) -> int:
        """Unlink ``*.tmp`` wreckage a crash-between-write-and-replace
        left behind; called on every resume before markers are trusted."""
        return self._store.sweep_orphans(
            self.root, self.results_dir, self.failures_dir)

    def completed_names(self) -> Tuple[str, ...]:
        if not self.results_dir.is_dir():
            return ()
        return tuple(sorted(p.stem for p in self.results_dir.glob("*.pkl")))


# ---------------------------------------------------------------------------
# Chaos harness (deterministic, env-keyed fault points)
# ---------------------------------------------------------------------------

#: Spec: comma-separated ``experiment:attempt:mode`` entries, where
#: ``experiment`` may be ``*`` (any), ``attempt`` an integer or ``*``,
#: and ``mode`` one of :data:`CHAOS_MODES`. The env channel is what lets
#: the injection reach pool worker processes untouched.
CHAOS_ENV = "REPRO_CHAOS"

#: Seconds a ``hang`` fault point sleeps (finite so abandoned workers
#: eventually exit; a deadline converts the hang into a failure long
#: before the sleep ends).
CHAOS_HANG_ENV = "REPRO_CHAOS_HANG_SECONDS"

CHAOS_MODES = ("crash", "hang", "kill", "poison")

_DEFAULT_HANG_SECONDS = 5.0


@dataclass(frozen=True)
class PoisonedResult:
    """Sentinel a ``poison`` fault point returns in place of a result.

    Pickles fine — the *supervisor* must be the layer that rejects it,
    which is exactly what the chaos tests assert.
    """

    name: str
    attempt: int


def chaos_hang_seconds() -> float:
    env = os.environ.get(CHAOS_HANG_ENV)
    if not env:
        return _DEFAULT_HANG_SECONDS
    return float(env)


def chaos_action(name: str, attempt: int) -> Optional[str]:
    """The fault mode injected for ``(name, attempt)``, if any.

    Parses :data:`CHAOS_ENV` on every call (it is consulted once per
    experiment attempt, never on a hot path) so tests can flip the spec
    between runs without process churn. ``fs:`` entries belong to the
    storage-fault parser (:mod:`repro.storage.faults`) and are skipped
    here; a ``@/path`` spec is read from that file on every consult.
    """
    spec = chaos_spec_text()
    if not spec:
        return None
    for entry in spec.split(","):
        entry = entry.strip()
        if not entry or entry.startswith("fs:"):
            continue
        parts = entry.split(":")
        if len(parts) != 3:
            raise ChaosError(
                f"bad {CHAOS_ENV} entry {entry!r}; expected "
                "experiment:attempt:mode")
        target, raw_attempt, mode = parts
        if mode not in CHAOS_MODES:
            raise ChaosError(
                f"unknown chaos mode {mode!r}; valid: "
                f"{', '.join(CHAOS_MODES)}")
        if target not in ("*", name):
            continue
        if raw_attempt != "*" and int(raw_attempt) != attempt:
            continue
        return mode
    return None


def chaos_fire(name: str, attempt: int) -> Optional[str]:
    """Act on the fault point armed for ``(name, attempt)``, if any.

    The shared worker-entry gate: ``crash`` raises :class:`ChaosCrash`,
    ``kill`` hard-exits the process with status 86 (simulating OOM-kill /
    segfault — in a pool this breaks the executor, serially it kills the
    whole run, which is exactly what the journal/resume tests need),
    ``hang`` sleeps :func:`chaos_hang_seconds` then falls through. The
    caller only has to handle the returned ``"poison"`` (return a
    :class:`PoisonedResult` in place of its payload) since what a
    plausible-but-wrong result looks like is payload-specific.
    """
    action = chaos_action(name, attempt)
    if action == "crash":
        raise ChaosCrash(
            f"chaos: injected crash for {name!r} attempt {attempt}")
    if action == "kill":
        os._exit(86)
    if action == "hang":
        time.sleep(chaos_hang_seconds())
    return action


@contextmanager
def chaos(spec: str, hang_seconds: Optional[float] = None) -> Iterator[None]:
    """Scoped chaos injection: install ``spec`` in the environment.

    Environment variables propagate to pool workers spawned inside the
    block, so this one context manager drives both the serial and the
    fanned-out paths.
    """
    saved = {key: os.environ.get(key) for key in (CHAOS_ENV, CHAOS_HANG_ENV)}
    os.environ[CHAOS_ENV] = spec
    if hang_seconds is not None:
        os.environ[CHAOS_HANG_ENV] = repr(float(hang_seconds))
    try:
        yield
    finally:
        for key, value in saved.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value


# ---------------------------------------------------------------------------
# Generic supervised execution (shared by the experiment and campaign runners)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class SupervisedTask:
    """One unit of supervised work: a picklable function plus arguments.

    ``fn`` must be module-level (it crosses the process boundary on the
    pool path) and is called as ``fn(*args, attempt)`` — the 1-based
    retry number is appended positionally so chaos fault points can key
    on it while the work's own seed derivation never sees it.
    """

    #: Stable identity: retry scheduling, chaos targeting, failure records.
    name: str
    fn: Callable
    args: Tuple[Any, ...] = ()

    def run(self, attempt: int) -> Any:
        return self.fn(*self.args, attempt)


class Supervisor:
    """Retry/failure bookkeeping shared by the serial and pool paths.

    ``seed`` anchors the deterministic backoff jitter — callers pass
    their scale's base seed so two runs of the same configuration replay
    the exact same retry schedule.
    """

    def __init__(self, policy: RunPolicy, seed: int) -> None:
        self.policy = policy
        self.seed = int(seed)
        self.failures: Dict[str, ExperimentFailure] = {}
        self.retries = 0
        self.deadline_exceeded = 0

    def handle(self, name: str, attempt: int, exc: Exception,
               elapsed: float) -> bool:
        """Process one failed attempt; return True to retry.

        A permanent failure is recorded on :attr:`failures` — unless the
        policy is ``fail_fast``, in which case the original exception
        propagates (the historical abort-on-first-error behaviour).
        """
        if isinstance(exc, DeadlineExceeded):
            self.deadline_exceeded += 1
        if attempt < self.policy.max_attempts:
            self.retries += 1
            return True
        if self.policy.fail_fast:
            raise exc
        self.failures[name] = make_failure(name, exc, attempt, elapsed)
        return False

    def backoff(self, name: str, attempt: int) -> float:
        return self.policy.backoff_seconds(self.seed, name, attempt)


#: ``on_success(task, value, attempt, seconds)`` for one completed task.
SuccessCallback = Callable[[SupervisedTask, Any, int, float], None]
#: ``on_failure(failure)`` for one permanently failed task.
FailureCallback = Callable[[ExperimentFailure], None]
#: ``check(value)`` raises to reject a payload before it counts as done.
CheckCallback = Callable[[Any], None]


def run_supervised(
    tasks: List[SupervisedTask],
    supervisor: Supervisor,
    *,
    jobs: int = 1,
    on_success: SuccessCallback,
    on_failure: FailureCallback,
    check: Optional[CheckCallback] = None,
) -> None:
    """Run every task under ``supervisor``'s policy; report via callbacks.

    ``jobs=1`` (or a single task) runs in-process — the reference path;
    ``jobs=N`` fans out over N worker processes. Worker exceptions,
    deadline overruns and even the whole process pool breaking cost only
    the affected attempts: each terminal error is converted into an
    :class:`ExperimentFailure` handed to ``on_failure`` and the
    remaining tasks keep running. Completion *order* is
    scheduling-dependent; callers needing determinism must key their
    bookkeeping on ``task.name``, never on callback order.
    """
    if jobs == 1 or len(tasks) <= 1:
        _run_serial_tasks(tasks, supervisor, on_success, on_failure, check)
    else:
        _run_pool_tasks(tasks, supervisor, jobs, on_success, on_failure,
                        check)


def _run_serial_tasks(
    tasks: List[SupervisedTask],
    supervisor: Supervisor,
    on_success: SuccessCallback,
    on_failure: FailureCallback,
    check: Optional[CheckCallback],
) -> None:
    """In-process reference path, one supervised task at a time.

    Deadlines are enforced post-hoc here: a single process cannot
    preempt its own work, so an overrun is detected when the attempt
    returns and converted into a :class:`DeadlineExceeded` failure (the
    computed result is discarded — accepting it would make the result
    set depend on wall-clock luck).
    """
    deadline = supervisor.policy.deadline_seconds
    for task in tasks:
        attempt = 1
        while True:
            start = time.perf_counter()
            try:
                value = task.run(attempt)
                if check is not None:
                    check(value)
                elapsed = time.perf_counter() - start
                if deadline is not None and elapsed > deadline:
                    raise DeadlineExceeded(
                        f"task {task.name!r} took {elapsed:.2f}s "
                        f"(deadline {deadline:.2f}s)")
                on_success(task, value, attempt, elapsed)
                break
            except Exception as exc:
                elapsed = time.perf_counter() - start
                if supervisor.handle(task.name, attempt, exc, elapsed):
                    _sleep(supervisor.backoff(task.name, attempt))
                    attempt += 1
                    continue
                on_failure(supervisor.failures[task.name])
                break


@dataclass
class _Flight:
    """One in-flight pool submission."""

    name: str
    attempt: int
    started: float


def _sleep(seconds: float) -> None:
    if seconds > 0:
        time.sleep(seconds)


def _terminate_pool(pool: ProcessPoolExecutor) -> None:
    """Shut a pool down without waiting; best-effort kill its workers.

    Used when workers are known-hung (deadline overruns) or the pool is
    already broken — waiting would block on exactly the processes we are
    trying to get rid of. Touching ``_processes`` is unsupported API, so
    every step is defensive.
    """
    pool.shutdown(wait=False, cancel_futures=True)
    try:
        processes = list((pool._processes or {}).values())
    except Exception:
        processes = []
    for process in processes:
        try:
            process.terminate()
        except Exception:
            pass


def _run_pool_tasks(
    tasks: List[SupervisedTask],
    supervisor: Supervisor,
    jobs: int,
    on_success: SuccessCallback,
    on_failure: FailureCallback,
    check: Optional[CheckCallback],
) -> None:
    """Fan out over a process pool, surviving crashes and hangs.

    The loop keeps three populations: ``ready`` (queued (name, attempt)
    pairs, possibly delayed by backoff), ``inflight`` (submitted
    futures) and ``abandoned`` (futures whose deadline expired — their
    results are discarded whenever they do surface). A
    :class:`BrokenProcessPool` costs the in-flight attempts, not the
    run: the pool is rebuilt and surviving work re-submitted.
    """
    policy = supervisor.policy
    by_name = {task.name: task for task in tasks}
    max_workers = min(jobs, len(tasks))
    pool = ProcessPoolExecutor(max_workers=max_workers)
    inflight: Dict[Future, _Flight] = {}
    abandoned: Set[Future] = set()
    #: ``(not_before_monotonic, name, attempt)`` work queue.
    ready: List[Tuple[float, str, int]] = [
        (0.0, task.name, 1) for task in tasks
    ]

    def queue_retry(name: str, attempt: int) -> None:
        ready.append((time.monotonic() + supervisor.backoff(name, attempt),
                      name, attempt + 1))

    def settle_attempt(name: str, attempt: int, exc: Exception,
                       elapsed: float) -> None:
        if supervisor.handle(name, attempt, exc, elapsed):
            queue_retry(name, attempt)
        else:
            on_failure(supervisor.failures[name])

    def rebuild_pool() -> None:
        nonlocal pool
        _terminate_pool(pool)
        abandoned.clear()
        pool = ProcessPoolExecutor(max_workers=max_workers)

    def on_broken_pool(extra: Optional[_Flight], exc: Exception) -> None:
        """Every in-flight attempt died with the pool; retry or fail each."""
        casualties = ([extra] if extra is not None else [])
        casualties += list(inflight.values())
        inflight.clear()
        rebuild_pool()
        now = time.monotonic()
        for flight in casualties:
            settle_attempt(flight.name, flight.attempt, exc,
                           now - flight.started)

    try:
        while inflight or ready:
            now = time.monotonic()
            if not inflight and ready and len(abandoned) >= max_workers:
                # Every slot is hung on an abandoned attempt; nothing
                # will drain without fresh capacity.
                rebuild_pool()
            # Submit due work, never oversubscribing the workers: a
            # queued future's deadline clock would start ticking before
            # any worker picked it up, charging queue time as run time.
            delayed: List[Tuple[float, str, int]] = []
            for index, (not_before, name, attempt) in enumerate(ready):
                if len(inflight) + len(abandoned) >= max_workers:
                    delayed.extend(ready[index:])
                    break
                if not_before > now:
                    delayed.append((not_before, name, attempt))
                    continue
                task = by_name[name]
                try:
                    future = pool.submit(task.fn, *task.args, attempt)
                except BrokenProcessPool as exc:
                    on_broken_pool(None, exc)
                    delayed.append((now, name, attempt))
                    continue
                inflight[future] = _Flight(name, attempt, time.monotonic())
            ready = delayed

            if not inflight:
                if ready:
                    _sleep(min(0.05, max(0.0, min(t for t, _, _ in ready)
                                         - time.monotonic())))
                    continue
                break

            completed, _ = wait(set(inflight) | abandoned,
                                timeout=_next_wake(policy, inflight, ready),
                                return_when=FIRST_COMPLETED)
            pool_broke = False
            for future in completed:
                if future in abandoned:
                    # A deadline-expired worker finally surfaced; its
                    # task was already settled. Consume and drop.
                    abandoned.discard(future)
                    future.exception()
                    continue
                flight = inflight.pop(future, None)
                if flight is None:
                    continue
                try:
                    value = future.result()
                    if check is not None:
                        check(value)
                    on_success(by_name[flight.name], value, flight.attempt,
                               time.monotonic() - flight.started)
                except BrokenProcessPool as exc:
                    on_broken_pool(flight, exc)
                    pool_broke = True
                    break
                except Exception as exc:
                    settle_attempt(flight.name, flight.attempt, exc,
                                   time.monotonic() - flight.started)
            if pool_broke:
                continue

            # Preemptive deadline enforcement: abandon overrunning futures
            # so their slots come back when the worker finishes (or, if
            # every worker is stuck, rebuild the pool outright).
            if policy.deadline_seconds is not None:
                now = time.monotonic()
                for future, flight in list(inflight.items()):
                    elapsed = now - flight.started
                    if elapsed <= policy.deadline_seconds:
                        continue
                    del inflight[future]
                    if not future.cancel():
                        abandoned.add(future)
                    settle_attempt(
                        flight.name, flight.attempt,
                        DeadlineExceeded(
                            f"task {flight.name!r} exceeded its "
                            f"{policy.deadline_seconds:.2f}s deadline"),
                        elapsed)
    finally:
        _terminate_pool(pool)


def _next_wake(
    policy: RunPolicy,
    inflight: Dict[Future, _Flight],
    ready: List[Tuple[float, str, int]],
) -> Optional[float]:
    """Seconds until the supervisor must act (deadline or retry due)."""
    now = time.monotonic()
    wakes: List[float] = []
    if policy.deadline_seconds is not None:
        wakes += [flight.started + policy.deadline_seconds - now
                  for flight in inflight.values()]
    wakes += [not_before - now for not_before, _, _ in ready]
    if not wakes:
        return None
    return max(0.01, min(wakes))
