"""What-if study: forecasting the impact of candidate platform patches.

The calibrated model supports counterfactuals the paper's discussion
invites but cannot run on real phones:

* **Remove the ANA dispatch delay** — Android 10/11's intentional 100/200
  ms notification delay directly funds the attacker's window; without it
  their Table II advantage collapses to Android 8/9 levels.
* **Shrink the hide debounce to the enhanced-notification defense** — the
  t = 690 ms delay is the full fix; this study quantifies the *minimum*
  delay that still defeats the attack on a device (it must cover the
  remaining slide-in time after the attacker's best D).

Each what-if re-runs the empirical boundary search on patched profiles, so
the numbers come from the same machinery as Table II.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Sequence, Tuple

from ..serialization import SerializableMixin
from ..binder.latency import LatencySpec
from ..devices.profiles import DeviceProfile
from ..devices.registry import DEVICES, device
from ..systemui.outcomes import NotificationOutcome
from .config import ExperimentScale, QUICK
from .defense_eval import _attack_outcome
from .engine import scoped_executor
from .upper_bound import _make_finder


def _without_ana(profile: DeviceProfile) -> DeviceProfile:
    nominal = profile.android_version.nominal_ana_delay_ms
    if nominal <= 0:
        return profile
    new_mean = max(1.0, profile.tn.mean_ms - nominal)
    return replace(
        profile,
        tn=LatencySpec(mean_ms=new_mean, std_ms=profile.tn.std_ms,
                       min_ms=min(profile.tn.min_ms, new_mean)),
    )


@dataclass(frozen=True)
class AnaRemovalRow(SerializableMixin):
    device_key: str
    version: str
    bound_with_ana_ms: float
    bound_without_ana_ms: float

    @property
    def attacker_loses_ms(self) -> float:
        return self.bound_with_ana_ms - self.bound_without_ana_ms


@dataclass(frozen=True)
class AnaRemovalResult(SerializableMixin):
    rows: Tuple[AnaRemovalRow, ...]

    @property
    def mean_loss_ms(self) -> float:
        affected = [r for r in self.rows if r.attacker_loses_ms > 1.0]
        if not affected:
            return 0.0
        return sum(r.attacker_loses_ms for r in affected) / len(affected)

    @property
    def all_android10_devices_tightened(self) -> bool:
        return all(
            row.attacker_loses_ms > 30.0
            for row in self.rows
            if row.version in ("10", "11")
        )


def run_ana_removal_whatif(
    scale: ExperimentScale = QUICK,
    profiles: Optional[Sequence[DeviceProfile]] = None,
) -> AnaRemovalResult:
    """Boundary search on Android 10/11 devices with and without ANA."""
    if profiles is None:
        profiles = [
            p for p in DEVICES if p.android_version.nominal_ana_delay_ms > 0
        ]
    finder = _make_finder(scale)
    rows: List[AnaRemovalRow] = []
    with scoped_executor():
        for profile in profiles:
            with_ana = finder.find(profile).measured_upper_bound_d
            without = finder.find(_without_ana(profile)).measured_upper_bound_d
            rows.append(
                AnaRemovalRow(
                    device_key=profile.key,
                    version=profile.android_version.label,
                    bound_with_ana_ms=with_ana,
                    bound_without_ana_ms=without,
                )
            )
    return AnaRemovalResult(rows=tuple(rows))


@dataclass(frozen=True)
class MinimalDelayResult(SerializableMixin):
    """Smallest hide-debounce that defeats an *adaptive* attacker.

    The defense drops the hide whenever the same app re-adds an overlay
    within the debounce ``t``. In a draw-and-destroy cycle the replacement
    overlay lands only ``Tmis`` (a few ms) after the removal, so *any*
    ``t > Tmis`` keeps the alert alive at every attacking window — the
    minimal effective delay is the device's mistouch gap plus jitter, two
    orders of magnitude below the paper's conservative fleet-wide 690 ms.
    Delays at or below ``Tmis`` deliver the hide before the replacement
    appears and change nothing.
    """

    device_key: str
    device_bound_ms: float
    device_mean_tmis_ms: float
    minimal_effective_delay_ms: float
    #: (delay, attacker's best D that still suppressed, or None)
    probed: Tuple[Tuple[float, Optional[float]], ...]

    @property
    def matches_tmis_theory(self) -> bool:
        """Minimal delay sits just above the device's mistouch gap."""
        if self.minimal_effective_delay_ms == float("inf"):
            return False
        return (
            self.device_mean_tmis_ms * 0.5
            <= self.minimal_effective_delay_ms
            <= self.device_mean_tmis_ms + 15.0
        )


def find_minimal_hide_delay(
    scale: ExperimentScale = QUICK,
    model: str = "pixel 2",
    version_label: Optional[str] = None,
    delays: Sequence[float] = (1.0, 3.0, 6.0, 12.0, 25.0, 60.0, 690.0),
    attack_ms: float = 4000.0,
    d_grid_steps: int = 6,
) -> MinimalDelayResult:
    """Probe increasing hide delays against an attacker that adapts D.

    A delay is effective only if *no* attacking window in the grid keeps
    the alert at Λ1.
    """
    profile = device(model, version_label)
    bound = profile.published_upper_bound_d
    d_grid = [
        max(20.0, bound * (index + 1) / (d_grid_steps + 1))
        for index in range(d_grid_steps)
    ]
    probed: List[Tuple[float, Optional[float]]] = []
    minimal: Optional[float] = None
    with scoped_executor():
        for delay in delays:
            winning_d: Optional[float] = None
            for d in d_grid:
                outcome, _ = _attack_outcome(
                    profile, d, scale.seed, attack_ms, hide_delay_ms=delay
                )
                if outcome is NotificationOutcome.LAMBDA1:
                    winning_d = d
                    break
            probed.append((delay, winning_d))
            if winning_d is None and minimal is None:
                minimal = delay
    if minimal is None:
        minimal = float("inf")
    return MinimalDelayResult(
        device_key=profile.key,
        device_bound_ms=bound,
        device_mean_tmis_ms=profile.mean_tmis_ms,
        minimal_effective_delay_ms=minimal,
        probed=tuple(probed),
    )
