"""Reproduction harness: one module per paper table/figure plus shared
scenario runners and scaling presets. See DESIGN.md for the experiment
index and EXPERIMENTS.md for paper-vs-measured results."""

from .animation_curves import Fig2Result, Fig4Result, run_fig2, run_fig4
from .capture_rate import (
    CaptureBoxStats,
    Fig7Result,
    Fig8Result,
    run_fig7,
    run_fig8,
)
from .config import (
    FIG7_DURATIONS,
    FIG7_PAPER_MEANS,
    FULL,
    QUICK,
    SMOKE,
    TABLE_III_PAPER,
    ExperimentScale,
    resolve_jobs,
)
from .engine import (
    ExecutorStats,
    ScenarioMatrix,
    TrialExecutor,
    TrialOutcome,
    TrialSpec,
    current_executor,
    drive_until,
    get_scenario,
    run_trial,
    scenario,
    scenario_names,
    scoped_executor,
    use_executor,
)
from .parallel import (
    EXPERIMENTS,
    ExperimentSpec,
    ExperimentTiming,
    ResultCache,
    default_cache_dir,
    experiment_names,
    run_experiments,
)
from .corpus_study import CorpusStudyResult, run_corpus_study
from .equation_validation import (
    EquationValidationResult,
    EquationValidationRow,
    run_equation_validation,
)
from .defense_tuning import (
    DefenseTuningResult,
    RuleOperatingPoint,
    run_defense_tuning,
)
from .defense_eval import (
    IpcDefenseResult,
    NotificationDefenseResult,
    ToastDefenseResult,
    run_ipc_defense,
    run_notification_defense,
    run_toast_defense,
)
from .noise_sensitivity import (
    NoisePoint,
    NoiseSensitivityResult,
    run_noise_sensitivity,
)
from .outcomes_vs_d import Fig6Result, run_fig6
from .password_study import (
    StealthinessResult,
    Table3Result,
    Table3Row,
    run_stealthiness,
    run_table3,
)
from .real_world_apps import Table4Result, Table4Row, run_table4
from .runner import AllResults, format_report, run_all
from .supplementary import (
    Fig7WithCisResult,
    Table3ByVersionResult,
    run_fig7_with_cis,
    run_table3_by_version,
)
from .scenarios import (
    CaptureTrialResult,
    PasswordTrialResult,
    run_capture_trial,
    run_notification_trial,
    run_password_trial,
)
from .trigger_comparison import (
    TriggerComparisonResult,
    TriggerTrialResult,
    run_trigger_comparison,
)
from .toast_continuity import (
    ToastContinuityResult,
    compare_toast_durations,
    run_toast_continuity,
)
from .whatif import (
    AnaRemovalResult,
    AnaRemovalRow,
    MinimalDelayResult,
    find_minimal_hide_delay,
    run_ana_removal_whatif,
)
from .upper_bound import (
    LoadImpactResult,
    Table2Result,
    run_load_impact,
    run_table2,
)

__all__ = [
    "AllResults",
    "ExecutorStats",
    "ScenarioMatrix",
    "TrialExecutor",
    "TrialOutcome",
    "TrialSpec",
    "current_executor",
    "drive_until",
    "get_scenario",
    "run_trial",
    "scenario",
    "scenario_names",
    "scoped_executor",
    "use_executor",
    "AnaRemovalResult",
    "AnaRemovalRow",
    "CaptureBoxStats",
    "EXPERIMENTS",
    "ExperimentSpec",
    "ExperimentTiming",
    "ResultCache",
    "default_cache_dir",
    "experiment_names",
    "resolve_jobs",
    "run_experiments",
    "CaptureTrialResult",
    "CorpusStudyResult",
    "DefenseTuningResult",
    "EquationValidationResult",
    "EquationValidationRow",
    "ExperimentScale",
    "RuleOperatingPoint",
    "FIG7_DURATIONS",
    "FIG7_PAPER_MEANS",
    "FULL",
    "Fig2Result",
    "Fig4Result",
    "Fig6Result",
    "Fig7Result",
    "Fig7WithCisResult",
    "Fig8Result",
    "Table3ByVersionResult",
    "IpcDefenseResult",
    "LoadImpactResult",
    "MinimalDelayResult",
    "NoisePoint",
    "NoiseSensitivityResult",
    "NotificationDefenseResult",
    "run_noise_sensitivity",
    "PasswordTrialResult",
    "QUICK",
    "SMOKE",
    "StealthinessResult",
    "TABLE_III_PAPER",
    "Table2Result",
    "Table3Result",
    "Table3Row",
    "Table4Result",
    "Table4Row",
    "ToastContinuityResult",
    "ToastDefenseResult",
    "TriggerComparisonResult",
    "TriggerTrialResult",
    "compare_toast_durations",
    "find_minimal_hide_delay",
    "format_report",
    "run_all",
    "run_ana_removal_whatif",
    "run_capture_trial",
    "run_corpus_study",
    "run_defense_tuning",
    "run_equation_validation",
    "run_fig2",
    "run_fig4",
    "run_fig6",
    "run_fig7",
    "run_fig7_with_cis",
    "run_fig8",
    "run_table3_by_version",
    "run_ipc_defense",
    "run_load_impact",
    "run_notification_defense",
    "run_notification_trial",
    "run_password_trial",
    "run_stealthiness",
    "run_table2",
    "run_table3",
    "run_table4",
    "run_toast_continuity",
    "run_toast_defense",
    "run_trigger_comparison",
]
