"""Reusable end-to-end scenario runners.

Three building blocks power most experiments:

* :func:`run_notification_trial` — run the bare draw-and-destroy overlay
  attack on one device for a while and report the worst notification
  outcome (Fig. 6 / Table II);
* :func:`run_capture_trial` — one participant types random characters on
  the testing app while the overlay attack runs; reports the committed
  touch-capture rate (Fig. 7 / Fig. 8);
* :func:`run_password_trial` — the full password-stealing attack against a
  victim app, including trigger, fake keyboard, inference and perception
  (Table III / Table IV / stealthiness study).

Each is a registered engine scenario (it runs against a leased stack) plus
a thin wrapper that builds the :class:`~repro.experiments.engine.TrialSpec`
and routes through :func:`~repro.experiments.engine.run_trial` — under an
experiment's executor the stack is reused across trials; standalone calls
still build per trial.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..serialization import SerializableMixin
from ..apps.catalog import VictimAppSpec, bank_of_america
from ..apps.ime import RealKeyboard
from ..apps.accessibility import AccessibilityBus
from ..apps.keyboard import (
    KEY_ENTER,
    KeyboardSpec,
    KeyPress,
    default_keyboard_rect,
    plan_key_sequence,
)
from ..apps.victim import VictimApp
from ..attacks.overlay_attack import DrawAndDestroyOverlayAttack, OverlayAttackConfig
from ..attacks.password_stealing import (
    PasswordAttackResult,
    PasswordErrorType,
    PasswordStealingAttack,
    PasswordStealingConfig,
    classify_password_attempt,
)
from ..devices.profiles import DeviceProfile
from ..sim.rng import SeededRng
from ..stack import AndroidStack
from ..systemui.outcomes import NotificationOutcome
from ..systemui.system_ui import AlertMode
from ..users.participant import Participant
from ..users.passwords import PasswordGenerator
from ..users.typist import Typist
from ..windows.permissions import Permission
from ..windows.touch import TapOutcome
from .engine import TrialSpec, drive_until, run_trial, scenario

#: Settling time appended after the last user action (ms).
_SETTLE_MS = 400.0


# ---------------------------------------------------------------------------
# Notification outcome trials (Fig. 6, Table II)
# ---------------------------------------------------------------------------

@scenario("notification")
def notification_scenario(
    stack: AndroidStack,
    attacking_window_ms: float,
    duration_ms: float = 3000.0,
) -> NotificationOutcome:
    """The overlay attack alone; classify the alert's worst outcome."""
    attack = DrawAndDestroyOverlayAttack(
        stack, OverlayAttackConfig(attacking_window_ms=attacking_window_ms)
    )
    stack.permissions.grant(attack.package, Permission.SYSTEM_ALERT_WINDOW)
    attack.start()
    stack.run_for(duration_ms)
    worst_during = stack.system_ui.worst_outcome()
    attack.stop()
    stack.run_for(_SETTLE_MS)
    worst_after = stack.system_ui.worst_outcome()
    return max(worst_during, worst_after)


def run_notification_trial(
    profile: DeviceProfile,
    attacking_window_ms: float,
    seed: int,
    duration_ms: float = 3000.0,
    alert_mode: AlertMode = AlertMode.ANALYTIC,
    faults=None,
) -> NotificationOutcome:
    """Run the overlay attack alone and classify the alert's worst outcome."""
    return run_trial(TrialSpec(
        scenario="notification",
        seed=seed,
        profile=profile,
        alert_mode=alert_mode,
        trace_enabled=False,
        faults=faults,
        params={"attacking_window_ms": attacking_window_ms,
                "duration_ms": duration_ms},
    ))


# ---------------------------------------------------------------------------
# Touch-capture trials (Fig. 7, Fig. 8)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class CaptureTrialResult(SerializableMixin):
    """One participant-string capture measurement."""

    total_taps: int
    committed_to_overlay: int
    down_seen_by_overlay: int
    cancelled: int

    @property
    def capture_rate(self) -> float:
        """Committed capture rate — what the paper's testing app counts."""
        if self.total_taps == 0:
            return 0.0
        return self.committed_to_overlay / self.total_taps

    @property
    def down_capture_rate(self) -> float:
        """Coordinates seen at ACTION_DOWN — what the password thief gets."""
        if self.total_taps == 0:
            return 0.0
        return self.down_seen_by_overlay / self.total_taps


@scenario("capture")
def capture_scenario(
    stack: AndroidStack,
    participant: Participant,
    attacking_window_ms: float,
    seed: int,
    n_chars: int = 10,
    adaptive: bool = False,
) -> CaptureTrialResult:
    """One random string typed into the testing app under attack.

    ``seed`` is passed explicitly (in addition to seeding the stack)
    because the generated text historically draws from the independent
    ``SeededRng(seed, "capture-text")`` stream.
    """
    spec = KeyboardSpec(
        default_keyboard_rect(
            participant.device.screen_width_px, participant.device.screen_height_px
        )
    )
    attack = DrawAndDestroyOverlayAttack(
        stack,
        OverlayAttackConfig(
            attacking_window_ms=attacking_window_ms, adaptive=adaptive
        ),
    )
    stack.permissions.grant(attack.package, Permission.SYSTEM_ALERT_WINDOW)
    typist = Typist(stack, spec, participant.typing, participant.touch)
    generator = PasswordGenerator(SeededRng(seed, "capture-text"), spec)
    text = generator.generate_letters(n_chars)

    attack.start()
    stack.run_for(50.0)  # let the first overlay come up
    session = typist.type_text(text)
    drive_until(stack, lambda: session.complete)
    attack.stop()
    stack.run_for(_SETTLE_MS)

    committed = sum(
        1
        for executed in session.taps
        if executed.tap.outcome is TapOutcome.DELIVERED
        and executed.tap.target_owner == attack.package
    )
    down_seen = sum(
        1
        for executed in session.taps
        if executed.tap.target_owner == attack.package
    )
    cancelled = sum(
        1
        for executed in session.taps
        if executed.tap.outcome is TapOutcome.CANCELLED_WINDOW_REMOVED
    )
    return CaptureTrialResult(
        total_taps=len(session.taps),
        committed_to_overlay=committed,
        down_seen_by_overlay=down_seen,
        cancelled=cancelled,
    )


def run_capture_trial(
    participant: Participant,
    attacking_window_ms: float,
    seed: int,
    n_chars: int = 10,
    faults=None,
    adaptive: bool = False,
) -> CaptureTrialResult:
    """One random string typed into the testing app under attack.

    ``faults`` selects the fault regime for the stack (profile name,
    :class:`~repro.sim.faults.FaultProfile`, or ``None`` for the ambient
    default); ``adaptive`` enables the attack's failure-driven window
    widening.
    """
    return run_trial(TrialSpec(
        scenario="capture",
        seed=seed,
        profile=participant.device,
        alert_mode=AlertMode.ANALYTIC,
        trace_enabled=False,
        faults=faults,
        params={"participant": participant,
                "attacking_window_ms": attacking_window_ms,
                "seed": seed,
                "n_chars": n_chars,
                "adaptive": adaptive},
    ))


# ---------------------------------------------------------------------------
# Password-stealing trials (Table III, Table IV, stealthiness)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class PasswordTrialResult(SerializableMixin):
    """One end-to-end password theft attempt."""

    truth: str
    derived: str
    error_type: PasswordErrorType
    trigger_path: str
    attacking_window_ms: float
    keyboard_switches: int
    alert_noticed: bool
    flicker_noticed: bool
    lag_reported: bool
    attack_result: PasswordAttackResult

    @property
    def success(self) -> bool:
        return self.error_type is PasswordErrorType.SUCCESS

    @property
    def noticed_anything(self) -> bool:
        return self.alert_noticed or self.flicker_noticed


@dataclass(frozen=True)
class ControlTrialResult(SerializableMixin):
    """One no-malware session: the study's control arm."""

    truth: str
    typed_into_widget: str
    alert_noticed: bool
    flicker_noticed: bool
    lag_reported: bool

    @property
    def typed_correctly(self) -> bool:
        return self.typed_into_widget == self.truth

    @property
    def noticed_anything(self) -> bool:
        return self.alert_noticed or self.flicker_noticed


@scenario("control")
def control_scenario(
    stack: AndroidStack,
    participant: Participant,
    password: str,
    victim_spec: Optional[VictimAppSpec] = None,
) -> ControlTrialResult:
    """The stealthiness study's control arm: same victim app, same typing,
    no malware installed. The password reaches the real keyboard and the
    real widget; there is no alert and no toast to notice."""
    victim_spec = victim_spec or bank_of_america()
    bus = AccessibilityBus(stack.simulation)
    spec = KeyboardSpec(
        default_keyboard_rect(
            participant.device.screen_width_px, participant.device.screen_height_px
        )
    )
    ime = RealKeyboard(stack, spec)
    victim = VictimApp(stack, bus, victim_spec, ime)
    victim.open_login()
    stack.run_for(100.0)
    victim.focus_password()
    stack.run_for(120.0)
    typist = Typist(stack, spec, participant.typing, participant.touch)
    session = typist.type_text(password, initial_delay_ms=150.0)
    drive_until(stack, lambda: session.complete)
    stack.run_for(_SETTLE_MS)
    perception = participant.perception
    return ControlTrialResult(
        truth=password,
        typed_into_widget=victim.password_widget.text,
        alert_noticed=perception.notices_alert(stack.system_ui),
        flicker_noticed=False,  # no toasts exist to flicker
        lag_reported=False,     # nothing adds latency in the control arm
    )


def run_control_trial(
    participant: Participant,
    password: str,
    seed: int,
    victim_spec: Optional[VictimAppSpec] = None,
) -> ControlTrialResult:
    """The stealthiness study's control arm (see :func:`control_scenario`)."""
    return run_trial(TrialSpec(
        scenario="control",
        seed=seed,
        profile=participant.device,
        alert_mode=AlertMode.ANALYTIC,
        trace_enabled=False,
        params={"participant": participant,
                "password": password,
                "victim_spec": victim_spec},
    ))


@scenario("password")
def password_scenario(
    stack: AndroidStack,
    participant: Participant,
    password: str,
    seed: int,
    victim_spec: Optional[VictimAppSpec] = None,
    attack_config: Optional[PasswordStealingConfig] = None,
    type_username_first: bool = True,
    username: str = "victimuser",
) -> PasswordTrialResult:
    """Full attack run: login, trigger, fake keyboard, theft, perception."""
    victim_spec = victim_spec or bank_of_america()
    bus = AccessibilityBus(stack.simulation)
    spec = KeyboardSpec(
        default_keyboard_rect(
            participant.device.screen_width_px, participant.device.screen_height_px
        )
    )
    ime = RealKeyboard(stack, spec)
    victim = VictimApp(stack, bus, victim_spec, ime)
    malware = PasswordStealingAttack(
        stack, bus, victim, spec, config=attack_config
    )
    stack.permissions.grant(malware.package, Permission.SYSTEM_ALERT_WINDOW)
    malware.arm()

    victim.open_login()
    stack.run_for(100.0)
    typist = Typist(stack, spec, participant.typing, participant.touch)

    if type_username_first:
        victim.focus_username()
        stack.run_for(50.0)
        username_session = typist.type_text(username)
        drive_until(stack, lambda: username_session.complete)

    # The user taps into the password field; the focus change (or, for
    # hardened apps, the username widget's content-changed event) triggers
    # the malware.
    victim.focus_password()
    stack.run_for(120.0)  # accessibility dispatch + attack launch + overlays

    presses: List[KeyPress] = plan_key_sequence(spec, password)
    final_layout = presses[-1].layout if presses else "lower"
    import_layout = KeyboardSpec.layout_after_key(final_layout, presses[-1].key) if presses else "lower"
    presses = presses + [KeyPress(layout=import_layout, key=KEY_ENTER)]
    session = typist.type_presses(password, presses, initial_delay_ms=150.0)
    drive_until(stack, lambda: session.complete)
    stack.run_for(_SETTLE_MS)
    result = malware.finish()
    stack.run_for(_SETTLE_MS)

    error_type = classify_password_attempt(password, result.derived_password)
    perception = participant.perception
    perception_rng = SeededRng(seed, "perception")
    return PasswordTrialResult(
        truth=password,
        derived=result.derived_password,
        error_type=error_type,
        trigger_path=result.trigger_path,
        attacking_window_ms=malware.attacking_window_ms,
        keyboard_switches=result.keyboard_switches,
        alert_noticed=perception.notices_alert(stack.system_ui),
        flicker_noticed=perception.notices_flicker(
            malware.toast_attack.switches(), background_identical=True
        ),
        lag_reported=perception.reports_lag(perception_rng),
        attack_result=result,
    )


def run_password_trial(
    participant: Participant,
    password: str,
    seed: int,
    victim_spec: Optional[VictimAppSpec] = None,
    attack_config: Optional[PasswordStealingConfig] = None,
    type_username_first: bool = True,
    username: str = "victimuser",
) -> PasswordTrialResult:
    """Full attack run: login, trigger, fake keyboard, theft, perception."""
    return run_trial(TrialSpec(
        scenario="password",
        seed=seed,
        profile=participant.device,
        alert_mode=AlertMode.ANALYTIC,
        trace_enabled=False,
        params={"participant": participant,
                "password": password,
                "seed": seed,
                "victim_spec": victim_spec,
                "attack_config": attack_config,
                "type_username_first": type_username_first,
                "username": username},
    ))
