"""Tuning the IPC defense's decision rule (paper §VII-A, technical report).

The decision rule has two knobs: the number of qualifying add/remove pairs
before flagging (``min_pairs``) and the pair-gap ceiling
(``max_pair_gap_ms``). This study sweeps them against

* the draw-and-destroy attack at several attacking windows (detection
  rate and latency), and
* an ensemble of benign overlay workloads with progressively twitchier
  add/remove cadences (false positives),

yielding the operating-point table a deployer would use.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..serialization import SerializableMixin
from .._deprecation import deprecated_entry_point
from ..defenses.benign import BenignOverlayApp
from ..defenses.ipc_detector import DetectionRule, IpcDetector
from ..devices.profiles import DeviceProfile
from ..devices.registry import reference_device
from ..stack import AndroidStack
from ..windows.permissions import Permission
from .config import ExperimentScale, QUICK
from .engine import TrialSpec, run_trial, scenario, scoped_executor


@dataclass(frozen=True)
class RuleOperatingPoint(SerializableMixin):
    """Detection/false-positive trade-off of one rule configuration."""

    min_pairs: int
    max_pair_gap_ms: float
    detection_rate: float
    mean_detection_latency_ms: Optional[float]
    false_positive_rate: float

    @property
    def usable(self) -> bool:
        """A deployable point: catches everything, flags nothing benign."""
        return self.detection_rate == 1.0 and self.false_positive_rate == 0.0


@dataclass(frozen=True)
class DefenseTuningResult(SerializableMixin):
    points: Tuple[RuleOperatingPoint, ...]

    @property
    def usable_points(self) -> List[RuleOperatingPoint]:
        return [p for p in self.points if p.usable]

    def best_point(self) -> Optional[RuleOperatingPoint]:
        """The usable point with the lowest detection latency."""
        usable = [
            p for p in self.usable_points
            if p.mean_detection_latency_ms is not None
        ]
        return min(usable, key=lambda p: p.mean_detection_latency_ms,
                   default=None)


def _attack_detection(
    profile: DeviceProfile, rule: DetectionRule, d: float, seed: int,
    attack_ms: float,
) -> Optional[float]:
    """Run one attack; return detection latency or None."""
    trial, _ = run_trial(TrialSpec(
        scenario="ipc-defense-attack",
        seed=seed,
        profile=profile,
        params={"attacking_window_ms": d, "attack_ms": attack_ms,
                "rule": rule},
    ))
    return trial.detection_latency_ms


@scenario("ipc-tuning-benign")
def ipc_tuning_benign_scenario(
    stack: AndroidStack,
    rule: DetectionRule,
    observation_ms: float,
) -> Tuple[int, int]:
    """Run the benign ensemble; return (flagged, total)."""
    detector = IpcDetector(stack.router, stack.system_server, rule=rule,
                           terminate_on_detection=False)
    # From placid floating widgets to a twitchy screen-dimmer that toggles
    # its overlay under a second — the workload that punishes loose rules.
    cadences = [
        (45_000.0, 15_000.0),
        (12_000.0, 4_000.0),
        (3_000.0, 1_500.0),
        (800.0, 400.0),
    ]
    apps = []
    for index, (dwell, pause) in enumerate(cadences):
        app = BenignOverlayApp(stack, package=f"com.benign.{index}",
                               dwell_ms=dwell, pause_ms=pause)
        stack.permissions.grant(app.package, Permission.SYSTEM_ALERT_WINDOW)
        app.start()
        apps.append(app)
    stack.run_for(observation_ms)
    for app in apps:
        app.stop()
    stack.run_for(500.0)
    flagged = sum(1 for app in apps if detector.is_flagged(app.package))
    return flagged, len(apps)


def _benign_false_positives(
    profile: DeviceProfile, rule: DetectionRule, seed: int,
    observation_ms: float,
) -> Tuple[int, int]:
    return run_trial(TrialSpec(
        scenario="ipc-tuning-benign",
        seed=seed,
        profile=profile,
        params={"rule": rule, "observation_ms": observation_ms},
    ))


def _run_defense_tuning(
    scale: ExperimentScale = QUICK,
    profile: Optional[DeviceProfile] = None,
    min_pairs_values: Sequence[int] = (4, 8, 16),
    max_gap_values: Sequence[float] = (300.0, 600.0, 1200.0),
    attack_windows: Sequence[float] = (100.0, 250.0),
    attack_ms: float = 12_000.0,
    benign_observation_ms: float = 120_000.0,
) -> DefenseTuningResult:
    """Sweep the rule grid and report each operating point."""
    profile = profile or reference_device()
    points: List[RuleOperatingPoint] = []
    with scoped_executor():
        _tune_grid(
            points, profile, scale, min_pairs_values, max_gap_values,
            attack_windows, attack_ms, benign_observation_ms,
        )
    return DefenseTuningResult(points=tuple(points))


def _tune_grid(
    points: List[RuleOperatingPoint],
    profile: DeviceProfile,
    scale: ExperimentScale,
    min_pairs_values: Sequence[int],
    max_gap_values: Sequence[float],
    attack_windows: Sequence[float],
    attack_ms: float,
    benign_observation_ms: float,
) -> None:
    for min_pairs in min_pairs_values:
        for max_gap in max_gap_values:
            rule = DetectionRule(
                window_ms=max(3000.0, max_gap * (min_pairs + 1)),
                min_pairs=min_pairs,
                max_pair_gap_ms=max_gap,
            )
            latencies: List[float] = []
            detected = 0
            total = 0
            for index, d in enumerate(attack_windows):
                total += 1
                latency = _attack_detection(
                    profile, rule, float(d), scale.seed + index, attack_ms
                )
                if latency is not None:
                    detected += 1
                    latencies.append(latency)
            flagged, benign_total = _benign_false_positives(
                profile, rule, scale.seed + 977, benign_observation_ms
            )
            points.append(
                RuleOperatingPoint(
                    min_pairs=min_pairs,
                    max_pair_gap_ms=max_gap,
                    detection_rate=detected / total if total else 0.0,
                    mean_detection_latency_ms=(
                        sum(latencies) / len(latencies) if latencies else None
                    ),
                    false_positive_rate=(
                        flagged / benign_total if benign_total else 0.0
                    ),
                )
            )


run_defense_tuning = deprecated_entry_point(
    "run_defense_tuning", _run_defense_tuning, "repro.api.run_experiment('defense_tuning', ...)")
