"""Parallel experiment execution with deterministic seed partitioning.

The reproduction suite is ~20 independent experiments. This module holds
the single source of truth for that set (:data:`EXPERIMENTS`), and runs it
either in-process (``jobs=1``, the serial reference implementation) or
fanned out over a :class:`concurrent.futures.ProcessPoolExecutor`.

Three properties make ``jobs=N`` bit-identical to ``jobs=1``:

* **Seed partitioning** — every experiment runs at
  ``scale.for_experiment(name)``, whose seed is a hash of the stable
  ``(scale.name, scale.seed, experiment_name)`` tuple. No experiment
  shares RNG state with another, so execution order and process placement
  cannot matter.
* **Pure workers** — experiment functions only read their scale argument;
  results are plain dataclasses that pickle losslessly (asserted by
  ``tests/experiments/test_parallel_determinism.py``).
* **Stable assembly** — results are keyed by experiment name and written
  into :class:`~repro.experiments.runner.AllResults` fields by name, never
  by completion order.

The same ``(name, scale)`` key also addresses an optional on-disk result
cache, so a repeated ``run_all`` invocation only re-runs experiments whose
scale (or the cache version) changed. Entries are wrapped in the
checksummed envelope from :mod:`repro.experiments.resilience`, so corrupt
or stale bytes degrade to a miss instead of a poisoned report.

Execution is *supervised* (:class:`~repro.experiments.resilience.RunPolicy`):
worker exceptions, deadline overruns and even a broken process pool are
converted into per-experiment :class:`ExperimentFailure` records — the
surviving experiments complete and the run degrades gracefully instead of
discarding finished work. Because a retry re-runs a pure function of
``(name, scale)``, a crash-then-success retry is bit-identical to a run
that never crashed.
"""

from __future__ import annotations

import contextlib
import dataclasses
import hashlib
import os
import time
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Set, Tuple

from ..serialization import SerializableMixin
from .animation_curves import _run_fig2, _run_fig4
from .capture_rate import _run_fig7, _run_fig8
from .config import QUICK, ExperimentScale, resolve_jobs
from .corpus_study import _run_corpus_study
from .defense_eval import (
    _run_ipc_defense,
    _run_notification_defense,
    _run_toast_defense,
)
from .defense_tuning import _run_defense_tuning
from .equation_validation import _run_equation_validation
from .noise_sensitivity import _run_noise_sensitivity
from .outcomes_vs_d import _run_fig6
from .password_study import _run_stealthiness, _run_table3
from .real_world_apps import _run_table4
from .resilience import (
    CACHE_REJECTS_METRIC,
    DEADLINE_METRIC,
    DEFAULT_POLICY,
    FAILURES_METRIC,
    RETRIES_METRIC,
    CacheIntegrityError,
    ChaosCrash,
    DeadlineExceeded,
    ExperimentFailure,
    PoisonedResult,
    ResultIntegrityError,
    RunJournal,
    RunPolicy,
    atomic_write_bytes,
    chaos_action,
    chaos_hang_seconds,
    decode_envelope,
    encode_envelope,
    make_failure,
)
from .supplementary import _run_fig7_with_cis, _run_table3_by_version
from .toast_continuity import _run_toast_continuity
from .trigger_comparison import _run_trigger_comparison
from .upper_bound import _run_load_impact, _run_table2

#: Bump when a change to experiment code invalidates previously cached
#: results (the cache key has no way to see code changes). Version 4:
#: entries are wrapped in the checksummed integrity envelope.
CACHE_VERSION = 4


@dataclass(frozen=True)
class ExperimentSpec:
    """One independently runnable experiment of the reproduction suite."""

    #: ``AllResults`` field name; also the seed-derivation / cache key.
    name: str
    #: Human-readable progress label (matches the serial runner's log).
    title: str
    #: Module-level experiment function (must pickle by qualified name).
    runner: Callable
    #: Whether ``runner`` accepts an :class:`ExperimentScale`.
    takes_scale: bool = True

    def run(self, scale: ExperimentScale):
        if not self.takes_scale:
            return self.runner()
        return self.runner(scale.for_experiment(self.name))


#: Every experiment of the suite, in the serial runner's historical order.
EXPERIMENTS: Tuple[ExperimentSpec, ...] = (
    ExperimentSpec("fig2", "Fig 2: notification slide-in curve",
                   _run_fig2, takes_scale=False),
    ExperimentSpec("fig4", "Fig 4: toast fade curves",
                   _run_fig4, takes_scale=False),
    ExperimentSpec("fig6", "Fig 6: notification outcomes vs D",
                   _run_fig6, takes_scale=False),
    ExperimentSpec("table2", "Table II: per-device upper bound of D",
                   _run_table2),
    ExperimentSpec("load_impact", "Load impact", _run_load_impact),
    ExperimentSpec("fig7", "Fig 7: capture rate vs D", _run_fig7),
    ExperimentSpec("fig8", "Fig 8: capture rate by Android version",
                   _run_fig8),
    ExperimentSpec("table3", "Table III: password stealing", _run_table3),
    ExperimentSpec("table4", "Table IV: real-world apps", _run_table4),
    ExperimentSpec("stealthiness", "Stealthiness study", _run_stealthiness),
    ExperimentSpec("toast_continuity", "Toast continuity",
                   _run_toast_continuity),
    ExperimentSpec("corpus", "Corpus prevalence study", _run_corpus_study),
    ExperimentSpec("defense_ipc", "Defense: IPC detector", _run_ipc_defense),
    ExperimentSpec("defense_notification", "Defense: enhanced notification",
                   _run_notification_defense),
    ExperimentSpec("defense_toast", "Defense: toast spacing",
                   _run_toast_defense),
    ExperimentSpec("equation_validation", "Eq. (2) validation",
                   _run_equation_validation),
    ExperimentSpec("defense_tuning", "Defense: decision-rule tuning",
                   _run_defense_tuning),
    ExperimentSpec("trigger_comparison", "Trigger-channel comparison",
                   _run_trigger_comparison),
    ExperimentSpec("table3_by_version",
                   "Supplementary: Table III by version",
                   _run_table3_by_version),
    ExperimentSpec("fig7_cis", "Supplementary: Fig 7 confidence intervals",
                   _run_fig7_with_cis),
    ExperimentSpec("noise_sensitivity",
                   "Noise sensitivity: faults vs capture rate / Tmis",
                   _run_noise_sensitivity),
)

_SPEC_BY_NAME: Dict[str, ExperimentSpec] = {s.name: s for s in EXPERIMENTS}


@dataclass(frozen=True)
class ExperimentTiming(SerializableMixin):
    """Wall-clock accounting for one experiment of a ``run_all`` pass."""

    name: str
    seconds: float
    cached: bool = False
    #: Attempts consumed (1 for a clean first run or a cache/journal hit).
    attempts: int = 1
    #: True when the experiment ended as an ``ExperimentFailure``.
    failed: bool = False


def experiment_names() -> Tuple[str, ...]:
    return tuple(spec.name for spec in EXPERIMENTS)


def _reset_global_id_allocators() -> None:
    """Restart the process-wide debug id counters.

    Window/toast/token ids are allocated by module-global counters; some
    leak into results (``ToastSwitch`` records toast ids). Resetting them
    at each experiment's start makes every result a pure function of
    ``(experiment name, scale)`` — the property the determinism tests
    assert — no matter which process ran what beforehand.
    """
    from ..toast.toast import reset_toast_ids
    from ..toast.token_queue import reset_token_ids
    from ..windows.window import reset_window_ids

    reset_toast_ids()
    reset_token_ids()
    reset_window_ids()


def _run_one(
    name: str,
    scale: ExperimentScale,
    collect_metrics: bool = False,
    profile_dir: Optional[Path] = None,
    attempt: int = 1,
):
    """Worker entry point: run one named experiment at its derived scale.

    Module-level so it pickles for :class:`ProcessPoolExecutor`; returns
    ``(name, result, seconds, samples, pid)`` where ``samples`` is the
    experiment's metric snapshot (``None`` unless ``collect_metrics``) and
    ``pid`` identifies the worker process for utilization accounting. The
    scale's fault regime is installed as the ambient default *inside* the
    worker, so every stack the experiment builds — however deep in the
    call tree — sees the same regime whether the experiment ran serially
    or in a pool process.

    ``attempt`` numbers the supervision retry (1-based). It is consulted
    *only* by the chaos harness — the experiment's seed derivation never
    sees it, which is what makes a crash-then-retry run bit-identical to
    a clean one.

    Each experiment gets its own :class:`TrialExecutor` installed
    ambiently, so its trial loops share one pool of reusable stacks
    (dropped when the experiment finishes, keeping workers lean). With
    ``collect_metrics`` it likewise gets its own
    :class:`~repro.obs.metrics.MetricsRegistry` — registries never cross
    the process boundary, only their pickled sample snapshots do. With
    ``profile_dir`` the experiment body runs under :mod:`cProfile` and its
    stats dump to ``profile_dir/<name>.prof``.
    """
    from ..obs.context import use_metrics
    from ..obs.metrics import MetricsRegistry
    from ..sim.faults import use_default_profile
    from .engine import TrialExecutor, use_executor

    action = chaos_action(name, attempt)
    if action == "crash":
        raise ChaosCrash(
            f"chaos: injected crash for {name!r} attempt {attempt}")
    if action == "kill":
        # Simulates a worker dying hard (OOM-kill, segfault): in a pool
        # this breaks the executor; serially it kills the whole run —
        # which is exactly what the journal/resume tests need.
        os._exit(86)
    if action == "hang":
        time.sleep(chaos_hang_seconds())
    if action == "poison":
        return name, PoisonedResult(name=name, attempt=attempt), 0.0, None, \
            os.getpid()

    spec = _SPEC_BY_NAME[name]
    _reset_global_id_allocators()
    registry = MetricsRegistry() if collect_metrics else None
    start = time.perf_counter()
    metrics_ctx = (use_metrics(registry) if collect_metrics
                   else contextlib.nullcontext())
    with use_default_profile(scale.faults), use_executor(TrialExecutor()), \
            metrics_ctx:
        if profile_dir is not None:
            import cProfile

            profiler = cProfile.Profile()
            result = profiler.runcall(spec.run, scale)
            profile_dir.mkdir(parents=True, exist_ok=True)
            profiler.dump_stats(profile_dir / f"{name}.prof")
        else:
            result = spec.run(scale)
    seconds = time.perf_counter() - start
    samples = registry.samples() if registry is not None else None
    return name, result, seconds, samples, os.getpid()


def _check_payload(payload) -> None:
    """Reject worker payloads the supervisor must not accept as results."""
    _, result, _, _, _ = payload
    if isinstance(result, PoisonedResult):
        raise ResultIntegrityError(
            f"worker returned a poisoned result for {result.name!r} "
            f"(attempt {result.attempt})")


# ---------------------------------------------------------------------------
# On-disk result cache
# ---------------------------------------------------------------------------

def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` or ``~/.cache/repro/experiments``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro" / "experiments"


class ResultCache:
    """Envelope-per-key store of experiment results.

    Keys are ``(experiment_name, every ExperimentScale field,
    CACHE_VERSION)`` — exactly the inputs the result is a pure function
    of. Entries are checksummed envelopes
    (:func:`~repro.experiments.resilience.encode_envelope`): corrupt,
    truncated or stale-version bytes degrade to a miss, counted on
    :attr:`integrity_rejects` and the ambient ``repro.obs`` registry as
    ``cache_integrity_rejects_total``. Writes go through collision-free
    temp files, so concurrent ``run_all`` invocations sharing a cache
    directory cannot clobber each other mid-write.
    """

    def __init__(self, directory: Path) -> None:
        self.directory = Path(directory)
        #: Entries rejected by envelope validation since construction.
        self.integrity_rejects = 0

    def path_for(self, name: str, scale: ExperimentScale) -> Path:
        fields = dataclasses.asdict(scale)
        material = ":".join(
            [f"v{CACHE_VERSION}", name]
            + [f"{key}={fields[key]!r}" for key in sorted(fields)]
        )
        digest = hashlib.sha256(material.encode("utf-8")).hexdigest()[:16]
        return self.directory / f"{name}-{scale.name}-{digest}.pkl"

    def _note_reject(self) -> None:
        from ..obs.context import current_metrics

        self.integrity_rejects += 1
        registry = current_metrics()
        if registry is not None:
            registry.counter(CACHE_REJECTS_METRIC).inc()

    def load(self, name: str, scale: ExperimentScale):
        path = self.path_for(name, scale)
        try:
            data = path.read_bytes()
        except OSError:
            return None
        try:
            return decode_envelope(CACHE_VERSION, data)
        except CacheIntegrityError:
            self._note_reject()
            return None

    def store(self, name: str, scale: ExperimentScale, result) -> None:
        atomic_write_bytes(self.path_for(name, scale),
                           encode_envelope(CACHE_VERSION, result))


# ---------------------------------------------------------------------------
# Supervised execution
# ---------------------------------------------------------------------------

ProgressCallback = Callable[[int, int, ExperimentTiming], None]


@dataclass(frozen=True)
class RunOutcome:
    """Everything one supervised ``run_experiments`` pass produced."""

    #: Successful results keyed by experiment name (failed ones absent).
    results: Dict[str, object]
    #: Per-experiment accounting in registry order (failures included).
    timings: Tuple[ExperimentTiming, ...]
    #: ``ExperimentMetrics`` tuple when metrics were collected, else None.
    metrics: Optional[Tuple]
    #: Permanent failures in registry order (empty on a clean run).
    failures: Tuple[ExperimentFailure, ...] = ()


class _Supervisor:
    """Retry/failure bookkeeping shared by the serial and pool paths."""

    def __init__(self, policy: RunPolicy, scale: ExperimentScale) -> None:
        self.policy = policy
        self.scale = scale
        self.failures: Dict[str, ExperimentFailure] = {}
        self.retries = 0
        self.deadline_exceeded = 0

    def handle(self, name: str, attempt: int, exc: Exception,
               elapsed: float) -> bool:
        """Process one failed attempt; return True to retry.

        A permanent failure is recorded on :attr:`failures` — unless the
        policy is ``fail_fast``, in which case the original exception
        propagates (the historical abort-on-first-error behaviour).
        """
        if isinstance(exc, DeadlineExceeded):
            self.deadline_exceeded += 1
        if attempt < self.policy.max_attempts:
            self.retries += 1
            return True
        if self.policy.fail_fast:
            raise exc
        self.failures[name] = make_failure(name, exc, attempt, elapsed)
        return False

    def backoff(self, name: str, attempt: int) -> float:
        return self.policy.backoff_seconds(self.scale.seed, name, attempt)


def run_experiments(
    scale: ExperimentScale = QUICK,
    *,
    jobs: int = 1,
    cache_dir: Optional[Path] = None,
    verbose: bool = False,
    progress: Optional[ProgressCallback] = None,
    collect_metrics: bool = False,
    profile_dir: Optional[Path] = None,
    policy: Optional[RunPolicy] = None,
    journal: Optional[RunJournal] = None,
) -> RunOutcome:
    """Run every experiment under supervision; return a :class:`RunOutcome`.

    ``jobs=1`` runs in-process and is the reference implementation;
    ``jobs=N`` fans out over N worker processes; ``jobs=0`` means one per
    core. Timings come back in registry order regardless of completion
    order.

    ``policy`` governs retries, deadlines and failure semantics (the
    default is inert: one attempt, record failures, keep going). A worker
    exception — or the whole process pool breaking — costs only that
    experiment's attempts: the pool is rebuilt, surviving work is
    re-submitted, and the failure is recorded as an
    :class:`ExperimentFailure` on the outcome. ``journal`` checkpoints
    every completion into a run directory so an interrupted run can be
    resumed, skipping finished experiments.

    With ``collect_metrics`` each experiment runs under its own
    :class:`~repro.obs.metrics.MetricsRegistry` and ``outcome.metrics`` is
    a tuple of :class:`~repro.obs.metrics.ExperimentMetrics`: one snapshot
    per freshly-run experiment (cache hits carry no metrics) plus a
    synthetic ``runner`` entry with per-experiment wall gauges, per-worker
    busy/utilization gauges and the supervision counters
    (``runner_retries_total``, ``runner_failures_total``,
    ``runner_deadline_exceeded_total``, ``cache_integrity_rejects_total``).
    Metrics never feed back into experiment code, so results are
    bit-identical either way. ``profile_dir`` additionally runs each
    experiment under :mod:`cProfile`, dumping ``<name>.prof`` files.
    """
    jobs = resolve_jobs(jobs)
    cache = ResultCache(cache_dir) if cache_dir is not None else None
    supervisor = _Supervisor(policy or DEFAULT_POLICY, scale)

    results: Dict[str, object] = {}
    timings: Dict[str, ExperimentTiming] = {}
    sample_sets: Dict[str, tuple] = {}
    busy_by_pid: Dict[int, float] = {}
    done = 0
    total = len(EXPERIMENTS)
    wall_start = time.perf_counter()

    def record(name: str, result, seconds: float, cached: bool,
               attempts: int = 1) -> None:
        nonlocal done
        results[name] = result
        timing = ExperimentTiming(name=name, seconds=seconds, cached=cached,
                                  attempts=attempts)
        timings[name] = timing
        done += 1
        if verbose:
            spec = _SPEC_BY_NAME[name]
            suffix = "cache hit" if cached else f"{seconds:.2f}s"
            print(f"[{scale.name}] [{done:2d}/{total}] {spec.title} "
                  f"({suffix})", flush=True)
        if progress is not None:
            progress(done, total, timing)

    def record_run(name: str, result, seconds: float, samples, pid: int,
                   attempts: int = 1) -> None:
        if cache is not None:
            cache.store(name, scale, result)
        if journal is not None:
            journal.store(name, result)
        if samples is not None:
            sample_sets[name] = samples
        busy_by_pid[pid] = busy_by_pid.get(pid, 0.0) + seconds
        record(name, result, seconds, cached=False, attempts=attempts)

    def record_failure(failure: ExperimentFailure) -> None:
        nonlocal done
        if journal is not None:
            journal.store_failure(failure)
        timing = ExperimentTiming(
            name=failure.name, seconds=failure.elapsed_seconds, cached=False,
            attempts=failure.attempts, failed=True)
        timings[failure.name] = timing
        done += 1
        if verbose:
            spec = _SPEC_BY_NAME[failure.name]
            print(f"[{scale.name}] [{done:2d}/{total}] {spec.title} "
                  f"(FAILED: {failure.error})", flush=True)
        if progress is not None:
            progress(done, total, timing)

    pending: List[ExperimentSpec] = []
    for spec in EXPERIMENTS:
        hit = journal.load(spec.name) if journal is not None else None
        if hit is not None:
            # Journaled completions also warm the cache so a later
            # cache-only run sees them.
            if cache is not None:
                cache.store(spec.name, scale, hit)
            record(spec.name, hit, 0.0, cached=True)
            continue
        hit = cache.load(spec.name, scale) if cache is not None else None
        if hit is not None:
            if journal is not None:
                journal.store(spec.name, hit)
            record(spec.name, hit, 0.0, cached=True)
        else:
            pending.append(spec)

    if jobs == 1 or len(pending) <= 1:
        _run_serial(pending, scale, supervisor, collect_metrics, profile_dir,
                    record_run, record_failure)
    else:
        _run_pool(pending, scale, jobs, supervisor, collect_metrics,
                  profile_dir, record_run, record_failure)

    failures = tuple(supervisor.failures[spec.name] for spec in EXPERIMENTS
                     if spec.name in supervisor.failures)
    ordered = tuple(timings[spec.name] for spec in EXPERIMENTS)
    if not collect_metrics:
        return RunOutcome(results=results, timings=ordered, metrics=None,
                          failures=failures)

    metrics = _assemble_metrics(
        sample_sets, ordered, busy_by_pid,
        wall_seconds=time.perf_counter() - wall_start,
        supervisor=supervisor,
        cache_rejects=cache.integrity_rejects if cache is not None else 0,
    )
    return RunOutcome(results=results, timings=ordered, metrics=metrics,
                      failures=failures)


def _run_serial(
    pending: List[ExperimentSpec],
    scale: ExperimentScale,
    supervisor: _Supervisor,
    collect_metrics: bool,
    profile_dir: Optional[Path],
    record_run: Callable,
    record_failure: Callable,
) -> None:
    """In-process reference path, one supervised experiment at a time.

    Deadlines are enforced post-hoc here: a single process cannot preempt
    its own experiment, so an overrun is detected when the attempt
    returns and converted into a :class:`DeadlineExceeded` failure (the
    computed result is discarded — accepting it would make the result set
    depend on wall-clock luck).
    """
    deadline = supervisor.policy.deadline_seconds
    for spec in pending:
        attempt = 1
        while True:
            start = time.perf_counter()
            try:
                payload = _run_one(spec.name, scale, collect_metrics,
                                   profile_dir, attempt)
                _check_payload(payload)
                elapsed = time.perf_counter() - start
                if deadline is not None and elapsed > deadline:
                    raise DeadlineExceeded(
                        f"experiment {spec.name!r} took {elapsed:.2f}s "
                        f"(deadline {deadline:.2f}s)")
                record_run(*payload, attempts=attempt)
                break
            except Exception as exc:
                elapsed = time.perf_counter() - start
                if supervisor.handle(spec.name, attempt, exc, elapsed):
                    _sleep(supervisor.backoff(spec.name, attempt))
                    attempt += 1
                    continue
                record_failure(supervisor.failures[spec.name])
                break


@dataclass
class _Flight:
    """One in-flight pool submission."""

    name: str
    attempt: int
    started: float


def _sleep(seconds: float) -> None:
    if seconds > 0:
        time.sleep(seconds)


def _terminate_pool(pool: ProcessPoolExecutor) -> None:
    """Shut a pool down without waiting; best-effort kill its workers.

    Used when workers are known-hung (deadline overruns) or the pool is
    already broken — waiting would block on exactly the processes we are
    trying to get rid of. Touching ``_processes`` is unsupported API, so
    every step is defensive.
    """
    pool.shutdown(wait=False, cancel_futures=True)
    try:
        processes = list((pool._processes or {}).values())
    except Exception:
        processes = []
    for process in processes:
        try:
            process.terminate()
        except Exception:
            pass


def _run_pool(
    pending: List[ExperimentSpec],
    scale: ExperimentScale,
    jobs: int,
    supervisor: _Supervisor,
    collect_metrics: bool,
    profile_dir: Optional[Path],
    record_run: Callable,
    record_failure: Callable,
) -> None:
    """Fan out over a process pool, surviving crashes and hangs.

    The loop keeps three populations: ``ready`` (queued (name, attempt)
    pairs, possibly delayed by backoff), ``inflight`` (submitted futures)
    and ``abandoned`` (futures whose deadline expired — their results are
    discarded whenever they do surface). A :class:`BrokenProcessPool`
    costs the in-flight attempts, not the run: the pool is rebuilt and
    surviving work re-submitted.
    """
    policy = supervisor.policy
    max_workers = min(jobs, len(pending))
    pool = ProcessPoolExecutor(max_workers=max_workers)
    inflight: Dict[Future, _Flight] = {}
    abandoned: Set[Future] = set()
    #: ``(not_before_monotonic, name, attempt)`` work queue.
    ready: List[Tuple[float, str, int]] = [
        (0.0, spec.name, 1) for spec in pending
    ]

    def queue_retry(name: str, attempt: int) -> None:
        ready.append((time.monotonic() + supervisor.backoff(name, attempt),
                      name, attempt + 1))

    def settle_attempt(name: str, attempt: int, exc: Exception,
                       elapsed: float) -> None:
        if supervisor.handle(name, attempt, exc, elapsed):
            queue_retry(name, attempt)
        else:
            record_failure(supervisor.failures[name])

    def rebuild_pool() -> None:
        nonlocal pool
        _terminate_pool(pool)
        abandoned.clear()
        pool = ProcessPoolExecutor(max_workers=max_workers)

    def on_broken_pool(extra: Optional[_Flight], exc: Exception) -> None:
        """Every in-flight attempt died with the pool; retry or fail each."""
        casualties = ([extra] if extra is not None else [])
        casualties += list(inflight.values())
        inflight.clear()
        rebuild_pool()
        now = time.monotonic()
        for flight in casualties:
            settle_attempt(flight.name, flight.attempt, exc,
                           now - flight.started)

    try:
        while inflight or ready:
            now = time.monotonic()
            if not inflight and ready and len(abandoned) >= max_workers:
                # Every slot is hung on an abandoned attempt; nothing
                # will drain without fresh capacity.
                rebuild_pool()
            # Submit due work, never oversubscribing the workers: a
            # queued future's deadline clock would start ticking before
            # any worker picked it up, charging queue time as run time.
            delayed: List[Tuple[float, str, int]] = []
            for index, (not_before, name, attempt) in enumerate(ready):
                if len(inflight) + len(abandoned) >= max_workers:
                    delayed.extend(ready[index:])
                    break
                if not_before > now:
                    delayed.append((not_before, name, attempt))
                    continue
                try:
                    future = pool.submit(_run_one, name, scale,
                                         collect_metrics, profile_dir,
                                         attempt)
                except BrokenProcessPool as exc:
                    on_broken_pool(None, exc)
                    delayed.append((now, name, attempt))
                    continue
                inflight[future] = _Flight(name, attempt, time.monotonic())
            ready = delayed

            if not inflight:
                if ready:
                    _sleep(min(0.05, max(0.0, min(t for t, _, _ in ready)
                                         - time.monotonic())))
                    continue
                break

            completed, _ = wait(set(inflight) | abandoned,
                                timeout=_next_wake(policy, inflight, ready),
                                return_when=FIRST_COMPLETED)
            pool_broke = False
            for future in completed:
                if future in abandoned:
                    # A deadline-expired worker finally surfaced; its
                    # experiment was already settled. Consume and drop.
                    abandoned.discard(future)
                    future.exception()
                    continue
                flight = inflight.pop(future, None)
                if flight is None:
                    continue
                try:
                    payload = future.result()
                    _check_payload(payload)
                    record_run(*payload, attempts=flight.attempt)
                except BrokenProcessPool as exc:
                    on_broken_pool(flight, exc)
                    pool_broke = True
                    break
                except Exception as exc:
                    settle_attempt(flight.name, flight.attempt, exc,
                                   time.monotonic() - flight.started)
            if pool_broke:
                continue

            # Preemptive deadline enforcement: abandon overrunning futures
            # so their slots come back when the worker finishes (or, if
            # every worker is stuck, rebuild the pool outright).
            if policy.deadline_seconds is not None:
                now = time.monotonic()
                for future, flight in list(inflight.items()):
                    elapsed = now - flight.started
                    if elapsed <= policy.deadline_seconds:
                        continue
                    del inflight[future]
                    if not future.cancel():
                        abandoned.add(future)
                    settle_attempt(
                        flight.name, flight.attempt,
                        DeadlineExceeded(
                            f"experiment {flight.name!r} exceeded its "
                            f"{policy.deadline_seconds:.2f}s deadline"),
                        elapsed)
    finally:
        _terminate_pool(pool)


def _next_wake(
    policy: RunPolicy,
    inflight: Dict[Future, _Flight],
    ready: List[Tuple[float, str, int]],
) -> Optional[float]:
    """Seconds until the supervisor must act (deadline or retry due)."""
    now = time.monotonic()
    wakes: List[float] = []
    if policy.deadline_seconds is not None:
        wakes += [flight.started + policy.deadline_seconds - now
                  for flight in inflight.values()]
    wakes += [not_before - now for not_before, _, _ in ready]
    if not wakes:
        return None
    return max(0.01, min(wakes))


def _assemble_metrics(
    sample_sets: Dict[str, tuple],
    timings: Tuple[ExperimentTiming, ...],
    busy_by_pid: Dict[int, float],
    wall_seconds: float,
    supervisor: _Supervisor,
    cache_rejects: int,
) -> Tuple:
    """Label per-experiment snapshots and add the runner's own series.

    Workers are numbered by sorted pid so the labels are stable for one
    run but carry no machine-specific meaning across runs. Supervision
    counters are always registered (at zero on a clean run) so exports
    and CI assertions can rely on their presence.
    """
    from ..obs.metrics import ExperimentMetrics, MetricsRegistry

    per_experiment = tuple(
        ExperimentMetrics(name=spec.name, samples=sample_sets[spec.name])
        for spec in EXPERIMENTS if spec.name in sample_sets
    )
    runner = MetricsRegistry()
    for timing in timings:
        if not timing.cached and not timing.failed:
            runner.gauge("runner_experiment_wall_seconds",
                         {"experiment": timing.name}).set(timing.seconds)
    for worker, pid in enumerate(sorted(busy_by_pid)):
        busy = busy_by_pid[pid]
        runner.gauge("runner_worker_busy_seconds",
                     {"worker": str(worker)}).set(busy)
        runner.gauge("runner_worker_utilization",
                     {"worker": str(worker)}).set(
            busy / wall_seconds if wall_seconds > 0 else 0.0)
    runner.gauge("runner_wall_seconds").set(wall_seconds)
    runner.counter(RETRIES_METRIC).inc(supervisor.retries)
    runner.counter(FAILURES_METRIC).inc(len(supervisor.failures))
    runner.counter(DEADLINE_METRIC).inc(supervisor.deadline_exceeded)
    runner.counter(CACHE_REJECTS_METRIC).inc(cache_rejects)
    return per_experiment + (
        ExperimentMetrics(name="runner", samples=runner.samples()),
    )
