"""Parallel experiment execution with deterministic seed partitioning.

The reproduction suite is ~20 independent experiments. This module holds
the single source of truth for that set (:data:`EXPERIMENTS`), and runs it
either in-process (``jobs=1``, the serial reference implementation) or
fanned out over a :class:`concurrent.futures.ProcessPoolExecutor`.

Three properties make ``jobs=N`` bit-identical to ``jobs=1``:

* **Seed partitioning** — every experiment runs at
  ``scale.for_experiment(name)``, whose seed is a hash of the stable
  ``(scale.name, scale.seed, experiment_name)`` tuple. No experiment
  shares RNG state with another, so execution order and process placement
  cannot matter.
* **Pure workers** — experiment functions only read their scale argument;
  results are plain dataclasses that pickle losslessly (asserted by
  ``tests/experiments/test_parallel_determinism.py``).
* **Stable assembly** — results are keyed by experiment name and written
  into :class:`~repro.experiments.runner.AllResults` fields by name, never
  by completion order.

The same ``(name, scale)`` key also addresses an optional on-disk result
cache, so a repeated ``run_all`` invocation only re-runs experiments whose
scale (or the cache version) changed. Entries are wrapped in the
checksummed envelope from :mod:`repro.experiments.resilience`, so corrupt
or stale bytes degrade to a miss instead of a poisoned report.

Execution is *supervised* (:class:`~repro.experiments.resilience.RunPolicy`):
worker exceptions, deadline overruns and even a broken process pool are
converted into per-experiment :class:`ExperimentFailure` records — the
surviving experiments complete and the run degrades gracefully instead of
discarding finished work. Because a retry re-runs a pure function of
``(name, scale)``, a crash-then-success retry is bit-identical to a run
that never crashed.
"""

from __future__ import annotations

import contextlib
import dataclasses
import hashlib
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple

from .._deprecation import _warn_once
from ..serialization import SerializableMixin
from .animation_curves import _run_fig2, _run_fig4
from .capture_rate import _run_fig7, _run_fig8
from .config import QUICK, ExperimentScale, resolve_jobs
from .corpus_study import _run_corpus_study
from .defense_eval import (
    _run_ipc_defense,
    _run_notification_defense,
    _run_toast_defense,
)
from .defense_tuning import _run_defense_tuning
from .equation_validation import _run_equation_validation
from .noise_sensitivity import _run_noise_sensitivity
from .outcomes_vs_d import _run_fig6
from .password_study import _run_stealthiness, _run_table3
from .real_world_apps import _run_table4
from .resilience import (
    CACHE_REJECTS_METRIC,
    DEADLINE_METRIC,
    DEFAULT_POLICY,
    FAILURES_METRIC,
    RETRIES_METRIC,
    CacheIntegrityError,
    ExperimentFailure,
    PoisonedResult,
    ResultIntegrityError,
    RunJournal,
    RunPolicy,
    SupervisedTask,
    Supervisor,
    chaos_fire,
    decode_envelope,
    encode_envelope,
    run_supervised,
)
from ..storage.store import DurableStore
from .supplementary import _run_fig7_with_cis, _run_table3_by_version
from .toast_continuity import _run_toast_continuity
from .trigger_comparison import _run_trigger_comparison
from .upper_bound import _run_load_impact, _run_table2

#: Bump when a change to experiment code invalidates previously cached
#: results (the cache key has no way to see code changes). Version 4:
#: entries are wrapped in the checksummed integrity envelope.
CACHE_VERSION = 4


@dataclass(frozen=True)
class ExperimentSpec:
    """One independently runnable experiment of the reproduction suite."""

    #: ``AllResults`` field name; also the seed-derivation / cache key.
    name: str
    #: Human-readable progress label (matches the serial runner's log).
    title: str
    #: Module-level experiment function (must pickle by qualified name).
    runner: Callable
    #: Whether ``runner`` accepts an :class:`ExperimentScale`.
    takes_scale: bool = True

    def run(self, scale: ExperimentScale):
        if not self.takes_scale:
            return self.runner()
        return self.runner(scale.for_experiment(self.name))


#: Every experiment of the suite, in the serial runner's historical order.
EXPERIMENTS: Tuple[ExperimentSpec, ...] = (
    ExperimentSpec("fig2", "Fig 2: notification slide-in curve",
                   _run_fig2, takes_scale=False),
    ExperimentSpec("fig4", "Fig 4: toast fade curves",
                   _run_fig4, takes_scale=False),
    ExperimentSpec("fig6", "Fig 6: notification outcomes vs D",
                   _run_fig6, takes_scale=False),
    ExperimentSpec("table2", "Table II: per-device upper bound of D",
                   _run_table2),
    ExperimentSpec("load_impact", "Load impact", _run_load_impact),
    ExperimentSpec("fig7", "Fig 7: capture rate vs D", _run_fig7),
    ExperimentSpec("fig8", "Fig 8: capture rate by Android version",
                   _run_fig8),
    ExperimentSpec("table3", "Table III: password stealing", _run_table3),
    ExperimentSpec("table4", "Table IV: real-world apps", _run_table4),
    ExperimentSpec("stealthiness", "Stealthiness study", _run_stealthiness),
    ExperimentSpec("toast_continuity", "Toast continuity",
                   _run_toast_continuity),
    ExperimentSpec("corpus", "Corpus prevalence study", _run_corpus_study),
    ExperimentSpec("defense_ipc", "Defense: IPC detector", _run_ipc_defense),
    ExperimentSpec("defense_notification", "Defense: enhanced notification",
                   _run_notification_defense),
    ExperimentSpec("defense_toast", "Defense: toast spacing",
                   _run_toast_defense),
    ExperimentSpec("equation_validation", "Eq. (2) validation",
                   _run_equation_validation),
    ExperimentSpec("defense_tuning", "Defense: decision-rule tuning",
                   _run_defense_tuning),
    ExperimentSpec("trigger_comparison", "Trigger-channel comparison",
                   _run_trigger_comparison),
    ExperimentSpec("table3_by_version",
                   "Supplementary: Table III by version",
                   _run_table3_by_version),
    ExperimentSpec("fig7_cis", "Supplementary: Fig 7 confidence intervals",
                   _run_fig7_with_cis),
    ExperimentSpec("noise_sensitivity",
                   "Noise sensitivity: faults vs capture rate / Tmis",
                   _run_noise_sensitivity),
)

_SPECS: Dict[str, ExperimentSpec] = {s.name: s for s in EXPERIMENTS}


def experiment_spec(name: str) -> ExperimentSpec:
    """Look up one registered experiment; unknown names raise a KeyError
    that lists every valid name."""
    spec = _SPECS.get(name)
    if spec is None:
        known = ", ".join(experiment_names())
        raise KeyError(f"unknown experiment {name!r}; known: {known}")
    return spec


@dataclass(frozen=True)
class ExperimentTiming(SerializableMixin):
    """Wall-clock accounting for one experiment of a ``run_all`` pass."""

    name: str
    seconds: float
    cached: bool = False
    #: Attempts consumed (1 for a clean first run or a cache/journal hit).
    attempts: int = 1
    #: True when the experiment ended as an ``ExperimentFailure``.
    failed: bool = False


def experiment_names() -> Tuple[str, ...]:
    return tuple(spec.name for spec in EXPERIMENTS)


@dataclass(frozen=True, kw_only=True)
class ExperimentRequest(SerializableMixin):
    """A fully-typed ``run_experiment`` invocation, validated eagerly.

    The loose-kwargs form of :func:`repro.api.run_experiment` hid two
    traps: extra params silently cannot cross the process boundary, and
    ``jobs != 1`` buys a clean worker process for isolation — never
    speed, since one experiment is one unit of work. This request type
    makes both rules explicit and rejects the illegal combinations at
    construction, before any work is scheduled.
    """

    #: Entry of :func:`experiment_names` (``"fig7"``, ``"table3"``, ...).
    name: str
    scale: ExperimentScale = QUICK
    #: Overrides the scale's ambient fault regime when set.
    faults: Optional[str] = None
    #: ``1`` runs in-process; anything else runs in one worker subprocess
    #: for isolation (never parallelism — see class docstring).
    jobs: int = 1
    #: ``True`` reproduces the experiment's ``run_all`` slot exactly;
    #: ``False`` calls the implementation directly with ``scale`` as given.
    derive_seed: bool = True
    #: Extra keyword params for the experiment function. Only legal with
    #: ``jobs=1`` — params cannot cross the process boundary.
    params: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        experiment_spec(self.name)  # KeyError listing known names
        if self.faults is not None:
            from ..sim.faults import PROFILES

            if self.faults not in PROFILES:
                known = ", ".join(sorted(PROFILES))
                raise ValueError(
                    f"unknown fault profile {self.faults!r}; known: {known}")
        if self.jobs < 0:
            raise ValueError(f"jobs must be >= 0, got {self.jobs!r}")
        if self.jobs != 1 and self.params:
            raise ValueError(
                "experiment params cannot cross the process boundary; "
                "run with jobs=1, or drop params (jobs != 1 buys a clean "
                "worker process for isolation, not speed)")
        if self.jobs != 1 and not self.derive_seed:
            raise ValueError(
                "derive_seed=False calls the experiment implementation "
                "directly and therefore runs in-process; use jobs=1")
        object.__setattr__(self, "params", dict(self.params))

    def effective_scale(self) -> ExperimentScale:
        """The scale after applying the ``faults`` override."""
        if self.faults is not None:
            return self.scale.with_faults(self.faults)
        return self.scale


def reset_id_allocators() -> None:
    """Restart the process-wide debug id counters.

    Window/toast/token ids are allocated by module-global counters; some
    leak into results (``ToastSwitch`` records toast ids). Resetting them
    at each experiment's start makes every result a pure function of
    ``(experiment name, scale)`` — the property the determinism tests
    assert — no matter which process ran what beforehand.
    """
    from ..toast.toast import reset_toast_ids
    from ..toast.token_queue import reset_token_ids
    from ..windows.window import reset_window_ids

    reset_toast_ids()
    reset_token_ids()
    reset_window_ids()


def run_one_isolated(name: str, scale: ExperimentScale):
    """Run one experiment exactly as a pool worker would; return its result.

    The supported cross-process entry point: module-level (pickles by
    qualified name), resets the id allocators, installs the scale's
    fault regime and a fresh stack-reuse executor, and runs ``name`` at
    its derived per-experiment seed — so the result is bit-identical to
    the same experiment's slot in a full ``run_all`` pass.
    """
    _, result, _, _, _ = _execute_one(name, scale)
    return result


def _execute_one(
    name: str,
    scale: ExperimentScale,
    collect_metrics: bool = False,
    profile_dir: Optional[Path] = None,
    attempt: int = 1,
):
    """Worker entry point: run one named experiment at its derived scale.

    Module-level so it pickles for :class:`ProcessPoolExecutor`; returns
    ``(name, result, seconds, samples, pid)`` where ``samples`` is the
    experiment's metric snapshot (``None`` unless ``collect_metrics``) and
    ``pid`` identifies the worker process for utilization accounting. The
    scale's fault regime is installed as the ambient default *inside* the
    worker, so every stack the experiment builds — however deep in the
    call tree — sees the same regime whether the experiment ran serially
    or in a pool process.

    ``attempt`` numbers the supervision retry (1-based). It is consulted
    *only* by the chaos harness — the experiment's seed derivation never
    sees it, which is what makes a crash-then-retry run bit-identical to
    a clean one.

    Each experiment gets its own :class:`TrialExecutor` installed
    ambiently, so its trial loops share one pool of reusable stacks
    (dropped when the experiment finishes, keeping workers lean). With
    ``collect_metrics`` it likewise gets its own
    :class:`~repro.obs.metrics.MetricsRegistry` — registries never cross
    the process boundary, only their pickled sample snapshots do. With
    ``profile_dir`` the experiment body runs under :mod:`cProfile` and its
    stats dump to ``profile_dir/<name>.prof``.
    """
    from ..obs.context import use_metrics
    from ..obs.metrics import MetricsRegistry
    from ..sim.faults import use_default_profile
    from .engine import TrialExecutor, use_executor

    if chaos_fire(name, attempt) == "poison":
        return name, PoisonedResult(name=name, attempt=attempt), 0.0, None, \
            os.getpid()

    spec = _SPECS[name]
    reset_id_allocators()
    registry = MetricsRegistry() if collect_metrics else None
    start = time.perf_counter()
    metrics_ctx = (use_metrics(registry) if collect_metrics
                   else contextlib.nullcontext())
    with use_default_profile(scale.faults), use_executor(TrialExecutor()), \
            metrics_ctx:
        if profile_dir is not None:
            import cProfile

            profiler = cProfile.Profile()
            result = profiler.runcall(spec.run, scale)
            profile_dir.mkdir(parents=True, exist_ok=True)
            profiler.dump_stats(profile_dir / f"{name}.prof")
        else:
            result = spec.run(scale)
    seconds = time.perf_counter() - start
    samples = registry.samples() if registry is not None else None
    return name, result, seconds, samples, os.getpid()


def _check_payload(payload) -> None:
    """Reject worker payloads the supervisor must not accept as results."""
    _, result, _, _, _ = payload
    if isinstance(result, PoisonedResult):
        raise ResultIntegrityError(
            f"worker returned a poisoned result for {result.name!r} "
            f"(attempt {result.attempt})")


# ---------------------------------------------------------------------------
# On-disk result cache
# ---------------------------------------------------------------------------

def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` or ``~/.cache/repro/experiments``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro" / "experiments"


class ResultCache:
    """Envelope-per-key store of experiment results.

    Keys are ``(experiment_name, every ExperimentScale field,
    CACHE_VERSION)`` — exactly the inputs the result is a pure function
    of. Entries are checksummed envelopes
    (:func:`~repro.experiments.resilience.encode_envelope`): corrupt,
    truncated or stale-version bytes degrade to a miss, counted on
    :attr:`integrity_rejects` and the ambient ``repro.obs`` registry as
    ``cache_integrity_rejects_total``. Writes go through collision-free
    temp files, so concurrent ``run_all`` invocations sharing a cache
    directory cannot clobber each other mid-write.
    """

    def __init__(self, directory: Path) -> None:
        self.directory = Path(directory)
        # The cache is optional-durability: a failed write is a counted
        # miss on the next run, never a failed experiment.
        self._store = DurableStore("cache", required=False)
        #: Entries rejected by envelope validation since construction.
        self.integrity_rejects = 0

    def path_for(self, name: str, scale: ExperimentScale) -> Path:
        fields = dataclasses.asdict(scale)
        material = ":".join(
            [f"v{CACHE_VERSION}", name]
            + [f"{key}={fields[key]!r}" for key in sorted(fields)]
        )
        digest = hashlib.sha256(material.encode("utf-8")).hexdigest()[:16]
        return self.directory / f"{name}-{scale.name}-{digest}.pkl"

    def _note_reject(self) -> None:
        from ..obs.context import current_metrics

        self.integrity_rejects += 1
        registry = current_metrics()
        if registry is not None:
            registry.counter(CACHE_REJECTS_METRIC).inc()

    def load(self, name: str, scale: ExperimentScale):
        data = self._store.read_bytes(self.path_for(name, scale))
        if data is None:
            return None
        try:
            return decode_envelope(CACHE_VERSION, data)
        except CacheIntegrityError:
            self._note_reject()
            return None

    def store(self, name: str, scale: ExperimentScale, result) -> bool:
        """Persist one result; ``False`` means the write degraded to a
        miss (the run carries on, the entry recomputes next time)."""
        return self._store.write_bytes(
            self.path_for(name, scale),
            encode_envelope(CACHE_VERSION, result))


# ---------------------------------------------------------------------------
# Supervised execution
# ---------------------------------------------------------------------------

ProgressCallback = Callable[[int, int, ExperimentTiming], None]


@dataclass(frozen=True)
class RunOutcome:
    """Everything one supervised ``run_experiments`` pass produced."""

    #: Successful results keyed by experiment name (failed ones absent).
    results: Dict[str, object]
    #: Per-experiment accounting in registry order (failures included).
    timings: Tuple[ExperimentTiming, ...]
    #: ``ExperimentMetrics`` tuple when metrics were collected, else None.
    metrics: Optional[Tuple]
    #: Permanent failures in registry order (empty on a clean run).
    failures: Tuple[ExperimentFailure, ...] = ()


def run_experiments(
    scale: ExperimentScale = QUICK,
    *,
    jobs: int = 1,
    cache_dir: Optional[Path] = None,
    verbose: bool = False,
    progress: Optional[ProgressCallback] = None,
    collect_metrics: bool = False,
    profile_dir: Optional[Path] = None,
    policy: Optional[RunPolicy] = None,
    journal: Optional[RunJournal] = None,
) -> RunOutcome:
    """Run every experiment under supervision; return a :class:`RunOutcome`.

    ``jobs=1`` runs in-process and is the reference implementation;
    ``jobs=N`` fans out over N worker processes; ``jobs=0`` means one per
    core. Timings come back in registry order regardless of completion
    order.

    ``policy`` governs retries, deadlines and failure semantics (the
    default is inert: one attempt, record failures, keep going). A worker
    exception — or the whole process pool breaking — costs only that
    experiment's attempts: the pool is rebuilt, surviving work is
    re-submitted, and the failure is recorded as an
    :class:`ExperimentFailure` on the outcome. ``journal`` checkpoints
    every completion into a run directory so an interrupted run can be
    resumed, skipping finished experiments.

    With ``collect_metrics`` each experiment runs under its own
    :class:`~repro.obs.metrics.MetricsRegistry` and ``outcome.metrics`` is
    a tuple of :class:`~repro.obs.metrics.ExperimentMetrics`: one snapshot
    per freshly-run experiment (cache hits carry no metrics) plus a
    synthetic ``runner`` entry with per-experiment wall gauges, per-worker
    busy/utilization gauges and the supervision counters
    (``runner_retries_total``, ``runner_failures_total``,
    ``runner_deadline_exceeded_total``, ``cache_integrity_rejects_total``).
    Metrics never feed back into experiment code, so results are
    bit-identical either way. ``profile_dir`` additionally runs each
    experiment under :mod:`cProfile`, dumping ``<name>.prof`` files.
    """
    jobs = resolve_jobs(jobs)
    cache = ResultCache(cache_dir) if cache_dir is not None else None
    supervisor = Supervisor(policy or DEFAULT_POLICY, scale.seed)

    results: Dict[str, object] = {}
    timings: Dict[str, ExperimentTiming] = {}
    sample_sets: Dict[str, tuple] = {}
    busy_by_pid: Dict[int, float] = {}
    done = 0
    total = len(EXPERIMENTS)
    wall_start = time.perf_counter()

    def record(name: str, result, seconds: float, cached: bool,
               attempts: int = 1) -> None:
        nonlocal done
        results[name] = result
        timing = ExperimentTiming(name=name, seconds=seconds, cached=cached,
                                  attempts=attempts)
        timings[name] = timing
        done += 1
        if verbose:
            spec = _SPECS[name]
            suffix = "cache hit" if cached else f"{seconds:.2f}s"
            print(f"[{scale.name}] [{done:2d}/{total}] {spec.title} "
                  f"({suffix})", flush=True)
        if progress is not None:
            progress(done, total, timing)

    def record_run(name: str, result, seconds: float, samples, pid: int,
                   attempts: int = 1) -> None:
        if cache is not None:
            cache.store(name, scale, result)
        if journal is not None:
            journal.store(name, result)
        if samples is not None:
            sample_sets[name] = samples
        busy_by_pid[pid] = busy_by_pid.get(pid, 0.0) + seconds
        record(name, result, seconds, cached=False, attempts=attempts)

    def record_failure(failure: ExperimentFailure) -> None:
        nonlocal done
        if journal is not None:
            journal.store_failure(failure)
        timing = ExperimentTiming(
            name=failure.name, seconds=failure.elapsed_seconds, cached=False,
            attempts=failure.attempts, failed=True)
        timings[failure.name] = timing
        done += 1
        if verbose:
            spec = _SPECS[failure.name]
            print(f"[{scale.name}] [{done:2d}/{total}] {spec.title} "
                  f"(FAILED: {failure.error})", flush=True)
        if progress is not None:
            progress(done, total, timing)

    pending: List[ExperimentSpec] = []
    for spec in EXPERIMENTS:
        hit = journal.load(spec.name) if journal is not None else None
        if hit is not None:
            # Journaled completions also warm the cache so a later
            # cache-only run sees them.
            if cache is not None:
                cache.store(spec.name, scale, hit)
            record(spec.name, hit, 0.0, cached=True)
            continue
        hit = cache.load(spec.name, scale) if cache is not None else None
        if hit is not None:
            if journal is not None:
                journal.store(spec.name, hit)
            record(spec.name, hit, 0.0, cached=True)
        else:
            pending.append(spec)

    run_supervised(
        [SupervisedTask(name=spec.name, fn=_execute_one,
                        args=(spec.name, scale, collect_metrics, profile_dir))
         for spec in pending],
        supervisor,
        jobs=jobs,
        on_success=lambda task, payload, attempt, seconds:
            record_run(*payload, attempts=attempt),
        on_failure=record_failure,
        check=_check_payload,
    )

    failures = tuple(supervisor.failures[spec.name] for spec in EXPERIMENTS
                     if spec.name in supervisor.failures)
    ordered = tuple(timings[spec.name] for spec in EXPERIMENTS)
    if not collect_metrics:
        return RunOutcome(results=results, timings=ordered, metrics=None,
                          failures=failures)

    metrics = _assemble_metrics(
        sample_sets, ordered, busy_by_pid,
        wall_seconds=time.perf_counter() - wall_start,
        supervisor=supervisor,
        cache_rejects=cache.integrity_rejects if cache is not None else 0,
    )
    return RunOutcome(results=results, timings=ordered, metrics=metrics,
                      failures=failures)


def _assemble_metrics(
    sample_sets: Dict[str, tuple],
    timings: Tuple[ExperimentTiming, ...],
    busy_by_pid: Dict[int, float],
    wall_seconds: float,
    supervisor: Supervisor,
    cache_rejects: int,
) -> Tuple:
    """Label per-experiment snapshots and add the runner's own series.

    Workers are numbered by sorted pid so the labels are stable for one
    run but carry no machine-specific meaning across runs. Supervision
    counters are always registered (at zero on a clean run) so exports
    and CI assertions can rely on their presence.
    """
    from ..obs.metrics import ExperimentMetrics, MetricsRegistry

    per_experiment = tuple(
        ExperimentMetrics(name=spec.name, samples=sample_sets[spec.name])
        for spec in EXPERIMENTS if spec.name in sample_sets
    )
    runner = MetricsRegistry()
    for timing in timings:
        if not timing.cached and not timing.failed:
            runner.gauge("runner_experiment_wall_seconds",
                         {"experiment": timing.name}).set(timing.seconds)
    for worker, pid in enumerate(sorted(busy_by_pid)):
        busy = busy_by_pid[pid]
        runner.gauge("runner_worker_busy_seconds",
                     {"worker": str(worker)}).set(busy)
        runner.gauge("runner_worker_utilization",
                     {"worker": str(worker)}).set(
            busy / wall_seconds if wall_seconds > 0 else 0.0)
    runner.gauge("runner_wall_seconds").set(wall_seconds)
    runner.counter(RETRIES_METRIC).inc(supervisor.retries)
    runner.counter(FAILURES_METRIC).inc(len(supervisor.failures))
    runner.counter(DEADLINE_METRIC).inc(supervisor.deadline_exceeded)
    runner.counter(CACHE_REJECTS_METRIC).inc(cache_rejects)
    return per_experiment + (
        ExperimentMetrics(name="runner", samples=runner.samples()),
    )


# ---------------------------------------------------------------------------
# Warn-once shims for the pre-PR-9 private names
# ---------------------------------------------------------------------------

def _deprecated_attrs():
    # Lazily built so the shims always hand back the live objects.
    return {
        "_SPEC_BY_NAME": ("experiment_spec(name)", _SPECS),
        "_run_one": ("run_one_isolated(name, scale)", _execute_one),
        "_reset_global_id_allocators": ("reset_id_allocators()",
                                        reset_id_allocators),
    }


def __getattr__(name: str):
    entry = _deprecated_attrs().get(name)
    if entry is None:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}")
    instead, value = entry
    _warn_once(
        f"{__name__}.{name}",
        f"{__name__}.{name} is private and deprecated; use "
        f"repro.experiments.{instead} instead")
    return value
