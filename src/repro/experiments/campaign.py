"""Fleet-scale campaigns: sharded, resumable ScenarioMatrix sweeps.

The experiment suite sweeps a handful of device × version cells; the
north-star is *fleets* — a 10k–100k cell :class:`ScenarioMatrix` run as
one resumable campaign. This module is that layer:

* :func:`shard_matrix` splits a matrix into deterministic, contiguous
  chunks of its cell sequence. Shard boundaries are pure arithmetic and
  each shard's seed derives through the same
  :meth:`~repro.experiments.config.ExperimentScale.for_experiment`
  hashing the per-cell seeds already use — nothing about sharding
  touches any trial's RNG universe, so the shard count can never change
  a result.
* :func:`_run_shard` is the worker: it runs its cell range with stack
  reuse and folds every trial into a
  :class:`~repro.experiments.aggregate.CampaignAggregate`, returning
  only that digest. Per-trial outcomes never cross the process boundary
  or accumulate anywhere — campaign memory is O(shards), not O(trials).
* shards fan out through the generic supervised runner
  (:func:`~repro.experiments.resilience.run_supervised`): per-shard
  retries, deadlines, broken-pool recovery and the chaos harness all
  apply, with the shard name (``shard-0042``) as the fault-point key.
* :class:`CampaignManifest` extends the
  :class:`~repro.experiments.resilience.RunJournal` layout
  (``campaign.json`` + one atomic envelope per completed shard) so
  ``repro campaign --resume DIR`` re-runs only unfinished shards.
  Because digests merge *exactly* (see :mod:`.aggregate`), a killed and
  resumed campaign's aggregates are bit-identical to an uninterrupted
  run's — as is any re-sharding of the same matrix.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import time
from dataclasses import dataclass, field
from itertools import islice
from pathlib import Path
from typing import Any, Callable, Dict, Mapping, Optional, Tuple

from ..serialization import SerializableMixin
from .aggregate import (
    DEFAULT_GROUP,
    CampaignAggregate,
    MetricAggregate,
    ShardOutcome,
    default_trial_metrics,
)
from .config import FULL, QUICK, SMOKE, ExperimentScale, resolve_jobs
from .engine import ScenarioMatrix, TrialExecutor, TrialSpec, use_executor
from .parallel import reset_id_allocators
from .resilience import (
    DEFAULT_POLICY,
    ExperimentFailure,
    JournalError,
    PoisonedResult,
    ResultIntegrityError,
    RunJournal,
    RunPolicy,
    SupervisedTask,
    Supervisor,
    chaos_fire,
    run_supervised,
)

#: Bump when shard payloads or the manifest layout change incompatibly;
#: versions a campaign directory the same way ``CACHE_VERSION`` versions
#: the result cache.
CAMPAIGN_VERSION = 1

#: Campaign metrics registered on the ambient ``repro.obs`` registry.
SHARDS_TOTAL_METRIC = "campaign_shards_total"
SHARDS_COMPLETED_METRIC = "campaign_shards_completed"
SHARDS_RETRIED_METRIC = "campaign_shards_retried"


# ---------------------------------------------------------------------------
# Sharding
# ---------------------------------------------------------------------------

def shard_name(index: int) -> str:
    """Stable shard identity: journal marker, chaos key, failure record."""
    return f"shard-{index:04d}"


@dataclass(frozen=True)
class ShardSpec(SerializableMixin):
    """One contiguous chunk of a matrix's cell sequence.

    ``seed`` is informational supervision state (it anchors nothing but
    the shard's backoff jitter and the manifest record): the trials
    inside the range keep their matrix-derived per-cell seeds, which is
    exactly why re-sharding cannot move a single result bit.
    """

    index: int
    shards: int
    start: int
    stop: int
    seed: int

    @property
    def name(self) -> str:
        return shard_name(self.index)

    @property
    def cells(self) -> int:
        return self.stop - self.start


def shard_seed(matrix: ScenarioMatrix, index: int, shards: int) -> int:
    """Pure-hash shard seed via the experiment-registry derivation."""
    return matrix.scale.for_experiment(
        f"{matrix.name}/{shard_name(index)}/{shards}").seed


def shard_matrix(matrix: ScenarioMatrix, shards: int) -> Tuple[ShardSpec, ...]:
    """Split ``matrix`` into at most ``shards`` balanced contiguous chunks.

    Chunks are contiguous in cell order (device-major), so one shard
    mostly stays on few devices and the executor's stack reuse keeps
    paying off inside workers. Sizes differ by at most one cell; a
    matrix smaller than ``shards`` gets one single-cell shard per cell.
    """
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    total = len(matrix)
    shards = min(shards, total) or 1
    base, extra = divmod(total, shards)
    specs = []
    start = 0
    for index in range(shards):
        size = base + (1 if index < extra else 0)
        specs.append(ShardSpec(
            index=index,
            shards=shards,
            start=start,
            stop=start + size,
            seed=shard_seed(matrix, index, shards),
        ))
        start += size
    return tuple(specs)


# ---------------------------------------------------------------------------
# Shard worker
# ---------------------------------------------------------------------------

#: ``extractor(spec, value) -> {metric: float}`` and
#: ``group_by(spec, value) -> str`` must be module-level functions (they
#: pickle into pool workers by qualified name).
MetricExtractor = Callable[[TrialSpec, Any], Mapping[str, float]]
GroupBy = Callable[[TrialSpec, Any], str]


def group_by_device(spec: TrialSpec, value: Any) -> str:
    """Group trials by full device key (``"Xiaomi mi8 (Android 10)"``)."""
    return spec.profile.key if spec.profile is not None else "reference"


def group_by_version(spec: TrialSpec, value: Any) -> str:
    """Group trials by major Android version (the Fig. 8 axis)."""
    if spec.profile is None:
        return "reference"
    return str(spec.profile.android_version.major)


def group_by_faults(spec: TrialSpec, value: Any) -> str:
    """Group trials by ambient fault regime (the noise-sensitivity axis)."""
    return str(spec.faults)


#: CLI names for the built-in groupers (``None`` = single ``all`` group).
GROUPERS: Dict[str, Optional[GroupBy]] = {
    "none": None,
    "device": group_by_device,
    "version": group_by_version,
    "faults": group_by_faults,
}


def _run_shard(
    matrix: ScenarioMatrix,
    shard: ShardSpec,
    extractor: Optional[MetricExtractor],
    group_by: Optional[GroupBy],
    attempt: int = 1,
):
    """Worker entry point: run one shard's cell range, return its digest.

    Module-level so it pickles for the pool path; mirrors the experiment
    worker's discipline (chaos gate at entry, id-allocator reset, scale
    fault regime + fresh stack-reuse executor installed ambiently).
    ``attempt`` is consulted only by the chaos harness — trial seeds come
    from the matrix cells, so a crash-then-retry shard is bit-identical
    to one that never crashed.
    """
    from ..sim.faults import use_default_profile

    if chaos_fire(shard.name, attempt) == "poison":
        return PoisonedResult(name=shard.name, attempt=attempt)

    extract = extractor if extractor is not None else default_trial_metrics
    reset_id_allocators()
    aggregate = CampaignAggregate()
    trials = 0
    start = time.perf_counter()
    with use_default_profile(matrix.scale.faults), \
            use_executor(TrialExecutor()) as executor:
        for spec in islice(matrix.cells(), shard.start, shard.stop):
            value = executor.run(spec)
            group = group_by(spec, value) if group_by is not None \
                else DEFAULT_GROUP
            aggregate.observe(group, extract(spec, value))
            trials += 1
    return ShardOutcome(
        index=shard.index,
        trials=trials,
        aggregate_state=aggregate.to_dict(),
        seconds=time.perf_counter() - start,
        pid=os.getpid(),
    )


def _check_shard_payload(payload) -> None:
    """Reject worker payloads the supervisor must not accept as results."""
    if isinstance(payload, PoisonedResult):
        raise ResultIntegrityError(
            f"worker returned a poisoned result for {payload.name!r} "
            f"(attempt {payload.attempt})")
    if not isinstance(payload, ShardOutcome):
        raise ResultIntegrityError(
            f"worker returned {type(payload).__name__}, not a ShardOutcome")


# ---------------------------------------------------------------------------
# Campaign manifest (checkpoint / resume)
# ---------------------------------------------------------------------------

def matrix_fingerprint(matrix: ScenarioMatrix) -> str:
    """sha256 hex over everything that determines the matrix's cells.

    Two matrices with the same fingerprint generate identical cell
    sequences (devices, configs, fault regimes, trials *and* per-cell
    seeds), which is the invariant resume safety rests on.
    """
    material = json.dumps({
        "name": matrix.name,
        "scenario": matrix.scenario,
        "scale": dataclasses.asdict(matrix.scale),
        "devices": [d.key for d in matrix.resolved_devices()],
        "configs": [ScenarioMatrix._config_key(c) for c in matrix.configs],
        "faults": list(matrix.resolved_faults()),
        "trials": matrix.trials,
        "alert_mode": matrix.alert_mode.name,
        "trace_enabled": matrix.trace_enabled,
        "base_params": ScenarioMatrix._config_key(matrix.base_params),
        # Behavior-model axes: part of the cell sequence, so part of the
        # fingerprint — an attacker/user sweep must not resume into the
        # unlabeled matrix it extends.
        "attackers": list(matrix.attackers),
        "users": list(matrix.users),
    }, sort_keys=True)
    return hashlib.sha256(material.encode("utf-8")).hexdigest()


class CampaignManifest(RunJournal):
    """Crash-safe record of one campaign under a run directory.

    Extends the :class:`RunJournal` layout::

        RUN_DIR/
          campaign.json            # matrix fingerprint + shard plan
          results/shard-0007.pkl   # one envelope per completed shard
          failures/shard-0007.json # forensic record of permanent failures

    The manifest pins the matrix *fingerprint* and the shard count, so
    :meth:`resume` refuses a directory journaling a different campaign —
    or the same matrix re-sharded differently, since shard markers from
    one plan mean nothing under another.
    """

    MANIFEST = "campaign.json"

    #: Campaign writes are their own fault-injection target
    #: (``fs:campaign:...``), distinct from plain run journals.
    SURFACE = "campaign"

    def __init__(self, root: Path, matrix: ScenarioMatrix,
                 shards: int) -> None:
        super().__init__(root, matrix.scale, CAMPAIGN_VERSION)
        self.matrix = matrix
        self.shards = int(shards)

    # -- construction ---------------------------------------------------
    @classmethod
    def create(cls, root: Path, matrix: ScenarioMatrix,
               shards: int) -> "CampaignManifest":
        """Start journaling a fresh campaign into ``root``.

        Refuses a directory that already holds completed shards — that
        is either a finished campaign (nothing to do) or an interrupted
        one the caller probably meant to ``--resume``.
        """
        manifest = cls(root, matrix, shards)
        if manifest.manifest_path.exists() and manifest.completed_names():
            raise JournalError(
                f"{manifest.root} already contains completed shards; "
                "resume it (--resume) or choose a fresh --run-dir")
        manifest._write_manifest()
        return manifest

    @classmethod
    def resume(cls, root: Path, matrix: ScenarioMatrix,
               shards: int) -> "CampaignManifest":
        """Open ``root`` for (re-)running this campaign.

        A missing manifest starts a fresh one (``--resume`` is safe on
        the very first run); an existing one must match the requested
        matrix fingerprint and shard plan exactly.
        """
        manifest = cls(root, matrix, shards)
        if not manifest.manifest_path.exists():
            manifest._write_manifest()
            return manifest
        try:
            existing = json.loads(manifest.manifest_path.read_text())
        except (OSError, ValueError) as exc:
            raise JournalError(
                f"unreadable campaign manifest {manifest.manifest_path}: "
                f"{exc}") from exc
        if existing != manifest._manifest():
            raise JournalError(
                f"{manifest.root} journals a different campaign (matrix, "
                "shard plan or format mismatch); choose a fresh --run-dir")
        manifest.sweep_orphans()
        return manifest

    # -- manifest -------------------------------------------------------
    def _manifest(self) -> dict:
        return json.loads(json.dumps({
            "campaign_format": 1,
            "campaign_version": self.version,
            "name": self.matrix.name,
            "scenario": self.matrix.scenario,
            "cells": len(self.matrix),
            "shards": self.shards,
            "matrix_fingerprint": matrix_fingerprint(self.matrix),
        }))


# ---------------------------------------------------------------------------
# Campaign driver
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class CampaignResult(SerializableMixin):
    """Everything one campaign produced, digest-sized.

    ``rows`` are the merged per-``(group, metric)`` statistics in sorted
    order — the only per-data payload, independent of how the campaign
    was sharded, parallelized, interrupted or resumed. Scheduling
    accounting (``retries``, ``seconds``) is excluded from equality for
    the same reason wall clock is everywhere else in the suite.
    """

    name: str
    cells: int
    shards: int
    #: Trials actually folded into ``rows`` (< ``cells`` iff shards failed).
    trials: int
    rows: Tuple[MetricAggregate, ...]
    failures: Tuple[ExperimentFailure, ...] = ()
    retries: int = field(default=0, compare=False)
    seconds: float = field(default=0.0, compare=False)

    def aggregates_json(self) -> str:
        """Canonical JSON of the statistical payload (no scheduling state).

        Byte-identical across shard counts, job counts and kill/resume —
        the string the determinism tests and the CI sweep ``cmp``.
        """
        return json.dumps({
            "name": self.name,
            "cells": self.cells,
            "trials": self.trials,
            "rows": [row.to_dict() for row in self.rows],
        }, sort_keys=True, indent=2) + "\n"


ProgressCallback = Callable[[int, int, "ShardOutcome"], None]


def run_campaign(
    matrix: ScenarioMatrix,
    *,
    shards: int = 8,
    jobs: int = 1,
    policy: Optional[RunPolicy] = None,
    run_dir: Optional[Path] = None,
    resume: bool = False,
    extractor: Optional[MetricExtractor] = None,
    group_by: Optional[GroupBy] = None,
    verbose: bool = False,
) -> CampaignResult:
    """Run ``matrix`` as a sharded, supervised, resumable campaign.

    ``shards`` fixes the checkpoint granularity (and the unit of retry);
    ``jobs`` fixes parallelism — the two are independent, and neither
    affects a single result bit. ``policy`` supervises *shards* the way
    ``run_all``'s policy supervises experiments: retries, deadlines,
    broken-pool recovery. With ``run_dir`` every completed shard is
    journaled; ``resume=True`` re-runs only unfinished shards and the
    merged aggregates are bit-identical to an uninterrupted run.

    ``extractor`` maps one trial to named float series (default:
    :func:`~repro.experiments.aggregate.default_trial_metrics`);
    ``group_by`` partitions trials into named groups aggregated
    separately (default: one ``all`` group). Both must be module-level
    functions so they pickle into pool workers.
    """
    from ..obs.context import current_metrics

    jobs = resolve_jobs(jobs)
    shard_specs = shard_matrix(matrix, shards)
    manifest: Optional[CampaignManifest] = None
    if run_dir is not None:
        opener = CampaignManifest.resume if resume else CampaignManifest.create
        manifest = opener(Path(run_dir), matrix, len(shard_specs))

    registry = current_metrics()

    def count(metric: str, amount: int) -> None:
        if registry is not None and amount:
            registry.counter(metric).inc(amount)

    count(SHARDS_TOTAL_METRIC, len(shard_specs))

    wall_start = time.perf_counter()
    outcomes: Dict[int, ShardOutcome] = {}
    done = 0

    def note(outcome: ShardOutcome, cached: bool) -> None:
        nonlocal done
        done += 1
        if verbose:
            suffix = "journaled" if cached else f"{outcome.seconds:.2f}s"
            print(f"[{matrix.name}] [{done:3d}/{len(shard_specs)}] "
                  f"{shard_name(outcome.index)}: {outcome.trials} trials "
                  f"({suffix})", flush=True)

    pending = []
    for shard in shard_specs:
        hit = manifest.load(shard.name) if manifest is not None else None
        if isinstance(hit, ShardOutcome):
            outcomes[shard.index] = hit
            note(hit, cached=True)
        else:
            pending.append(shard)

    supervisor = Supervisor(policy or DEFAULT_POLICY, matrix.scale.seed)

    def on_success(task: SupervisedTask, outcome: ShardOutcome,
                   attempt: int, seconds: float) -> None:
        if manifest is not None:
            manifest.store(task.name, outcome)
        outcomes[outcome.index] = outcome
        count(SHARDS_COMPLETED_METRIC, 1)
        note(outcome, cached=False)

    def on_failure(failure: ExperimentFailure) -> None:
        if manifest is not None:
            manifest.store_failure(failure)
        if verbose:
            print(f"[{matrix.name}] {failure.name} FAILED: {failure.error}",
                  flush=True)

    run_supervised(
        [SupervisedTask(name=shard.name, fn=_run_shard,
                        args=(matrix, shard, extractor, group_by))
         for shard in pending],
        supervisor,
        jobs=jobs,
        on_success=on_success,
        on_failure=on_failure,
        check=_check_shard_payload,
    )
    count(SHARDS_RETRIED_METRIC, supervisor.retries)

    # Merge in shard order. The exact-sum digests make the merge order
    # mathematically irrelevant; fixing it anyway means even a future
    # non-exact statistic would fail deterministically, not flakily.
    merged = CampaignAggregate()
    for index in sorted(outcomes):
        merged.merge(outcomes[index].aggregate())

    failures = tuple(supervisor.failures[name]
                     for name in sorted(supervisor.failures))
    return CampaignResult(
        name=matrix.name,
        cells=len(matrix),
        shards=len(shard_specs),
        trials=sum(outcome.trials for outcome in outcomes.values()),
        rows=merged.rows(),
        failures=failures,
        retries=supervisor.retries,
        seconds=time.perf_counter() - wall_start,
    )


# ---------------------------------------------------------------------------
# Matrix specs (the CLI's JSON input)
# ---------------------------------------------------------------------------

_SCALES = {"full": FULL, "quick": QUICK, "smoke": SMOKE}


def matrix_from_spec(spec: Mapping[str, Any]) -> ScenarioMatrix:
    """Build a :class:`ScenarioMatrix` from a JSON-shaped mapping.

    Shape (only ``name`` and ``scenario`` are required)::

        {"name": "fleet", "scenario": "notification",
         "scale": "quick", "seed": 7, "faults": "mild",
         "devices": ["pixel 2", ["mi8", "10"]],
         "versions": ["9", "10"],
         "configs": [{"attacking_window_ms": 100.0}],
         "fault_profiles": ["none", "mild"],
         "trials": 50,
         "attackers": ["draw-and-destroy", "notification-flooding"],
         "users": ["stochastic-human", "gui-agent"],
         "base_params": {"duration_ms": 400.0}}

    ``devices`` entries are model names (or ``[model, version]`` pairs
    for ambiguous models); ``versions`` expands to every evaluation
    device on those Android versions. ``seed``/``faults`` override the
    named scale's defaults.
    """
    from ..devices.registry import device

    unknown = set(spec) - {
        "name", "scenario", "scale", "seed", "faults", "devices", "versions",
        "configs", "fault_profiles", "trials", "base_params",
        "attackers", "users",
    }
    if unknown:
        raise ValueError(
            f"unknown matrix spec keys: {', '.join(sorted(unknown))}")
    for key in ("name", "scenario"):
        if key not in spec:
            raise ValueError(f"matrix spec is missing required key {key!r}")

    scale_name = str(spec.get("scale", "quick")).lower()
    try:
        scale = _SCALES[scale_name]
    except KeyError:
        raise ValueError(
            f"unknown scale {scale_name!r}; valid: "
            f"{', '.join(sorted(_SCALES))}") from None
    if "seed" in spec:
        scale = scale.with_seed(int(spec["seed"]))
    if "faults" in spec:
        scale = scale.with_faults(str(spec["faults"]))

    devices = []
    for entry in spec.get("devices", ()):
        if isinstance(entry, str):
            devices.append(device(entry))
        else:
            model, version = entry
            devices.append(device(model, version))

    configs = tuple(dict(c) for c in spec.get("configs", ())) or ({},)
    return ScenarioMatrix(
        name=str(spec["name"]),
        scenario=str(spec["scenario"]),
        scale=scale,
        devices=tuple(devices),
        versions=tuple(str(v) for v in spec.get("versions", ())),
        configs=configs,
        fault_profiles=tuple(str(f) for f in spec.get("fault_profiles", ())),
        trials=int(spec.get("trials", 1)),
        base_params=dict(spec.get("base_params", {})),
        attackers=tuple(str(a) for a in spec.get("attackers", ())),
        users=tuple(str(u) for u in spec.get("users", ())),
    )


def format_campaign(result: CampaignResult) -> str:
    """Human-readable campaign summary (the CLI's default output)."""
    lines = [
        f"campaign {result.name}: {result.trials}/{result.cells} trials "
        f"over {result.shards} shards in {result.seconds:.1f}s "
        f"({result.retries} shard retries, {len(result.failures)} failed)",
        "",
        f"{'group':<24} {'metric':<28} {'count':>7} {'mean':>10} "
        f"{'stddev':>10} {'p50':>10} {'p95':>10} {'p99':>10}",
    ]
    for row in result.rows:
        lines.append(
            f"{row.group:<24} {row.name:<28} {row.count:>7d} "
            f"{row.mean:>10.4f} {row.stddev:>10.4f} {row.p50:>10.4f} "
            f"{row.p95:>10.4f} {row.p99:>10.4f}")
    for failure in result.failures:
        lines.append(f"FAILED {failure.name}: {failure.kind} "
                     f"after {failure.attempts} attempts — {failure.error}")
    return "\n".join(lines) + "\n"
