"""Fig. 7 and Fig. 8: touch-event capture rate vs attacking window.

Protocol (paper Section VI-B): for each D in {50..200} ms, each participant
types 10 random 10-character strings into the testing app while the
draw-and-destroy overlay attack runs; the capture rate is captured
characters over the total typed. Fig. 7 aggregates all participants
(box-plot statistics per D); Fig. 8 splits by Android version, showing
Android 10/11 capturing less because the shrunken ``Trm`` widens the
mistouch gap.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..serialization import SerializableMixin
from .._deprecation import deprecated_entry_point
from ..sim.rng import SeededRng
from ..users.participant import Participant, generate_participants
from .config import FIG7_DURATIONS, FIG7_PAPER_MEANS, ExperimentScale, QUICK
from .engine import scoped_executor
from .scenarios import run_capture_trial


@dataclass(frozen=True)
class CaptureBoxStats(SerializableMixin):
    """Box-plot statistics of per-participant capture rates at one D."""

    attacking_window_ms: float
    mean: float
    median: float
    minimum: float
    maximum: float
    q1: float
    q3: float
    per_participant: Tuple[float, ...]


@dataclass(frozen=True)
class Fig7Result(SerializableMixin):
    """Capture-rate distribution per attacking window."""

    stats: Tuple[CaptureBoxStats, ...]
    paper_means: Tuple[float, ...]

    def means(self) -> List[float]:
        return [s.mean for s in self.stats]

    @property
    def is_increasing(self) -> bool:
        means = self.means()
        return all(a <= b + 1.0 for a, b in zip(means, means[1:]))


@dataclass(frozen=True)
class Fig8Result(SerializableMixin):
    """Mean capture rate per Android version per attacking window."""

    durations: Tuple[float, ...]
    by_version: Dict[str, Tuple[float, ...]]

    def version_mean(self, version: str) -> float:
        series = self.by_version[version]
        return sum(series) / len(series)


def _quartiles(values: Sequence[float]) -> Tuple[float, float]:
    ordered = sorted(values)
    if len(ordered) < 4:
        return ordered[0], ordered[-1]
    quartiles = statistics.quantiles(ordered, n=4)
    return quartiles[0], quartiles[2]


def _participant_rate(
    participant: Participant,
    d: float,
    scale: ExperimentScale,
    seed_stream: SeededRng,
) -> float:
    captured = 0
    total = 0
    for string_index in range(scale.strings_per_d):
        seed = seed_stream.randint(0, 2**31 - 1)
        trial = run_capture_trial(
            participant, d, seed=seed, n_chars=scale.chars_per_string
        )
        captured += trial.committed_to_overlay
        total += trial.total_taps
    return captured / total if total else 0.0


def _run_fig7(
    scale: ExperimentScale = QUICK,
    durations: Sequence[float] = FIG7_DURATIONS,
    participants: Optional[Sequence[Participant]] = None,
) -> Fig7Result:
    """Capture-rate box statistics per D across the participant pool."""
    pool = list(participants) if participants is not None else generate_participants(
        SeededRng(scale.seed, "participants"), count=scale.participants
    )
    stats: List[CaptureBoxStats] = []
    with scoped_executor():
        for d in durations:
            rates: List[float] = []
            for participant in pool:
                stream = SeededRng(
                    scale.seed, f"fig7/{d}/{participant.participant_id}"
                )
                rates.append(100.0 * _participant_rate(participant, d, scale, stream))
            q1, q3 = _quartiles(rates)
            stats.append(
                CaptureBoxStats(
                    attacking_window_ms=d,
                    mean=sum(rates) / len(rates),
                    median=statistics.median(rates),
                    minimum=min(rates),
                    maximum=max(rates),
                    q1=q1,
                    q3=q3,
                    per_participant=tuple(rates),
                )
            )
    return Fig7Result(stats=tuple(stats), paper_means=tuple(FIG7_PAPER_MEANS))


def _run_fig8(
    scale: ExperimentScale = QUICK,
    durations: Sequence[float] = FIG7_DURATIONS,
) -> Fig8Result:
    """Capture rate per Android version.

    Participants are drawn per version group (so every series exists even
    at reduced scale), using that version's devices from the registry."""
    from ..devices.registry import devices_by_version

    per_group = max(1, scale.participants // 4)
    groups: Dict[str, List[Participant]] = {}
    for version, devices in sorted(devices_by_version().items()):
        count = min(per_group, len(devices)) if scale.participants < 30 else len(devices)
        groups[version] = generate_participants(
            SeededRng(scale.seed, f"fig8-participants/{version}"),
            count=count,
            devices=devices,
        )
    by_version: Dict[str, Tuple[float, ...]] = {}
    with scoped_executor():
        for version, members in sorted(groups.items()):
            series: List[float] = []
            for d in durations:
                rates = []
                for participant in members:
                    stream = SeededRng(
                        scale.seed, f"fig8/{d}/{participant.participant_id}"
                    )
                    rates.append(100.0 * _participant_rate(participant, d, scale, stream))
                series.append(sum(rates) / len(rates))
            by_version[version] = tuple(series)
    return Fig8Result(durations=tuple(durations), by_version=by_version)


run_fig7 = deprecated_entry_point(
    "run_fig7", _run_fig7, "repro.api.run_experiment('fig7', ...)")

run_fig8 = deprecated_entry_point(
    "run_fig8", _run_fig8, "repro.api.run_experiment('fig8', ...)")
