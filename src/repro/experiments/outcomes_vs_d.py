"""Fig. 6: the five notification outcomes under an increasing D.

The paper's Fig. 6 screenshots the notification drawer at increasing
attacking windows: Λ1 (nothing) through Λ5 (view + message + icon). The
reproduction sweeps D on one device and reports the worst outcome per D —
which must be monotonically non-decreasing and traverse the Λ ladder.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from ..serialization import SerializableMixin
from .._deprecation import deprecated_entry_point
from ..devices.profiles import DeviceProfile
from ..devices.registry import reference_device
from ..systemui.outcomes import NotificationOutcome
from .engine import TrialSpec, scoped_executor


@dataclass(frozen=True)
class Fig6Result(SerializableMixin):
    """Worst outcome per attacking window on one device."""

    device_key: str
    published_upper_bound_d: float
    outcomes: Tuple[Tuple[float, NotificationOutcome], ...]

    def outcome_at(self, d: float) -> NotificationOutcome:
        for probed, outcome in self.outcomes:
            if probed == d:
                return outcome
        raise KeyError(f"D={d} was not probed")

    @property
    def ladder(self) -> Dict[str, float]:
        """First probed D at which each observed outcome appears."""
        first: Dict[str, float] = {}
        for d, outcome in self.outcomes:
            first.setdefault(outcome.label, d)
        return first

    @property
    def is_monotone(self) -> bool:
        values = [outcome.value for _, outcome in self.outcomes]
        return all(a <= b for a, b in zip(values, values[1:]))


def _run_fig6(
    profile: Optional[DeviceProfile] = None,
    durations: Optional[Sequence[float]] = None,
    seed: int = 7,
    trial_ms: float = 3000.0,
) -> Fig6Result:
    """Sweep D and classify the notification outcome at each value."""
    profile = profile or reference_device()
    if durations is None:
        bound = profile.published_upper_bound_d
        durations = (
            bound * 0.3,
            bound * 0.7,
            bound * 0.97,
            bound + 30.0,
            bound + 150.0,
            bound + 420.0,
            bound + 900.0,
        )
    specs = [
        TrialSpec(
            scenario="notification",
            seed=seed,
            profile=profile,
            params={"attacking_window_ms": float(d), "duration_ms": trial_ms},
        )
        for d in durations
    ]
    with scoped_executor() as executor:
        outcomes = tuple(
            (spec.params["attacking_window_ms"], executor.run(spec))
            for spec in specs
        )
    return Fig6Result(
        device_key=profile.key,
        published_upper_bound_d=profile.published_upper_bound_d,
        outcomes=outcomes,
    )


run_fig6 = deprecated_entry_point(
    "run_fig6", _run_fig6, "repro.api.run_experiment('fig6', ...)")
