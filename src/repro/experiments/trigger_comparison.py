"""Comparing password-entry detection channels (Section VI-C2 note).

The paper uses the accessibility service to detect when the user enters a
password but stresses that "other approaches can be used". This study
compares the two implemented triggers end to end:

* **accessibility** — fires on the password widget's focus event
  (~2 ms dispatch), but is defeated by Alipay-style hardening (needing
  the username workaround);
* **UI-state side channel** — polling-based, slower to fire and noisy,
  but immune to accessibility hardening.

Reported per channel: trigger latency from focus, launch success, and
end-to-end theft success on both a plain and a hardened victim.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..serialization import SerializableMixin
from .._deprecation import deprecated_entry_point
from ..apps.accessibility import AccessibilityBus
from ..apps.catalog import VictimAppSpec, bank_of_america, spec_by_name
from ..apps.ime import RealKeyboard
from ..apps.keyboard import KeyboardSpec, default_keyboard_rect
from ..apps.victim import VictimApp
from ..attacks.password_stealing import PasswordStealingAttack
from ..attacks.timing_channels import SideChannelConfig
from ..sim.rng import SeededRng
from ..stack import AndroidStack
from ..users.participant import Participant, generate_participants
from ..users.typist import Typist
from ..windows.permissions import Permission
from .config import ExperimentScale, QUICK
from .engine import TrialSpec, drive_until, run_trial, scenario, scoped_executor


@dataclass(frozen=True)
class TriggerTrialResult(SerializableMixin):
    """One end-to-end run with one trigger channel."""

    channel: str
    victim: str
    launched: bool
    trigger_latency_ms: Optional[float]
    derived_matches: bool
    trigger_path: str


@dataclass(frozen=True)
class TriggerComparisonResult(SerializableMixin):
    trials: Tuple[TriggerTrialResult, ...]

    def channel_trials(self, channel: str) -> List[TriggerTrialResult]:
        return [t for t in self.trials if t.channel == channel]

    def mean_latency(self, channel: str) -> Optional[float]:
        latencies = [
            t.trigger_latency_ms
            for t in self.channel_trials(channel)
            if t.trigger_latency_ms is not None
        ]
        if not latencies:
            return None
        return sum(latencies) / len(latencies)

    @property
    def accessibility_is_faster(self) -> bool:
        a11y = self.mean_latency("accessibility")
        side = self.mean_latency("side_channel")
        return a11y is not None and side is not None and a11y < side


@scenario("trigger-channel")
def trigger_channel_scenario(
    stack: AndroidStack,
    channel: str,
    victim_spec: VictimAppSpec,
    participant: Participant,
    password: str,
) -> TriggerTrialResult:
    bus = AccessibilityBus(stack.simulation)
    spec = KeyboardSpec(default_keyboard_rect(
        participant.device.screen_width_px,
        participant.device.screen_height_px))
    ime = RealKeyboard(stack, spec)
    victim = VictimApp(stack, bus, victim_spec, ime)
    malware = PasswordStealingAttack(stack, bus, victim, spec)
    stack.permissions.grant(malware.package, Permission.SYSTEM_ALERT_WINDOW)
    if channel == "accessibility":
        malware.arm()
    else:
        malware.arm_with_side_channel(SideChannelConfig())

    victim.open_login()
    stack.run_for(100.0)
    focus_time = stack.now
    victim.focus_password()
    stack.run_for(600.0)  # generous trigger window for both channels

    launched = malware.launched
    latency = (
        malware.result().launched_at - focus_time if launched else None
    )
    derived_matches = False
    if launched:
        typist = Typist(stack, spec, participant.typing, participant.touch)
        session = typist.type_text(password)
        drive_until(stack, lambda: session.complete)
        stack.run_for(300.0)
        result = malware.finish()
        derived_matches = result.derived_password == password
    return TriggerTrialResult(
        channel=channel,
        victim=victim_spec.app_name,
        launched=launched,
        trigger_latency_ms=latency,
        derived_matches=derived_matches,
        trigger_path=malware.result().trigger_path,
    )


def _run_one(
    channel: str,
    victim_spec: VictimAppSpec,
    seed: int,
    password: str,
) -> TriggerTrialResult:
    participant = generate_participants(
        SeededRng(seed, "trigger-cmp"), count=1
    )[0]
    return run_trial(TrialSpec(
        scenario="trigger-channel",
        seed=seed,
        profile=participant.device,
        params={"channel": channel, "victim_spec": victim_spec,
                "participant": participant, "password": password},
    ))


def _run_trigger_comparison(
    scale: ExperimentScale = QUICK,
    password: str = "aB3$xy",
) -> TriggerComparisonResult:
    """Both channels against a plain and a hardened victim."""
    trials: List[TriggerTrialResult] = []
    victims = (bank_of_america(), spec_by_name("Alipay"))
    with scoped_executor():
        for channel_index, channel in enumerate(("accessibility", "side_channel")):
            for victim_index, victim_spec in enumerate(victims):
                seed = scale.seed + channel_index * 101 + victim_index * 13
                trials.append(_run_one(channel, victim_spec, seed, password))
    return TriggerComparisonResult(trials=tuple(trials))


run_trigger_comparison = deprecated_entry_point(
    "run_trigger_comparison", _run_trigger_comparison, "repro.api.run_experiment('trigger_comparison', ...)")
