"""Streaming, mergeable aggregation for fleet-scale campaigns.

A campaign (:mod:`repro.experiments.campaign`) folds hundreds of
thousands of trial outcomes into summary statistics without ever
retaining per-trial values — memory stays O(shards), not O(trials). Each
shard owns one :class:`CampaignAggregate`; the driver merges the shard
aggregates into the campaign's final statistics. Two properties make
that safe:

* **Streaming** — a :class:`MetricDigest` holds Welford-style running
  moments (count / mean / variance via first and second moments) plus a
  fixed-bucket quantile sketch built on the :mod:`repro.obs` histogram
  machinery. Nothing grows with the trial count.
* **Exact, order-independent merge** — naive running-moment merges
  (Chan et al.) are floating-point order *dependent*: re-sharding the
  same trials regroups the partial sums and shifts the merged bits.
  Digest sums are therefore kept as Shewchuk partials
  (:class:`ExactSum`, the algorithm inside :func:`math.fsum`): every
  ``add``/``merge`` is exact, so the rounded totals — and every derived
  statistic — are bit-identical no matter how the trials were sharded,
  ordered, or checkpointed and resumed. The property suite
  (``tests/experiments/test_aggregate_properties.py``) pins merged ==
  batch and merge-order independence.

Snapshots are frozen :class:`MetricAggregate` rows, the unit the
campaign manifest persists and the CLI renders.
"""

from __future__ import annotations

import enum
import math
import numbers
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

from ..obs.metrics import DEFAULT_BUCKETS, Histogram
from ..serialization import SerializableMixin


class ExactSum:
    """Exactly-represented running sum of floats (Shewchuk partials).

    The partials list holds non-overlapping doubles whose mathematical
    sum equals the true sum of everything added so far; :attr:`value`
    rounds that exact sum once, via :func:`math.fsum`. Because the
    represented sum is exact, ``add`` and ``merge`` are associative and
    commutative *in exact arithmetic* — the rounded value cannot depend
    on insertion order or on how the inputs were partitioned across
    shards. The partials list stays tiny in practice (one entry per
    distinct binade touched), so the digest remains O(1)-ish per metric.

    Non-finite inputs (inf/NaN) poison the sum just as they would a
    plain accumulation; campaign metrics are expected to be finite.
    """

    __slots__ = ("_partials",)

    def __init__(self, partials: Optional[Iterable[float]] = None) -> None:
        self._partials: List[float] = []
        if partials:
            for x in partials:
                self.add(float(x))

    def add(self, x: float) -> None:
        partials = self._partials
        i = 0
        for y in partials:
            if abs(x) < abs(y):
                x, y = y, x
            hi = x + y
            lo = y - (hi - x)
            if lo:
                partials[i] = lo
                i += 1
            x = hi
        partials[i:] = [x]

    def merge(self, other: "ExactSum") -> None:
        for x in other._partials:
            self.add(x)

    @property
    def value(self) -> float:
        """The correctly-rounded exact sum."""
        return math.fsum(self._partials)

    def to_list(self) -> List[float]:
        return list(self._partials)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ExactSum({self.value!r})"


@dataclass(frozen=True)
class MetricAggregate(SerializableMixin):
    """One metric's merged campaign statistics: the snapshot row.

    ``variance``/``stddev`` are population moments. ``p50``/``p95``/
    ``p99`` are bucket-interpolated estimates from the quantile sketch,
    clamped to the observed ``[min, max]`` — same estimator, same
    default bounds as the :mod:`repro.obs` histograms.
    """

    group: str
    name: str
    count: int
    sum: float
    mean: float
    variance: float
    stddev: float
    min: float
    max: float
    p50: float
    p95: float
    p99: float


class MetricDigest:
    """Streaming moments + quantile sketch for one metric series."""

    __slots__ = ("_count", "_sum", "_sumsq", "_min", "_max",
                 "_bounds", "_bucket_counts")

    def __init__(self, buckets: Tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        self._count = 0
        self._sum = ExactSum()
        self._sumsq = ExactSum()
        self._min = math.inf
        self._max = -math.inf
        self._bounds: Tuple[float, ...] = tuple(float(b) for b in buckets)
        self._bucket_counts: List[int] = [0] * (len(self._bounds) + 1)

    # ------------------------------------------------------------------
    def add(self, value: float) -> None:
        value = float(value)
        self._count += 1
        self._sum.add(value)
        self._sumsq.add(value * value)
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value
        # Same bucketing rule as obs.Histogram.observe (bisect over the
        # shared DEFAULT_BUCKETS bounds); inlined via the sketch below.
        from bisect import bisect_left

        self._bucket_counts[bisect_left(self._bounds, value)] += 1

    def merge(self, other: "MetricDigest") -> None:
        if other._bounds != self._bounds:
            raise ValueError("cannot merge digests with different buckets")
        self._count += other._count
        self._sum.merge(other._sum)
        self._sumsq.merge(other._sumsq)
        self._min = min(self._min, other._min)
        self._max = max(self._max, other._max)
        for i, c in enumerate(other._bucket_counts):
            self._bucket_counts[i] += c

    # ------------------------------------------------------------------
    @property
    def count(self) -> int:
        return self._count

    @property
    def mean(self) -> float:
        return self._sum.value / self._count if self._count else 0.0

    @property
    def variance(self) -> float:
        """Population variance from the exact first/second moments."""
        if self._count == 0:
            return 0.0
        mean = self.mean
        return max(self._sumsq.value / self._count - mean * mean, 0.0)

    def _sketch(self) -> Histogram:
        """A throwaway obs histogram wired to this digest's state.

        Quantile estimation is delegated to
        :meth:`repro.obs.metrics.Histogram.quantile` so the campaign
        layer and the metrics plane share one estimator.
        """
        hist = Histogram("digest", buckets=self._bounds)
        hist._counts = list(self._bucket_counts)
        hist._count = self._count
        hist._min = self._min
        hist._max = self._max
        return hist

    def quantile(self, q: float) -> Optional[float]:
        return self._sketch().quantile(q)

    def snapshot(self, group: str, name: str) -> MetricAggregate:
        empty = self._count == 0
        quantiles = [self.quantile(q) for q in (0.5, 0.95, 0.99)]
        return MetricAggregate(
            group=group,
            name=name,
            count=self._count,
            sum=self._sum.value,
            mean=self.mean,
            variance=self.variance,
            stddev=math.sqrt(self.variance),
            min=0.0 if empty else self._min,
            max=0.0 if empty else self._max,
            p50=quantiles[0] if quantiles[0] is not None else 0.0,
            p95=quantiles[1] if quantiles[1] is not None else 0.0,
            p99=quantiles[2] if quantiles[2] is not None else 0.0,
        )

    # -- persistence ----------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "count": self._count,
            "sum_partials": self._sum.to_list(),
            "sumsq_partials": self._sumsq.to_list(),
            "min": self._min,
            "max": self._max,
            "bounds": list(self._bounds),
            "bucket_counts": list(self._bucket_counts),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "MetricDigest":
        digest = cls(buckets=tuple(data["bounds"]))
        digest._count = int(data["count"])
        digest._sum = ExactSum(data["sum_partials"])
        digest._sumsq = ExactSum(data["sumsq_partials"])
        digest._min = float(data["min"])
        digest._max = float(data["max"])
        digest._bucket_counts = [int(c) for c in data["bucket_counts"]]
        return digest


#: The group key used when a campaign has no ``group_by`` function.
DEFAULT_GROUP = "all"


class CampaignAggregate:
    """Every metric digest of one shard (or of the merged campaign).

    Two-level map: ``group -> metric name -> MetricDigest``. Groups
    partition trials (e.g. by fault profile or Android version); metrics
    are the named series the extractor produced for each trial.
    """

    __slots__ = ("_groups", "_buckets")

    def __init__(self, buckets: Tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        self._groups: Dict[str, Dict[str, MetricDigest]] = {}
        self._buckets = tuple(float(b) for b in buckets)

    def observe(self, group: str, metrics: Mapping[str, float]) -> None:
        digests = self._groups.setdefault(group, {})
        for name, value in metrics.items():
            digest = digests.get(name)
            if digest is None:
                digest = digests[name] = MetricDigest(buckets=self._buckets)
            digest.add(value)

    def merge(self, other: "CampaignAggregate") -> None:
        for group, digests in other._groups.items():
            mine = self._groups.setdefault(group, {})
            for name, digest in digests.items():
                if name in mine:
                    mine[name].merge(digest)
                else:
                    clone = MetricDigest.from_dict(digest.to_dict())
                    mine[name] = clone

    @property
    def trials(self) -> int:
        """Maximum per-metric count — the number of observed trials when
        every trial contributed every metric of its group."""
        return max(
            (d.count for digests in self._groups.values()
             for d in digests.values()),
            default=0,
        )

    def rows(self) -> Tuple[MetricAggregate, ...]:
        """Snapshot every digest, sorted by ``(group, name)``."""
        return tuple(
            self._groups[group][name].snapshot(group, name)
            for group in sorted(self._groups)
            for name in sorted(self._groups[group])
        )

    # -- persistence ----------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "buckets": list(self._buckets),
            "groups": {
                group: {name: digest.to_dict()
                        for name, digest in sorted(digests.items())}
                for group, digests in sorted(self._groups.items())
            },
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CampaignAggregate":
        aggregate = cls(buckets=tuple(data["buckets"]))
        for group, digests in data["groups"].items():
            aggregate._groups[group] = {
                name: MetricDigest.from_dict(payload)
                for name, payload in digests.items()
            }
        return aggregate


# ---------------------------------------------------------------------------
# Default trial-metric extraction
# ---------------------------------------------------------------------------

def default_trial_metrics(spec: Any, value: Any) -> Dict[str, float]:
    """Turn one trial's measurement into named float series.

    The default extractor handles every scenario result shape in the
    repo without per-type registration:

    * plain numbers and bools become ``{"value": x}``;
    * enums contribute ``value`` (their numeric rank) plus any numeric
      or boolean properties (``NotificationOutcome`` thus yields
      ``value`` and ``suppressed``);
    * mappings of numerics pass through;
    * dataclass-like objects contribute every numeric/bool attribute in
      ``__dict__``/fields plus every numeric/bool property
      (``CaptureTrialResult`` thus yields ``total_taps`` ... and the
      derived ``capture_rate``).

    Campaigns needing something else pass their own module-level
    extractor ``fn(spec, value) -> Mapping[str, float]`` (module-level
    so it pickles into shard workers).
    """
    out: Dict[str, float] = {}

    def put(name: str, raw: Any) -> None:
        if isinstance(raw, bool):
            out[name] = 1.0 if raw else 0.0
        elif isinstance(raw, numbers.Real) and math.isfinite(float(raw)):
            out[name] = float(raw)

    if isinstance(value, (bool, numbers.Real)):
        put("value", value)
        return out
    if isinstance(value, Mapping):
        for name, raw in value.items():
            put(str(name), raw)
        return out
    if isinstance(value, enum.Enum):
        put("value", value.value)
    # Numeric instance attributes (dataclass fields land in __dict__).
    for name, raw in sorted(getattr(value, "__dict__", {}).items()):
        if not name.startswith("_"):
            put(name, raw)
    # Numeric properties (derived statistics like capture_rate). Walk the
    # MRO's class dicts rather than dir(): EnumMeta.__dir__ hides plain
    # properties like NotificationOutcome.suppressed on older Pythons.
    seen = set()
    for klass in type(value).__mro__:
        for name, descriptor in sorted(vars(klass).items()):
            if name.startswith("_") or name in seen:
                continue
            seen.add(name)
            if isinstance(descriptor, property):
                try:
                    put(name, descriptor.fget(value))  # type: ignore[misc]
                except Exception:
                    continue
    return out


@dataclass(frozen=True)
class ShardOutcome(SerializableMixin):
    """Everything one completed shard reports back to the driver.

    Carries the shard's *aggregate*, never its per-trial outcomes — this
    is the O(shards) memory contract. ``seconds`` and ``pid`` are
    excluded from equality (wall clock and worker placement vary run to
    run; the statistics must not).
    """

    index: int
    trials: int
    aggregate_state: Dict[str, Any]
    seconds: float = field(default=0.0, compare=False)
    pid: int = field(default=0, compare=False)

    def aggregate(self) -> CampaignAggregate:
        return CampaignAggregate.from_dict(self.aggregate_state)
