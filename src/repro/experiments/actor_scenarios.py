"""Scenario families built on the actor layer.

Two new regimes extend the paper's draw-and-destroy study along the axes
the actor layer makes sweepable:

* ``notification-flooding`` — the attacker gives up the animation race
  and saturates the alert *channel* instead (Knock-Knock style): one
  persistent overlay, so the overlay-presence alert completes cleanly
  (Λ5), buried under a stream of junk notifications. Evaluated against
  the IPC detector, whose paired add/remove rule is structurally blind
  to a single ``addView``.
* ``gui-agent-user`` — the victim is a screenshot-then-click GUI agent
  rather than a human: its perceive-to-act latency is hundreds of
  milliseconds, so an overlay swap anywhere inside the inference window
  captures a click decided against a stale frame. The attacker axis
  stays draw-and-destroy; what changes is the timing-window *regime*.

Both scenarios default their behavior models but accept the engine's
resolved ``attacker`` / ``user`` params, so a :class:`ScenarioMatrix`
can sweep either axis (e.g. flooding vs. racing against the same
detector, or human vs. agent under the same attack).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from ..actors import AttackerModel, UserModel, get_attacker, get_channel, get_user
from ..apps.keyboard import KeyboardSpec, default_keyboard_rect
from ..defenses.ipc_detector import DetectionRule, IpcDetector
from ..serialization import SerializableMixin
from ..stack import AndroidStack
from ..systemui.outcomes import NotificationOutcome
from ..users.passwords import PasswordGenerator
from ..users.perception import PerceptionModel
from ..windows.touch import TapOutcome
from .engine import TrialSpec, drive_until, run_trial, scenario

#: Settling time appended after the attack is withdrawn (ms).
_SETTLE_MS = 400.0


# ---------------------------------------------------------------------------
# Notification flooding (channel saturation)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class FloodingTrialResult(SerializableMixin):
    """One channel-saturation run, judged on both fronts.

    The animation front (``worst_outcome``) and the channel front
    (``alert_occluded`` / ``alert_conspicuous``) fail independently: a
    flooding attacker *loses* the animation race on purpose and still
    keeps the alert from ever reaching the user.
    """

    worst_outcome: NotificationOutcome
    #: Was the overlay-presence alert pushed below the drawer fold?
    alert_occluded: bool
    #: Junk notifications the channel accepted during the run.
    posts_delivered: int
    #: Drawer saturation (posts / status-bar slots) at measurement time.
    channel_saturation: float
    #: Would the modelled user actually have noticed the alert?
    alert_conspicuous: bool
    #: Did the IPC detector flag the attacking package?
    detector_flagged: bool

    @property
    def alert_evaded(self) -> bool:
        """The user never effectively saw the alert, however that happened."""
        return not self.alert_conspicuous

    @property
    def stealthy(self) -> bool:
        """Evaded both the user and the deployed defense."""
        return self.alert_evaded and not self.detector_flagged


@scenario("notification-flooding")
def notification_flooding_scenario(
    stack: AndroidStack,
    attacker: Optional[AttackerModel] = None,
    duration_ms: float = 3000.0,
    detection_rule: Optional[DetectionRule] = None,
    perception: Optional[PerceptionModel] = None,
    **attack_params: Any,
) -> FloodingTrialResult:
    """Run one attacker against the notification channel + IPC detector.

    Defaults to the flooding attacker; sweeping the matrix's
    ``attackers`` axis over ``("notification-flooding",
    "draw-and-destroy")`` contrasts the two evasion strategies against
    the *same* defense: the racer beats the user but trips the detector,
    the flooder is invisible to the detector but must bury the alert.
    """
    attacker = attacker or get_attacker("notification-flooding")
    perception = perception or PerceptionModel()
    drawer = get_channel("notification-drawer")
    detector = IpcDetector(stack.router, stack.system_server,
                           rule=detection_rule,
                           terminate_on_detection=False)
    handle = attacker.launch(stack, **attack_params)
    package = handle.package
    stack.run_for(duration_ms)
    # Judge the channel while the attack (and any surviving alert) is live.
    worst_during = stack.system_ui.worst_outcome()
    occluded = stack.system_ui.alert_occluded(package)
    posts = stack.system_ui.posted_count()
    saturation = drawer.saturation(stack)
    conspicuous = drawer.alert_conspicuous(stack, package, perception)
    attacker.withdraw(handle)
    stack.run_for(_SETTLE_MS)
    return FloodingTrialResult(
        worst_outcome=max(worst_during, stack.system_ui.worst_outcome()),
        alert_occluded=occluded,
        posts_delivered=posts,
        channel_saturation=saturation,
        alert_conspicuous=conspicuous,
        detector_flagged=detector.is_flagged(package),
    )


def run_flooding_trial(
    seed: int,
    profile=None,
    duration_ms: float = 3000.0,
    attacker: str = "notification-flooding",
    faults: Any = None,
    **attack_params: Any,
) -> FloodingTrialResult:
    """One flooding-family trial through the engine's attacker axis."""
    return run_trial(TrialSpec(
        scenario="notification-flooding",
        seed=seed,
        profile=profile,
        faults=faults,
        params={"duration_ms": duration_ms, **attack_params},
        attacker=attacker,
    ))


# ---------------------------------------------------------------------------
# GUI-agent victims (stale-percept timing regime)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class AgentTrialResult(SerializableMixin):
    """One user-model session typed under an active overlay attack."""

    user_model: str
    total_taps: int
    #: Taps whose gesture committed into the attacker's overlay.
    captured_committed: int
    #: Taps whose ACTION_DOWN coordinates the overlay saw.
    captured_down: int
    cancelled: int
    #: Taps decided against a frame whose topmost window had changed by
    #: act time — the stale-percept signature of slow perceive-to-act.
    stale_taps: int
    mean_percept_age_ms: float
    detector_flagged: bool

    @property
    def capture_rate(self) -> float:
        if self.total_taps == 0:
            return 0.0
        return self.captured_committed / self.total_taps

    @property
    def stale_fraction(self) -> float:
        if self.total_taps == 0:
            return 0.0
        return self.stale_taps / self.total_taps


@scenario("gui-agent-user")
def gui_agent_user_scenario(
    stack: AndroidStack,
    user: Optional[UserModel] = None,
    attacker: Optional[AttackerModel] = None,
    n_chars: int = 8,
    detection_rule: Optional[DetectionRule] = None,
    **attack_params: Any,
) -> AgentTrialResult:
    """One user model types a random string under draw-and-destroy.

    Defaults to the ``gui-agent`` user; sweeping the ``users`` axis over
    ``("stochastic-human", "gui-agent")`` measures how the same attack's
    capture rate shifts when the victim's perceive-to-act latency grows
    from one keystroke interval to a screenshot + inference round trip.
    """
    user = user or get_user("gui-agent")
    attacker = attacker or get_attacker("draw-and-destroy")
    spec = KeyboardSpec(default_keyboard_rect(
        stack.profile.screen_width_px, stack.profile.screen_height_px))
    # Text comes off the stack's seed tree so matrix cells stay
    # self-contained (no side-channel seed param).
    generator = PasswordGenerator(
        stack.simulation.rng.child("agent-text"), spec)
    text = generator.generate_letters(n_chars)
    detector = IpcDetector(stack.router, stack.system_server,
                           rule=detection_rule,
                           terminate_on_detection=False)
    handle = attacker.launch(stack, **attack_params)
    stack.run_for(50.0)  # let the first overlay come up
    session = user.type_text(stack, spec, text)
    drive_until(stack, lambda: session.complete)
    attacker.withdraw(handle)
    stack.run_for(_SETTLE_MS)
    package = handle.package
    committed = sum(
        1 for t in session.taps
        if t.tap.outcome is TapOutcome.DELIVERED
        and t.tap.target_owner == package
    )
    cancelled = sum(
        1 for t in session.taps
        if t.tap.outcome is TapOutcome.CANCELLED_WINDOW_REMOVED
    )
    return AgentTrialResult(
        user_model=user.name,
        total_taps=len(session.taps),
        captured_committed=committed,
        captured_down=session.captured_by(package),
        cancelled=cancelled,
        stale_taps=session.stale_count,
        mean_percept_age_ms=session.mean_percept_age_ms,
        detector_flagged=detector.is_flagged(package),
    )


def run_gui_agent_trial(
    seed: int,
    profile=None,
    user: str = "gui-agent",
    attacker: str = "draw-and-destroy",
    n_chars: int = 8,
    faults: Any = None,
    **attack_params: Any,
) -> AgentTrialResult:
    """One agent-family trial through the engine's user/attacker axes."""
    return run_trial(TrialSpec(
        scenario="gui-agent-user",
        seed=seed,
        profile=profile,
        faults=faults,
        params={"n_chars": n_chars, **attack_params},
        attacker=attacker,
        user=user,
    ))
