"""Registered scenario families: named, scale-aware behavior-model sweeps.

The 21 pinned experiments (:data:`~repro.experiments.parallel.EXPERIMENTS`)
reproduce the paper and are frozen — their QUICK report is byte-locked by
``tests/experiments/test_golden_report.py``. New studies built on the
actor layer register here instead: a *family* names a
:class:`~repro.experiments.engine.ScenarioMatrix` builder (so the same
study runs at SMOKE/QUICK/FULL) plus a summarizer that turns the matrix's
outcomes into report rows. Families get their own golden snapshot
(``tests/experiments/golden/families_quick.md``) without touching the
legacy one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence

from .._registry import Registry
from .config import ExperimentScale
from .engine import ScenarioMatrix, TrialExecutor, TrialOutcome, use_executor

# Families run these scenarios; importing the module registers them.
from . import actor_scenarios  # noqa: F401

SummarizeFn = Callable[[Sequence[TrialOutcome]], List[str]]
BuildFn = Callable[[ExperimentScale], ScenarioMatrix]


@dataclass(frozen=True)
class ScenarioFamily:
    """One named study: a matrix builder plus its report summarizer."""

    name: str
    title: str
    description: str
    build: BuildFn
    summarize: SummarizeFn


_FAMILIES: Registry[ScenarioFamily] = Registry("family")


def family(name: str, *, title: str, description: str,
           summarize: SummarizeFn) -> Callable[[BuildFn], BuildFn]:
    """Register the decorated matrix builder as the family ``name``."""

    def register(build: BuildFn) -> BuildFn:
        _FAMILIES.register(name)(ScenarioFamily(
            name=name, title=title, description=description,
            build=build, summarize=summarize))
        return build

    return register


def get_family(name: str) -> ScenarioFamily:
    return _FAMILIES.get(name)


def family_names() -> List[str]:
    return _FAMILIES.names()


# ---------------------------------------------------------------------------
# Running and reporting
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class FamilyResult:
    """One family's matrix run at one scale."""

    family: str
    matrix: ScenarioMatrix
    outcomes: List[TrialOutcome]


def run_family(name: str, scale: ExperimentScale) -> FamilyResult:
    """Run one family's matrix (with stack reuse) at ``scale``."""
    fam = get_family(name)
    matrix = fam.build(scale)
    with use_executor(TrialExecutor()) as executor:
        outcomes = executor.run_matrix(matrix)
    return FamilyResult(family=name, matrix=matrix, outcomes=outcomes)


def run_families(scale: ExperimentScale) -> Dict[str, FamilyResult]:
    """Run every registered family, in name order."""
    return {name: run_family(name, scale) for name in family_names()}


def format_families_report(results: Dict[str, FamilyResult],
                           scale: ExperimentScale) -> str:
    """Deterministic markdown over family results (golden-snapshot food)."""
    lines = [f"# Actor-layer scenario families (scale: {scale.name})", ""]
    for name in sorted(results):
        fam = get_family(name)
        result = results[name]
        lines.append(f"## {name} — {fam.title}")
        lines.append("")
        lines.append(fam.description)
        lines.append("")
        lines.append(f"- cells: {len(result.outcomes)}")
        lines.extend(fam.summarize(result.outcomes))
        lines.append("")
    return "\n".join(lines)


def _group_by(outcomes: Sequence[TrialOutcome],
              key: Callable[[TrialOutcome], str]) -> Dict[str, List[TrialOutcome]]:
    groups: Dict[str, List[TrialOutcome]] = {}
    for outcome in outcomes:
        groups.setdefault(key(outcome), []).append(outcome)
    return groups


# ---------------------------------------------------------------------------
# Family: notification flooding (channel saturation vs. animation racing)
# ---------------------------------------------------------------------------

def _summarize_flooding(outcomes: Sequence[TrialOutcome]) -> List[str]:
    lines = [
        "",
        "| attacker | trials | worst outcome | occluded | conspicuous "
        "| detector flagged | mean saturation |",
        "|---|---|---|---|---|---|---|",
    ]
    groups = _group_by(outcomes, lambda o: o.spec.attacker or "-")
    for label in sorted(groups):
        values = [o.value for o in groups[label]]
        worst = max(v.worst_outcome for v in values)
        occluded = sum(1 for v in values if v.alert_occluded)
        conspicuous = sum(1 for v in values if v.alert_conspicuous)
        flagged = sum(1 for v in values if v.detector_flagged)
        saturation = sum(v.channel_saturation for v in values) / len(values)
        lines.append(
            f"| {label} | {len(values)} | {worst.label} "
            f"| {occluded}/{len(values)} | {conspicuous}/{len(values)} "
            f"| {flagged}/{len(values)} | {saturation:.2f} |")
    return lines


@family(
    "notification-flooding",
    title="Channel saturation vs. animation racing",
    description=(
        "Both attackers suppress the overlay-presence alert, by opposite "
        "means: draw-and-destroy races the slide-in (Lambda1, but its "
        "add/remove cycling trips the IPC detector), flooding lets the "
        "alert complete (Lambda5) and buries it below the drawer fold "
        "with junk posts — invisible to a detector that keys on paired "
        "addView/removeView."),
    summarize=_summarize_flooding,
)
def _build_flooding(scale: ExperimentScale) -> ScenarioMatrix:
    return ScenarioMatrix(
        name="family/notification-flooding",
        scenario="notification-flooding",
        scale=scale,
        attackers=("draw-and-destroy", "notification-flooding"),
        trials=scale.boundary_trials_per_d,
        # The IPC detector needs >= 8 paired cycles in its 3 s window to
        # flag the racer; shorter runs would understate its exposure.
        base_params={"duration_ms": max(scale.boundary_trial_ms, 3000.0)},
    )


# ---------------------------------------------------------------------------
# Family: GUI-agent victims (stale-percept timing regime)
# ---------------------------------------------------------------------------

def _summarize_gui_agent(outcomes: Sequence[TrialOutcome]) -> List[str]:
    lines = [
        "",
        "| user | trials | capture rate | stale taps | mean percept age (ms) "
        "| detector flagged |",
        "|---|---|---|---|---|---|",
    ]
    groups = _group_by(outcomes, lambda o: o.spec.user or "-")
    for label in sorted(groups):
        values = [o.value for o in groups[label]]
        capture = sum(v.capture_rate for v in values) / len(values)
        stale = sum(v.stale_taps for v in values)
        taps = sum(v.total_taps for v in values)
        age = sum(v.mean_percept_age_ms for v in values) / len(values)
        flagged = sum(1 for v in values if v.detector_flagged)
        lines.append(
            f"| {label} | {len(values)} | {capture * 100:.1f}% "
            f"| {stale}/{taps} | {age:.1f} | {flagged}/{len(values)} |")
    return lines


@family(
    "gui-agent-user",
    title="Human thumbs vs. screenshot-then-click agents",
    description=(
        "The same draw-and-destroy attack against two victim models: the "
        "paper's stochastic human (perceive-to-act is one keystroke "
        "interval) and a GUI agent whose screenshot + inference loop "
        "stretches that gap to hundreds of milliseconds — every tap is "
        "decided against a frame that old, widening the attacker's "
        "effective timing window."),
    summarize=_summarize_gui_agent,
)
def _build_gui_agent(scale: ExperimentScale) -> ScenarioMatrix:
    return ScenarioMatrix(
        name="family/gui-agent-user",
        scenario="gui-agent-user",
        scale=scale,
        # Short windows are where the regimes separate: human taps die
        # to mid-gesture removals while the agent's stale clicks land.
        configs=({"attacking_window_ms": 75.0},
                 {"attacking_window_ms": 150.0}),
        attackers=("draw-and-destroy",),
        users=("gui-agent", "stochastic-human"),
        trials=scale.boundary_trials_per_d,
        base_params={"n_chars": min(scale.chars_per_string, 8)},
    )
