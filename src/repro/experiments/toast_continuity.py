"""Section IV analysis: continuity of the draw-and-destroy toast attack.

Runs the toast attack for an observation window and measures:

* how many toasts were displayed, and that the token queue stayed within
  Android's 50-per-app cap;
* the opacity dip at every toast switch — with the fade overlap it stays
  in the high nineties, far above any flicker-perception threshold;
* coverage over time: the fraction of the observation window during which
  the fake content was at (near-)full opacity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..serialization import SerializableMixin
from .._deprecation import deprecated_entry_point
from ..attacks.toast_attack import DrawAndDestroyToastAttack, ToastAttackConfig
from ..devices.profiles import DeviceProfile
from ..obs.context import current_metrics
from ..stack import AndroidStack
from ..toast.lifecycle import ToastSwitch
from ..toast.toast import TOAST_LENGTH_LONG_MS, TOAST_LENGTH_SHORT_MS
from ..windows.compositor import coverage as glass_coverage
from ..windows.geometry import Rect
from .config import ExperimentScale, QUICK
from .engine import TrialSpec, run_trial, scenario, scoped_executor

#: On-glass coverage is a fraction; bucket it finely near 1.0 where the
#: attack lives.
_COVERAGE_BUCKETS = (0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0)


@dataclass(frozen=True)
class ToastContinuityResult(SerializableMixin):
    """Continuity metrics of one toast-attack run."""

    duration_ms: float
    toast_duration_ms: float
    toasts_shown: int
    switches: Tuple[ToastSwitch, ...]
    min_switch_coverage: float
    mean_switch_gap_ms: float
    max_queue_depth_observed: int
    coverage_fraction_above_95: float

    @property
    def imperceptible(self) -> bool:
        """No switch dipped below a conservative 75% visibility floor."""
        return self.min_switch_coverage >= 0.75


@scenario("toast-continuity")
def toast_continuity_scenario(
    stack: AndroidStack,
    observation_ms: float,
    toast_duration_ms: float = TOAST_LENGTH_LONG_MS,
    inter_toast_gap_ms: float = 0.0,
) -> ToastContinuityResult:
    """Run the toast attack and measure switch visibility."""
    profile = stack.profile
    if inter_toast_gap_ms:
        stack.notification_manager.inter_toast_gap_ms = inter_toast_gap_ms
    rect = Rect(0, 1400, profile.screen_width_px, profile.screen_height_px)
    attack = DrawAndDestroyToastAttack(
        stack,
        ToastAttackConfig(rect=rect, duration_ms=toast_duration_ms),
        content_provider=lambda: "fake-keyboard",
    )
    attack.start()
    max_depth = 0
    sample_step = 250.0
    samples_above = 0
    samples_total = 0
    elapsed = 0.0
    warmup = 1000.0
    while elapsed < observation_ms:
        stack.run_for(sample_step)
        elapsed += sample_step
        depth = stack.notification_manager.queue.depth_for(attack.package)
        max_depth = max(max_depth, depth)
        if elapsed >= warmup:
            samples_total += 1
            if attack.coverage_at(stack.now) >= 0.95:
                samples_above += 1
            registry = current_metrics()
            if registry is not None:
                # Cross-check the analytic coverage against what is
                # actually on glass, through the compositor. Pure
                # observation: ``glass_coverage`` consumes no randomness
                # and schedules nothing, so results are unchanged; it
                # exists to feed the compositor metric series.
                registry.histogram(
                    "compositor_on_glass_coverage",
                    buckets=_COVERAGE_BUCKETS,
                ).observe(glass_coverage(
                    stack.screen, rect, stack.now,
                    predicate=lambda w: w.owner == attack.package,
                    faults=stack.simulation.faults,
                ))
    attack.stop()
    stack.run_for(toast_duration_ms + 1500.0)

    switches = tuple(attack.switches())
    min_coverage = min((s.min_coverage for s in switches), default=1.0)
    mean_gap = (
        sum(s.switch_gap_ms for s in switches) / len(switches) if switches else 0.0
    )
    return ToastContinuityResult(
        duration_ms=observation_ms,
        toast_duration_ms=toast_duration_ms,
        toasts_shown=len(attack.displayed_toasts()),
        switches=switches,
        min_switch_coverage=min_coverage,
        mean_switch_gap_ms=mean_gap,
        max_queue_depth_observed=max_depth,
        coverage_fraction_above_95=(
            samples_above / samples_total if samples_total else 0.0
        ),
    )


def _run_toast_continuity(
    scale: ExperimentScale = QUICK,
    profile: Optional[DeviceProfile] = None,
    toast_duration_ms: float = TOAST_LENGTH_LONG_MS,
    inter_toast_gap_ms: float = 0.0,
) -> ToastContinuityResult:
    """Run the toast attack and measure switch visibility.

    ``inter_toast_gap_ms`` > 0 evaluates the toast-spacing defense: the
    same metrics then show deep, long dips.
    """
    return run_trial(TrialSpec(
        scenario="toast-continuity",
        seed=scale.seed,
        profile=profile,
        params={
            "observation_ms": scale.toast_observation_ms,
            "toast_duration_ms": toast_duration_ms,
            "inter_toast_gap_ms": inter_toast_gap_ms,
        },
    ))


def compare_toast_durations(
    scale: ExperimentScale = QUICK,
) -> Tuple[ToastContinuityResult, ToastContinuityResult]:
    """Paper Section IV-D: 3.5 s toasts switch less often than 2 s toasts
    over the same attack period — return (short, long) for comparison."""
    with scoped_executor():
        short = _run_toast_continuity(scale, toast_duration_ms=TOAST_LENGTH_SHORT_MS)
        long = _run_toast_continuity(scale, toast_duration_ms=TOAST_LENGTH_LONG_MS)
    return short, long


run_toast_continuity = deprecated_entry_point(
    "run_toast_continuity", _run_toast_continuity, "repro.api.run_experiment('toast_continuity', ...)")
