"""Section VII: defense evaluation.

* **IPC detector** — detection rate and latency against the overlay attack
  across attacking windows, false positives on benign overlay workloads,
  and the (negligible) per-transaction overhead;
* **Enhanced notification** — with the ``t = 690 ms`` hide delay installed,
  the attack can no longer keep the alert at Λ1 for any D: the alert
  animates to full visibility;
* **Toast spacing** — with a scheduling gap between toasts, every switch
  produces a deep visible flicker.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..serialization import SerializableMixin
from .._deprecation import deprecated_entry_point
from ..attacks.overlay_attack import DrawAndDestroyOverlayAttack, OverlayAttackConfig
from ..defenses.benign import BenignOverlayApp
from ..defenses.enhanced_notification import (
    DEFAULT_HIDE_DELAY_MS,
    EnhancedNotificationDefense,
)
from ..defenses.ipc_detector import DetectionRule, IpcDetector
from ..devices.profiles import DeviceProfile
from ..devices.registry import reference_device
from ..stack import AndroidStack
from ..systemui.outcomes import NotificationOutcome
from ..windows.permissions import Permission
from .config import ExperimentScale, QUICK
from .engine import TrialSpec, run_trial, scenario, scoped_executor
from .toast_continuity import ToastContinuityResult, _run_toast_continuity


# ---------------------------------------------------------------------------
# IPC-based detection (Section VII-A)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class IpcDefenseTrial:
    attacking_window_ms: float
    detected: bool
    detection_latency_ms: Optional[float]
    overlay_windows_created: int


@dataclass(frozen=True)
class IpcDefenseResult(SerializableMixin):
    trials: Tuple[IpcDefenseTrial, ...]
    benign_apps_observed: int
    false_positives: int
    monitor_overhead_ms_per_txn: float

    @property
    def detection_rate(self) -> float:
        return sum(1 for t in self.trials if t.detected) / len(self.trials)

    @property
    def median_detection_latency_ms(self) -> Optional[float]:
        latencies = sorted(
            t.detection_latency_ms for t in self.trials if t.detection_latency_ms is not None
        )
        if not latencies:
            return None
        return latencies[len(latencies) // 2]


@scenario("ipc-defense-attack")
def ipc_defense_attack_scenario(
    stack: AndroidStack,
    attacking_window_ms: float,
    attack_ms: float = 8000.0,
    rule: Optional[DetectionRule] = None,
) -> Tuple[IpcDefenseTrial, Optional[float]]:
    """One attack run with the detector installed; also reports the mean
    monitor+analyzer overhead per inspected transaction (or ``None``)."""
    detector = IpcDetector(stack.router, stack.system_server, rule=rule)
    attack = DrawAndDestroyOverlayAttack(
        stack, OverlayAttackConfig(attacking_window_ms=attacking_window_ms)
    )
    stack.permissions.grant(attack.package, Permission.SYSTEM_ALERT_WINDOW)
    start_time = stack.now
    attack.start()
    stack.run_for(attack_ms)
    attack.stop()
    stack.run_for(500.0)
    detection = next(
        (det for det in detector.detections if det.caller == attack.package), None
    )
    trial = IpcDefenseTrial(
        attacking_window_ms=attacking_window_ms,
        detected=detection is not None,
        detection_latency_ms=(
            detection.time - start_time if detection is not None else None
        ),
        overlay_windows_created=stack.system_server.windows_created,
    )
    overhead = None
    if detector.monitor.transactions_seen:
        overhead = (
            (detector.monitor.overhead_ms + detector.overhead_ms)
            / detector.monitor.transactions_seen
        )
    return trial, overhead


@scenario("ipc-defense-benign")
def ipc_defense_benign_scenario(
    stack: AndroidStack,
    benign_observation_ms: float = 240_000.0,
    rule: Optional[DetectionRule] = None,
) -> Tuple[int, int]:
    """Benign floating-widget control run; returns (apps, false positives)."""
    detector = IpcDetector(stack.router, stack.system_server, rule=rule)
    benign_apps = []
    for i in range(3):
        app = BenignOverlayApp(
            stack, package=f"com.benign.app{i}", dwell_ms=20_000.0, pause_ms=6_000.0
        )
        stack.permissions.grant(app.package, Permission.SYSTEM_ALERT_WINDOW)
        app.start()
        benign_apps.append(app)
    stack.run_for(benign_observation_ms)
    for app in benign_apps:
        app.stop()
    stack.run_for(500.0)
    false_positives = sum(1 for app in benign_apps if detector.is_flagged(app.package))
    return len(benign_apps), false_positives


def _run_ipc_defense(
    scale: ExperimentScale = QUICK,
    profile: Optional[DeviceProfile] = None,
    durations: Sequence[float] = (50.0, 100.0, 150.0, 200.0, 300.0),
    rule: Optional[DetectionRule] = None,
    attack_ms: float = 8000.0,
    benign_observation_ms: float = 240_000.0,
) -> IpcDefenseResult:
    """Attack trials with the detector installed + a benign control run."""
    profile = profile or reference_device()
    with scoped_executor() as executor:
        attack_runs = executor.map([
            TrialSpec(
                scenario="ipc-defense-attack",
                seed=scale.seed + index,
                profile=profile,
                params={"attacking_window_ms": d, "attack_ms": attack_ms,
                        "rule": rule},
            )
            for index, d in enumerate(durations)
        ])
        # Benign control: floating-widget apps must not be flagged.
        benign_observed, false_positives = executor.run(TrialSpec(
            scenario="ipc-defense-benign",
            seed=scale.seed + 991,
            profile=profile,
            params={"benign_observation_ms": benign_observation_ms, "rule": rule},
        ))
    trials = [trial for trial, _ in attack_runs]
    overhead_samples = [overhead for _, overhead in attack_runs
                        if overhead is not None]
    return IpcDefenseResult(
        trials=tuple(trials),
        benign_apps_observed=benign_observed,
        false_positives=false_positives,
        monitor_overhead_ms_per_txn=(
            sum(overhead_samples) / len(overhead_samples) if overhead_samples else 0.0
        ),
    )


# ---------------------------------------------------------------------------
# Enhanced notification defense (Section VII-B)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class NotificationDefenseTrial:
    attacking_window_ms: float
    outcome_without_defense: NotificationOutcome
    outcome_with_defense: NotificationOutcome

    @property
    def defense_effective(self) -> bool:
        """The defense must surface the alert whenever the undefended
        attack suppressed it."""
        if self.outcome_without_defense is NotificationOutcome.LAMBDA1:
            return self.outcome_with_defense > NotificationOutcome.LAMBDA1
        return True


@dataclass(frozen=True)
class NotificationDefenseResult(SerializableMixin):
    hide_delay_ms: float
    trials: Tuple[NotificationDefenseTrial, ...]
    hides_suppressed: int

    @property
    def all_effective(self) -> bool:
        return all(t.defense_effective for t in self.trials)


@scenario("defended-notification")
def defended_notification_scenario(
    stack: AndroidStack,
    attacking_window_ms: float,
    attack_ms: float,
    hide_delay_ms: Optional[float],
) -> Tuple[NotificationOutcome, int]:
    """Overlay attack with the hide-delay defense optionally installed;
    returns (worst outcome, hides the defense suppressed)."""
    defense = None
    if hide_delay_ms is not None:
        defense = EnhancedNotificationDefense(
            stack.system_server, hide_delay_ms=hide_delay_ms
        ).install()
    attack = DrawAndDestroyOverlayAttack(
        stack, OverlayAttackConfig(attacking_window_ms=attacking_window_ms)
    )
    stack.permissions.grant(attack.package, Permission.SYSTEM_ALERT_WINDOW)
    attack.start()
    stack.run_for(attack_ms)
    worst = stack.system_ui.worst_outcome()
    attack.stop()
    stack.run_for(1500.0)
    worst = max(worst, stack.system_ui.worst_outcome())
    return worst, (defense.hides_suppressed if defense is not None else 0)


def _attack_outcome(
    profile: DeviceProfile,
    d: float,
    seed: int,
    attack_ms: float,
    hide_delay_ms: Optional[float],
) -> Tuple[NotificationOutcome, int]:
    return run_trial(TrialSpec(
        scenario="defended-notification",
        seed=seed,
        profile=profile,
        params={"attacking_window_ms": d, "attack_ms": attack_ms,
                "hide_delay_ms": hide_delay_ms},
    ))


def _run_notification_defense(
    scale: ExperimentScale = QUICK,
    profile: Optional[DeviceProfile] = None,
    durations: Optional[Sequence[float]] = None,
    hide_delay_ms: float = DEFAULT_HIDE_DELAY_MS,
    attack_ms: float = 4000.0,
) -> NotificationDefenseResult:
    """Compare attack outcomes with and without the hide delay installed."""
    profile = profile or reference_device()
    if durations is None:
        bound = profile.published_upper_bound_d
        durations = (bound * 0.3, bound * 0.6, bound * 0.9)
    trials: List[NotificationDefenseTrial] = []
    suppressed_total = 0
    with scoped_executor():
        for index, d in enumerate(durations):
            without, _ = _attack_outcome(
                profile, float(d), scale.seed + index, attack_ms, hide_delay_ms=None
            )
            with_defense, suppressed = _attack_outcome(
                profile, float(d), scale.seed + index, attack_ms,
                hide_delay_ms=hide_delay_ms
            )
            suppressed_total += suppressed
            trials.append(
                NotificationDefenseTrial(
                    attacking_window_ms=float(d),
                    outcome_without_defense=without,
                    outcome_with_defense=with_defense,
                )
            )
    return NotificationDefenseResult(
        hide_delay_ms=hide_delay_ms,
        trials=tuple(trials),
        hides_suppressed=suppressed_total,
    )


# ---------------------------------------------------------------------------
# Toast spacing defense (Section VII-B, toast half)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ToastDefenseResult(SerializableMixin):
    without_defense: ToastContinuityResult
    with_defense: ToastContinuityResult

    @property
    def defense_effective(self) -> bool:
        """Attack imperceptible undefended; clearly visible defended."""
        return (
            self.without_defense.imperceptible
            and not self.with_defense.imperceptible
        )


def _run_toast_defense(
    scale: ExperimentScale = QUICK, gap_ms: float = 500.0
) -> ToastDefenseResult:
    with scoped_executor():
        return ToastDefenseResult(
            without_defense=_run_toast_continuity(scale, inter_toast_gap_ms=0.0),
            with_defense=_run_toast_continuity(scale, inter_toast_gap_ms=gap_ms),
        )


run_ipc_defense = deprecated_entry_point(
    "run_ipc_defense", _run_ipc_defense, "repro.api.run_experiment('defense_ipc', ...)")

run_notification_defense = deprecated_entry_point(
    "run_notification_defense", _run_notification_defense, "repro.api.run_experiment('defense_notification', ...)")

run_toast_defense = deprecated_entry_point(
    "run_toast_defense", _run_toast_defense, "repro.api.run_experiment('defense_toast', ...)")
