"""Table IV: the password-stealing attack against eight real-world apps.

Every app is attackable; Alipay requires the extra username-widget
workaround because it disables accessibility events on the password field
(Section VI-C1). The reproduction runs one full attack per app and reports
whether the attack launched, which trigger path it used, and whether the
derived password matched.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from ..serialization import SerializableMixin
from .._deprecation import deprecated_entry_point
from ..apps.catalog import TABLE_IV_APPS, VictimAppSpec
from ..sim.rng import SeededRng
from ..users.participant import generate_participants
from .config import ExperimentScale, QUICK
from .engine import scoped_executor
from .scenarios import run_password_trial


@dataclass(frozen=True)
class Table4Row(SerializableMixin):
    """One victim app's outcome."""

    app_name: str
    version: str
    compromised: bool
    trigger_path: str
    needs_extra_effort: bool
    derived_matches: bool

    @property
    def marker(self) -> str:
        """Table IV notation: check = direct, * = extra effort needed."""
        if not self.compromised:
            return "x"
        return "*" if self.needs_extra_effort else "✓"


@dataclass(frozen=True)
class Table4Result(SerializableMixin):
    rows: Tuple[Table4Row, ...]

    @property
    def all_compromised(self) -> bool:
        return all(row.compromised for row in self.rows)

    def row(self, app_name: str) -> Table4Row:
        for row in self.rows:
            if row.app_name == app_name:
                return row
        raise KeyError(f"app {app_name!r} not evaluated")


def _run_table4(
    scale: ExperimentScale = QUICK,
    apps: Optional[Sequence[VictimAppSpec]] = None,
    password: str = "tk&%48GH",
) -> Table4Result:
    """Attack each Table IV app once (the paper's video-demo password is
    the default ground truth)."""
    participant = generate_participants(
        SeededRng(scale.seed, "participants"), count=1
    )[0]
    rows = []
    with scoped_executor():
        for index, spec in enumerate(apps or TABLE_IV_APPS):
            trial = run_password_trial(
                participant,
                password,
                seed=scale.seed + index * 7919,
                victim_spec=spec,
                type_username_first=True,
            )
            launched = trial.trigger_path != "none"
            rows.append(
                Table4Row(
                    app_name=spec.app_name,
                    version=spec.version,
                    compromised=launched and len(trial.derived) > 0,
                    trigger_path=trial.trigger_path,
                    needs_extra_effort=trial.trigger_path == "username_workaround",
                    derived_matches=trial.success,
                )
            )
    return Table4Result(rows=tuple(rows))


run_table4 = deprecated_entry_point(
    "run_table4", _run_table4, "repro.api.run_experiment('table4', ...)")
