"""Section VI-C2: prevalence of the attack's permissions and methods.

Runs the aapt-style and FlowDroid-style analyzers over a synthetic
AndroZoo-like corpus and reports the three headline counts, scaled to the
paper's 890,855-app corpus for comparison (4,405 / 18,887 / 15,179).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..serialization import SerializableMixin
from .._deprecation import deprecated_entry_point
from ..staticanalysis.corpus import PAPER_CORPUS_SIZE, SyntheticCorpus
from ..staticanalysis.report import PrevalenceCounts, run_prevalence_study
from .config import ExperimentScale, QUICK


@dataclass(frozen=True)
class CorpusStudyResult(SerializableMixin):
    """Measured counts, scaled counts and paper reference."""

    measured: PrevalenceCounts
    scaled_to_paper: PrevalenceCounts
    paper: PrevalenceCounts

    def relative_error(self, attr: str) -> float:
        """Relative error of one scaled count against the paper."""
        measured = getattr(self.scaled_to_paper, attr)
        reference = getattr(self.paper, attr)
        return abs(measured - reference) / reference

    @property
    def max_relative_error(self) -> float:
        return max(
            self.relative_error(attr)
            for attr in ("saw_and_accessibility", "addremove_and_saw", "custom_toast")
        )


def _run_corpus_study(scale: ExperimentScale = QUICK) -> CorpusStudyResult:
    corpus = SyntheticCorpus(size=scale.corpus_size, seed=scale.seed)
    measured = run_prevalence_study(corpus)
    return CorpusStudyResult(
        measured=measured,
        scaled_to_paper=measured.scaled_to(PAPER_CORPUS_SIZE),
        paper=PrevalenceCounts.paper_reference(),
    )


run_corpus_study = deprecated_entry_point(
    "run_corpus_study", _run_corpus_study, "repro.api.run_experiment('corpus', ...)")
