"""Counter-driven circuit breaker and overload signalling for serve.

The classic closed/open/half-open machine, with one twist that keeps
every test deterministic: there are **no clocks**. An open breaker
"cools down" after *rejecting* :attr:`BreakerConfig.cooldown_rejections`
requests — not after a wall-time interval — then admits exactly one
half-open probe. The probe's outcome decides: success closes the
breaker (window cleared), failure re-opens it and the rejection count
starts over. Load itself is the clock, which is also operationally
sane: an idle service has nobody to probe for it anyway.

:class:`ServiceOverloaded` is the one shed signal — raised by
``FeasibilityService.submit()`` for a full queue, an open breaker, or a
draining service, and mapped by the HTTP front to ``503`` with a
``Retry-After`` header.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Optional

__all__ = [
    "BreakerConfig",
    "BreakerState",
    "CircuitBreaker",
    "ServiceOverloaded",
]


class BreakerState(enum.IntEnum):
    """Gauge-friendly encoding: the value is what ``/metrics`` exports."""

    CLOSED = 0
    OPEN = 1
    HALF_OPEN = 2


class ServiceOverloaded(RuntimeError):
    """A request was shed instead of queued; retry after ``retry_after``."""

    def __init__(self, reason: str, retry_after: float) -> None:
        super().__init__(
            f"service overloaded ({reason}); retry in {retry_after:g}s")
        self.reason = reason
        self.retry_after = float(retry_after)


@dataclass(frozen=True, kw_only=True)
class BreakerConfig:
    """Thresholds for one :class:`CircuitBreaker`.

    ``failure_threshold=0`` disables the breaker entirely (every
    request admitted, outcomes ignored).
    """

    #: Sliding window of recorded job outcomes.
    window: int = 16
    #: Failures within the window that trip CLOSED → OPEN.
    failure_threshold: int = 8
    #: Requests an OPEN breaker sheds before admitting one probe.
    cooldown_rejections: int = 8

    def __post_init__(self) -> None:
        if self.window < 1:
            raise ValueError(f"window must be >= 1, got {self.window}")
        if self.failure_threshold < 0 or self.failure_threshold > self.window:
            raise ValueError(
                f"failure_threshold must be within [0, window="
                f"{self.window}], got {self.failure_threshold}")
        if self.cooldown_rejections < 1:
            raise ValueError(
                f"cooldown_rejections must be >= 1, got "
                f"{self.cooldown_rejections}")

    @property
    def enabled(self) -> bool:
        return self.failure_threshold > 0


class CircuitBreaker:
    """The state machine; see the module docstring for the semantics.

    ``on_state`` fires on every transition with the new state — the
    service wires it to the ``serve_breaker_state`` gauge.
    """

    def __init__(self, config: Optional[BreakerConfig] = None,
                 on_state: Optional[Callable[[BreakerState], None]] = None,
                 ) -> None:
        self.config = config or BreakerConfig()
        self._on_state = on_state
        self._state = BreakerState.CLOSED
        #: Recent job outcomes, ``True`` = failure.
        self._outcomes: Deque[bool] = deque(maxlen=self.config.window)
        self._rejections_while_open = 0
        self._probe_inflight = False
        #: Total requests this breaker has shed, for forensics.
        self.rejections_total = 0

    @property
    def state(self) -> BreakerState:
        return self._state

    @property
    def failures_in_window(self) -> int:
        return sum(self._outcomes)

    def _transition(self, new: BreakerState) -> None:
        if new is self._state:
            return
        self._state = new
        if self._on_state is not None:
            self._on_state(new)

    def allow(self) -> bool:
        """May the next request proceed to the queue?"""
        if not self.config.enabled or self._state is BreakerState.CLOSED:
            return True
        if self._state is BreakerState.OPEN:
            if self._rejections_while_open >= self.config.cooldown_rejections:
                # Cooldown served: this request becomes the probe.
                self._transition(BreakerState.HALF_OPEN)
                self._probe_inflight = True
                return True
            self._rejections_while_open += 1
            self.rejections_total += 1
            return False
        # HALF_OPEN: exactly one probe at a time.
        if self._probe_inflight:
            self.rejections_total += 1
            return False
        self._probe_inflight = True
        return True

    def record_success(self) -> None:
        if not self.config.enabled:
            return
        if self._state is BreakerState.HALF_OPEN:
            self._probe_inflight = False
            self._outcomes.clear()
            self._transition(BreakerState.CLOSED)
        elif self._state is BreakerState.CLOSED:
            self._outcomes.append(False)
        # OPEN: a straggler finishing after the trip changes nothing.

    def record_failure(self) -> None:
        if not self.config.enabled:
            return
        if self._state is BreakerState.HALF_OPEN:
            self._probe_inflight = False
            self._rejections_while_open = 0
            self._transition(BreakerState.OPEN)
        elif self._state is BreakerState.CLOSED:
            self._outcomes.append(True)
            if self.failures_in_window >= self.config.failure_threshold:
                self._rejections_while_open = 0
                self._transition(BreakerState.OPEN)
