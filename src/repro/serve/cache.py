"""Content-addressed result cache for feasibility queries.

The same checksummed-envelope idiom as the experiment
:class:`~repro.experiments.parallel.ResultCache`, keyed by the query's
content hash instead of ``(name, scale)``: corrupt, truncated or
stale-version bytes degrade to a miss (counted on
``cache_integrity_rejects_total``), and writes go through collision-free
temp files so concurrent services sharing a directory cannot clobber
each other mid-write. A memory layer fronts the disk so a warm hit never
re-reads or re-validates bytes; with no directory configured the cache
is memory-only and dies with the service.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Optional

from ..experiments.resilience import (
    CACHE_REJECTS_METRIC,
    CacheIntegrityError,
    atomic_write_bytes,
    decode_envelope,
    encode_envelope,
)
from .schema import FeasibilityReport

__all__ = ["SERVE_CACHE_VERSION", "QueryCache"]

#: Bump when a change to query execution invalidates previously cached
#: reports (the content hash only sees the query, never the code).
SERVE_CACHE_VERSION = 1


class QueryCache:
    """Envelope-per-key store of :class:`FeasibilityReport` results."""

    def __init__(self, directory: Optional[Path] = None) -> None:
        self.directory = Path(directory) if directory is not None else None
        self._memory: Dict[str, FeasibilityReport] = {}
        #: Entries rejected by envelope validation since construction.
        self.integrity_rejects = 0

    def path_for(self, key: str) -> Path:
        if self.directory is None:
            raise ValueError("memory-only cache has no paths")
        return self.directory / f"query-{key}.pkl"

    def _note_reject(self) -> None:
        from ..obs.context import current_metrics

        self.integrity_rejects += 1
        registry = current_metrics()
        if registry is not None:
            registry.counter(CACHE_REJECTS_METRIC).inc()

    def load(self, key: str) -> Optional[FeasibilityReport]:
        hit = self._memory.get(key)
        if hit is not None:
            return hit
        if self.directory is None:
            return None
        try:
            data = self.path_for(key).read_bytes()
        except OSError:
            return None
        try:
            report = decode_envelope(SERVE_CACHE_VERSION, data)
        except CacheIntegrityError:
            self._note_reject()
            return None
        self._memory[key] = report
        return report

    def store(self, key: str, report: FeasibilityReport) -> None:
        self._memory[key] = report
        if self.directory is not None:
            atomic_write_bytes(self.path_for(key),
                               encode_envelope(SERVE_CACHE_VERSION, report))
