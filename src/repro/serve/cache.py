"""Content-addressed result cache for feasibility queries.

The same checksummed-envelope idiom as the experiment
:class:`~repro.experiments.parallel.ResultCache`, keyed by the query's
content hash instead of ``(name, scale)``. Disk I/O routes through a
``query-cache`` :class:`~repro.storage.store.DurableStore` — the cache
is an optional-durability surface, so an injected or real write failure
degrades to a counted miss (the entry is kept dirty in memory and
retried by :meth:`flush`, which the graceful-drain path calls), and
corrupt, truncated or stale-version bytes degrade to a miss counted on
both the runner-side ``cache_integrity_rejects_total`` convention and
the serve-local :data:`SERVE_CACHE_REJECTS_METRIC`. A memory layer
fronts the disk so a warm hit never re-reads or re-validates bytes;
with no directory configured the cache is memory-only and dies with the
service.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Optional

from ..experiments.resilience import (
    CACHE_REJECTS_METRIC,
    CacheIntegrityError,
    decode_envelope,
    encode_envelope,
)
from ..storage.store import DurableStore
from .schema import FeasibilityReport

__all__ = ["SERVE_CACHE_REJECTS_METRIC", "SERVE_CACHE_VERSION", "QueryCache"]

#: Bump when a change to query execution invalidates previously cached
#: reports (the content hash only sees the query, never the code).
SERVE_CACHE_VERSION = 1

#: Disk entries rejected by envelope validation — the serve twin of the
#: runner-side ``cache_integrity_rejects_total``.
SERVE_CACHE_REJECTS_METRIC = "serve_cache_integrity_rejects_total"


class QueryCache:
    """Envelope-per-key store of :class:`FeasibilityReport` results."""

    def __init__(self, directory: Optional[Path] = None,
                 registry: object = None) -> None:
        self.directory = Path(directory) if directory is not None else None
        self._registry = registry
        self._store = DurableStore("query-cache", required=False,
                                   registry=registry)
        self._memory: Dict[str, FeasibilityReport] = {}
        #: Reports whose disk write failed; flushed on drain.
        self._dirty: Dict[str, FeasibilityReport] = {}
        #: Entries rejected by envelope validation since construction.
        self.integrity_rejects = 0

    def path_for(self, key: str) -> Path:
        if self.directory is None:
            raise ValueError("memory-only cache has no paths")
        return self.directory / f"query-{key}.pkl"

    def _count(self, name: str) -> None:
        registry = self._registry
        if registry is None:
            from ..obs.context import current_metrics

            registry = current_metrics()
        if registry is not None:
            registry.counter(name).inc()

    def _note_reject(self) -> None:
        self.integrity_rejects += 1
        self._count(CACHE_REJECTS_METRIC)
        self._count(SERVE_CACHE_REJECTS_METRIC)

    @property
    def dirty_entries(self) -> int:
        """Reports held only in memory after a failed disk write."""
        return len(self._dirty)

    def load(self, key: str) -> Optional[FeasibilityReport]:
        hit = self._memory.get(key)
        if hit is not None:
            return hit
        if self.directory is None:
            return None
        data = self._store.read_bytes(self.path_for(key))
        if data is None:
            return None
        try:
            report = decode_envelope(SERVE_CACHE_VERSION, data)
        except CacheIntegrityError:
            self._note_reject()
            return None
        self._memory[key] = report
        return report

    def store(self, key: str, report: FeasibilityReport) -> bool:
        """Remember ``report``; ``False`` iff the disk write degraded
        (the report still serves from memory and stays flush-pending)."""
        self._memory[key] = report
        if self.directory is None:
            return True
        if self._store.write_bytes(
                self.path_for(key),
                encode_envelope(SERVE_CACHE_VERSION, report)):
            self._dirty.pop(key, None)
            return True
        self._dirty[key] = report
        return False

    def flush(self) -> int:
        """Retry every dirty entry's disk write; returns writes landed.

        The graceful-drain path calls this so a transient storage fault
        during serving does not cost the persisted answer at shutdown.
        """
        if self.directory is None:
            self._dirty.clear()
            return 0
        written = 0
        for key in sorted(self._dirty):
            report = self._dirty[key]
            if self._store.write_bytes(
                    self.path_for(key),
                    encode_envelope(SERVE_CACHE_VERSION, report)):
                del self._dirty[key]
                written += 1
        return written
