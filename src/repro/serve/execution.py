"""The one true execution path for feasibility queries.

:func:`execute_query` is shared verbatim by the in-process API
(:func:`repro.api.query_feasibility`) and the service's worker pool
(:func:`execute_query_job`), which is what makes a service answer
byte-identical to a direct call: same scenarios, same seed derivation,
same aggregation — only the transport differs.

Determinism contract: every trial's seed is
``sha256("serve:<base seed>:<cell>")`` over a cell string naming the
device, fault regime, behavior labels, grid value and trial index — the
same partitioning idiom as :meth:`ExperimentScale.for_experiment` — so
no trial shares RNG state with another and neither worker placement nor
execution order can change a byte of the report.
"""

from __future__ import annotations

import hashlib
from typing import List, Optional

from ..actors import get_attacker, get_user
from ..apps.keyboard import KeyboardSpec, default_keyboard_rect
from ..devices import DeviceProfile
from ..experiments.engine import (
    TrialExecutor,
    TrialSpec,
    drive_until,
    scenario,
    scoped_executor,
)
from ..experiments.parallel import reset_id_allocators
from ..experiments.resilience import PoisonedResult, chaos_fire
from ..sim.rng import SeededRng
from ..stack import AndroidStack
from ..systemui.outcomes import NotificationOutcome
from ..users.passwords import PasswordGenerator
from .schema import (
    CaptureProbeStats,
    DWindowPoint,
    FeasibilityProbeTrial,
    FeasibilityQuery,
    FeasibilityReport,
)

__all__ = ["execute_query", "execute_query_job"]

#: Settling time appended after the attack withdraws (ms) — matches the
#: scenario library so outcomes classify identically.
_SETTLE_MS = 400.0

#: Chaos fault-point name for the worker entry (``REPRO_CHAOS``
#: ``"serve-query:<attempt>:<mode>"`` targets every query).
CHAOS_POINT = "serve-query"


@scenario("feasibility")
def feasibility_scenario(
    stack: AndroidStack,
    attacking_window_ms: float,
    duration_ms: float = 2000.0,
    attacker=None,
    user=None,
) -> NotificationOutcome:
    """One D-sweep trial: run the attacker model, classify the alert.

    ``attacker``/``user`` arrive as resolved behavior models when the
    :class:`TrialSpec` carries labels; the default attacker is the
    paper's draw-and-destroy overlay. The user model is unused here —
    the sweep measures the alert, not input capture — but accepted so
    labeled specs route through unchanged.
    """
    model = attacker if attacker is not None else get_attacker(
        "draw-and-destroy")
    handle = model.launch(stack, attacking_window_ms=attacking_window_ms)
    stack.run_for(duration_ms)
    worst_during = stack.system_ui.worst_outcome()
    model.withdraw(handle)
    stack.run_for(_SETTLE_MS)
    worst_after = stack.system_ui.worst_outcome()
    return max(worst_during, worst_after)


@scenario("feasibility-capture")
def feasibility_capture_scenario(
    stack: AndroidStack,
    attacking_window_ms: float,
    seed: int,
    probe_chars: int = 8,
    attacker=None,
    user=None,
) -> FeasibilityProbeTrial:
    """One capture-probe trial: the user model types under the attack.

    ``seed`` is passed explicitly (besides seeding the stack) because
    the probe text draws from its own ``SeededRng(seed,
    "feasibility-text")`` stream, mirroring the capture scenario.
    """
    attacker_model = attacker if attacker is not None else get_attacker(
        "draw-and-destroy")
    user_model = user if user is not None else get_user("stochastic-human")
    spec = KeyboardSpec(default_keyboard_rect(
        stack.profile.screen_width_px, stack.profile.screen_height_px))
    generator = PasswordGenerator(SeededRng(seed, "feasibility-text"), spec)
    text = generator.generate_letters(probe_chars)

    handle = attacker_model.launch(
        stack, attacking_window_ms=attacking_window_ms)
    stack.run_for(50.0)  # let the first overlay come up
    session = user_model.type_text(stack, spec, text)
    drive_until(stack, lambda: session.complete)
    attacker_model.withdraw(handle)
    stack.run_for(_SETTLE_MS)

    return FeasibilityProbeTrial(
        total_taps=len(session.taps),
        captured_taps=session.captured_by(getattr(handle, "package", "")),
        stale_taps=session.stale_count,
        mean_percept_age_ms=session.mean_percept_age_ms,
    )


def _trial_seed(query: FeasibilityQuery, cell: str) -> int:
    material = f"serve:{query.seed}:{cell}".encode("utf-8")
    return int.from_bytes(hashlib.sha256(material).digest()[:8], "big")


def _cell(query: FeasibilityQuery, profile: DeviceProfile, kind: str,
          d: float, trial: int) -> str:
    return (f"feasibility/{profile.key}/{query.faults}/{query.attacker}"
            f"/{query.user}/{kind}/d={d:g}/{trial}")


def execute_query(
    query: FeasibilityQuery,
    executor: Optional[TrialExecutor] = None,
) -> FeasibilityReport:
    """Answer ``query`` deterministically; pure function of the query.

    With an ``executor`` the trials lease stacks from its reuse pool (the
    service passes each worker's warm pool); without one a fresh pool is
    scoped to this call. Either way the report is bit-identical.
    """
    if executor is not None:
        return _execute(query, executor)
    with scoped_executor() as scoped:
        return _execute(query, scoped)


def _execute(query: FeasibilityQuery,
             executor: TrialExecutor) -> FeasibilityReport:
    profile = query.resolve_device()
    reset_id_allocators()

    points: List[DWindowPoint] = []
    max_feasible: Optional[float] = None
    prefix_suppressed = True
    for d in query.d_values():
        outcomes = [
            executor.run(TrialSpec(
                scenario="feasibility",
                seed=_trial_seed(query, _cell(query, profile, "sweep", d, t)),
                profile=profile,
                faults=query.faults,
                params={"attacking_window_ms": d,
                        "duration_ms": query.trial_duration_ms},
                attacker=query.attacker,
                user=query.user,
            ))
            for t in range(query.trials_per_d)
        ]
        suppressed = sum(1 for o in outcomes if o.suppressed)
        points.append(DWindowPoint(
            attacking_window_ms=d,
            trials=len(outcomes),
            suppressed_trials=suppressed,
            suppression_rate=suppressed / len(outcomes),
            worst_outcome=max(outcomes).label,
        ))
        if prefix_suppressed and suppressed == len(outcomes):
            max_feasible = d
        else:
            prefix_suppressed = False

    probe: Optional[CaptureProbeStats] = None
    if (max_feasible is not None and query.probe_chars > 0
            and query.probe_trials > 0):
        trials = [
            executor.run(TrialSpec(
                scenario="feasibility-capture",
                seed=(s := _trial_seed(
                    query, _cell(query, profile, "probe", max_feasible, t))),
                profile=profile,
                faults=query.faults,
                params={"attacking_window_ms": max_feasible,
                        "seed": s,
                        "probe_chars": query.probe_chars},
                attacker=query.attacker,
                user=query.user,
            ))
            for t in range(query.probe_trials)
        ]
        total = sum(t.total_taps for t in trials)
        captured = sum(t.captured_taps for t in trials)
        probe = CaptureProbeStats(
            attacking_window_ms=max_feasible,
            trials=len(trials),
            total_taps=total,
            captured_taps=captured,
            capture_rate=captured / total if total else 0.0,
            stale_taps=sum(t.stale_taps for t in trials),
            mean_percept_age_ms=(
                sum(t.mean_percept_age_ms * t.total_taps for t in trials)
                / total if total else 0.0),
        )

    return FeasibilityReport(
        query_hash=query.content_hash(),
        device_key=profile.key,
        android_version=profile.android_version.label,
        faults=query.faults,
        attacker=query.attacker,
        user=query.user,
        points=tuple(points),
        max_feasible_d_ms=max_feasible,
        published_upper_bound_d_ms=profile.published_upper_bound_d,
        mean_tmis_ms=profile.mean_tmis_ms,
        probe=probe,
    )


#: Per-worker warm executor: stacks stay pooled between jobs, which is
#: the whole point of routing queries at a long-lived worker process.
_WORKER_EXECUTOR: Optional[TrialExecutor] = None


def execute_query_job(query: FeasibilityQuery, attempt: int = 1):
    """Process-pool entry point: warm-executor execution plus chaos gate.

    ``attempt`` numbers the supervision retry and is consulted *only* by
    the chaos harness — seed derivation never sees it, so a
    crash-then-retry answer is bit-identical to a clean one. Returns the
    report, or a :class:`PoisonedResult` under a ``poison`` fault point
    (the supervisor, not the worker, must reject it).
    """
    global _WORKER_EXECUTOR
    if chaos_fire(CHAOS_POINT, attempt) == "poison":
        return PoisonedResult(name=CHAOS_POINT, attempt=attempt)
    if _WORKER_EXECUTOR is None:
        _WORKER_EXECUTOR = TrialExecutor()
    return execute_query(query, executor=_WORKER_EXECUTOR)
