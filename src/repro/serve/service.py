"""The asyncio feasibility service: queue → single-flight → pool → cache.

One :class:`FeasibilityService` owns a bounded job queue, a
:class:`~concurrent.futures.ProcessPoolExecutor` whose workers keep warm
:class:`~repro.experiments.engine.TrialExecutor` stack pools between
jobs, a content-addressed :class:`~repro.serve.cache.QueryCache`, and a
single-flight table that coalesces identical in-flight queries onto one
execution.

``submit()`` is the whole request path:

1. **Cache** — a completed identical query is served immediately
   (provenance ``"cache"``).
2. **Single-flight** — an identical query already queued or running is
   awaited, not re-executed (provenance ``"coalesced"``); the underlying
   trials run exactly once.
3. **Admission** — a full queue, an open circuit breaker, or a draining
   service sheds the request with :class:`ServiceOverloaded` (the HTTP
   front maps it to ``503`` + ``Retry-After``) instead of blocking; an
   admitted query joins the bounded queue until a drain task feeds it
   to a pool worker.

The :class:`~repro.serve.breaker.CircuitBreaker` watches executed-job
outcomes: enough failures in its window open it, a cooldown's worth of
shed requests admit one half-open probe, and the probe's outcome closes
or re-opens it. :meth:`FeasibilityService.drain` is the graceful-SIGTERM
half: stop accepting, finish in-flight jobs, flush the disk cache.

Execution is supervised with the PR-5 machinery: a
:class:`~repro.experiments.resilience.RunPolicy` governs retries with
reproducible backoff and per-job deadlines; a crashed worker (or the
whole pool breaking) costs only that job's attempt — the pool is
rebuilt and the job degrades to a structured
:class:`~repro.experiments.resilience.ExperimentFailure` on the
response instead of killing the service. Every stage feeds the
:class:`~repro.obs.metrics.MetricsRegistry` exposed at ``/metrics``.
"""

from __future__ import annotations

import asyncio
import dataclasses
import multiprocessing
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional

from ..experiments.resilience import (
    DEFAULT_POLICY,
    DeadlineExceeded,
    PoisonedResult,
    ResultIntegrityError,
    RunPolicy,
    _terminate_pool,
    make_failure,
)
from ..obs.metrics import MetricsRegistry
from ..storage.store import FS_FAULTS_METRIC, FS_WRITE_ERRORS_METRIC
from .breaker import (
    BreakerConfig,
    BreakerState,
    CircuitBreaker,
    ServiceOverloaded,
)
from .cache import SERVE_CACHE_REJECTS_METRIC, QueryCache
from .execution import execute_query_job
from .schema import FeasibilityQuery, QueryProvenance, QueryResponse

__all__ = ["ServeConfig", "FeasibilityService"]

#: Counters the service registers eagerly so a scrape of a fresh service
#: already exposes every series at zero.
_COUNTERS = (
    "serve_queries_total",
    "serve_cache_hits_total",
    "serve_coalesced_total",
    "serve_executed_total",
    "serve_failures_total",
    "serve_retries_total",
    "serve_deadline_exceeded_total",
    "serve_pool_rebuilds_total",
    "serve_shed_total",
    SERVE_CACHE_REJECTS_METRIC,
    FS_FAULTS_METRIC,
    FS_WRITE_ERRORS_METRIC,
)


@dataclass(frozen=True, kw_only=True)
class ServeConfig:
    """Tunables for one service instance."""

    #: Pool workers; also the number of queue drain tasks.
    workers: int = 2
    #: Bounded queue size — the admission high-watermark: requests
    #: beyond it are shed with 503 + Retry-After, never blocked.
    queue_limit: int = 32
    #: Directory for the persistent query cache; ``None`` = memory-only.
    cache_dir: Optional[Path] = None
    #: Retry/deadline/backoff policy per job (default: one attempt).
    policy: RunPolicy = DEFAULT_POLICY
    #: Circuit-breaker thresholds fronting the worker pool.
    breaker: BreakerConfig = BreakerConfig()
    #: ``Retry-After`` value (seconds) attached to shed responses.
    retry_after_seconds: float = 1.0


class FeasibilityService:
    """Owns the queue, the worker pool, the cache and the metrics."""

    def __init__(self, config: Optional[ServeConfig] = None,
                 registry: Optional[MetricsRegistry] = None) -> None:
        self.config = config or ServeConfig()
        self.registry = registry if registry is not None else MetricsRegistry()
        self.cache = QueryCache(self.config.cache_dir,
                                registry=self.registry)
        self._queue: Optional[asyncio.Queue] = None
        self._pool: Optional[ProcessPoolExecutor] = None
        self._drainers: List[asyncio.Task] = []
        self._inflight: Dict[str, asyncio.Future] = {}
        self._draining = False
        self.breaker = CircuitBreaker(
            self.config.breaker,
            on_state=lambda state: self.registry.gauge(
                "serve_breaker_state").set(float(int(state))))
        for name in _COUNTERS:
            self.registry.counter(name)
        self.registry.gauge("serve_queue_depth")
        self.registry.gauge("serve_breaker_state").set(
            float(int(BreakerState.CLOSED)))
        self.registry.gauge("serve_drain_seconds")
        self.registry.histogram("serve_queue_wait_ms")
        self.registry.histogram("serve_job_wall_ms")

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def _new_pool(self) -> ProcessPoolExecutor:
        # spawn, not fork: workers are created lazily at first job and on
        # every rebuild, i.e. while client sockets are open. A forked
        # worker would inherit those FDs and keep connections from ever
        # seeing EOF after the server closes them.
        return ProcessPoolExecutor(
            max_workers=self.config.workers,
            mp_context=multiprocessing.get_context("spawn"))

    async def start(self) -> None:
        """Create the queue, the pool, and one drain task per worker."""
        if self._queue is not None:
            raise RuntimeError("service already started")
        self._queue = asyncio.Queue(maxsize=self.config.queue_limit)
        self._pool = self._new_pool()
        self._drainers = [
            asyncio.get_running_loop().create_task(self._drain())
            for _ in range(self.config.workers)
        ]

    async def drain(self) -> float:
        """Graceful-shutdown step one: stop accepting, finish in-flight.

        New submissions shed with ``ServiceOverloaded("draining")``,
        every queued job runs to completion, then the disk cache's
        flush-pending entries retry. Returns the wall seconds spent,
        also exported as the ``serve_drain_seconds`` gauge. Call
        :meth:`close` afterwards to tear the tasks and pool down.
        """
        start = time.perf_counter()
        self._draining = True
        if self._queue is not None:
            await self._queue.join()
        self.cache.flush()
        elapsed = time.perf_counter() - start
        self.registry.gauge("serve_drain_seconds").set(elapsed)
        return elapsed

    async def close(self) -> None:
        """Cancel the drain tasks and tear the pool down without waiting."""
        for task in self._drainers:
            task.cancel()
        if self._drainers:
            await asyncio.gather(*self._drainers, return_exceptions=True)
        self._drainers = []
        if self._pool is not None:
            pool, self._pool = self._pool, None
            await asyncio.to_thread(_terminate_pool, pool)
        self._queue = None

    # ------------------------------------------------------------------
    # Request path
    # ------------------------------------------------------------------

    async def submit(self, query: FeasibilityQuery) -> QueryResponse:
        """Answer one query: cache hit, coalesce, or queued execution."""
        if self._queue is None:
            raise RuntimeError("service not started; call start() first")
        key = query.content_hash()
        self.registry.counter("serve_queries_total").inc()

        cached = self.cache.load(key)
        if cached is not None:
            self.registry.counter("serve_cache_hits_total").inc()
            return QueryResponse(
                report=cached,
                provenance=QueryProvenance(source="cache", query_hash=key))

        inflight = self._inflight.get(key)
        if inflight is not None:
            self.registry.counter("serve_coalesced_total").inc()
            response: QueryResponse = await asyncio.shield(inflight)
            return dataclasses.replace(
                response,
                provenance=dataclasses.replace(
                    response.provenance, source="coalesced"))

        if self._draining:
            self._shed("draining")
        if self._queue.full():
            self._shed("queue-full")
        if not self.breaker.allow():
            self._shed("breaker-open")
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._inflight[key] = future
        # No await between the full() check and the put: submit runs on
        # the event loop, so the free slot cannot vanish underneath us.
        self._queue.put_nowait((key, query, future, time.perf_counter()))
        self.registry.gauge("serve_queue_depth").set(self._queue.qsize())
        return await asyncio.shield(future)

    def _shed(self, reason: str) -> None:
        """Refuse one request: counted, typed, never a blocked client."""
        self.registry.counter("serve_shed_total").inc()
        raise ServiceOverloaded(reason, self.config.retry_after_seconds)

    async def _drain(self) -> None:
        assert self._queue is not None
        while True:
            key, query, future, enqueued = await self._queue.get()
            self.registry.gauge("serve_queue_depth").set(self._queue.qsize())
            queue_ms = (time.perf_counter() - enqueued) * 1000.0
            self.registry.histogram("serve_queue_wait_ms").observe(queue_ms)
            try:
                response = await self._run_job(key, query, queue_ms)
            except asyncio.CancelledError:
                self._inflight.pop(key, None)
                if not future.done():
                    future.cancel()
                raise
            except Exception as exc:  # never let a job kill the drainer
                self.registry.counter("serve_failures_total").inc()
                response = QueryResponse(
                    failure=make_failure(f"serve:{key[:12]}", exc, 1, 0.0),
                    provenance=QueryProvenance(
                        source="executed", query_hash=key,
                        queue_ms=queue_ms))
            if response.report is not None:
                self.cache.store(key, response.report)
                self.breaker.record_success()
            else:
                self.breaker.record_failure()
            self._inflight.pop(key, None)
            if not future.done():
                future.set_result(response)
            self._queue.task_done()

    async def _run_job(self, key: str, query: FeasibilityQuery,
                       queue_ms: float) -> QueryResponse:
        """Supervised execution: retries, deadline, pool recovery."""
        policy = self.config.policy
        loop = asyncio.get_running_loop()
        start = time.perf_counter()
        last_exc: Optional[BaseException] = None
        attempt = 0
        for attempt in range(1, policy.max_attempts + 1):
            if attempt > 1:
                self.registry.counter("serve_retries_total").inc()
                delay = policy.backoff_seconds(query.seed, key[:12], attempt)
                if delay > 0:
                    await asyncio.sleep(delay)
            pool = self._pool
            if pool is None:
                raise RuntimeError("service closed mid-job")
            try:
                call = loop.run_in_executor(
                    pool, execute_query_job, query, attempt)
                if policy.deadline_seconds is not None:
                    report = await asyncio.wait_for(
                        call, timeout=policy.deadline_seconds)
                else:
                    report = await call
                if isinstance(report, PoisonedResult):
                    raise ResultIntegrityError(
                        f"worker returned a poisoned result for query "
                        f"{key[:12]} (attempt {report.attempt})")
                wall_ms = (time.perf_counter() - start) * 1000.0
                self.registry.histogram("serve_job_wall_ms").observe(wall_ms)
                self.registry.counter("serve_executed_total").inc()
                return QueryResponse(
                    report=report,
                    provenance=QueryProvenance(
                        source="executed", query_hash=key, attempts=attempt,
                        queue_ms=queue_ms, wall_ms=wall_ms))
            except asyncio.TimeoutError:
                self.registry.counter("serve_deadline_exceeded_total").inc()
                last_exc = DeadlineExceeded(
                    f"query {key[:12]} exceeded its "
                    f"{policy.deadline_seconds}s deadline")
                # The worker is still grinding on the job; rebuilding the
                # pool is the only way to reclaim its slot.
                await self._rebuild_pool(pool)
            except BrokenProcessPool as exc:
                last_exc = exc
                await self._rebuild_pool(pool)
            except Exception as exc:
                last_exc = exc
        self.registry.counter("serve_failures_total").inc()
        assert last_exc is not None
        return QueryResponse(
            failure=make_failure(f"serve:{key[:12]}", last_exc, attempt,
                                 time.perf_counter() - start),
            provenance=QueryProvenance(
                source="executed", query_hash=key, attempts=attempt,
                queue_ms=queue_ms,
                wall_ms=(time.perf_counter() - start) * 1000.0))

    async def _rebuild_pool(self, broken: ProcessPoolExecutor) -> None:
        """Replace the pool; identity-guarded so concurrent jobs that saw
        the same broken pool trigger exactly one rebuild."""
        if broken is not self._pool:
            return
        self.registry.counter("serve_pool_rebuilds_total").inc()
        self._pool = self._new_pool()
        await asyncio.to_thread(_terminate_pool, broken)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def stats(self) -> Dict[str, float]:
        """Counter/gauge snapshot plus live queue/in-flight depths."""
        out: Dict[str, float] = {}
        for sample in self.registry.samples():
            if sample.kind in ("counter", "gauge") and not sample.labels:
                out[sample.name] = sample.value or 0.0
        out["serve_queue_depth"] = float(
            self._queue.qsize() if self._queue is not None else 0)
        out["serve_inflight"] = float(len(self._inflight))
        return out
