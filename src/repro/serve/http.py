"""Minimal stdlib HTTP front for the feasibility service.

A deliberately small HTTP/1.1 server on :func:`asyncio.start_server` —
no framework dependency, ``Connection: close`` semantics, four routes:

* ``GET /healthz`` — liveness (``{"status": "ok"}``);
* ``GET /metrics`` — live Prometheus exposition of the service registry;
* ``GET /stats`` — the counter/gauge/queue snapshot as JSON;
* ``POST /query`` — a :class:`FeasibilityQuery` as JSON in, a
  :class:`QueryResponse` as JSON out (400 on an invalid query, 500 with
  the structured failure record when execution failed, 503 with a
  ``Retry-After`` header when the service sheds the request — full
  queue, open circuit breaker, or draining for shutdown).
"""

from __future__ import annotations

import asyncio
import json
from typing import Dict, Optional, Tuple

from ..obs import PROMETHEUS_CONTENT_TYPE, render_registry
from .breaker import ServiceOverloaded
from .schema import FeasibilityQuery
from .service import FeasibilityService

__all__ = ["start_http_server"]

_STATUS_TEXT = {200: "OK", 400: "Bad Request", 404: "Not Found",
                500: "Internal Server Error",
                503: "Service Unavailable"}

#: Refuse request bodies beyond this size (a query is a few hundred bytes).
_MAX_BODY = 1 << 20


async def _read_request(
    reader: asyncio.StreamReader,
) -> Optional[Tuple[str, str, Dict[str, str], bytes]]:
    line = await reader.readline()
    if not line:
        return None
    parts = line.decode("latin-1").split()
    if len(parts) < 2:
        return None
    method, path = parts[0].upper(), parts[1]
    headers: Dict[str, str] = {}
    while True:
        raw = await reader.readline()
        if raw in (b"\r\n", b"\n", b""):
            break
        name, _, value = raw.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    length = int(headers.get("content-length", "0") or 0)
    if length < 0 or length > _MAX_BODY:
        return None
    body = await reader.readexactly(length) if length else b""
    return method, path, headers, body


def _response(status: int, body: str,
              content_type: str = "application/json",
              extra_headers: Optional[Dict[str, str]] = None) -> bytes:
    payload = body.encode("utf-8")
    head = (f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(payload)}\r\n")
    for name, value in (extra_headers or {}).items():
        head += f"{name}: {value}\r\n"
    head += "Connection: close\r\n\r\n"
    return head.encode("latin-1") + payload


async def _handle(service: FeasibilityService,
                  reader: asyncio.StreamReader,
                  writer: asyncio.StreamWriter) -> None:
    try:
        request = await _read_request(reader)
        if request is None:
            writer.write(_response(400, json.dumps(
                {"error": "malformed request"})))
            return
        method, path, _, body = request
        if method == "GET" and path == "/healthz":
            writer.write(_response(200, json.dumps({"status": "ok"})))
        elif method == "GET" and path == "/metrics":
            writer.write(_response(200, render_registry(service.registry),
                                   content_type=PROMETHEUS_CONTENT_TYPE))
        elif method == "GET" and path == "/stats":
            writer.write(_response(200, json.dumps(service.stats(),
                                                   sort_keys=True)))
        elif method == "POST" and path == "/query":
            try:
                payload = json.loads(body.decode("utf-8"))
                query = FeasibilityQuery.from_dict(payload)
            except (ValueError, KeyError, TypeError) as exc:
                writer.write(_response(400, json.dumps(
                    {"error": f"invalid query: {exc}"})))
                return
            try:
                response = await service.submit(query)
            except ServiceOverloaded as exc:
                writer.write(_response(
                    503,
                    json.dumps({"error": str(exc), "reason": exc.reason,
                                "retry_after": exc.retry_after}),
                    extra_headers={"Retry-After": f"{exc.retry_after:g}"}))
                return
            status = 200 if response.ok else 500
            writer.write(_response(status, json.dumps(
                response.to_dict(), sort_keys=True)))
        else:
            writer.write(_response(404, json.dumps(
                {"error": f"no route {method} {path}"})))
    except (asyncio.IncompleteReadError, ConnectionError):
        pass
    finally:
        try:
            await writer.drain()
            writer.close()
            await writer.wait_closed()
        except (ConnectionError, RuntimeError):
            pass


async def start_http_server(
    service: FeasibilityService,
    host: str = "127.0.0.1",
    port: int = 8765,
) -> asyncio.base_events.Server:
    """Serve ``service`` over HTTP; ``port=0`` picks a free port.

    Returns the :class:`asyncio.Server`; the bound port is
    ``server.sockets[0].getsockname()[1]``.
    """

    async def handler(reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        await _handle(service, reader, writer)

    return await asyncio.start_server(handler, host, port)
