"""Typed request/response schema for the feasibility query service.

A :class:`FeasibilityQuery` is the paper's core question made concrete:
*given this device, Android version, attacker/user behavior models and
fault regime, which animation durations D suppress the alert (Λ1) and
what touch-capture exposure does the attacker get there?* The answer is
a :class:`FeasibilityReport`; the service wraps it in a
:class:`QueryResponse` carrying cache/coalesce provenance.

Queries are *content-addressed*: :meth:`FeasibilityQuery.canonical_json`
serializes through the :mod:`repro.serialization` codec with sorted keys
and no incidental whitespace, and :meth:`FeasibilityQuery.content_hash`
is the sha256 of those bytes. Two queries that mean the same thing —
however they were constructed, whatever key order their JSON arrived
in — hash identically, which is what the service's single-flight
coalescing and result cache key on.

Validation is eager: constructing a query resolves the device against
the registry and checks the attacker/user/fault labels and sweep
numerics, so a bad query fails at the API edge with an actionable
error instead of deep inside a worker process.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Optional, Tuple

from ..actors import attacker_names, get_attacker, get_user, user_names
from ..devices import DeviceProfile, device
from ..experiments.resilience import ExperimentFailure
from ..serialization import SerializableMixin
from ..sim.faults import PROFILES

__all__ = [
    "CaptureProbeStats",
    "DWindowPoint",
    "FeasibilityProbeTrial",
    "FeasibilityQuery",
    "FeasibilityReport",
    "QueryProvenance",
    "QueryResponse",
]


@dataclass(frozen=True, kw_only=True)
class FeasibilityQuery(SerializableMixin):
    """One attack-feasibility question, fully specified and validated."""

    #: Device model name as the registry knows it (``"pixel 2"``, ``"mi8"``).
    device: str
    #: Android version label when the model is ambiguous (``"9.0"``);
    #: ``None`` lets an unambiguous model resolve alone.
    android_version: Optional[str] = None
    #: Fault regime name from :data:`repro.sim.faults.PROFILES`.
    faults: str = "none"
    #: Registered attacker behavior label (:func:`repro.actors.attacker_names`).
    attacker: str = "draw-and-destroy"
    #: Registered user behavior label (:func:`repro.actors.user_names`).
    user: str = "stochastic-human"
    #: Attacking-window sweep grid: ``d_min_ms, d_min_ms + d_step_ms, ...``
    #: up to and including ``d_max_ms``.
    d_min_ms: float = 50.0
    d_max_ms: float = 200.0
    d_step_ms: float = 25.0
    #: Trials per grid point (suppression must hold across all of them).
    trials_per_d: int = 3
    #: Simulated attack duration per trial.
    trial_duration_ms: float = 2000.0
    #: Characters the user model types in the capture probe at the widest
    #: feasible D (0 skips the probe).
    probe_chars: int = 8
    probe_trials: int = 2
    #: Base seed; every trial derives its own stream from it.
    seed: int = 20220701

    def __post_init__(self) -> None:
        self.resolve_device()  # raises KeyError with suggestions
        get_attacker(self.attacker)
        get_user(self.user)
        if self.faults not in PROFILES:
            known = ", ".join(sorted(PROFILES))
            raise ValueError(
                f"unknown fault profile {self.faults!r}; known: {known}")
        if self.d_min_ms <= 0 or self.d_max_ms < self.d_min_ms:
            raise ValueError(
                f"need 0 < d_min_ms <= d_max_ms, got "
                f"{self.d_min_ms!r}..{self.d_max_ms!r}")
        if self.d_step_ms <= 0:
            raise ValueError(f"d_step_ms must be > 0, got {self.d_step_ms!r}")
        if self.trials_per_d < 1:
            raise ValueError(
                f"trials_per_d must be >= 1, got {self.trials_per_d!r}")
        if self.trial_duration_ms <= 0:
            raise ValueError("trial_duration_ms must be > 0, got "
                             f"{self.trial_duration_ms!r}")
        if self.probe_chars < 0 or self.probe_trials < 0:
            raise ValueError("probe_chars and probe_trials must be >= 0")

    def resolve_device(self) -> DeviceProfile:
        """The registry profile this query targets."""
        return device(self.device, self.android_version)

    def d_values(self) -> Tuple[float, ...]:
        """The attacking-window grid, smallest to largest."""
        values = []
        d = self.d_min_ms
        while d <= self.d_max_ms + 1e-9:
            values.append(round(d, 6))
            d += self.d_step_ms
        return tuple(values)

    def canonical_json(self) -> str:
        """Key-sorted, whitespace-free JSON — the content-hash preimage."""
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))

    def content_hash(self) -> str:
        """sha256 of :meth:`canonical_json`; the cache/coalesce key."""
        material = self.canonical_json().encode("utf-8")
        return hashlib.sha256(material).hexdigest()


@dataclass(frozen=True, kw_only=True)
class DWindowPoint(SerializableMixin):
    """Suppression statistics for one attacking-window grid value."""

    attacking_window_ms: float
    trials: int
    #: Trials whose worst outcome stayed Λ1 (alert fully suppressed).
    suppressed_trials: int
    suppression_rate: float
    #: Most-visible outcome label observed across the trials (``"Λ1"``..).
    worst_outcome: str


@dataclass(frozen=True, kw_only=True)
class FeasibilityProbeTrial(SerializableMixin):
    """One capture-probe typing session under the attack."""

    total_taps: int
    captured_taps: int
    stale_taps: int
    mean_percept_age_ms: float


@dataclass(frozen=True, kw_only=True)
class CaptureProbeStats(SerializableMixin):
    """Aggregated capture exposure at the widest feasible D."""

    attacking_window_ms: float
    trials: int
    total_taps: int
    captured_taps: int
    capture_rate: float
    stale_taps: int
    mean_percept_age_ms: float


@dataclass(frozen=True, kw_only=True)
class FeasibilityReport(SerializableMixin):
    """The answer: the D sweep, the feasibility verdict, the exposure."""

    query_hash: str
    device_key: str
    android_version: str
    faults: str
    attacker: str
    user: str
    #: One entry per grid value, smallest D first.
    points: Tuple[DWindowPoint, ...]
    #: Largest grid D with every trial suppressed at it *and* at every
    #: smaller grid D — ``None`` when even the smallest D leaks the alert.
    max_feasible_d_ms: Optional[float]
    #: The paper's Table II bound for this device, for comparison.
    published_upper_bound_d_ms: float
    #: The device's mean mistouch exposure (Tmis) per animation cycle.
    mean_tmis_ms: float
    #: Capture probe at ``max_feasible_d_ms`` (``None`` when infeasible
    #: or the query disabled probing).
    probe: Optional[CaptureProbeStats]

    @property
    def feasible(self) -> bool:
        return self.max_feasible_d_ms is not None

    def aggregates_json(self) -> str:
        """Canonical JSON of the whole report — the byte-identity surface
        the service acceptance test compares against in-process execution."""
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))


@dataclass(frozen=True, kw_only=True)
class QueryProvenance(SerializableMixin):
    """How a response was produced: executed, cache hit, or coalesced."""

    #: ``"executed"`` (ran trials), ``"cache"`` (served from the result
    #: cache), or ``"coalesced"`` (piggybacked on an identical in-flight
    #: query's execution).
    source: str
    query_hash: str
    #: Supervision attempts consumed (1 for a clean first run).
    attempts: int = 1
    #: Time spent waiting on the job queue before a worker picked it up.
    queue_ms: float = 0.0
    #: Worker wall time for the execution this response rode on.
    wall_ms: float = 0.0


@dataclass(frozen=True, kw_only=True)
class QueryResponse(SerializableMixin):
    """Report or structured failure, plus provenance — never an exception."""

    report: Optional[FeasibilityReport] = None
    failure: Optional[ExperimentFailure] = None
    provenance: QueryProvenance

    @property
    def ok(self) -> bool:
        return self.report is not None
