"""Attack feasibility as a long-running, queryable service.

The serving layer the ROADMAP names: typed feasibility queries
(:class:`FeasibilityQuery`) answered concurrently by an asyncio service
(:class:`FeasibilityService`) — bounded job queue, single-flight
coalescing of identical in-flight queries, a process pool with warm
per-worker stack pools, a content-addressed result cache, supervised
retries/deadlines, and a live Prometheus ``/metrics`` endpoint
(:func:`start_http_server`). Overload never blocks a client: a full
queue, a tripped :class:`CircuitBreaker`, or a draining service sheds
requests with :class:`ServiceOverloaded` → HTTP 503 + ``Retry-After``.

:func:`execute_query` is the shared execution path: the service and the
in-process :func:`repro.api.query_feasibility` both call it, so a
service answer is byte-identical to a direct one.
"""

from .breaker import (
    BreakerConfig,
    BreakerState,
    CircuitBreaker,
    ServiceOverloaded,
)
from .cache import SERVE_CACHE_REJECTS_METRIC, SERVE_CACHE_VERSION, QueryCache
from .execution import execute_query, execute_query_job
from .http import start_http_server
from .schema import (
    CaptureProbeStats,
    DWindowPoint,
    FeasibilityProbeTrial,
    FeasibilityQuery,
    FeasibilityReport,
    QueryProvenance,
    QueryResponse,
)
from .service import FeasibilityService, ServeConfig

__all__ = [
    "BreakerConfig",
    "BreakerState",
    "CaptureProbeStats",
    "CircuitBreaker",
    "DWindowPoint",
    "FeasibilityProbeTrial",
    "FeasibilityQuery",
    "FeasibilityReport",
    "FeasibilityService",
    "QueryCache",
    "QueryProvenance",
    "QueryResponse",
    "SERVE_CACHE_REJECTS_METRIC",
    "SERVE_CACHE_VERSION",
    "ServeConfig",
    "ServiceOverloaded",
    "execute_query",
    "execute_query_job",
    "start_http_server",
]
