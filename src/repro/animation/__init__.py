"""Animation engine: Android interpolators and frame-driven animators.

The module reproduces the timing behaviour the paper exploits:

* ``FastOutSlowInInterpolator`` (cubic Bezier 0.4, 0, 0.2, 1) over 360 ms —
  the notification-alert slide-in (paper Fig. 2);
* ``DecelerateInterpolator`` / ``AccelerateInterpolator`` over 500 ms — the
  toast fade-in / fade-out (paper Fig. 4);
* frame quantization at the 10 ms display refresh interval, including the
  sub-pixel rounding that hides the first frames of the alert.
"""

from .animator import (
    ANIMATION_DURATION_STANDARD,
    DEFAULT_REFRESH_INTERVAL,
    TOAST_ANIMATION_DURATION,
    AnimationState,
    Animator,
    first_visible_frame_time,
    rendered_pixels,
)
from .choreographer import Choreographer
from .interpolators import (
    AccelerateDecelerateInterpolator,
    AccelerateInterpolator,
    CubicBezierInterpolator,
    DecelerateInterpolator,
    FastOutSlowInInterpolator,
    Interpolator,
    LinearInterpolator,
)

__all__ = [
    "ANIMATION_DURATION_STANDARD",
    "DEFAULT_REFRESH_INTERVAL",
    "TOAST_ANIMATION_DURATION",
    "AccelerateDecelerateInterpolator",
    "AccelerateInterpolator",
    "AnimationState",
    "Animator",
    "Choreographer",
    "CubicBezierInterpolator",
    "DecelerateInterpolator",
    "FastOutSlowInInterpolator",
    "Interpolator",
    "LinearInterpolator",
    "first_visible_frame_time",
    "rendered_pixels",
]
