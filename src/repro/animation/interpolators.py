"""Android animation interpolators.

An interpolator maps normalized input time ``x in [0, 1]`` to an animation
*completeness* fraction ``y`` ("affects the rate of change in an animation",
Android developer guides). The three interpolators the paper exploits are:

* :class:`FastOutSlowInInterpolator` — the cubic Bezier ``(0.4, 0, 0.2, 1)``
  controlling the notification-alert slide-in (paper Fig. 2). Its slow start
  is precisely the property the draw-and-destroy overlay attack abuses: the
  first animation frames render essentially none of the alert view.
* :class:`AccelerateInterpolator` — ``y = x^2``, the toast fade-out
  (paper Fig. 4). Its slow start means a disappearing toast stays almost
  fully opaque long enough for a replacement toast to fade in unnoticed.
* :class:`DecelerateInterpolator` — ``y = 1 - (1 - x)^2``, the toast
  fade-in (paper Fig. 4), fast at the beginning.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod


def _clamp01(x: float) -> float:
    if x < 0.0:
        return 0.0
    if x > 1.0:
        return 1.0
    return x


class Interpolator(ABC):
    """Maps normalized time to normalized animation completeness."""

    name = "interpolator"

    @abstractmethod
    def value(self, x: float) -> float:
        """Completeness fraction at normalized time ``x`` (both in [0, 1])."""

    def curve(self, samples: int = 100):
        """``(x, y)`` pairs sampling the curve — used to regenerate the
        paper's Fig. 2 and Fig. 4.

        ``samples=2`` is the degenerate minimum and yields exactly the two
        endpoint pairs ``(0.0, value(0.0))`` and ``(1.0, value(1.0))``;
        fewer than two samples cannot describe a curve and raises.
        """
        if samples < 2:
            raise ValueError("need at least 2 samples")
        return [
            (i / (samples - 1), self.value(i / (samples - 1))) for i in range(samples)
        ]

    def cache_key(self):
        """A stable, hashable key identifying this curve's *values*, or
        ``None``.

        Two interpolators with equal keys must return bit-identical
        ``value(x)`` for every ``x`` — the frame-table cache
        (:mod:`repro.animation.kernels`) uses the key to share tables
        across animators and trials. The base class returns ``None``
        (meaning "not cacheable"), so unknown subclasses are never served
        another curve's table; built-ins override with their parameter
        tuples.
        """
        return None

    def time_for_completeness(self, target: float, tolerance: float = 1e-9) -> float:
        """Inverse lookup: earliest normalized time with ``value >= target``.

        All supplied interpolators are monotone non-decreasing, so a simple
        bisection suffices. Used to compute when an animation first renders
        a visible pixel (the attacker's deadline).
        """
        if target <= self.value(0.0):
            return 0.0
        if target > self.value(1.0) + tolerance:
            raise ValueError(f"completeness {target} is never reached")
        lo, hi = 0.0, 1.0
        while hi - lo > tolerance:
            mid = (lo + hi) / 2.0
            if self.value(mid) >= target:
                hi = mid
            else:
                lo = mid
        return hi

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}()"


class LinearInterpolator(Interpolator):
    """``y = x`` — the identity interpolator."""

    name = "linear"

    def value(self, x: float) -> float:
        return _clamp01(x)

    def cache_key(self):
        return ("linear",)


class AccelerateInterpolator(Interpolator):
    """``y = x^(2*factor)`` — Android's AccelerateInterpolator.

    With the default ``factor = 1`` this is the ``y = x^2`` parabola the
    paper plots for the toast fade-out (Fig. 4).
    """

    name = "accelerate"

    def __init__(self, factor: float = 1.0) -> None:
        if factor <= 0:
            raise ValueError(f"factor must be positive, got {factor}")
        self.factor = factor

    def value(self, x: float) -> float:
        x = _clamp01(x)
        if self.factor == 1.0:
            return x * x
        return math.pow(x, 2.0 * self.factor)

    def cache_key(self):
        return ("accelerate", self.factor)


class DecelerateInterpolator(Interpolator):
    """``y = 1 - (1 - x)^(2*factor)`` — Android's DecelerateInterpolator.

    With the default ``factor = 1`` this is the upside-down parabola
    ``y = 1 - (1 - x)^2`` the paper plots for the toast fade-in (Fig. 4).
    """

    name = "decelerate"

    def __init__(self, factor: float = 1.0) -> None:
        if factor <= 0:
            raise ValueError(f"factor must be positive, got {factor}")
        self.factor = factor

    def value(self, x: float) -> float:
        x = _clamp01(x)
        if self.factor == 1.0:
            return 1.0 - (1.0 - x) * (1.0 - x)
        return 1.0 - math.pow(1.0 - x, 2.0 * self.factor)

    def cache_key(self):
        return ("decelerate", self.factor)


class CubicBezierInterpolator(Interpolator):
    """A CSS-style cubic Bezier timing curve through (0,0) and (1,1).

    The Bezier is parameterized by control points ``(x1, y1)`` and
    ``(x2, y2)``; evaluating ``value(x)`` requires inverting the x-component
    polynomial, done here with Newton iteration plus bisection fallback —
    the same strategy as Android's ``PathInterpolator``.
    """

    name = "cubic-bezier"

    def __init__(self, x1: float, y1: float, x2: float, y2: float) -> None:
        for label, v in (("x1", x1), ("x2", x2)):
            if not 0.0 <= v <= 1.0:
                raise ValueError(f"{label} must be in [0,1], got {v}")
        self.x1, self.y1, self.x2, self.y2 = x1, y1, x2, y2

    def _bezier(self, t: float, p1: float, p2: float) -> float:
        # Cubic Bezier with endpoints 0 and 1:
        # B(t) = 3(1-t)^2 t p1 + 3(1-t) t^2 p2 + t^3
        omt = 1.0 - t
        return 3.0 * omt * omt * t * p1 + 3.0 * omt * t * t * p2 + t * t * t

    def _bezier_dx(self, t: float) -> float:
        omt = 1.0 - t
        return (
            3.0 * omt * omt * self.x1
            + 6.0 * omt * t * (self.x2 - self.x1)
            + 3.0 * t * t * (1.0 - self.x2)
        )

    def _solve_t(self, x: float) -> float:
        # Newton iteration with a bisection fallback for flat derivatives.
        t = x
        for _ in range(12):
            err = self._bezier(t, self.x1, self.x2) - x
            if abs(err) < 1e-9:
                return t
            d = self._bezier_dx(t)
            if abs(d) < 1e-7:
                break
            t -= err / d
            t = _clamp01(t)
        lo, hi = 0.0, 1.0
        for _ in range(60):
            mid = (lo + hi) / 2.0
            if self._bezier(mid, self.x1, self.x2) < x:
                lo = mid
            else:
                hi = mid
        return (lo + hi) / 2.0

    def value(self, x: float) -> float:
        x = _clamp01(x)
        if x == 0.0 or x == 1.0:
            return x
        t = self._solve_t(x)
        return self._bezier(t, self.y1, self.y2)

    def cache_key(self):
        # FastOutSlowIn shares this key with an explicitly-constructed
        # CubicBezierInterpolator(0.4, 0, 0.2, 1) on purpose: same control
        # points, same solver, same bits.
        return ("cubic-bezier", self.x1, self.y1, self.x2, self.y2)


class FastOutSlowInInterpolator(CubicBezierInterpolator):
    """Android's ``FastOutSlowInInterpolator``: cubic Bezier (0.4, 0, 0.2, 1).

    This drives the notification-alert slide-in exploited by the
    draw-and-destroy overlay attack. The paper (Section III-B) observes that
    the first 10 ms frame of the 360 ms animation renders about 0.17% of the
    view — which rounds to zero pixels on a 72 px alert — and that less than
    50% of the view is shown within the first 100 ms (Fig. 2).
    """

    name = "fast-out-slow-in"

    def __init__(self) -> None:
        super().__init__(0.4, 0.0, 0.2, 1.0)


class AccelerateDecelerateInterpolator(Interpolator):
    """``y = cos((x + 1) * pi) / 2 + 0.5`` — Android's default for views."""

    name = "accelerate-decelerate"

    def value(self, x: float) -> float:
        x = _clamp01(x)
        return math.cos((x + 1.0) * math.pi) / 2.0 + 0.5

    def cache_key(self):
        return ("accelerate-decelerate",)
