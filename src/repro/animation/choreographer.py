"""Choreographer: factory for animators bound to one display's frame clock.

On a real device every window's animations are driven by a single vsync
source. The simulated :class:`Choreographer` captures the per-device refresh
interval (from the device profile) so that subsystems creating animators —
System UI for the notification alert, the Window Manager Service for toast
fades — agree on frame timing without re-plumbing the constant everywhere.
"""

from __future__ import annotations

from typing import Optional

from ..sim.simulation import Simulation
from .animator import (
    DEFAULT_REFRESH_INTERVAL,
    Animator,
    DoneCallback,
    FrameCallback,
)
from .interpolators import Interpolator
from .kernels import FrameTable, frame_table


class Choreographer:
    """Creates :class:`Animator` instances sharing one refresh interval."""

    def __init__(
        self,
        simulation: Simulation,
        refresh_interval_ms: float = DEFAULT_REFRESH_INTERVAL,
    ) -> None:
        if refresh_interval_ms <= 0:
            raise ValueError(
                f"refresh interval must be positive, got {refresh_interval_ms}"
            )
        self._simulation = simulation
        self._refresh_interval = float(refresh_interval_ms)
        self._animators_created = 0

    @property
    def refresh_interval_ms(self) -> float:
        return self._refresh_interval

    @property
    def animators_created(self) -> int:
        """Total animators handed out (a cheap load/overhead metric)."""
        return self._animators_created

    def prewarm(
        self,
        interpolator: Interpolator,
        duration_ms: float,
        view_height_px: int = 0,
    ) -> "Optional[FrameTable]":
        """Build (or fetch) the frame table for one animation up front.

        Boot-time callers use this to move table construction out of the
        first animation frame; the table lands in the process-wide cache,
        so every later animator and notification entry with the same
        (curve, duration, refresh, height) gets a cache hit. Returns the
        table, or ``None`` when kernels are disabled or the interpolator
        is not cacheable.
        """
        return frame_table(
            interpolator, duration_ms, self._refresh_interval, view_height_px
        )

    def create_animator(
        self,
        interpolator: Interpolator,
        duration_ms: float,
        on_frame: Optional[FrameCallback] = None,
        on_finished: Optional[DoneCallback] = None,
        name: str = "animator",
    ) -> Animator:
        self._animators_created += 1
        return Animator(
            simulation=self._simulation,
            interpolator=interpolator,
            duration_ms=duration_ms,
            refresh_interval_ms=self._refresh_interval,
            on_frame=on_frame,
            on_finished=on_finished,
            name=name,
        )
