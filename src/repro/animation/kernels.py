"""Precomputed interpolator frame tables — the animation hot-path kernel.

Android quantizes animations to frames: a view's completeness only changes
when a vsync callback fires, every ``refresh_interval_ms``. Every consumer
of an eased animation in this reproduction therefore evaluates the
interpolator at the *same* normalized times over and over — once per frame
per animator per trial, with the FastOutSlowIn cubic Bezier costing a
Newton/bisection solve per call. A :class:`FrameTable` evaluates each
frame exactly once and shares the result process-wide.

Byte-identity is the design constraint, not an aspiration: every row is
computed by the same float expressions the scalar code paths use
(``min(k * refresh, duration) / duration`` fed to ``Interpolator.value``),
so a table lookup returns the *same bits* the scalar path would. The
differential harness (``tests/test_kernel_equivalence.py``) and the
hypothesis suite (``tests/animation/test_kernel_properties.py``) pin this.

Tables are memoized in :data:`repro.sim.framecache.FRAME_TABLE_CACHE`
under a content key — interpolator curve parameters, duration, refresh
interval, view height — so one table serves every animator on a device
across all trials; stack ``reset()`` does not touch them. Interpolators
without a stable curve key (unknown subclasses) simply get no table and
stay on the scalar path.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Tuple

from ..sim.framecache import FRAME_TABLE_CACHE, kernels_enabled
from .interpolators import Interpolator


def rendered_pixels(completeness: float, view_height_px: int) -> int:
    """Pixels of a ``view_height_px``-tall view shown at ``completeness``.

    Uses round-half-up to match the paper's "rounds 0.1224 up to 0" wording
    (banker's rounding vs. half-up is irrelevant below 0.5 px).

    ``completeness`` is clamped into ``[0, 1]`` first — documented
    behavior, not an accident: a custom overshooting Bezier (``y`` control
    points outside ``[0, 1]``) can report completeness beyond the range,
    but a view never renders negative pixels or more pixels than it has.
    """
    if completeness <= 0.0:
        return 0
    if completeness >= 1.0:
        return view_height_px
    return int(math.floor(completeness * view_height_px + 0.5))


class FrameTable:
    """Immutable per-frame rendering table of one quantized animation.

    Row ``k`` describes the frame nominally fired at ``k * refresh`` ms
    after animation start:

    * ``times_ms[k]``   — the nominal frame time ``k * refresh`` (the
      final row's time may exceed ``duration``; the frame that lands at or
      past the end renders completeness 1.0, exactly like the scalar
      animator's clamp);
    * ``completeness[k]`` — ``interpolator.value(min(k*refresh, duration)
      / duration)``, bit-equal to what the scalar paths compute;
    * ``pixels[k]``     — ``rendered_pixels(completeness[k], height)``.

    The last row is the first frame with ``k * refresh >= duration``; any
    frame index beyond it renders identically to it (the animation is
    complete), so lookups clamp to the final row.
    """

    __slots__ = (
        "duration_ms", "refresh_interval_ms", "view_height_px",
        "times_ms", "completeness", "pixels",
        "first_visible_index", "_by_x",
    )

    def __init__(
        self,
        interpolator: Interpolator,
        duration_ms: float,
        refresh_interval_ms: float,
        view_height_px: int,
    ) -> None:
        if duration_ms < 0:
            raise ValueError(f"duration must be >= 0, got {duration_ms}")
        if refresh_interval_ms <= 0:
            raise ValueError(
                f"refresh interval must be positive, got {refresh_interval_ms}"
            )
        if view_height_px < 0:
            raise ValueError(
                f"view height must be >= 0, got {view_height_px}"
            )
        self.duration_ms = float(duration_ms)
        self.refresh_interval_ms = float(refresh_interval_ms)
        self.view_height_px = int(view_height_px)

        times = []
        values = []
        pixels = []
        by_x: Dict[float, float] = {}
        k = 0
        while True:
            t = k * self.refresh_interval_ms
            if self.duration_ms > 0.0:
                x = min(t, self.duration_ms) / self.duration_ms
            else:
                # Zero-duration animation: every frame (including the one
                # at t=0) renders the fully-complete view. The scalar
                # paths never divide here either — they treat the first
                # frame as the end of the animation.
                x = 1.0
            value = interpolator.value(x)
            times.append(t)
            values.append(value)
            pixels.append(rendered_pixels(value, self.view_height_px))
            # `value` was produced from the exact float the frame-driven
            # animator feeds to the interpolator whenever its elapsed time
            # lands on the nominal grid, so the x-keyed map returns the
            # same bits `interpolator.value` would.
            by_x.setdefault(x, value)
            if t >= self.duration_ms:
                break
            k += 1
        self.times_ms: Tuple[float, ...] = tuple(times)
        self.completeness: Tuple[float, ...] = tuple(values)
        self.pixels: Tuple[int, ...] = tuple(pixels)
        self._by_x = by_x

        first_visible: Optional[int] = None
        for index in range(1, len(self.pixels)):
            if self.pixels[index] >= 1:
                first_visible = index
                break
        if first_visible is None and self.duration_ms == 0.0 \
                and self.pixels and self.pixels[0] >= 1:
            first_visible = 0
        #: Index of the first frame after start rendering >= 1 px, or
        #: ``None`` if the animation never shows a visible pixel.
        self.first_visible_index = first_visible

    # ------------------------------------------------------------------
    @property
    def frame_count(self) -> int:
        return len(self.times_ms)

    def rows(self) -> Tuple[Tuple[float, float, int], ...]:
        """The table as ``(time_ms, completeness, rendered_pixels)`` rows."""
        return tuple(zip(self.times_ms, self.completeness, self.pixels))

    def completeness_at_frame(self, index: int) -> float:
        """Completeness rendered by frame ``index`` (clamped past the end)."""
        if index < 0:
            return self.completeness[0]
        last = len(self.completeness) - 1
        return self.completeness[index if index < last else last]

    def pixels_at_frame(self, index: int) -> int:
        if index < 0:
            return self.pixels[0]
        last = len(self.pixels) - 1
        return self.pixels[index if index < last else last]

    def completeness_for_x(self, x: float) -> Optional[float]:
        """Table hit for an exact normalized time, or ``None``.

        The frame-driven animator's elapsed times are accumulated sums;
        they usually — but not always — equal the nominal grid bit for
        bit. A hit returns precomputed ``value(x)`` for that exact float;
        a miss means the caller must evaluate the interpolator itself.
        """
        return self._by_x.get(x)

    def first_visible_time_ms(self) -> Optional[float]:
        """Nominal time of the first frame rendering >= 1 px, or ``None``."""
        if self.first_visible_index is None:
            return None
        return self.times_ms[self.first_visible_index]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"FrameTable(frames={self.frame_count}, "
            f"duration={self.duration_ms}ms, "
            f"refresh={self.refresh_interval_ms}ms, "
            f"height={self.view_height_px}px)"
        )


def frame_table(
    interpolator: Interpolator,
    duration_ms: float,
    refresh_interval_ms: float,
    view_height_px: int,
) -> Optional[FrameTable]:
    """The memoized frame table for one (curve, duration, refresh, height).

    Returns ``None`` when kernels are disabled (``REPRO_NO_KERNELS=1``) or
    the interpolator has no stable curve key (an unknown subclass whose
    values the cache could not vouch for) — callers then stay on their
    scalar paths.
    """
    if not kernels_enabled():
        return None
    curve_key = interpolator.cache_key()
    if curve_key is None:
        return None
    key = (curve_key, float(duration_ms), float(refresh_interval_ms),
           int(view_height_px))
    return FRAME_TABLE_CACHE.get_or_build(
        key,
        lambda: FrameTable(interpolator, duration_ms, refresh_interval_ms,
                           view_height_px),
    )


__all__ = ["FrameTable", "frame_table", "rendered_pixels"]
