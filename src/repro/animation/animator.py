"""Frame-driven animator running on the simulation clock.

Android renders animations as discrete frames separated by the display
refresh interval (10 ms by default per the Android developer guides, as the
paper cites in Section III-B). The attacker's window exists *because*
animations are frame-quantized and eased: completeness between frames is
irrelevant — only what a frame actually draws can be seen.
"""

from __future__ import annotations

import enum
from typing import Callable, Optional

from ..sim.event import EventHandle
from ..sim.simulation import Simulation
from .interpolators import Interpolator
from .kernels import FrameTable, frame_table, rendered_pixels

#: Android's ANIMATION_DURATION_STANDARD (ms) — notification slide-in.
ANIMATION_DURATION_STANDARD = 360.0

#: Duration of the toast fade-in and fade-out animations (ms).
TOAST_ANIMATION_DURATION = 500.0

#: Default interval between animation frames (ms).
DEFAULT_REFRESH_INTERVAL = 10.0


class AnimationState(enum.Enum):
    """Lifecycle of an :class:`Animator`."""

    IDLE = "idle"
    RUNNING = "running"
    FINISHED = "finished"
    CANCELLED = "cancelled"
    REVERSING = "reversing"
    REVERSED = "reversed"


FrameCallback = Callable[[float], None]
DoneCallback = Callable[[], None]


class Animator:
    """Plays an eased animation as scheduled frames on the simulation clock.

    The animator reports *rendered* progress: ``progress`` only changes when
    a frame fires. ``max_progress`` records the high-water mark, which the
    outcome classifier (paper Fig. 6) uses to decide how much of the
    notification view a user could ever have seen.
    """

    def __init__(
        self,
        simulation: Simulation,
        interpolator: Interpolator,
        duration_ms: float,
        refresh_interval_ms: float = DEFAULT_REFRESH_INTERVAL,
        on_frame: Optional[FrameCallback] = None,
        on_finished: Optional[DoneCallback] = None,
        name: str = "animator",
    ) -> None:
        if duration_ms <= 0:
            raise ValueError(f"duration must be positive, got {duration_ms}")
        if refresh_interval_ms <= 0:
            raise ValueError(f"refresh interval must be positive, got {refresh_interval_ms}")
        self._simulation = simulation
        self._interpolator = interpolator
        self._duration = float(duration_ms)
        self._refresh = float(refresh_interval_ms)
        self._on_frame = on_frame
        self._on_finished = on_finished
        self._name = name

        self._state = AnimationState.IDLE
        self._start_time: Optional[float] = None
        self._progress = 0.0
        self._max_progress = 0.0
        self._frames_rendered = 0
        self._frames_dropped = 0
        self._pending: Optional[EventHandle] = None
        # Reverse playback bookkeeping.
        self._reverse_from = 0.0
        self._reverse_start: Optional[float] = None
        # Kernel fast path: a memoized per-frame table of the eased curve
        # (None when kernels are off or the interpolator is not cacheable).
        # The animator only needs completeness, so the table is keyed at
        # height 0; pixel consumers build their own height-keyed tables.
        self._table: Optional[FrameTable] = frame_table(
            interpolator, self._duration, self._refresh, 0
        )
        # Frame accounting for the metrics plane. Imported lazily: the
        # compositor (which owns the metric names) imports toast code that
        # imports this module.
        if simulation.metrics is not None:
            from ..windows.compositor import frame_instruments

            self._m_frames = frame_instruments(simulation.metrics)
        else:
            self._m_frames = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def state(self) -> AnimationState:
        return self._state

    @property
    def progress(self) -> float:
        """Most recently *rendered* completeness fraction."""
        return self._progress

    @property
    def max_progress(self) -> float:
        """Highest completeness ever rendered (survives cancel/reverse)."""
        return self._max_progress

    @property
    def frames_rendered(self) -> int:
        return self._frames_rendered

    @property
    def frames_dropped(self) -> int:
        """Frames skipped by the fault layer (0 in fault-free runs)."""
        return self._frames_dropped

    @property
    def duration_ms(self) -> float:
        return self._duration

    @property
    def interpolator(self) -> Interpolator:
        return self._interpolator

    # ------------------------------------------------------------------
    # Control
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin forward playback; frames fire every refresh interval."""
        if self._state is AnimationState.RUNNING:
            return
        self._state = AnimationState.RUNNING
        self._start_time = self._simulation.now
        self._schedule_next_frame()

    def cancel(self) -> None:
        """Stop playback immediately, freezing rendered progress."""
        self._drop_pending()
        if self._state in (AnimationState.RUNNING, AnimationState.REVERSING):
            self._state = AnimationState.CANCELLED

    def reverse(self) -> None:
        """Play back from current rendered progress down to zero.

        This models ``startTopAnimation`` removing the notification view "in
        a reverse way" (paper Section III-C Step 3).
        """
        self._drop_pending()
        if self._progress <= 0.0:
            self._state = AnimationState.REVERSED
            self._finish(reverse=True)
            return
        self._state = AnimationState.REVERSING
        self._reverse_from = self._progress
        self._reverse_start = self._simulation.now
        self._schedule_next_frame()

    # ------------------------------------------------------------------
    # Frame machinery
    # ------------------------------------------------------------------
    def _schedule_next_frame(self) -> None:
        delay = self._refresh
        plan = self._simulation.faults
        if plan is not None:
            # Render jitter: the next vsync callback lands late. The
            # animation still samples its eased curve at the *actual*
            # frame time, so jitter skips portions of the curve — exactly
            # what a janky real device does.
            delay += plan.frame_delay()
        self._pending = self._simulation.schedule_after(
            delay, self._frame, name=f"{self._name}:frame"
        )

    def _drop_pending(self) -> None:
        if self._pending is not None:
            self._pending.cancel_if_pending()
            self._pending = None

    def _frame(self) -> None:
        self._pending = None
        plan = self._simulation.faults
        if plan is not None and plan.drop_frame():
            # Dropped frame: nothing is rendered, but the machinery keeps
            # going — the next frame is scheduled even past the nominal
            # end, so the animation always terminates (drop probability is
            # capped below 1).
            self._frames_dropped += 1
            if self._m_frames is not None:
                self._m_frames[1].inc()
            if self._state in (AnimationState.RUNNING, AnimationState.REVERSING):
                self._schedule_next_frame()
            return
        if self._state is AnimationState.RUNNING:
            assert self._start_time is not None
            elapsed = self._simulation.now - self._start_time
            x = min(elapsed / self._duration, 1.0)
            # Table fast path: when the accumulated frame time lands on
            # the nominal k*refresh grid (the common, fault-free case) the
            # precomputed row holds value(x) for this exact float; misses
            # (jittered frames, float-sum drift) fall back to the scalar
            # evaluation, keeping the rendered bits identical either way.
            value = None
            if self._table is not None:
                value = self._table.completeness_for_x(x)
            if value is None:
                value = self._interpolator.value(x)
            self._render(value)
            if x >= 1.0:
                self._state = AnimationState.FINISHED
                self._finish(reverse=False)
            else:
                self._schedule_next_frame()
        elif self._state is AnimationState.REVERSING:
            assert self._reverse_start is not None
            elapsed = self._simulation.now - self._reverse_start
            # Reverse playback retraces the eased curve proportionally to
            # how far in the animation had progressed.
            span = self._reverse_from * self._duration
            x = 1.0 - min(elapsed / span, 1.0) if span > 0 else 0.0
            self._render(self._reverse_from * x)
            if x <= 0.0:
                self._state = AnimationState.REVERSED
                self._finish(reverse=True)
            else:
                self._schedule_next_frame()

    def _render(self, completeness: float) -> None:
        self._progress = completeness
        if completeness > self._max_progress:
            self._max_progress = completeness
        self._frames_rendered += 1
        if self._m_frames is not None:
            self._m_frames[0].inc()
        if self._on_frame is not None:
            self._on_frame(completeness)

    def _finish(self, reverse: bool) -> None:
        if not reverse and self._on_finished is not None:
            self._on_finished()

    # ------------------------------------------------------------------
    # Static timing analysis
    # ------------------------------------------------------------------
    def first_visible_frame_time(self, view_height_px: int) -> float:
        """Time (ms after start) of the first frame drawing >= 1 pixel.

        A frame at elapsed time ``t`` renders ``round(height * value(t/dur))``
        pixels; Android rounds sub-pixel heights down to nothing, which is
        why the very first frames of the FastOutSlowIn slide-in show zero
        pixels (paper Section III-B, the 72 px / 0.17% example).
        """
        return first_visible_frame_time(
            self._interpolator, self._duration, self._refresh, view_height_px
        )


# ``rendered_pixels`` is imported from ``.kernels`` above and re-exported
# here unchanged so existing importers keep working; the pixel math
# (including the documented [0, 1] clamp) lives in one place.


def first_visible_frame_time(
    interpolator: Interpolator,
    duration_ms: float,
    refresh_interval_ms: float,
    view_height_px: int,
) -> float:
    """Earliest frame time (ms after animation start) rendering >= 1 px.

    A zero-duration animation renders the complete view on its very first
    frame, so the answer is 0.0 when the view has any pixels at full
    completeness (and the usual "never visible" error otherwise).
    """
    table = frame_table(
        interpolator, duration_ms, refresh_interval_ms, view_height_px
    )
    if table is not None:
        t = table.first_visible_time_ms()
        if t is None:
            raise ValueError(
                f"animation never renders a visible pixel of a "
                f"{view_height_px}px view"
            )
        return t
    if duration_ms == 0.0:
        if rendered_pixels(interpolator.value(1.0), view_height_px) >= 1:
            return 0.0
        raise ValueError(
            f"animation never renders a visible pixel of a "
            f"{view_height_px}px view"
        )
    frame = 1
    while True:
        t = frame * refresh_interval_ms
        x = min(t / duration_ms, 1.0)
        if rendered_pixels(interpolator.value(x), view_height_px) >= 1:
            return t
        if x >= 1.0:
            raise ValueError(
                f"animation never renders a visible pixel of a "
                f"{view_height_px}px view"
            )
        frame += 1
