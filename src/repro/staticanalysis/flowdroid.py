"""FlowDroid-style reachability analysis over DEX call-graph summaries.

The paper analyzes method usage "using a tool based on FlowDroid". The key
property distinguishing this from a string grep is *reachability*: an
``addView`` call sitting in dead code must not count. The analyzer runs a
BFS from the app's lifecycle entry points and reports only APIs on
reachable paths.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import FrozenSet, Set

from .manifest import (
    API_ADD_VIEW,
    API_REMOVE_VIEW,
    API_TOAST_SET_VIEW,
    DexSummary,
)


@dataclass(frozen=True)
class CodeFeatures:
    """Reachable-API findings for one app."""

    reachable_apis: FrozenSet[str]

    @property
    def calls_add_view(self) -> bool:
        return API_ADD_VIEW in self.reachable_apis

    @property
    def calls_remove_view(self) -> bool:
        return API_REMOVE_VIEW in self.reachable_apis

    @property
    def calls_add_and_remove(self) -> bool:
        return self.calls_add_view and self.calls_remove_view

    @property
    def uses_custom_toast(self) -> bool:
        """``Toast.setView`` = a toast customized "with any content"."""
        return API_TOAST_SET_VIEW in self.reachable_apis


class FlowDroidAnalyzer:
    """Computes reachable framework-API calls from a call-graph summary."""

    def analyze(self, dex: DexSummary) -> CodeFeatures:
        reachable_apis: Set[str] = set()
        visited: Set[str] = set()
        frontier = deque(dex.entry_points)
        while frontier:
            method = frontier.popleft()
            if method in visited:
                continue
            visited.add(method)
            for target in dex.call_graph.get(method, ()):
                if target.startswith("android."):
                    reachable_apis.add(target)
                elif target not in visited:
                    frontier.append(target)
        return CodeFeatures(reachable_apis=frozenset(reachable_apis))
