"""Prevalence study: running both analyzers over a corpus.

Reproduces the headline numbers of Section VI-C2: of 890,855 apps,
4,405 request SYSTEM_ALERT_WINDOW and register an accessibility service;
18,887 call addView and removeView and request SYSTEM_ALERT_WINDOW;
15,179 use a customized toast — i.e., app stores do host apps with every
capability the attacks need.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from .aapt import AaptAnalyzer
from .corpus import (
    PAPER_ADDREMOVE_AND_SAW,
    PAPER_CORPUS_SIZE,
    PAPER_CUSTOM_TOAST,
    PAPER_SAW_AND_ACCESSIBILITY,
)
from .flowdroid import FlowDroidAnalyzer
from .manifest import AppRecord


@dataclass(frozen=True)
class PrevalenceCounts:
    """The three headline counts over a corpus of ``total`` apps.

    ``full_capability`` additionally counts apps carrying *everything* the
    password-stealing attack uses at once (SYSTEM_ALERT_WINDOW +
    accessibility service + reachable addView/removeView + customized
    toast) — the paper's implicit point that such apps pass store review.
    """

    total: int
    saw_and_accessibility: int
    addremove_and_saw: int
    custom_toast: int
    full_capability: int = 0

    def scaled_to(self, target_total: int) -> "PrevalenceCounts":
        """Linearly rescale counts to a different corpus size (used to
        compare a smaller synthetic run against the paper's 890,855)."""
        if self.total <= 0:
            raise ValueError("cannot scale an empty corpus")
        factor = target_total / self.total
        return PrevalenceCounts(
            total=target_total,
            saw_and_accessibility=round(self.saw_and_accessibility * factor),
            addremove_and_saw=round(self.addremove_and_saw * factor),
            custom_toast=round(self.custom_toast * factor),
            full_capability=round(self.full_capability * factor),
        )

    @staticmethod
    def paper_reference() -> "PrevalenceCounts":
        return PrevalenceCounts(
            total=PAPER_CORPUS_SIZE,
            saw_and_accessibility=PAPER_SAW_AND_ACCESSIBILITY,
            addremove_and_saw=PAPER_ADDREMOVE_AND_SAW,
            custom_toast=PAPER_CUSTOM_TOAST,
        )


def run_prevalence_study(records: Iterable[AppRecord]) -> PrevalenceCounts:
    """Run aapt + FlowDroid over every record and tally the three counts."""
    aapt = AaptAnalyzer()
    flowdroid = FlowDroidAnalyzer()
    total = 0
    saw_and_accessibility = 0
    addremove_and_saw = 0
    custom_toast = 0
    full_capability = 0
    for record in records:
        total += 1
        manifest_features = aapt.analyze(record.manifest.to_axml())
        code_features = flowdroid.analyze(record.dex)
        has_saw = manifest_features.requests_system_alert_window
        has_accessibility = manifest_features.registers_accessibility_service
        has_pair = code_features.calls_add_and_remove
        has_toast = code_features.uses_custom_toast
        if has_saw and has_accessibility:
            saw_and_accessibility += 1
        if has_pair and has_saw:
            addremove_and_saw += 1
        if has_toast:
            custom_toast += 1
        if has_saw and has_accessibility and has_pair and has_toast:
            full_capability += 1
    return PrevalenceCounts(
        total=total,
        saw_and_accessibility=saw_and_accessibility,
        addremove_and_saw=addremove_and_saw,
        custom_toast=custom_toast,
        full_capability=full_capability,
    )
