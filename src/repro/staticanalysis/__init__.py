"""Static-analysis substrate: synthetic AndroZoo-like corpus, aapt-style
manifest analyzer, FlowDroid-style reachability analyzer, and the
prevalence study of paper Section VI-C2."""

from .aapt import AaptAnalyzer, AaptParseError, ManifestFeatures
from .corpus import (
    CorpusRates,
    ExpectedCounts,
    PAPER_ADDREMOVE_AND_SAW,
    PAPER_CORPUS_SIZE,
    PAPER_CUSTOM_TOAST,
    PAPER_SAW_AND_ACCESSIBILITY,
    SyntheticCorpus,
)
from .flowdroid import CodeFeatures, FlowDroidAnalyzer
from .manifest import (
    API_ADD_VIEW,
    API_REMOVE_VIEW,
    API_TOAST_SET_VIEW,
    API_TOAST_SHOW,
    AppManifest,
    AppRecord,
    DexSummary,
    PERM_BIND_ACCESSIBILITY,
    PERM_INTERNET,
    PERM_SYSTEM_ALERT_WINDOW,
)
from .report import PrevalenceCounts, run_prevalence_study

__all__ = [
    "API_ADD_VIEW",
    "API_REMOVE_VIEW",
    "API_TOAST_SET_VIEW",
    "API_TOAST_SHOW",
    "AaptAnalyzer",
    "AaptParseError",
    "AppManifest",
    "AppRecord",
    "CodeFeatures",
    "CorpusRates",
    "DexSummary",
    "ExpectedCounts",
    "FlowDroidAnalyzer",
    "ManifestFeatures",
    "PAPER_ADDREMOVE_AND_SAW",
    "PAPER_CORPUS_SIZE",
    "PAPER_CUSTOM_TOAST",
    "PAPER_SAW_AND_ACCESSIBILITY",
    "PERM_BIND_ACCESSIBILITY",
    "PERM_INTERNET",
    "PERM_SYSTEM_ALERT_WINDOW",
    "PrevalenceCounts",
    "SyntheticCorpus",
    "run_prevalence_study",
]
