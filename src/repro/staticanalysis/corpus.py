"""Synthetic AndroZoo-like corpus generator.

The paper crawls 890,855 apps from AndroZoo. We cannot redistribute or
fetch them, so we generate a synthetic corpus whose *feature prevalence*
matches the paper's findings:

* 4,405 apps request SYSTEM_ALERT_WINDOW **and** register an accessibility
  service;
* 18,887 apps call both ``addView`` and ``removeView`` **and** request
  SYSTEM_ALERT_WINDOW;
* 15,179 apps use a customized toast.

The generator draws each app's features from a correlated model calibrated
to those marginals (see ``CorpusRates``), then materializes a manifest and
a small call graph — including apps whose ``addView`` sits in dead code, a
case the FlowDroid-style reachability analysis must exclude.

Generation is streaming (O(1) memory), since the full-size corpus is close
to a million records.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

from ..sim.rng import SeededRng
from .manifest import (
    API_ADD_VIEW,
    API_REMOVE_VIEW,
    API_TOAST_SET_VIEW,
    API_TOAST_SHOW,
    PERM_BIND_ACCESSIBILITY,
    PERM_INTERNET,
    PERM_SYSTEM_ALERT_WINDOW,
    AppManifest,
    AppRecord,
    DexSummary,
    TRUTH_ACCESSIBILITY,
    TRUTH_ADD_REMOVE,
    TRUTH_CUSTOM_TOAST,
    TRUTH_DEAD_ADD_REMOVE,
    TRUTH_SAW,
)

#: The paper's corpus size and headline counts (Section VI-C2).
PAPER_CORPUS_SIZE = 890_855
PAPER_SAW_AND_ACCESSIBILITY = 4_405
PAPER_ADDREMOVE_AND_SAW = 18_887
PAPER_CUSTOM_TOAST = 15_179


@dataclass(frozen=True)
class CorpusRates:
    """Feature probabilities calibrated to the paper's counts."""

    #: P(app requests SYSTEM_ALERT_WINDOW). The paper does not report the
    #: marginal; ~3% matches contemporaneous measurement studies.
    p_saw: float = 0.03
    #: P(reachable addView & removeView | SAW) — fitted so that
    #: N * p_saw * this == 18,887 at N = 890,855.
    p_add_remove_given_saw: float = PAPER_ADDREMOVE_AND_SAW / (PAPER_CORPUS_SIZE * 0.03)
    #: P(accessibility service | SAW) — fitted so that
    #: N * p_saw * this == 4,405.
    p_accessibility_given_saw: float = PAPER_SAW_AND_ACCESSIBILITY / (
        PAPER_CORPUS_SIZE * 0.03
    )
    #: P(accessibility service | no SAW): accessibility without overlays is
    #: rarer but nonzero.
    p_accessibility_given_no_saw: float = 0.002
    #: P(customized toast) — marginal, 15,179 / 890,855.
    p_custom_toast: float = PAPER_CUSTOM_TOAST / PAPER_CORPUS_SIZE
    #: P(reachable addView & removeView | no SAW): plenty of apps manage
    #: windows without the overlay permission.
    p_add_remove_given_no_saw: float = 0.18
    #: P(the add/remove calls exist only in dead code | app has them at
    #: all) — the reachability analysis must not count these.
    p_dead_code: float = 0.06
    #: P(INTERNET) — background noise feature.
    p_internet: float = 0.92

    def expected_counts(self, corpus_size: int) -> "ExpectedCounts":
        saw = corpus_size * self.p_saw
        return ExpectedCounts(
            corpus_size=corpus_size,
            saw_and_accessibility=saw * self.p_accessibility_given_saw,
            addremove_and_saw=saw * self.p_add_remove_given_saw * (1 - self.p_dead_code),
            custom_toast=corpus_size * self.p_custom_toast,
        )


@dataclass(frozen=True)
class ExpectedCounts:
    corpus_size: int
    saw_and_accessibility: float
    addremove_and_saw: float
    custom_toast: float


class SyntheticCorpus:
    """Streaming generator of synthetic app records."""

    def __init__(
        self,
        size: int,
        seed: int = 0,
        rates: Optional[CorpusRates] = None,
    ) -> None:
        if size <= 0:
            raise ValueError(f"corpus size must be positive, got {size}")
        self.size = size
        self.rates = rates or CorpusRates()
        self._seed = seed

    def __len__(self) -> int:
        return self.size

    def __iter__(self) -> Iterator[AppRecord]:
        rng = SeededRng(self._seed, "corpus")
        for index in range(self.size):
            yield self._generate_one(rng, index)

    def sample(self, count: int) -> List[AppRecord]:
        """The first ``count`` records (deterministic prefix)."""
        records: List[AppRecord] = []
        for record in self:
            records.append(record)
            if len(records) >= count:
                break
        return records

    def expected_counts(self) -> ExpectedCounts:
        return self.rates.expected_counts(self.size)

    # ------------------------------------------------------------------
    def _generate_one(self, rng: SeededRng, index: int) -> AppRecord:
        rates = self.rates
        truth: List[str] = []
        has_saw = rng.chance(rates.p_saw)
        if has_saw:
            truth.append(TRUTH_SAW)
            has_accessibility = rng.chance(rates.p_accessibility_given_saw)
            has_add_remove = rng.chance(rates.p_add_remove_given_saw)
        else:
            has_accessibility = rng.chance(rates.p_accessibility_given_no_saw)
            has_add_remove = rng.chance(rates.p_add_remove_given_no_saw)
        if has_accessibility:
            truth.append(TRUTH_ACCESSIBILITY)
        dead_only = has_add_remove and rng.chance(rates.p_dead_code)
        if has_add_remove and not dead_only:
            truth.append(TRUTH_ADD_REMOVE)
        if dead_only:
            truth.append(TRUTH_DEAD_ADD_REMOVE)
        has_custom_toast = rng.chance(rates.p_custom_toast)
        if has_custom_toast:
            truth.append(TRUTH_CUSTOM_TOAST)

        permissions = set()
        if rng.chance(rates.p_internet):
            permissions.add(PERM_INTERNET)
        if has_saw:
            permissions.add(PERM_SYSTEM_ALERT_WINDOW)
        services: Tuple[Tuple[str, str], ...] = ()
        if has_accessibility:
            services = (
                (f"app{index}.A11yService", PERM_BIND_ACCESSIBILITY),
            )

        manifest = AppManifest(
            package=f"com.corpus.app{index}",
            version_code=rng.randint(1, 400),
            permissions=frozenset(permissions),
            services=services,
        )
        dex = self._generate_dex(
            rng, has_add_remove, dead_only, has_custom_toast
        )
        return AppRecord(manifest=manifest, dex=dex, truth=frozenset(truth))

    @staticmethod
    def _generate_dex(
        rng: SeededRng,
        has_add_remove: bool,
        dead_only: bool,
        has_custom_toast: bool,
    ) -> DexSummary:
        graph = {"onCreate": ("init",), "init": ("render",), "render": ()}
        if has_add_remove:
            if dead_only:
                # The calls exist but hang off a method nothing invokes.
                graph["unusedHelper"] = (API_ADD_VIEW, API_REMOVE_VIEW)
            else:
                graph["init"] = ("render", "showFloat")
                graph["showFloat"] = (API_ADD_VIEW,)
                graph["render"] = (API_REMOVE_VIEW,)
        if has_custom_toast:
            graph["notifyUser"] = (API_TOAST_SET_VIEW, API_TOAST_SHOW)
            graph["onCreate"] = graph["onCreate"] + ("notifyUser",)
        return DexSummary(entry_points=("onCreate",), call_graph=graph)
