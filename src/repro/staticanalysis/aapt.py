"""aapt-style manifest analyzer.

The paper builds "a tool based on aapt to statically enumerate the service
and permission used in an app". This analyzer consumes the flat AXML text
dump (``AppManifest.to_axml``) — not the in-memory object — so the parsing
step is real and testable against malformed input.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from .manifest import PERM_BIND_ACCESSIBILITY, PERM_SYSTEM_ALERT_WINDOW

_PERMISSION_RE = re.compile(r"^uses-permission: name='(?P<name>[^']+)'$")
_SERVICE_RE = re.compile(
    r"^service: name='(?P<name>[^']+)' permission='(?P<guard>[^']*)'$"
)
_PACKAGE_RE = re.compile(
    r"^package: name='(?P<name>[^']+)' versionCode='(?P<version>\d+)'$"
)


class AaptParseError(ValueError):
    """The manifest dump was malformed."""


@dataclass(frozen=True)
class ManifestFeatures:
    """What the manifest study extracts from one app."""

    package: str
    version_code: int
    requests_system_alert_window: bool
    registers_accessibility_service: bool


class AaptAnalyzer:
    """Parses AXML dumps into :class:`ManifestFeatures`."""

    def analyze(self, axml_dump: str) -> ManifestFeatures:
        package = ""
        version_code = -1
        permissions = set()
        accessibility = False
        for line_number, line in enumerate(axml_dump.splitlines(), start=1):
            line = line.strip()
            if not line:
                continue
            package_match = _PACKAGE_RE.match(line)
            if package_match:
                package = package_match.group("name")
                version_code = int(package_match.group("version"))
                continue
            permission_match = _PERMISSION_RE.match(line)
            if permission_match:
                permissions.add(permission_match.group("name"))
                continue
            service_match = _SERVICE_RE.match(line)
            if service_match:
                if service_match.group("guard") == PERM_BIND_ACCESSIBILITY:
                    accessibility = True
                continue
            raise AaptParseError(f"unparseable manifest line {line_number}: {line!r}")
        if not package:
            raise AaptParseError("manifest has no package declaration")
        return ManifestFeatures(
            package=package,
            version_code=version_code,
            requests_system_alert_window=PERM_SYSTEM_ALERT_WINDOW in permissions,
            registers_accessibility_service=accessibility,
        )
