"""App manifests and DEX summaries — the artifacts the corpus study parses.

The paper analyzes 890,855 AndroZoo APKs with an aapt-based tool (manifest:
permissions and registered services) and a FlowDroid-based tool (code:
which framework methods are actually called). We model an APK as a
:class:`AppManifest` (serializable to a flat AXML-like text the aapt
analyzer parses back) plus a :class:`DexSummary` (a tiny call graph whose
reachable API calls the FlowDroid analyzer computes).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Tuple

# Framework API names of interest (Section VI-C2).
API_ADD_VIEW = "android.view.WindowManager.addView"
API_REMOVE_VIEW = "android.view.WindowManager.removeView"
API_TOAST_SET_VIEW = "android.widget.Toast.setView"  # the customized toast
API_TOAST_SHOW = "android.widget.Toast.show"

PERM_SYSTEM_ALERT_WINDOW = "android.permission.SYSTEM_ALERT_WINDOW"
PERM_BIND_ACCESSIBILITY = "android.permission.BIND_ACCESSIBILITY_SERVICE"
PERM_INTERNET = "android.permission.INTERNET"


@dataclass(frozen=True)
class AppManifest:
    """The AndroidManifest.xml slice the study needs."""

    package: str
    version_code: int
    permissions: FrozenSet[str]
    #: (service class name, service-level permission) pairs; an
    #: accessibility service is one guarded by BIND_ACCESSIBILITY_SERVICE.
    services: Tuple[Tuple[str, str], ...] = ()

    def to_axml(self) -> str:
        """Serialize to the flat text form the aapt analyzer consumes."""
        lines = [f"package: name='{self.package}' versionCode='{self.version_code}'"]
        for permission in sorted(self.permissions):
            lines.append(f"uses-permission: name='{permission}'")
        for service, guard in self.services:
            lines.append(f"service: name='{service}' permission='{guard}'")
        return "\n".join(lines)


@dataclass(frozen=True)
class DexSummary:
    """A miniature call graph standing in for the app's DEX code.

    ``call_graph`` maps a method to the methods/APIs it invokes; APIs are
    leaves. ``entry_points`` are lifecycle methods reachable at runtime —
    code only reachable from non-entry methods is dead and must not be
    counted (that's the point of using a FlowDroid-style reachability
    analysis rather than a string grep).
    """

    entry_points: Tuple[str, ...]
    call_graph: Dict[str, Tuple[str, ...]] = field(default_factory=dict)

    def all_mentioned_apis(self) -> FrozenSet[str]:
        """Every API name appearing anywhere (including dead code)."""
        mentioned: List[str] = []
        for targets in self.call_graph.values():
            for target in targets:
                if target.startswith("android."):
                    mentioned.append(target)
        return frozenset(mentioned)


@dataclass(frozen=True)
class AppRecord:
    """One APK: manifest + code summary + generation-time ground truth."""

    manifest: AppManifest
    dex: DexSummary
    #: Ground-truth feature flags assigned at generation time, used to
    #: validate that the analyzers recover the truth.
    truth: FrozenSet[str] = frozenset()

    @property
    def package(self) -> str:
        return self.manifest.package


# Ground-truth flag names.
TRUTH_SAW = "saw"
TRUTH_ACCESSIBILITY = "accessibility"
TRUTH_ADD_REMOVE = "add_remove_reachable"
TRUTH_CUSTOM_TOAST = "custom_toast"
TRUTH_DEAD_ADD_REMOVE = "add_remove_dead_only"
