"""AndroidStack: one fully-wired simulated Android system.

Construction order mirrors boot: Binder first, then System Server (window
manager + permissions + screen), System UI, the Notification Manager
Service, and finally the input pipeline. Apps are created against a stack
(:mod:`repro.apps`), and the attacks and defenses plug into the stack's
extension points (``overlay_alert_policy``, Binder observers,
``inter_toast_gap_ms``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .binder.router import BinderRouter
from .devices.profiles import DeviceProfile
from .devices.registry import reference_device
from .sim.faults import FaultPlan, FaultProfile, plan_for
from .sim.simulation import Simulation
from .systemui.system_ui import AlertMode, SystemUi
from .toast.notification_manager import NotificationManagerService
from .windows.permissions import PermissionManager
from .windows.screen import Screen
from .windows.system_server import SystemServer
from .windows.touch import TouchDispatcher


@dataclass
class AndroidStack:
    """Handles to every subsystem of one simulated device."""

    simulation: Simulation
    profile: DeviceProfile
    router: BinderRouter
    screen: Screen
    permissions: PermissionManager
    system_server: SystemServer
    system_ui: SystemUi
    notification_manager: NotificationManagerService
    touch: TouchDispatcher

    @property
    def now(self) -> float:
        return self.simulation.now

    def run_for(self, duration_ms: float) -> int:
        return self.simulation.run_for(duration_ms)

    def run_until(self, time_ms: float) -> int:
        return self.simulation.run_until(time_ms)

    def reset(
        self,
        seed: int,
        trace_enabled: Optional[bool] = None,
        faults: "Optional[str | FaultProfile | FaultPlan]" = None,
    ) -> "AndroidStack":
        """Re-arm this booted stack for a new trial under ``seed``.

        The reset contract: after ``reset(seed)`` the stack behaves
        **bit-identically** to ``build_stack(seed, ...)`` with the same
        profile/mode — same events, same random draws, same trace (the
        property tests in ``tests/sim/test_stack_reuse.py`` pin this under
        every fault profile). That works because every random sub-stream
        is a pure function of ``(seed, path)``, so re-deriving streams in
        place equals building fresh ones.

        Subsystems are re-armed in boot order (Binder, System Server,
        System UI, Notification Manager, input) so the process registry
        lists them as a fresh boot would. Per-trial mutations are undone:
        Binder observers and defense policies drop off, permissions are
        revoked, windows/toasts/taps are forgotten, the scheduler drains
        and the clock rewinds. What deliberately *survives* are the
        device profile, the alert mode, and the module-level window /
        toast / token id allocators — the parallel runner resets those
        once per experiment, and fresh-build trial loops let them grow
        across trials, so a reused stack must too.

        Returns ``self`` for chaining.
        """
        sim = self.simulation
        sim.reset(seed, trace_enabled=trace_enabled)
        plan = plan_for(faults, sim.rng.child("faults"))
        if plan is not None:
            sim.install_faults(plan)
        self.router.rearm()
        self.screen.reset()
        self.permissions.reset()
        self.system_server.rearm()
        self.system_ui.rearm()
        self.notification_manager.rearm()
        self.touch.rearm()
        return self


def build_stack(
    seed: int = 0,
    profile: Optional[DeviceProfile] = None,
    alert_mode: AlertMode = AlertMode.FRAME,
    trace_enabled: bool = True,
    simulation: Optional[Simulation] = None,
    faults: "Optional[str | FaultProfile | FaultPlan]" = None,
) -> AndroidStack:
    """Boot one simulated Android device.

    Args:
        seed: root seed for every random stream in the run.
        profile: device timing profile; defaults to the paper's demo device
            (Google Pixel 2, Android 11).
        alert_mode: frame-driven or analytic alert animation evaluation.
        trace_enabled: disable for large sweeps to save memory.
        simulation: attach to an existing simulation instead of creating
            one (lets tests drive multiple stacks on one clock).
        faults: fault regime — a profile name (``"mild"``, ...), a
            :class:`FaultProfile`, or a pre-built :class:`FaultPlan`.
            ``None`` resolves through the ambient default profile
            (:func:`repro.sim.faults.set_default_profile`), which is
            ``"none"`` unless an experiment scale says otherwise. No-op
            regimes install nothing, so the fault-free path is untouched.
    """
    if profile is None:
        profile = reference_device()
    sim = simulation or Simulation(seed=seed, trace_enabled=trace_enabled)
    if sim.faults is None:
        plan = plan_for(faults, sim.rng.child("faults"))
        if plan is not None:
            sim.install_faults(plan)
    router = BinderRouter(sim)
    screen = Screen(profile.screen_width_px, profile.screen_height_px)
    permissions = PermissionManager()
    system_server = SystemServer(sim, router, screen, permissions, profile)
    system_ui = SystemUi(sim, router, profile, mode=alert_mode)
    notification_manager = NotificationManagerService(sim, router, system_server, profile)
    touch = TouchDispatcher(
        sim, screen,
        gesture_teardown_ms=profile.android_version.gesture_teardown_ms,
    )
    return AndroidStack(
        simulation=sim,
        profile=profile,
        router=router,
        screen=screen,
        permissions=permissions,
        system_server=system_server,
        system_ui=system_ui,
        notification_manager=notification_manager,
        touch=touch,
    )
