"""Deterministic filesystem fault injection for the storage layer.

The PR-5 chaos harness kills *processes*; this module breaks the
*storage* underneath them. Faults arm through the same ``REPRO_CHAOS``
environment channel (so they reach pool workers untouched) via a new
entry shape the process-chaos parser ignores::

    fs:<surface>:<op>:<mode>[:<nth>]

``surface`` names a :class:`~repro.storage.store.DurableStore` funnel
(``cache``, ``journal``, ``campaign``, ``query-cache``, ``ledger``) or
``*``; ``op`` is ``write``, ``read`` or ``*``; ``mode`` is one of
:data:`FS_MODES`; ``nth`` arms only the nth matching operation (1-based,
counted per ``(surface, op)``) so a test can fail exactly the third
journal write. ``REPRO_CHAOS=@/path/to/file`` reads the spec text from
that file on every consult — a live run's faults can be cleared by
truncating the file, which is how the CI leg lets a tripped breaker
recover.

For statistical campaigns there is also :class:`FsFaultPlan` — the
storage twin of :class:`repro.sim.faults.FaultPlan`: each fault mode
draws from its own pure-hash sub-stream keyed on
``(seed, surface, op, mode, occurrence)``, so enabling one mode never
perturbs which operations another mode hits.
"""

from __future__ import annotations

import errno
import hashlib
import os
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, Optional, Tuple

__all__ = [
    "CHAOS_ENV",
    "FS_MODES",
    "FS_READ_MODES",
    "FsChaosError",
    "FsFaultEntry",
    "FsFaultPlan",
    "InjectedFsError",
    "SimulatedCrash",
    "chaos_spec_text",
    "current_fs_plan",
    "fault_for",
    "fs_chaos",
    "parse_fs_entries",
    "reset_fs_fault_counters",
    "use_fs_plan",
]

#: Same env var the process-chaos harness uses; fs entries are the
#: 4/5-field shape, which :func:`chaos_action` skips and this parser owns.
CHAOS_ENV = "REPRO_CHAOS"

#: Write fault modes, in the fixed precedence order plans draw them.
FS_MODES = ("enospc", "eio", "torn", "rename", "crash")

#: The only mode meaningful on the read path (everything else corrupts
#: or interrupts a write).
FS_READ_MODES = ("eio",)

_FS_OPS = ("write", "read", "*")


class FsChaosError(ValueError):
    """A malformed ``fs:`` entry in the :data:`CHAOS_ENV` spec."""


class InjectedFsError(OSError):
    """An injected storage fault, raised with a faithful ``errno``."""

    def __init__(self, mode: str, code: int, path: object) -> None:
        super().__init__(code, f"injected {mode}", str(path))
        self.mode = mode


class SimulatedCrash(InjectedFsError):
    """Crash between temp-file write and rename: the temp file survives.

    The one fault :func:`~repro.storage.store.atomic_write_bytes` must
    *not* clean up after — the orphaned ``.tmp`` is the whole point, and
    what resume-time sweeping and ``repro fsck`` exist to handle.
    """

    def __init__(self, path: object) -> None:
        super().__init__("crash", errno.EIO, path)


def chaos_spec_text() -> str:
    """The live chaos spec: the env value, or the file it points at.

    ``REPRO_CHAOS=@/path`` re-reads ``/path`` on every consult; a
    missing or unreadable file means no faults, so truncating/removing
    it disarms a running process without restarting it.
    """
    raw = os.environ.get(CHAOS_ENV, "")
    if raw.startswith("@"):
        try:
            return Path(raw[1:]).read_text().strip()
        except OSError:
            return ""
    return raw


@dataclass(frozen=True)
class FsFaultEntry:
    """One parsed ``fs:surface:op:mode[:nth]`` spec entry."""

    surface: str
    op: str
    mode: str
    #: 1-based occurrence to arm, or ``None`` for every occurrence.
    nth: Optional[int]

    def matches(self, surface: str, op: str, occurrence: int) -> bool:
        if self.surface not in ("*", surface):
            return False
        if self.op not in ("*", op):
            return False
        if op == "read" and self.mode not in FS_READ_MODES:
            return False
        if self.nth is not None and self.nth != occurrence:
            return False
        return True


#: Memoizes the last parsed spec text — the disarmed hot path pays one
#: string compare per operation instead of a re-parse.
_parse_cache: Tuple[str, Tuple[FsFaultEntry, ...]] = ("", ())


def parse_fs_entries(spec: str) -> Tuple[FsFaultEntry, ...]:
    """Extract and validate the ``fs:`` entries of a chaos spec.

    Non-``fs:`` entries (the process-chaos shape) are skipped — the two
    harnesses share one env var, each ignoring the other's entries.
    """
    global _parse_cache
    if spec == _parse_cache[0]:
        return _parse_cache[1]
    entries = []
    for entry in spec.split(","):
        entry = entry.strip()
        if not entry or not entry.startswith("fs:"):
            continue
        parts = entry.split(":")
        if len(parts) not in (4, 5):
            raise FsChaosError(
                f"bad {CHAOS_ENV} fs entry {entry!r}; expected "
                "fs:surface:op:mode[:nth]")
        _, surface, op, mode = parts[:4]
        if op not in _FS_OPS:
            raise FsChaosError(
                f"unknown fs op {op!r} in {entry!r}; valid: "
                f"{', '.join(_FS_OPS)}")
        if mode not in FS_MODES:
            raise FsChaosError(
                f"unknown fs fault mode {mode!r} in {entry!r}; valid: "
                f"{', '.join(FS_MODES)}")
        nth: Optional[int] = None
        if len(parts) == 5 and parts[4] != "*":
            try:
                nth = int(parts[4])
            except ValueError:
                raise FsChaosError(
                    f"fs entry {entry!r}: nth must be an integer or "
                    "'*'") from None
            if nth < 1:
                raise FsChaosError(
                    f"fs entry {entry!r}: nth is 1-based, got {nth}")
        entries.append(FsFaultEntry(surface, op, mode, nth))
    _parse_cache = (spec, tuple(entries))
    return _parse_cache[1]


# ---------------------------------------------------------------------------
# Occurrence counting (what ``nth`` and plan sub-streams key on)
# ---------------------------------------------------------------------------

_op_counts: Dict[Tuple[str, str], int] = {}


def reset_fs_fault_counters() -> None:
    """Zero the per-``(surface, op)`` occurrence counters.

    Tests and :func:`fs_chaos` call this so ``nth`` targeting counts
    from the start of the scenario under test, not process birth.
    """
    _op_counts.clear()


def _next_occurrence(surface: str, op: str) -> int:
    key = (surface, op)
    _op_counts[key] = _op_counts.get(key, 0) + 1
    return _op_counts[key]


# ---------------------------------------------------------------------------
# Seeded statistical plans
# ---------------------------------------------------------------------------

@dataclass(frozen=True, kw_only=True)
class FsFaultPlan:
    """Seeded per-operation fault rates with independent sub-streams.

    Mirrors :class:`repro.sim.faults.FaultPlan`: each mode's decision
    for a given operation is a pure hash of
    ``(seed, surface, op, mode, occurrence)``, so raising one rate
    never changes *which* operations another mode hits — runs stay
    comparable across plan tweaks. Modes are consulted in
    :data:`FS_MODES` order; the first hit wins.
    """

    seed: int
    enospc_rate: float = 0.0
    eio_rate: float = 0.0
    torn_rate: float = 0.0
    rename_rate: float = 0.0
    crash_rate: float = 0.0

    def __post_init__(self) -> None:
        for mode in FS_MODES:
            rate = self.rate_for(mode)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(
                    f"{mode}_rate must be within [0, 1], got {rate}")

    def rate_for(self, mode: str) -> float:
        return float(getattr(self, f"{mode}_rate"))

    def _unit(self, surface: str, op: str, mode: str,
              occurrence: int) -> float:
        material = f"{self.seed}:fs:{surface}:{op}:{mode}:{occurrence}"
        digest = hashlib.sha256(material.encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "big") / 2.0 ** 64

    def draw(self, surface: str, op: str, occurrence: int) -> Optional[str]:
        """The fault mode this plan injects for one operation, if any."""
        modes = FS_READ_MODES if op == "read" else FS_MODES
        for mode in modes:
            rate = self.rate_for(mode)
            if rate > 0.0 and self._unit(surface, op, mode,
                                         occurrence) < rate:
                return mode
        return None


_ACTIVE_PLAN: Optional[FsFaultPlan] = None


def current_fs_plan() -> Optional[FsFaultPlan]:
    """The ambient plan installed by :func:`use_fs_plan`, if any."""
    return _ACTIVE_PLAN


@contextmanager
def use_fs_plan(plan: FsFaultPlan) -> Iterator[FsFaultPlan]:
    """Install ``plan`` as the ambient fault source for stores without
    an explicit one; occurrence counters reset on entry and exit so the
    plan's draws are reproducible per scenario."""
    global _ACTIVE_PLAN
    previous = _ACTIVE_PLAN
    _ACTIVE_PLAN = plan
    reset_fs_fault_counters()
    try:
        yield plan
    finally:
        _ACTIVE_PLAN = previous
        reset_fs_fault_counters()


@contextmanager
def fs_chaos(spec: str) -> Iterator[None]:
    """Scoped fs fault injection: install ``spec`` in the environment.

    Validates the fs entries eagerly (a typo should fail the test, not
    silently inject nothing), then behaves like
    :func:`repro.experiments.resilience.chaos` — env-keyed, so spawned
    pool workers inherit the faults.
    """
    parse_fs_entries(spec)
    saved = os.environ.get(CHAOS_ENV)
    os.environ[CHAOS_ENV] = spec
    reset_fs_fault_counters()
    try:
        yield
    finally:
        if saved is None:
            os.environ.pop(CHAOS_ENV, None)
        else:
            os.environ[CHAOS_ENV] = saved
        reset_fs_fault_counters()


def fault_for(surface: str, op: str,
              plan: Optional[FsFaultPlan] = None) -> Optional[str]:
    """The fault mode armed for the next ``(surface, op)`` operation.

    Every call advances the occurrence counter — spec entries are
    consulted first (the env wins over plans, matching the process
    harness), then the explicit or ambient :class:`FsFaultPlan`.
    """
    occurrence = _next_occurrence(surface, op)
    spec = chaos_spec_text()
    if spec:  # empty spec skips the parse on the disarmed hot path
        for entry in parse_fs_entries(spec):
            if entry.matches(surface, op, occurrence):
                return entry.mode
    plan = plan if plan is not None else _ACTIVE_PLAN
    if plan is not None:
        return plan.draw(surface, op, occurrence)
    return None
