"""Offline integrity verification of a journaled run directory.

``repro fsck --run-dir DIR`` for both journal flavors (``run.json``
experiment runs and ``campaign.json`` campaigns): parse the manifest,
re-validate every completed-result envelope checksum, parse every
failure record, flag markers outside the journaled plan, and list (or
sweep) crash-orphaned ``*.tmp`` files — all without executing anything,
so a suspect directory can be vetted before ``--resume`` trusts it.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional, Set, Tuple, Union

__all__ = ["FsckIssue", "FsckReport", "fsck_run_dir", "format_fsck"]


@dataclass(frozen=True)
class FsckIssue:
    """One integrity problem, anchored to a path relative to the root."""

    path: str
    problem: str


@dataclass(frozen=True)
class FsckReport:
    """Everything one :func:`fsck_run_dir` pass established."""

    root: str
    manifest: str
    version: int
    results_checked: int
    failures_checked: int
    issues: Tuple[FsckIssue, ...]
    orphans: Tuple[str, ...]
    swept: int

    @property
    def ok(self) -> bool:
        """Orphans alone do not fail a check — resume sweeps them."""
        return not self.issues


def _load_manifest(root: Path) -> Tuple[str, Dict]:
    from ..experiments.resilience import JournalError

    for name in ("campaign.json", "run.json"):
        path = root / name
        if not path.exists():
            continue
        try:
            manifest = json.loads(path.read_text())
        except (OSError, ValueError) as exc:
            raise JournalError(
                f"unreadable manifest {path}: {exc}") from exc
        if not isinstance(manifest, dict):
            raise JournalError(f"manifest {path} is not a JSON object")
        return name, manifest
    raise JournalError(
        f"{root} holds neither campaign.json nor run.json; "
        "not a run directory")


def _expected_names(manifest_name: str,
                    manifest: Dict) -> Optional[Set[str]]:
    """Marker names the journaled plan allows, or ``None`` if unknown."""
    if manifest_name == "campaign.json":
        shards = manifest.get("shards")
        if isinstance(shards, int) and shards > 0:
            return {f"shard-{index:04d}" for index in range(shards)}
        return None
    try:
        from ..experiments import EXPERIMENTS
    except Exception:  # registry unimportable — skip the plan check
        return None
    return {spec.name for spec in EXPERIMENTS}


def fsck_run_dir(root: Union[str, Path], *,
                 sweep: bool = False) -> FsckReport:
    """Verify ``root`` offline; raises ``JournalError`` when the
    directory is not usable as a journal at all (no/bad manifest)."""
    from ..experiments.resilience import (
        CacheIntegrityError,
        JournalError,
        decode_envelope,
    )

    root = Path(root)
    if not root.is_dir():
        raise JournalError(f"{root} is not a run directory")
    manifest_name, manifest = _load_manifest(root)
    version_key = ("campaign_version" if manifest_name == "campaign.json"
                   else "cache_version")
    version = manifest.get(version_key)
    if not isinstance(version, int):
        raise JournalError(
            f"{root / manifest_name} carries no usable {version_key}")

    issues = []
    expected = _expected_names(manifest_name, manifest)
    results_dir = root / "results"
    failures_dir = root / "failures"

    results_checked = 0
    if results_dir.is_dir():
        for marker in sorted(results_dir.glob("*.pkl")):
            results_checked += 1
            relative = str(marker.relative_to(root))
            try:
                data = marker.read_bytes()
            except OSError as exc:
                issues.append(FsckIssue(relative, f"unreadable: {exc}"))
                continue
            try:
                decode_envelope(version, data)
            except CacheIntegrityError as exc:
                issues.append(FsckIssue(relative, str(exc)))
                continue
            if expected is not None and marker.stem not in expected:
                issues.append(FsckIssue(
                    relative, "marker outside the journaled plan"))

    failures_checked = 0
    if failures_dir.is_dir():
        for record in sorted(failures_dir.glob("*.json")):
            failures_checked += 1
            relative = str(record.relative_to(root))
            try:
                parsed = json.loads(record.read_text())
            except (OSError, ValueError) as exc:
                issues.append(FsckIssue(
                    relative, f"bad failure record: {exc}"))
                continue
            if not isinstance(parsed, dict):
                issues.append(FsckIssue(
                    relative, "failure record is not a JSON object"))

    orphans = []
    swept = 0
    for directory in (root, results_dir, failures_dir):
        if not directory.is_dir():
            continue
        for tmp in sorted(directory.glob("*.tmp")):
            orphans.append(str(tmp.relative_to(root)))
            if sweep:
                try:
                    tmp.unlink()
                except OSError:
                    continue
                swept += 1

    return FsckReport(
        root=str(root), manifest=manifest_name, version=int(version),
        results_checked=results_checked, failures_checked=failures_checked,
        issues=tuple(issues), orphans=tuple(orphans), swept=swept)


def format_fsck(report: FsckReport) -> str:
    """Human rendering, one status line last (``clean`` or a count)."""
    bad_results = sum(
        1 for issue in report.issues if issue.path.endswith(".pkl"))
    lines = [
        f"fsck {report.root}",
        f"  manifest : {report.manifest} (v{report.version})",
        f"  results  : {report.results_checked} checked, "
        f"{bad_results} bad",
        f"  failures : {report.failures_checked} record(s)",
        f"  orphans  : {len(report.orphans)} temp file(s)"
        + (f", {report.swept} swept" if report.swept else ""),
    ]
    for issue in report.issues:
        lines.append(f"  PROBLEM {issue.path}: {issue.problem}")
    for orphan in report.orphans:
        lines.append(f"  ORPHAN  {orphan}")
    lines.append(
        "clean" if report.ok else f"{len(report.issues)} problem(s)")
    return "\n".join(lines) + "\n"
