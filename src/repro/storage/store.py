"""DurableStore: the one write/read funnel for every on-disk surface.

Five surfaces persist state — the experiment :class:`ResultCache`, the
:class:`RunJournal`, the :class:`CampaignManifest`, the serve-side
:class:`QueryCache`, and the benchmark ledger. All of them route their
bytes through a named :class:`DurableStore`, which is where the
:mod:`repro.storage.faults` layer injects ENOSPC/EIO/torn/rename/crash
faults and where the hardening policy lives:

* ``required=False`` (caches): a failed write degrades to a counted
  non-fatal miss (``write_bytes`` returns ``False``); a failed read is
  always just a miss.
* ``required=True`` (journals/manifests): a failed write raises the
  underlying :class:`OSError` for the owner to convert into its typed
  refusal (``JournalError``) or a structured ``ExperimentFailure``.

:func:`atomic_write_bytes` is the raw primitive (absorbed here from
``resilience.py``): temp file in the destination directory +
``os.replace``, the temp unlinked on **every** failure path, with
fsync-before-replace (plus a best-effort directory fsync) behind the
opt-in durability flag (``REPRO_FSYNC=1`` flips the default).
"""

from __future__ import annotations

import errno
import os
import tempfile
from pathlib import Path
from typing import Optional, Union

from .faults import FsFaultPlan, InjectedFsError, SimulatedCrash, fault_for

__all__ = [
    "FSYNC_ENV",
    "FS_FAULTS_METRIC",
    "FS_WRITE_ERRORS_METRIC",
    "DurableStore",
    "atomic_write_bytes",
    "fsync_default",
]

#: Operations on which a fault (any mode, any surface) actually fired.
FS_FAULTS_METRIC = "fs_faults_injected_total"

#: Writes that raised — injected or real — whatever the surface policy.
FS_WRITE_ERRORS_METRIC = "fs_write_errors_total"

#: Set to ``1`` to make every store fsync before publishing (off by
#: default: the tests and CI value wall-clock over power-loss safety).
FSYNC_ENV = "REPRO_FSYNC"


def fsync_default() -> bool:
    return os.environ.get(FSYNC_ENV, "") not in ("", "0")


def _fsync_dir(directory: Path) -> None:
    # Best effort: persists the rename itself. Not every filesystem
    # supports directory fsync, so failures here are swallowed.
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def atomic_write_bytes(path: Path, data: bytes, *, fsync: bool = False,
                       _inject: Optional[str] = None) -> None:
    """Write ``data`` to ``path`` via a collision-free temp file.

    ``tempfile.mkstemp`` in the destination directory gives every writer
    its own temp name (a shared ``<path>.tmp`` lets two concurrent
    ``run_all`` invocations clobber each other mid-write), and
    ``os.replace`` publishes atomically. Any failure — including one
    raised by ``fdopen`` itself — unlinks the temp file and closes its
    descriptor; ``fsync=True`` flushes file contents before the rename
    and the directory after it, so a power cut cannot publish a name
    pointing at unwritten blocks.

    ``_inject`` is the :class:`DurableStore` fault hook: ``"rename"``
    fails after the temp file is fully written (cleanup still runs),
    ``"crash"`` simulates dying between write and replace — the one
    path that deliberately leaves the orphan ``.tmp`` behind.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=path.name + ".", suffix=".tmp")
    try:
        try:
            fh = os.fdopen(fd, "wb")
        except BaseException:
            os.close(fd)
            raise
        with fh:
            fh.write(data)
            if fsync:
                fh.flush()
                os.fsync(fh.fileno())
        if _inject == "crash":
            raise SimulatedCrash(path)
        if _inject == "rename":
            raise InjectedFsError("rename", errno.EIO, path)
        os.replace(tmp_name, path)
    except SimulatedCrash:
        raise  # the orphaned temp file is the simulated wreckage
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    if fsync:
        _fsync_dir(path.parent)


class DurableStore:
    """Named, fault-injectable byte store for one durable surface.

    Disarmed (no chaos spec, no plan) it is a thin veneer over
    :func:`atomic_write_bytes` — the benchmark gates its overhead at
    <5%. Armed, each operation consults
    :func:`repro.storage.faults.fault_for` under this store's surface
    name, so specs like ``fs:journal:write:enospc:3`` target exactly
    one funnel.
    """

    def __init__(self, surface: str, *, required: bool = True,
                 fsync: Optional[bool] = None,
                 plan: Optional[FsFaultPlan] = None,
                 registry: object = None) -> None:
        self.surface = surface
        self.required = bool(required)
        # Resolved once: the env default is a process-level choice, and
        # re-reading it per write would tax the disarmed hot path.
        self.fsync = fsync if fsync is not None else fsync_default()
        self.plan = plan
        self._registry = registry
        #: Instance-local forensics, mirrored onto the metrics registry.
        self.faults_injected = 0
        self.write_errors = 0
        self.read_errors = 0
        self.orphans_swept = 0

    def _count(self, name: str) -> None:
        registry = self._registry
        if registry is None:
            from ..obs.context import current_metrics

            registry = current_metrics()
        if registry is not None:
            registry.counter(name).inc()

    def _armed(self, op: str) -> Optional[str]:
        mode = fault_for(self.surface, op, plan=self.plan)
        if mode is not None:
            self.faults_injected += 1
            self._count(FS_FAULTS_METRIC)
        return mode

    def write_bytes(self, path: Union[str, Path], data: bytes) -> bool:
        """Publish ``data`` atomically; ``True`` iff the bytes landed.

        On failure: counted, then re-raised when :attr:`required`,
        degraded to ``False`` otherwise. A ``torn`` fault is the
        insidious case — the call *succeeds* having published a prefix;
        the envelope checksum is what turns that into a read-time miss.
        """
        if not isinstance(path, Path):
            path = Path(path)
        fsync = self.fsync
        mode = self._armed("write")
        try:
            if mode == "enospc":
                raise InjectedFsError("enospc", errno.ENOSPC, path)
            if mode == "eio":
                raise InjectedFsError("eio", errno.EIO, path)
            if mode == "torn":
                atomic_write_bytes(path, data[:max(1, len(data) // 2)],
                                   fsync=fsync)
                return True
            atomic_write_bytes(path, data, fsync=fsync, _inject=mode)
            return True
        except OSError:
            self.write_errors += 1
            self._count(FS_WRITE_ERRORS_METRIC)
            if self.required:
                raise
            return False

    def read_bytes(self, path: Union[str, Path]) -> Optional[bytes]:
        """The stored bytes, or ``None`` as a miss.

        Read failures — injected EIO, a vanished file, a real I/O error
        — always degrade to a miss regardless of :attr:`required`: every
        surface can recompute or refuse at a higher level, and a miss is
        strictly safer than propagating bytes of unknown integrity.
        """
        mode = self._armed("read")
        if mode is not None:
            self.read_errors += 1
            return None
        try:
            return Path(path).read_bytes()
        except FileNotFoundError:
            return None
        except OSError:
            self.read_errors += 1
            return None

    def sweep_orphans(self, *directories: Union[str, Path]) -> int:
        """Unlink crash-orphaned ``*.tmp`` files; returns the count.

        Journals call this on resume: a temp file can only be wreckage
        from a write that never reached ``os.replace``.
        """
        removed = 0
        for directory in directories:
            directory = Path(directory)
            if not directory.is_dir():
                continue
            for tmp in sorted(directory.glob("*.tmp")):
                try:
                    tmp.unlink()
                except OSError:
                    continue
                removed += 1
        self.orphans_swept += removed
        return removed
