"""Durable storage: one fault-injectable funnel for every on-disk surface.

The storage boundary is one of the two cross-layer seams the robustness
pass hardens (the other is the network edge in :mod:`repro.serve`).
:class:`DurableStore` is the write/read funnel all five persistent
surfaces route through; :mod:`repro.storage.faults` injects
deterministic ENOSPC/EIO/torn/rename/crash faults into it, either via
``REPRO_CHAOS`` ``fs:`` entries or a seeded :class:`FsFaultPlan`; and
:func:`fsck_run_dir` verifies a journaled run directory offline
(``repro fsck``).
"""

from .faults import (
    CHAOS_ENV,
    FS_MODES,
    FS_READ_MODES,
    FsChaosError,
    FsFaultEntry,
    FsFaultPlan,
    InjectedFsError,
    SimulatedCrash,
    chaos_spec_text,
    current_fs_plan,
    fault_for,
    fs_chaos,
    parse_fs_entries,
    reset_fs_fault_counters,
    use_fs_plan,
)
from .fsck import FsckIssue, FsckReport, format_fsck, fsck_run_dir
from .store import (
    FS_FAULTS_METRIC,
    FS_WRITE_ERRORS_METRIC,
    DurableStore,
    atomic_write_bytes,
    fsync_default,
)

__all__ = [
    "CHAOS_ENV",
    "DurableStore",
    "FS_FAULTS_METRIC",
    "FS_MODES",
    "FS_READ_MODES",
    "FS_WRITE_ERRORS_METRIC",
    "FsChaosError",
    "FsFaultEntry",
    "FsFaultPlan",
    "FsckIssue",
    "FsckReport",
    "InjectedFsError",
    "SimulatedCrash",
    "atomic_write_bytes",
    "chaos_spec_text",
    "current_fs_plan",
    "fault_for",
    "format_fsck",
    "fs_chaos",
    "fsck_run_dir",
    "fsync_default",
    "parse_fs_entries",
    "reset_fs_fault_counters",
    "use_fs_plan",
]
