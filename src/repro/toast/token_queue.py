"""The toast token queue.

"The Notification Manager Service of System Server generates a token and
puts the token into a queue via enqueueToast(). The token uniquely
identifies the toast and guarantees that the system does not create a
number of overlapping toasts. ... Android specifies that the number of
tokens associated with one app in the queue should be no more than 50."
(paper Section IV-C)
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Deque, Dict, Optional

from .toast import Toast

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..obs.metrics import MetricsRegistry

#: Queue-depth histogram buckets: depths are small integers up to the
#: per-app cap of 50 (a flooding attack parks right at the cap).
_DEPTH_BUCKETS = (0.0, 1.0, 2.0, 3.0, 5.0, 8.0, 13.0, 21.0, 34.0, 50.0, 100.0)

#: Maximum queued tokens per app (AOSP MAX_PACKAGE_NOTIFICATIONS analogue
#: for toasts, as cited by the paper).
MAX_TOASTS_PER_APP = 50

_token_ids = itertools.count(1)


def reset_token_ids() -> None:
    """Restart the token id allocator (see ``reset_toast_ids``)."""
    global _token_ids
    _token_ids = itertools.count(1)


@dataclass(frozen=True)
class ToastToken:
    """Unique handle binding a queued toast to its app."""

    app: str
    toast: Toast
    token_id: int = field(default_factory=lambda: next(_token_ids))


class ToastTokenQueue:
    """FIFO of toast tokens with the per-app cap enforced."""

    def __init__(
        self,
        max_per_app: int = MAX_TOASTS_PER_APP,
        metrics: "Optional[MetricsRegistry]" = None,
        now_fn: Optional[Callable[[], float]] = None,
    ) -> None:
        if max_per_app <= 0:
            raise ValueError(f"max_per_app must be positive, got {max_per_app}")
        self._queue: Deque[ToastToken] = deque()
        self._per_app: Dict[str, int] = {}
        self._max_per_app = max_per_app
        self._rejected: Dict[str, int] = {}
        # Queue residency (enqueue -> dequeue/removal, in simulated ms)
        # needs a clock; ``now_fn`` is only consulted when metrics are on.
        self._now_fn = now_fn
        self._entered: Dict[int, float] = {}
        if metrics is not None and now_fn is not None:
            self._m_enqueued = metrics.counter("toast_tokens_enqueued_total")
            self._m_rejected = metrics.counter("toast_tokens_rejected_total")
            self._m_depth = metrics.histogram("toast_queue_depth",
                                              buckets=_DEPTH_BUCKETS)
            self._m_residency = metrics.histogram("toast_queue_residency_ms")
        else:
            self._m_enqueued = None
            self._m_rejected = None
            self._m_depth = None
            self._m_residency = None

    def __len__(self) -> int:
        return len(self._queue)

    def clear(self) -> None:
        """Drop every queued token and all per-app accounting."""
        self._queue.clear()
        self._per_app.clear()
        self._rejected.clear()
        self._entered.clear()

    @property
    def max_per_app(self) -> int:
        return self._max_per_app

    def depth_for(self, app: str) -> int:
        return self._per_app.get(app, 0)

    def rejected_for(self, app: str) -> int:
        return self._rejected.get(app, 0)

    def enqueue(self, token: ToastToken) -> bool:
        """Add a token; returns False (rejection) if the app is at cap."""
        if self.depth_for(token.app) >= self._max_per_app:
            self._rejected[token.app] = self._rejected.get(token.app, 0) + 1
            if self._m_rejected is not None:
                self._m_rejected.inc()
            return False
        self._queue.append(token)
        self._per_app[token.app] = self._per_app.get(token.app, 0) + 1
        if self._m_enqueued is not None:
            self._m_enqueued.inc()
            self._m_depth.observe(len(self._queue))
            self._entered[token.token_id] = self._now_fn()
        return True

    def dequeue(self) -> Optional[ToastToken]:
        if not self._queue:
            return None
        token = self._queue.popleft()
        remaining = self._per_app.get(token.app, 0) - 1
        if remaining > 0:
            self._per_app[token.app] = remaining
        else:
            self._per_app.pop(token.app, None)
        self._note_left(token)
        return token

    def remove_toast(self, toast_id: int) -> bool:
        """Drop one queued token by its toast id (``Toast.cancel()`` on a
        not-yet-displayed toast removes it from the queue)."""
        for token in self._queue:
            if token.toast.toast_id == toast_id:
                self._queue.remove(token)
                remaining = self._per_app.get(token.app, 0) - 1
                if remaining > 0:
                    self._per_app[token.app] = remaining
                else:
                    self._per_app.pop(token.app, None)
                self._note_left(token)
                return True
        return False

    def remove_app(self, app: str) -> int:
        """Drop all queued tokens of ``app`` (used on app termination)."""
        kept = [t for t in self._queue if t.app != app]
        dropped = len(self._queue) - len(kept)
        if self._m_residency is not None:
            for token in self._queue:
                if token.app == app:
                    self._note_left(token)
        self._queue = deque(kept)
        self._per_app.pop(app, None)
        return dropped

    def _note_left(self, token: ToastToken) -> None:
        """Observe queue residency for a token leaving by any path."""
        if self._m_residency is None:
            return
        entered = self._entered.pop(token.token_id, None)
        if entered is not None:
            self._m_residency.observe(self._now_fn() - entered)
