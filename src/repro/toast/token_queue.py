"""The toast token queue.

"The Notification Manager Service of System Server generates a token and
puts the token into a queue via enqueueToast(). The token uniquely
identifies the toast and guarantees that the system does not create a
number of overlapping toasts. ... Android specifies that the number of
tokens associated with one app in the queue should be no more than 50."
(paper Section IV-C)
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Optional

from .toast import Toast

#: Maximum queued tokens per app (AOSP MAX_PACKAGE_NOTIFICATIONS analogue
#: for toasts, as cited by the paper).
MAX_TOASTS_PER_APP = 50

_token_ids = itertools.count(1)


def reset_token_ids() -> None:
    """Restart the token id allocator (see ``reset_toast_ids``)."""
    global _token_ids
    _token_ids = itertools.count(1)


@dataclass(frozen=True)
class ToastToken:
    """Unique handle binding a queued toast to its app."""

    app: str
    toast: Toast
    token_id: int = field(default_factory=lambda: next(_token_ids))


class ToastTokenQueue:
    """FIFO of toast tokens with the per-app cap enforced."""

    def __init__(self, max_per_app: int = MAX_TOASTS_PER_APP) -> None:
        if max_per_app <= 0:
            raise ValueError(f"max_per_app must be positive, got {max_per_app}")
        self._queue: Deque[ToastToken] = deque()
        self._per_app: Dict[str, int] = {}
        self._max_per_app = max_per_app
        self._rejected: Dict[str, int] = {}

    def __len__(self) -> int:
        return len(self._queue)

    def clear(self) -> None:
        """Drop every queued token and all per-app accounting."""
        self._queue.clear()
        self._per_app.clear()
        self._rejected.clear()

    @property
    def max_per_app(self) -> int:
        return self._max_per_app

    def depth_for(self, app: str) -> int:
        return self._per_app.get(app, 0)

    def rejected_for(self, app: str) -> int:
        return self._rejected.get(app, 0)

    def enqueue(self, token: ToastToken) -> bool:
        """Add a token; returns False (rejection) if the app is at cap."""
        if self.depth_for(token.app) >= self._max_per_app:
            self._rejected[token.app] = self._rejected.get(token.app, 0) + 1
            return False
        self._queue.append(token)
        self._per_app[token.app] = self._per_app.get(token.app, 0) + 1
        return True

    def dequeue(self) -> Optional[ToastToken]:
        if not self._queue:
            return None
        token = self._queue.popleft()
        remaining = self._per_app.get(token.app, 0) - 1
        if remaining > 0:
            self._per_app[token.app] = remaining
        else:
            self._per_app.pop(token.app, None)
        return token

    def remove_toast(self, toast_id: int) -> bool:
        """Drop one queued token by its toast id (``Toast.cancel()`` on a
        not-yet-displayed toast removes it from the queue)."""
        for token in self._queue:
            if token.toast.toast_id == toast_id:
                self._queue.remove(token)
                remaining = self._per_app.get(token.app, 0) - 1
                if remaining > 0:
                    self._per_app[token.app] = remaining
                else:
                    self._per_app.pop(token.app, None)
                return True
        return False

    def remove_app(self, app: str) -> int:
        """Drop all queued tokens of ``app`` (used on app termination)."""
        kept = [t for t in self._queue if t.app != app]
        dropped = len(self._queue) - len(kept)
        self._queue = deque(kept)
        self._per_app.pop(app, None)
        return dropped
