"""Toast-switch analysis: quantifying the (in)visibility of transitions.

The draw-and-destroy toast attack works because the combined opacity of a
departing toast and its successor barely dips during the switch. This
module measures that dip for each consecutive pair in a display history —
the quantity the perception model thresholds and the quantity the
toast-spacing defense inflates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from .toast import Toast


@dataclass(frozen=True)
class ToastSwitch:
    """One transition between consecutive toasts."""

    prev_toast_id: int
    next_toast_id: int
    #: Time from the old toast starting its fade-out to the new toast
    #: appearing on screen (>= Tas; larger if a defense inserts a gap).
    switch_gap_ms: float
    #: Minimum combined opacity observed during the transition.
    min_coverage: float
    #: Total time combined opacity sat below ``threshold``.
    time_below_threshold_ms: float
    threshold: float


def _combined_alpha(prev: Toast, nxt: Toast, time: float) -> float:
    # The toasts overlap on screen, so their opacities composite: the
    # background shows through only where *both* layers are transparent.
    return 1.0 - (1.0 - prev.alpha_at(time)) * (1.0 - nxt.alpha_at(time))


def analyze_switch(
    prev: Toast,
    nxt: Toast,
    threshold: float = 0.85,
    sample_step_ms: float = 1.0,
) -> Optional[ToastSwitch]:
    """Measure the coverage dip between ``prev`` and ``nxt``.

    Returns None if either toast never reached the screen.
    """
    if prev.fade_out_start is None or nxt.shown_at is None:
        return None
    start = prev.fade_out_start
    # The transition is over once the new toast has finished fading in.
    end = nxt.shown_at + nxt.fade_ms
    min_cov = 1.0
    below_ms = 0.0
    t = start
    while t <= end:
        cov = _combined_alpha(prev, nxt, t)
        if cov < min_cov:
            min_cov = cov
        if cov < threshold:
            below_ms += sample_step_ms
        t += sample_step_ms
    return ToastSwitch(
        prev_toast_id=prev.toast_id,
        next_toast_id=nxt.toast_id,
        switch_gap_ms=nxt.shown_at - prev.fade_out_start,
        min_coverage=min_cov,
        time_below_threshold_ms=below_ms,
        threshold=threshold,
    )


def analyze_switches(
    history: Sequence[Toast],
    threshold: float = 0.85,
    sample_step_ms: float = 1.0,
) -> List[ToastSwitch]:
    """Analyze every consecutive transition in a display history."""
    switches: List[ToastSwitch] = []
    shown = [t for t in history if t.shown_at is not None]
    for prev, nxt in zip(shown, shown[1:]):
        switch = analyze_switch(prev, nxt, threshold, sample_step_ms)
        if switch is not None:
            switches.append(switch)
    return switches


def worst_switch(switches: Sequence[ToastSwitch]) -> Optional[ToastSwitch]:
    """The most visible (lowest-coverage) transition, if any."""
    return min(switches, key=lambda s: s.min_coverage, default=None)
