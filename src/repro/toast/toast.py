"""Toast objects and their analytic opacity timeline.

A toast "provides feedback for users. It automatically disappears after a
short period of time" (paper Section II-B). The timeline the attack
exploits:

* fade-in: 500 ms under ``DecelerateInterpolator`` — fast at the beginning
  (``y = 1 - (1 - x)^2``), so a new toast becomes opaque almost at once;
* full opacity for the chosen duration (2 s or 3.5 s);
* fade-out: 500 ms under ``AccelerateInterpolator`` — slow at the beginning
  (``y = x^2``), so a departing toast lingers near full opacity.

Because exit is slow and entry is fast, back-to-back toasts keep combined
on-screen opacity close to 1.0 through the switch — the transition "cannot
be observed" (paper abstract).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

from ..animation.animator import TOAST_ANIMATION_DURATION
from ..animation.interpolators import (
    AccelerateInterpolator,
    DecelerateInterpolator,
)
from ..windows.geometry import Rect

#: Android LENGTH_SHORT / LENGTH_LONG toast durations in milliseconds.
TOAST_LENGTH_SHORT_MS = 2000.0
TOAST_LENGTH_LONG_MS = 3500.0
ALLOWED_TOAST_DURATIONS = (TOAST_LENGTH_SHORT_MS, TOAST_LENGTH_LONG_MS)

_toast_ids = itertools.count(1)
_FADE_IN = DecelerateInterpolator()
_FADE_OUT = AccelerateInterpolator()


def reset_toast_ids() -> None:
    """Restart the toast id allocator.

    Ids only label toasts for debugging and trace reading, but they leak
    into experiment results (e.g. ``ToastSwitch``), so the experiment
    runner resets them before each experiment to keep results a pure
    function of the experiment's scale — independent of what else ran in
    the process beforehand.
    """
    global _toast_ids
    _toast_ids = itertools.count(1)


@dataclass
class Toast:
    """One toast instance moving through the Notification Manager queue."""

    owner: str
    content: Any
    rect: Rect
    duration_ms: float
    enqueued_at: Optional[float] = None
    shown_at: Optional[float] = None
    fade_out_start: Optional[float] = None
    removed_at: Optional[float] = None
    toast_id: int = field(default_factory=lambda: next(_toast_ids))
    fade_ms: float = TOAST_ANIMATION_DURATION

    def __post_init__(self) -> None:
        if self.duration_ms not in ALLOWED_TOAST_DURATIONS:
            raise ValueError(
                f"toast duration must be one of {ALLOWED_TOAST_DURATIONS} ms, "
                f"got {self.duration_ms}"
            )

    # ------------------------------------------------------------------
    def alpha_at(self, time: float) -> float:
        """Opacity of this toast at ``time`` (0 when not on screen)."""
        if self.shown_at is None or time < self.shown_at:
            return 0.0
        if self.removed_at is not None and time >= self.removed_at:
            return 0.0
        # Fade-in.
        fade_in_elapsed = time - self.shown_at
        if fade_in_elapsed < self.fade_ms:
            alpha = _FADE_IN.value(fade_in_elapsed / self.fade_ms)
        else:
            alpha = 1.0
        # Fade-out (can overlap an unfinished fade-in only if the toast was
        # cancelled very early; take the minimum).
        if self.fade_out_start is not None and time >= self.fade_out_start:
            fade_out_elapsed = time - self.fade_out_start
            if fade_out_elapsed >= self.fade_ms:
                return 0.0
            alpha = min(alpha, 1.0 - _FADE_OUT.value(fade_out_elapsed / self.fade_ms))
        return alpha

    @property
    def on_screen_interval(self) -> Optional[tuple]:
        if self.shown_at is None:
            return None
        end = self.removed_at
        return (self.shown_at, end)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Toast(#{self.toast_id} owner={self.owner!r} "
            f"content={self.content!r} dur={self.duration_ms}ms)"
        )
