"""Notification Manager Service: serialized toast display.

Built-in defense (ii) of paper Section II-B2: "the notification manager
shows toasts one at a time", processing one token at a time so gaps appear
between toasts of a naive attack. The service here implements exactly that
protocol — and therefore also exhibits the behaviour the draw-and-destroy
toast attack exploits: when a toast's time is up, ``removeView`` starts the
500 ms fade-out *and the next token is fetched immediately*, so the
successor toast is created (cost ``Tas``) and fades in while the old one is
still nearly opaque.

The paper's toast-spacing defense (Section VII-B) plugs in through
``inter_toast_gap_ms``: scheduling extra delay between successive toasts
makes the flicker perceptible.
"""

from __future__ import annotations

from typing import List, Optional

from ..binder.router import BinderRouter
from ..binder.transaction import BinderTransaction
from ..devices.profiles import DeviceProfile
from ..sim.process import SimProcess
from ..sim.simulation import Simulation
from ..windows.geometry import Rect
from ..windows.system_server import SYSTEM_SERVER, SystemServer
from ..windows.types import WindowType
from ..windows.window import Window
from .toast import Toast
from .token_queue import ToastToken, ToastTokenQueue


class NotificationManagerService(SimProcess):
    """The toast-scheduling half of the simulated System Server."""

    def __init__(
        self,
        simulation: Simulation,
        router: BinderRouter,
        system_server: SystemServer,
        profile: DeviceProfile,
        inter_toast_gap_ms: float = 0.0,
        name: str = "notification_manager",
    ) -> None:
        super().__init__(simulation, name)
        if inter_toast_gap_ms < 0:
            raise ValueError(f"inter_toast_gap_ms must be >= 0, got {inter_toast_gap_ms}")
        self._router = router
        self._system_server = system_server
        self._profile = profile
        self._queue = ToastTokenQueue(
            metrics=simulation.metrics,
            now_fn=lambda: self.now,
        )
        self._current: Optional[Toast] = None
        self._current_window: Optional[Window] = None
        self._current_end_handle = None
        self._history: List[Toast] = []
        self._showing = False
        self.inter_toast_gap_ms = float(inter_toast_gap_ms)
        router.register_many(
            SYSTEM_SERVER,
            {
                "enqueueToast": self._handle_enqueue,
                "cancelToast": self._handle_cancel,
            },
        )

    def rearm(self) -> None:
        """Reset to boot state for stack reuse.

        ``inter_toast_gap_ms`` goes back to the constructor default of 0 —
        the toast-spacing defense and the continuity experiment both set it
        per trial — and the Binder handlers are re-registered under
        ``system_server`` (the router's rearm dropped them).
        """
        super().rearm()
        self._queue.clear()
        self._current = None
        self._current_window = None
        self._current_end_handle = None
        self._history.clear()
        self._showing = False
        self.inter_toast_gap_ms = 0.0
        self._router.register_many(
            SYSTEM_SERVER,
            {
                "enqueueToast": self._handle_enqueue,
                "cancelToast": self._handle_cancel,
            },
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def queue(self) -> ToastTokenQueue:
        return self._queue

    @property
    def current_toast(self) -> Optional[Toast]:
        return self._current

    @property
    def history(self) -> List[Toast]:
        """All toasts ever shown, in display order (includes current)."""
        return list(self._history)

    def coverage_at(self, time: float, rect: Optional[Rect] = None) -> float:
        """Combined toast opacity over ``rect`` at ``time``.

        During a switch the old toast is fading out while the new fades
        in; the layers composite (the background shows through only where
        every layer is transparent), so combined coverage is
        ``1 - prod(1 - alpha_i)``."""
        transparency = 1.0
        for toast in self._history:
            if rect is None or toast.rect.intersects(rect):
                transparency *= 1.0 - toast.alpha_at(time)
        return 1.0 - transparency

    # ------------------------------------------------------------------
    # Binder handlers
    # ------------------------------------------------------------------
    def _handle_enqueue(self, txn: BinderTransaction) -> None:
        toast: Toast = txn.payload["toast"]
        toast.enqueued_at = self.now
        token = ToastToken(app=txn.sender, toast=toast)
        accepted = self._queue.enqueue(token)
        if not accepted:
            self.trace("nms.toast_rejected", app=txn.sender,
                       depth=self._queue.depth_for(txn.sender))
            return
        self.trace("nms.toast_enqueued", app=txn.sender, toast_id=toast.toast_id,
                   queue_len=len(self._queue))
        if not self._showing:
            self._show_next()

    def _handle_cancel(self, txn: BinderTransaction) -> None:
        """``Toast.cancel()``: cancel one of the caller's toasts.

        A queued (not yet displayed) toast is silently dropped from the
        queue; the currently-displayed toast starts its fade-out now. The
        attack uses this to switch subkeyboard layouts: stale queued frames
        are dropped, the fresh layout is enqueued, and the current fake
        keyboard is replaced immediately."""
        app = txn.sender
        toast: Optional[Toast] = txn.payload.get("toast")
        if toast is not None and (self._current is None
                                  or toast.toast_id != self._current.toast_id):
            if self._queue.remove_toast(toast.toast_id):
                self.trace("nms.toast_dequeued", app=app, toast_id=toast.toast_id)
            else:
                self.trace("nms.cancel_noop", app=app)
            return
        if self._current is None or self._current.owner != app:
            self.trace("nms.cancel_noop", app=app)
            return
        if self._current.fade_out_start is not None:
            return
        if self._current_end_handle is not None:
            self._current_end_handle.cancel_if_pending()
            self._current_end_handle = None
        self._begin_fade_out()

    # ------------------------------------------------------------------
    # Display machinery
    # ------------------------------------------------------------------
    def _show_next(self) -> None:
        token = self._queue.dequeue()
        if token is None:
            self._showing = False
            return
        self._showing = True
        toast = token.toast
        window = Window(
            owner=toast.owner,
            window_type=WindowType.TOAST,
            rect=toast.rect,
            content=toast,
            label=f"toast:{toast.toast_id}",
        )

        def on_added() -> None:
            toast.shown_at = self.now
            self._current = toast
            self._current_window = window
            self._history.append(toast)
            self.trace("nms.toast_shown", app=toast.owner, toast_id=toast.toast_id)
            self._current_end_handle = self.schedule(
                toast.duration_ms, self._begin_fade_out, name="toast-expire"
            )

        self._system_server.add_window_direct(window, on_added=on_added)

    def _begin_fade_out(self) -> None:
        toast = self._current
        window = self._current_window
        if toast is None or window is None:
            return
        toast.fade_out_start = self.now
        self._current = None
        self._current_window = None
        self._current_end_handle = None
        self.trace("nms.toast_fading_out", app=toast.owner, toast_id=toast.toast_id)

        def finish_removal() -> None:
            toast.removed_at = self.now
            self._system_server.remove_window_direct(window)
            self.trace("nms.toast_removed", app=toast.owner, toast_id=toast.toast_id)

        self.schedule(toast.fade_ms, finish_removal, name="toast-fade-out")
        # "Once removeView(.) is called, the System Server fetches the new
        # token and creates the new toast" (paper Section IV-C Step 2) —
        # unless the spacing defense inserts an artificial gap.
        if self.inter_toast_gap_ms > 0:
            self.schedule(self.inter_toast_gap_ms, self._show_next, name="toast-gap")
        else:
            self._show_next()

    # ------------------------------------------------------------------
    # Convenience API (used by apps via Toast.show())
    # ------------------------------------------------------------------
    def enqueue_from(self, app: str, toast: Toast) -> None:
        """Same as the Binder path, for same-process/system callers."""
        self._router.transact(
            sender=app,
            receiver=SYSTEM_SERVER,
            method="enqueueToast",
            payload={"toast": toast},
        )
