"""Toast substrate: toast objects, the token queue (<= 50 per app), the
serializing Notification Manager Service, and switch/flicker analysis."""

from .lifecycle import ToastSwitch, analyze_switch, analyze_switches, worst_switch
from .notification_manager import NotificationManagerService
from .toast import (
    ALLOWED_TOAST_DURATIONS,
    TOAST_LENGTH_LONG_MS,
    TOAST_LENGTH_SHORT_MS,
    Toast,
)
from .token_queue import MAX_TOASTS_PER_APP, ToastToken, ToastTokenQueue

__all__ = [
    "ALLOWED_TOAST_DURATIONS",
    "MAX_TOASTS_PER_APP",
    "NotificationManagerService",
    "TOAST_LENGTH_LONG_MS",
    "TOAST_LENGTH_SHORT_MS",
    "Toast",
    "ToastSwitch",
    "ToastToken",
    "ToastTokenQueue",
    "analyze_switch",
    "analyze_switches",
    "worst_switch",
]
