"""Accessibility events and the accessibility service bus.

The password-stealing attack uses the accessibility service to learn *when*
the user focuses a password field (paper Section V; the paper notes other
timing channels exist). Alipay's hardening — disabling accessibility events
while a password is typed — and the getParent()-based workaround of
Section VI-C1 are modelled through the view-node tree.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from ..sim.process import SimProcess
from ..sim.simulation import Simulation

#: Latency for an accessibility event to reach registered services (ms).
ACCESSIBILITY_DISPATCH_MS = 2.0


class AccessibilityEventType(enum.Enum):
    """The event types the paper's attack observes (Section VI-C1)."""

    TYPE_VIEW_FOCUSED = "TYPE_VIEW_FOCUSED"
    TYPE_VIEW_TEXT_CHANGED = "TYPE_VIEW_TEXT_CHANGED"
    TYPE_WINDOW_CONTENT_CHANGED = "TYPE_WINDOW_CONTENT_CHANGED"


@dataclass(frozen=True)
class AccessibilityEvent:
    """One accessibility event as delivered to a service."""

    time: float
    event_type: AccessibilityEventType
    package: str
    source_node_id: str


class ViewNode:
    """A node in an app's view hierarchy.

    Supports the traversal the Alipay workaround needs: from the username
    widget's node, ``get_parent()`` then child enumeration reaches the
    password widget's node even though the password widget itself emits no
    accessibility events."""

    def __init__(self, node_id: str, widget=None) -> None:
        self.node_id = node_id
        self.widget = widget
        self._parent: Optional["ViewNode"] = None
        self._children: List["ViewNode"] = []

    def add_child(self, child: "ViewNode") -> "ViewNode":
        child._parent = self
        self._children.append(child)
        return child

    def get_parent(self) -> Optional["ViewNode"]:
        return self._parent

    @property
    def children(self) -> List["ViewNode"]:
        return list(self._children)

    def find(self, predicate: Callable[["ViewNode"], bool]) -> Optional["ViewNode"]:
        """Depth-first search over this subtree."""
        if predicate(self):
            return self
        for child in self._children:
            found = child.find(predicate)
            if found is not None:
                return found
        return None


ServiceCallback = Callable[[AccessibilityEvent], None]


@dataclass
class _Registration:
    service: str
    callback: ServiceCallback


class AccessibilityBus(SimProcess):
    """Routes accessibility events from widgets to registered services."""

    def __init__(self, simulation: Simulation, name: str = "accessibility") -> None:
        super().__init__(simulation, name)
        self._registrations: List[_Registration] = []
        self._events_emitted = 0

    @property
    def events_emitted(self) -> int:
        return self._events_emitted

    def register_service(self, service: str, callback: ServiceCallback) -> None:
        self._registrations.append(_Registration(service=service, callback=callback))

    def unregister_service(self, service: str) -> None:
        self._registrations = [r for r in self._registrations if r.service != service]

    def emit(
        self,
        event_type: AccessibilityEventType,
        package: str,
        source_node_id: str,
    ) -> None:
        """Emit an event; delivery to each service costs dispatch latency."""
        self._events_emitted += 1
        event = AccessibilityEvent(
            time=self.now,
            event_type=event_type,
            package=package,
            source_node_id=source_node_id,
        )
        self.trace("a11y.event", type=event_type.value, package=package,
                   node=source_node_id)
        for registration in list(self._registrations):
            self.schedule(
                ACCESSIBILITY_DISPATCH_MS,
                lambda cb=registration.callback: cb(event),
                name="a11y-dispatch",
            )
