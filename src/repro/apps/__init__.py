"""App framework: handler threads, accessibility, widgets, keyboards, the
real input method, and the Table IV victim-app catalog."""

from .accessibility import (
    ACCESSIBILITY_DISPATCH_MS,
    AccessibilityBus,
    AccessibilityEvent,
    AccessibilityEventType,
    ViewNode,
)
from .app import App
from .catalog import TABLE_IV_APPS, VictimAppSpec, bank_of_america, spec_by_name
from .ime import LAYOUT_SWITCH_LATENCY_MS, RealKeyboard
from .keyboard import (
    KEY_ABC,
    KEY_BACKSPACE,
    KEY_ENTER,
    KEY_SHIFT,
    KEY_SPACE,
    KEY_SYM,
    LAYOUT_LOWER,
    LAYOUT_SYMBOLS,
    LAYOUT_UPPER,
    KeyboardLayout,
    KeyboardSpec,
    KeyPress,
    default_keyboard_rect,
    plan_key_sequence,
)
from .settings_app import SETTINGS_PACKAGE, AlertResponder, SettingsApp
from .threads import HandlerThread, WorkerTimer
from .victim import VictimApp
from .widgets import InputWidget

__all__ = [
    "ACCESSIBILITY_DISPATCH_MS",
    "AccessibilityBus",
    "AccessibilityEvent",
    "AccessibilityEventType",
    "App",
    "HandlerThread",
    "InputWidget",
    "KEY_ABC",
    "KEY_BACKSPACE",
    "KEY_ENTER",
    "KEY_SHIFT",
    "KEY_SPACE",
    "KEY_SYM",
    "KeyPress",
    "KeyboardLayout",
    "KeyboardSpec",
    "LAYOUT_LOWER",
    "LAYOUT_SWITCH_LATENCY_MS",
    "LAYOUT_SYMBOLS",
    "LAYOUT_UPPER",
    "AlertResponder",
    "RealKeyboard",
    "SETTINGS_PACKAGE",
    "SettingsApp",
    "TABLE_IV_APPS",
    "VictimApp",
    "VictimAppSpec",
    "ViewNode",
    "WorkerTimer",
    "bank_of_america",
    "default_keyboard_rect",
    "plan_key_sequence",
    "spec_by_name",
]
