"""The real software keyboard (input method).

The IME owns an ``INPUT_METHOD`` window showing the active sub-layout and
types into the attached widget. Pressing shift/?123/ABC re-inflates the
layout, which takes a switch latency during which taps are swallowed — the
"overhead of switching the different keyboards may cause additional delay
and result in errors" the paper notes under Table III.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from ..sim.process import SimProcess
from ..stack import AndroidStack
from ..windows.geometry import Point
from ..windows.types import WindowType
from ..windows.window import Window
from .keyboard import (
    KEY_ABC,
    KEY_BACKSPACE,
    KEY_ENTER,
    KEY_SHIFT,
    KEY_SYM,
    LAYOUT_LOWER,
    KeyboardSpec,
)
from .widgets import InputWidget

#: Time to inflate and display a different sub-layout (ms).
LAYOUT_SWITCH_LATENCY_MS = 80.0


class RealKeyboard(SimProcess):
    """The legitimate system input method."""

    def __init__(
        self,
        stack: AndroidStack,
        spec: KeyboardSpec,
        package: str = "com.android.inputmethod",
    ) -> None:
        super().__init__(stack.simulation, package)
        self.stack = stack
        self.spec = spec
        self.package = package
        self.current_layout = LAYOUT_LOWER
        self._widget: Optional[InputWidget] = None
        self._window: Optional[Window] = None
        self._switching_until = 0.0
        self.typed_keys: List[str] = []
        self.dropped_taps = 0
        self.on_submit: Optional[Callable[[str], None]] = None

    # ------------------------------------------------------------------
    @property
    def visible(self) -> bool:
        return self._window is not None and self._window.on_screen

    @property
    def window(self) -> Optional[Window]:
        return self._window

    def attach(self, widget: InputWidget) -> None:
        self._widget = widget
        self.current_layout = LAYOUT_LOWER

    def show(self) -> None:
        if self._window is not None and self._window.on_screen:
            return
        self._window = Window(
            owner=self.package,
            window_type=WindowType.INPUT_METHOD,
            rect=self.spec.rect,
            content=self,
            on_touch=self._on_touch,
            label="ime",
        )
        self.stack.system_server.add_window_direct(self._window)

    def hide(self) -> None:
        if self._window is not None and self._window.on_screen:
            self.stack.system_server.remove_window_direct(self._window)
        self._window = None

    # ------------------------------------------------------------------
    def _on_touch(self, window: Window, point: Point, time: float) -> None:
        if self.now < self._switching_until:
            self.dropped_taps += 1
            self.trace("ime.tap_dropped_switching")
            return
        key = self.spec.layout(self.current_layout).key_at(point)
        if key is None:
            return
        self.press_key(key)

    def press_key(self, key: str) -> None:
        """Apply one key press on the active layout."""
        self.typed_keys.append(key)
        widget = self._widget
        if key in (KEY_SHIFT, KEY_SYM, KEY_ABC):
            next_layout = KeyboardSpec.layout_after_key(self.current_layout, key)
            self._begin_layout_switch(next_layout)
            return
        if key == KEY_BACKSPACE:
            if widget is not None:
                widget.backspace()
            return
        if key == KEY_ENTER:
            if self.on_submit is not None and widget is not None:
                self.on_submit(widget.text)
            return
        if widget is not None:
            widget.append_char(key)
        # One-shot shift: a character press on the upper layout reverts.
        next_layout = KeyboardSpec.layout_after_key(self.current_layout, key)
        if next_layout != self.current_layout:
            self._begin_layout_switch(next_layout)

    def _begin_layout_switch(self, next_layout: str) -> None:
        self._switching_until = self.now + LAYOUT_SWITCH_LATENCY_MS

        def finish() -> None:
            self.current_layout = next_layout
            self.trace("ime.layout_switched", layout=next_layout)

        self.schedule(LAYOUT_SWITCH_LATENCY_MS, finish, name="layout-switch")
