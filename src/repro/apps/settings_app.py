"""The system Settings app and the alert-driven revocation flow.

Built-in defense (ii) continues past displaying the alert: "To manually
remove an unwanted overlay, a user can press on the alert to open the
system Settings app, which can prohibit an app from displaying overlays on
top of other apps" (paper Section II-A2). This module models that loop:

* :class:`SettingsApp` — a protected app (no overlay may cover it while it
  is foreground) exposing ``revoke_overlay_permission``;
* :class:`AlertResponder` — a user-behaviour hook: once the alert becomes
  perceptible, the user takes ``reaction_delay_ms`` to notice and act,
  then opens Settings and revokes the offending app's permission, which
  tears down its overlays and blocks further ``addView`` calls.

The draw-and-destroy attack's whole point is never reaching this flow —
the responder quantifies what happens when it misjudges ``D``.
"""

from __future__ import annotations

from typing import List, Optional

from ..sim.process import SimProcess
from ..stack import AndroidStack
from ..systemui.outcomes import NotificationOutcome
from ..windows.permissions import Permission

SETTINGS_PACKAGE = "com.android.settings"


class SettingsApp(SimProcess):
    """The system Settings app (overlay-permission management slice)."""

    def __init__(self, stack: AndroidStack, package: str = SETTINGS_PACKAGE) -> None:
        super().__init__(stack.simulation, package)
        self.stack = stack
        self.package = package
        # Android >= 8 prevents overlays from covering Settings.
        stack.system_server.protect_app(package)
        self.revocations: List[str] = []

    def revoke_overlay_permission(self, app: str) -> None:
        """Revoke SYSTEM_ALERT_WINDOW and tear the app's overlays down."""
        self.stack.permissions.revoke(app, Permission.SYSTEM_ALERT_WINDOW)
        self.stack.system_server.terminate_app(app)
        self.revocations.append(app)
        self.trace("settings.overlay_permission_revoked", app=app)


class AlertResponder(SimProcess):
    """A user who acts on a perceptible overlay alert.

    Polls the System UI state; once any app's alert has been visibly on
    screen (outcome >= Λ2 with enough exposure for the user's perception
    model), waits a human reaction delay and then revokes that app through
    Settings.
    """

    def __init__(
        self,
        stack: AndroidStack,
        settings: SettingsApp,
        perception,
        reaction_delay_ms: float = 1500.0,
        poll_interval_ms: float = 100.0,
        name: str = "alert-responder",
    ) -> None:
        super().__init__(stack.simulation, name)
        if reaction_delay_ms < 0 or poll_interval_ms <= 0:
            raise ValueError("invalid responder timing parameters")
        self.stack = stack
        self.settings = settings
        self.perception = perception
        self.reaction_delay_ms = float(reaction_delay_ms)
        self.poll_interval_ms = float(poll_interval_ms)
        self._running = False
        self.noticed_at: Optional[float] = None
        self.revoked_at: Optional[float] = None

    @property
    def reacted(self) -> bool:
        return self.revoked_at is not None

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self.schedule(self.poll_interval_ms, self._poll, name="poll")

    def stop(self) -> None:
        self._running = False

    # ------------------------------------------------------------------
    def _poll(self) -> None:
        if not self._running or self.noticed_at is not None:
            return
        if self.perception.notices_alert(self.stack.system_ui):
            self.noticed_at = self.now
            self.trace("user.alert_noticed")
            self.schedule(self.reaction_delay_ms, self._act, name="react")
            return
        self.schedule(self.poll_interval_ms, self._poll, name="poll")

    def _act(self) -> None:
        offender = self._find_offender()
        if offender is None:
            # Nothing identifiable (alert gone again): resume watching.
            self.noticed_at = None
            if self._running:
                self.schedule(self.poll_interval_ms, self._poll, name="poll")
            return
        self.settings.revoke_overlay_permission(offender)
        self.revoked_at = self.now

    def _find_offender(self) -> Optional[str]:
        """The app named by the most visible alert (active or recorded)."""
        system_ui = self.stack.system_ui
        best_app: Optional[str] = None
        best = NotificationOutcome.LAMBDA1
        for record in system_ui.records:
            if record.outcome > best:
                best, best_app = record.outcome, record.app
        for app in system_ui.active_apps():
            entry = system_ui.active_entry(app)
            if entry is not None:
                outcome = entry.outcome_at(self.now)
                if outcome > best:
                    best, best_app = outcome, app
        return best_app if best > NotificationOutcome.LAMBDA1 else None
