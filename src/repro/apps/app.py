"""Base class for simulated apps.

An app talks to the rest of the system the way a real one does: through
Binder transactions to System Server (``addView``, ``removeView``,
``enqueueToast``, ``cancelToast``) whose transit latencies come from the
device profile — the paper's ``Tam``/``Trm`` for the overlay events.
"""

from __future__ import annotations

from typing import Optional

from ..sim.process import SimProcess
from ..stack import AndroidStack
from ..toast.toast import Toast
from ..windows.system_server import SYSTEM_SERVER
from ..windows.window import Window
from .threads import HandlerThread


class App(SimProcess):
    """One installed app with a main (UI) handler thread."""

    def __init__(
        self,
        stack: AndroidStack,
        package: str,
        label: str = "",
        process_name: str = "",
    ) -> None:
        # Several components of one logical app (e.g. the password-stealing
        # attack and its two sub-attacks) share a package — the identity
        # System Server sees — while remaining distinct sim processes.
        super().__init__(stack.simulation, process_name or package)
        self.stack = stack
        self.package = package
        self.label = label or package
        self.main_thread = HandlerThread(stack.simulation, f"{self.name}.main")

    # ------------------------------------------------------------------
    # Binder calls to System Server
    # ------------------------------------------------------------------
    def add_view(self, window: Window) -> None:
        """``addView``: request a window; transit latency is ``Tam``."""
        tam = self.stack.profile.tam.sample(self.rng)
        self.stack.router.transact(
            sender=self.package,
            receiver=SYSTEM_SERVER,
            method="addView",
            payload={"window": window},
            latency_ms=tam,
        )

    def remove_view(self, window: Window) -> float:
        """``removeView``: transit latency is ``Trm`` (> ``Tam``: the add
        event always reaches System Server first, Section III-C).

        Returns the *observed* transit time (sampled ``Trm`` plus any
        fault-layer Binder jitter) — the paper's attack measures this round
        trip on the target device, and the adaptive attack re-measures it
        live to size its attacking window under load.
        """
        trm = self.stack.profile.trm.sample(self.rng)
        txn = self.stack.router.transact(
            sender=self.package,
            receiver=SYSTEM_SERVER,
            method="removeView",
            payload={"window": window},
            latency_ms=trm,
        )
        return txn.delivered_at - txn.sent_at

    @property
    def add_view_blocking_ms(self) -> float:
        """How long a *blocking* ``addView`` occupies the main thread: the
        synchronous round trip through System Server (Tam + Tas + return).

        The paper notes this is why the attack must call ``removeView``
        first — calling ``addView`` first delays the remove notification
        and the attack fails (Section III-C Step 2)."""
        profile = self.stack.profile
        return profile.tam.mean_ms + profile.tas.mean_ms + profile.tam.mean_ms

    def show_toast(self, toast: Toast, latency_ms: Optional[float] = None) -> None:
        """``Toast.show()``: enqueue with the Notification Manager."""
        if latency_ms is None:
            latency_ms = self.stack.profile.tam.sample(self.rng)
        self.stack.router.transact(
            sender=self.package,
            receiver=SYSTEM_SERVER,
            method="enqueueToast",
            payload={"toast": toast},
            latency_ms=latency_ms,
        )

    def cancel_toast(
        self, toast: Optional[Toast] = None, latency_ms: Optional[float] = None
    ) -> None:
        """``Toast.cancel()``: drop a queued toast, or fade the current one
        (``toast=None`` targets whatever of ours is displayed).

        ``latency_ms`` lets callers sequence several toast-control calls
        explicitly (binder calls issued back-to-back from one thread keep
        their order on a real device)."""
        if latency_ms is None:
            latency_ms = self.stack.profile.tam.sample(self.rng)
        payload = {} if toast is None else {"toast": toast}
        self.stack.router.transact(
            sender=self.package,
            receiver=SYSTEM_SERVER,
            method="cancelToast",
            payload=payload,
            latency_ms=latency_ms,
        )

    def cancel_current_toast(self, latency_ms: Optional[float] = None) -> None:
        self.cancel_toast(None, latency_ms=latency_ms)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}({self.package!r})"
