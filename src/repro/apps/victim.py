"""Victim app: a login screen with username and password fields.

The view hierarchy matters: the username and password widgets share a
parent node, which is exactly what the Alipay workaround traverses — the
attacker obtains the parent from the username widget's accessibility events
and enumerates children to find the password widget (Section VI-C1).
"""

from __future__ import annotations

from typing import Optional

from ..stack import AndroidStack
from ..windows.geometry import Point, Rect
from ..windows.types import WindowType
from ..windows.window import Window
from .accessibility import AccessibilityBus, AccessibilityEventType, ViewNode
from .app import App
from .catalog import VictimAppSpec
from .ime import RealKeyboard
from .widgets import InputWidget


class VictimApp(App):
    """A login-capable app under attack."""

    def __init__(
        self,
        stack: AndroidStack,
        bus: AccessibilityBus,
        spec: VictimAppSpec,
        keyboard: RealKeyboard,
    ) -> None:
        super().__init__(stack, spec.package, label=spec.app_name)
        self.spec = spec
        self.bus = bus
        self.keyboard = keyboard
        self.base_window: Optional[Window] = None
        self.root_node = ViewNode(f"{spec.package}/login_root")

        screen_w = stack.profile.screen_width_px
        field_height = 90.0
        self.username_widget = InputWidget(
            widget_id=f"{spec.package}/username",
            rect=Rect(60, 420, screen_w - 60, 420 + field_height),
            is_password=False,
            emitter=self._emitter,
        )
        self.password_widget = InputWidget(
            widget_id=f"{spec.package}/password",
            rect=Rect(60, 560, screen_w - 60, 560 + field_height),
            is_password=True,
            accessibility_enabled=not spec.password_accessibility_disabled,
            emitter=self._emitter,
        )
        self.username_node = self.root_node.add_child(
            ViewNode(self.username_widget.widget_id, widget=self.username_widget)
        )
        self.password_node = self.root_node.add_child(
            ViewNode(self.password_widget.widget_id, widget=self.password_widget)
        )

    # ------------------------------------------------------------------
    def _emitter(self, event_type: AccessibilityEventType, node_id: str) -> None:
        self.bus.emit(event_type, package=self.package, source_node_id=node_id)

    # ------------------------------------------------------------------
    def open_login(self) -> None:
        """Bring up the login activity (base window + foreground)."""
        if self.base_window is not None and self.base_window.on_screen:
            return
        profile = self.stack.profile
        self.base_window = Window(
            owner=self.package,
            window_type=WindowType.BASE_APPLICATION,
            rect=Rect(0, 0, profile.screen_width_px, profile.screen_height_px),
            on_touch=self._on_touch,
            label=f"{self.package}:login",
        )
        self.stack.system_server.add_window_direct(self.base_window)
        self.stack.system_server.set_foreground_app(self.package)

    def close(self) -> None:
        if self.base_window is not None and self.base_window.on_screen:
            self.stack.system_server.remove_window_direct(self.base_window)
        self.keyboard.hide()

    # ------------------------------------------------------------------
    def _on_touch(self, window: Window, point: Point, time: float) -> None:
        if self.username_widget.rect.contains(point):
            self.focus_username()
        elif self.password_widget.rect.contains(point):
            self.focus_password()

    def focus_username(self) -> None:
        self.password_widget.unfocus()
        self.username_widget.focus()
        self.keyboard.attach(self.username_widget)
        self.keyboard.show()

    def focus_password(self) -> None:
        self.username_widget.unfocus()
        self.password_widget.focus()
        self.keyboard.attach(self.password_widget)
        self.keyboard.show()

    @property
    def typed_password(self) -> str:
        return self.password_widget.text
