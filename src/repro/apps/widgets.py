"""Input widgets (text fields) and their accessibility emissions.

Emission behaviour follows the paper's observation (Section VI-C1):

* starting to type sends ``TYPE_VIEW_TEXT_CHANGED`` and
  ``TYPE_WINDOW_CONTENT_CHANGED``;
* finishing and moving focus elsewhere sends only
  ``TYPE_WINDOW_CONTENT_CHANGED``;
* gaining focus sends ``TYPE_VIEW_FOCUSED``.

A widget with ``accessibility_enabled=False`` (Alipay's password field)
emits nothing at all.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..windows.geometry import Rect
from .accessibility import AccessibilityEventType

Emitter = Callable[[AccessibilityEventType, str], None]


class InputWidget:
    """One text-input field inside an app's UI."""

    def __init__(
        self,
        widget_id: str,
        rect: Rect,
        is_password: bool = False,
        accessibility_enabled: bool = True,
        emitter: Optional[Emitter] = None,
    ) -> None:
        self.widget_id = widget_id
        self.rect = rect
        self.is_password = is_password
        self.accessibility_enabled = accessibility_enabled
        self._emitter = emitter
        self.text = ""
        self.focused = False

    # ------------------------------------------------------------------
    def set_emitter(self, emitter: Emitter) -> None:
        self._emitter = emitter

    def _emit(self, event_type: AccessibilityEventType) -> None:
        if self.accessibility_enabled and self._emitter is not None:
            self._emitter(event_type, self.widget_id)

    # ------------------------------------------------------------------
    def focus(self) -> None:
        if self.focused:
            return
        self.focused = True
        self._emit(AccessibilityEventType.TYPE_VIEW_FOCUSED)
        self._emit(AccessibilityEventType.TYPE_WINDOW_CONTENT_CHANGED)

    def unfocus(self) -> None:
        if not self.focused:
            return
        self.focused = False
        # "Only one event (TYPE_WINDOW_CONTENT_CHANGED) was sent" when the
        # user finishes typing and switches focus away.
        self._emit(AccessibilityEventType.TYPE_WINDOW_CONTENT_CHANGED)

    def append_char(self, char: str) -> None:
        if len(char) != 1:
            raise ValueError(f"append_char takes one character, got {char!r}")
        self.text += char
        self._emit(AccessibilityEventType.TYPE_VIEW_TEXT_CHANGED)
        self._emit(AccessibilityEventType.TYPE_WINDOW_CONTENT_CHANGED)

    def backspace(self) -> None:
        if self.text:
            self.text = self.text[:-1]
            self._emit(AccessibilityEventType.TYPE_VIEW_TEXT_CHANGED)
            self._emit(AccessibilityEventType.TYPE_WINDOW_CONTENT_CHANGED)

    def set_text(self, text: str) -> None:
        """Direct text injection (used by the malware to fill the password
        field and hide the attack, Section VI-C1)."""
        self.text = text

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        kind = "password" if self.is_password else "text"
        return f"InputWidget({self.widget_id!r}, {kind}, focused={self.focused})"
