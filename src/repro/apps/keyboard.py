"""Software keyboard layouts and subkeyboard navigation.

Both the real input method and the attack's fake toast keyboard are built
from the same :class:`KeyboardSpec`: three aligned sub-layouts (lowercase,
uppercase, symbols) with identical geometry, so "the fake keyboard and real
keyboard are aligned and appear the same" (paper Section V).

The shift key is modelled one-shot (typing one character reverts to
lowercase, as on stock Android keyboards) and the symbols page is sticky
until ``ABC`` is pressed. :func:`plan_key_sequence` computes the exact key
presses a user performs to type a password, including the subkeyboard
switches the attack must shadow.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..windows.geometry import Point, Rect

# Special, non-character keys.
KEY_SHIFT = "<shift>"
KEY_SYM = "<sym>"  # the "?123" key
KEY_ABC = "<abc>"
KEY_BACKSPACE = "<bs>"
KEY_ENTER = "<enter>"
KEY_SPACE = " "

LAYOUT_LOWER = "lower"
LAYOUT_UPPER = "upper"
LAYOUT_SYMBOLS = "symbols"

_LOWER_ROWS: List[List[str]] = [
    list("qwertyuiop"),
    list("asdfghjkl"),
    [KEY_SHIFT] + list("zxcvbnm") + [KEY_BACKSPACE],
    [KEY_SYM, ",", KEY_SPACE, ".", KEY_ENTER],
]

_UPPER_ROWS: List[List[str]] = [
    list("QWERTYUIOP"),
    list("ASDFGHJKL"),
    [KEY_SHIFT] + list("ZXCVBNM") + [KEY_BACKSPACE],
    [KEY_SYM, ",", KEY_SPACE, ".", KEY_ENTER],
]

_SYMBOL_ROWS: List[List[str]] = [
    list("1234567890"),
    list("!@#$%^&*()"),
    ["-", "_", "=", "+", ";", ":", "'", '"', "/", "?"],
    [KEY_ABC, "<", KEY_SPACE, ">", KEY_ENTER],
]


class KeyboardLayout:
    """One sub-layout: a named set of keys with pixel rectangles."""

    def __init__(self, name: str, rect: Rect, rows: Sequence[Sequence[str]]) -> None:
        self.name = name
        self.rect = rect
        self.keys: Dict[str, Rect] = {}
        row_height = rect.height / len(rows)
        for row_index, row in enumerate(rows):
            key_width = rect.width / len(row)
            top = rect.top + row_index * row_height
            for key_index, key in enumerate(row):
                left = rect.left + key_index * key_width
                self.keys[key] = Rect(left, top, left + key_width, top + row_height)

    def center(self, key: str) -> Point:
        return self.keys[key].center

    def key_at(self, point: Point) -> Optional[str]:
        """The key whose rectangle contains ``point`` exactly."""
        if not self.rect.contains(point):
            return None
        for key, rect in self.keys.items():
            if rect.contains(point):
                return key
        return None

    def nearest_key(self, point: Point) -> Tuple[str, float]:
        """Closest key center by Euclidean distance (paper Section V: the
        attacker's offline key-inference rule)."""
        best_key = None
        best_distance = float("inf")
        for key, rect in self.keys.items():
            distance = rect.center.distance_to(point)
            if distance < best_distance:
                best_key = key
                best_distance = distance
        assert best_key is not None
        return best_key, best_distance

    def __contains__(self, key: str) -> bool:
        return key in self.keys


@dataclass(frozen=True)
class KeyPress:
    """One planned key press: which layout is active and which key hit."""

    layout: str
    key: str


class KeyboardSpec:
    """The three aligned sub-layouts plus navigation rules."""

    def __init__(self, rect: Rect) -> None:
        self.rect = rect
        self.layouts: Dict[str, KeyboardLayout] = {
            LAYOUT_LOWER: KeyboardLayout(LAYOUT_LOWER, rect, _LOWER_ROWS),
            LAYOUT_UPPER: KeyboardLayout(LAYOUT_UPPER, rect, _UPPER_ROWS),
            LAYOUT_SYMBOLS: KeyboardLayout(LAYOUT_SYMBOLS, rect, _SYMBOL_ROWS),
        }

    def layout(self, name: str) -> KeyboardLayout:
        return self.layouts[name]

    # ------------------------------------------------------------------
    # Navigation
    # ------------------------------------------------------------------
    @staticmethod
    def layout_after_key(current: str, key: str) -> str:
        """Active layout after pressing ``key`` on layout ``current``."""
        if key == KEY_SHIFT:
            return LAYOUT_LOWER if current == LAYOUT_UPPER else LAYOUT_UPPER
        if key == KEY_SYM:
            return LAYOUT_SYMBOLS
        if key == KEY_ABC:
            return LAYOUT_LOWER
        if current == LAYOUT_UPPER and key not in (KEY_BACKSPACE, KEY_ENTER):
            return LAYOUT_LOWER  # one-shot shift reverts after a character
        return current

    def layout_for_char(self, char: str) -> str:
        """Which sub-layout carries ``char`` as a directly typable key."""
        for name in (LAYOUT_LOWER, LAYOUT_UPPER, LAYOUT_SYMBOLS):
            if char in self.layouts[name]:
                if char in (KEY_SHIFT, KEY_SYM, KEY_ABC):
                    continue
                return name
        raise KeyError(f"character {char!r} is on no sub-layout")

    def switches_to(self, current: str, target: str) -> List[str]:
        """Special keys pressed to move from ``current`` to ``target``."""
        if current == target:
            return []
        if target == LAYOUT_UPPER:
            if current == LAYOUT_LOWER:
                return [KEY_SHIFT]
            return [KEY_ABC, KEY_SHIFT]  # symbols -> lower -> upper
        if target == LAYOUT_LOWER:
            if current == LAYOUT_UPPER:
                return [KEY_SHIFT]
            return [KEY_ABC]
        # target == symbols
        return [KEY_SYM]

    def typable_characters(self) -> List[str]:
        """Every character reachable on some sub-layout (password alphabet)."""
        chars = set()
        for layout in self.layouts.values():
            for key in layout.keys:
                if len(key) == 1:
                    chars.add(key)
        return sorted(chars)


def plan_key_sequence(spec: KeyboardSpec, text: str, start_layout: str = LAYOUT_LOWER) -> List[KeyPress]:
    """The exact key presses that type ``text`` starting on ``start_layout``.

    Includes every shift/?123/ABC press — the presses whose capture the
    attack needs to keep its fake keyboard (and its inference) in sync.
    """
    presses: List[KeyPress] = []
    current = start_layout
    for char in text:
        target = spec.layout_for_char(char)
        for switch_key in spec.switches_to(current, target):
            presses.append(KeyPress(layout=current, key=switch_key))
            current = KeyboardSpec.layout_after_key(current, switch_key)
        presses.append(KeyPress(layout=current, key=char))
        current = KeyboardSpec.layout_after_key(current, char)
    return presses


def default_keyboard_rect(screen_width_px: int, screen_height_px: int) -> Rect:
    """Bottom ~32% of the screen, the conventional IME area."""
    top = screen_height_px * 0.68
    return Rect(0.0, top, float(screen_width_px), float(screen_height_px))
