"""The eight real-world victim apps of the paper's Table IV.

Only one behavioural axis distinguishes them for the attack: whether the
password input widget dispatches accessibility events. Alipay disables
them, so the straightforward focus trigger fails and the attacker needs
the username-widget workaround (paper Section VI-C1) — the "*" in
Table IV.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List


@dataclass(frozen=True)
class VictimAppSpec:
    """Static description of one victim app."""

    app_name: str
    package: str
    version: str
    #: Alipay-style hardening: the password widget emits no accessibility
    #: events while a password is typed.
    password_accessibility_disabled: bool = False

    @property
    def needs_extra_effort(self) -> bool:
        """Table IV: '*' — compromised, but extra effort needed."""
        return self.password_accessibility_disabled


TABLE_IV_APPS: List[VictimAppSpec] = [
    VictimAppSpec("Bank of America", "com.infonow.bofa", "8.1.16"),
    VictimAppSpec("Skype", "com.skype.raider", "8.45.0.43"),
    VictimAppSpec("Facebook", "com.facebook.katana", "196.0.0.16.95"),
    VictimAppSpec("Evernote", "com.evernote", "8.4.1"),
    VictimAppSpec("Snapchat", "com.snapchat.android", "10.44.3.0"),
    VictimAppSpec("Twitter", "com.twitter.android", "7.68.1"),
    VictimAppSpec("Instagram", "com.instagram.android", "69.0.0.10.95"),
    VictimAppSpec(
        "Alipay", "com.eg.android.AlipayGphone", "10.1.65",
        password_accessibility_disabled=True,
    ),
]


def spec_by_name(app_name: str) -> VictimAppSpec:
    for spec in TABLE_IV_APPS:
        if spec.app_name == app_name:
            return spec
    raise KeyError(f"no Table IV app named {app_name!r}")


def bank_of_america() -> VictimAppSpec:
    """The paper's running example (user study and video demo)."""
    return spec_by_name("Bank of America")
