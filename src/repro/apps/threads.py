"""Handler threads: the Android main/worker thread messaging model.

The attacks depend on thread mechanics the paper calls out explicitly
(Section III-C): the worker thread is a timer that notifies the main thread
through the asynchronous handler mechanism; the main thread executes posted
tasks *serially*; and a blocking call (like ``addView``) occupies the main
thread, delaying everything posted behind it — which is why the attack must
call ``removeView`` before ``addView``.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..sim.event import EventHandle
from ..sim.process import SimProcess
from ..sim.simulation import Simulation

#: Cost of dispatching one handler message (worker -> main), ms.
HANDLER_DISPATCH_MS = 0.2
#: Bookkeeping cost charged per executed task, ms.
TASK_OVERHEAD_MS = 0.05


class HandlerThread(SimProcess):
    """A serial task executor with handler-message semantics.

    Tasks run strictly one after another. A task that calls :meth:`block`
    (modelling a synchronous Binder call such as ``addView``) pushes every
    queued task behind it — the mechanism that makes the add-first variant
    of the overlay attack fail (paper Section III-C Step 2).
    """

    def __init__(self, simulation: Simulation, name: str) -> None:
        super().__init__(simulation, name)
        self._busy_until = 0.0
        self._tasks_run = 0
        self._queue: list = []  # (ready_time, task)
        self._pump_scheduled = False

    @property
    def tasks_run(self) -> int:
        return self._tasks_run

    @property
    def busy_until(self) -> float:
        return self._busy_until

    @property
    def queued(self) -> int:
        return len(self._queue)

    def post(
        self,
        task: Callable[[], None],
        delay_ms: float = HANDLER_DISPATCH_MS,
        name: str = "task",
    ) -> None:
        """Post a task; it runs serially after all queued work."""
        if delay_ms < 0:
            raise ValueError(f"delay_ms must be >= 0, got {delay_ms}")
        self._queue.append((self.now + delay_ms, task))
        self._schedule_pump()

    def block(self, duration_ms: float) -> None:
        """Mark the thread busy for ``duration_ms`` from now."""
        if duration_ms < 0:
            raise ValueError(f"duration_ms must be >= 0, got {duration_ms}")
        self._busy_until = max(self._busy_until, self.now + duration_ms)

    # ------------------------------------------------------------------
    def _schedule_pump(self) -> None:
        if self._pump_scheduled or not self._queue:
            return
        ready_time, _ = self._queue[0]
        start = max(ready_time, self._busy_until, self.now)
        self._pump_scheduled = True
        self.simulation.schedule_at(start, self._pump, name=f"{self.name}:pump")

    def _pump(self) -> None:
        self._pump_scheduled = False
        if not self._queue:
            return
        ready_time, task = self._queue[0]
        start = max(ready_time, self._busy_until)
        if start > self.now:
            # A block landed (or the head is not ready): try again later.
            self._schedule_pump()
            return
        self._queue.pop(0)
        self._tasks_run += 1
        task()
        self._busy_until = max(self._busy_until, self.now) + TASK_OVERHEAD_MS
        self._schedule_pump()


class WorkerTimer(SimProcess):
    """The attack's worker thread: a periodic timer notifying a handler.

    "The worker thread acts as a timer notifying the main thread through the
    Android asynchronous handler mechanism" (paper Section III-C Step 1).
    """

    def __init__(
        self,
        simulation: Simulation,
        name: str,
        period_ms: float,
        on_tick: Callable[[int], None],
    ) -> None:
        super().__init__(simulation, name)
        if period_ms <= 0:
            raise ValueError(f"period must be positive, got {period_ms}")
        self._period = float(period_ms)
        self._on_tick = on_tick
        self._tick = 0
        self._running = False
        self._handle: Optional[EventHandle] = None

    @property
    def period_ms(self) -> float:
        return self._period

    def set_period(self, period_ms: float) -> None:
        """Change the tick period; takes effect from the next tick.

        The adaptive overlay attack uses this to widen its attacking
        window after a suppression failure without restarting the timer.
        """
        if period_ms <= 0:
            raise ValueError(f"period must be positive, got {period_ms}")
        self._period = float(period_ms)

    @property
    def ticks(self) -> int:
        return self._tick

    @property
    def running(self) -> bool:
        return self._running

    def start(self, initial_delay_ms: float = 0.0) -> None:
        if self._running:
            return
        self._running = True
        self._handle = self.schedule(initial_delay_ms, self._fire, name="tick")

    def stop(self) -> None:
        self._running = False
        if self._handle is not None:
            self._handle.cancel_if_pending()
            self._handle = None

    def _fire(self) -> None:
        if not self._running:
            return
        self._tick += 1
        self._on_tick(self._tick)
        if self._running:
            self._handle = self.schedule(self._period, self._fire, name="tick")
