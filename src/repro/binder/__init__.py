"""Binder IPC substrate: transactions, latency models, router, monitor."""

from .latency import FixedLatency, LatencyModel, LatencySpec, MethodLatencyTable
from .monitor import BinderMonitor, MonitoredCall
from .router import BinderRouter
from .transaction import BinderTransaction

__all__ = [
    "BinderMonitor",
    "BinderRouter",
    "BinderTransaction",
    "FixedLatency",
    "LatencyModel",
    "LatencySpec",
    "MethodLatencyTable",
    "MonitoredCall",
]
