"""Binder transaction records.

Android IPC is implemented by the Binder; a call such as ``addView`` from an
app to System Server is one *transaction*. The paper's IPC-based defense
(Section VII-A) observes exactly these transactions — "an information-rich
Binder transaction, which can be used to determine which method is called as
well as the caller" — so the simulated transaction carries the same fields.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict


@dataclass(frozen=True)
class BinderTransaction:
    """One IPC call travelling between two simulated processes."""

    txn_id: int
    sender: str
    receiver: str
    method: str
    sent_at: float
    delivered_at: float
    payload: Dict[str, Any] = field(default_factory=dict)

    @property
    def latency_ms(self) -> float:
        """Transit time between sender and receiver."""
        return self.delivered_at - self.sent_at

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"BinderTransaction(#{self.txn_id} {self.sender}->{self.receiver} "
            f"{self.method} @{self.sent_at:.3f}+{self.latency_ms:.3f}ms)"
        )
