"""Binder transaction monitor — substrate of the IPC-based defense.

The paper's defense changes the Binder code "in a minor fashion" to collect
the transactions of interest (``addView``/``removeView``) together with the
caller and a timestamp, and forwards them to an analyzer. The monitor here
is that collection point; :mod:`repro.defenses.ipc_detector` is the
analyzer.

The monitor also accounts for its own processing cost so the reproduction
can report the defense's performance overhead (the paper: "negligible").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional, Set

from .router import BinderRouter
from .transaction import BinderTransaction


@dataclass(frozen=True)
class MonitoredCall:
    """The analyzer-facing record of one intercepted transaction."""

    time: float
    caller: str
    method: str
    txn_id: int


class BinderMonitor:
    """Collects Binder transactions whose method is in a watch set."""

    #: Simulated per-transaction inspection cost in milliseconds. The real
    #: hook is a few comparisons and a buffer append; we charge 1 µs.
    INSPECTION_COST_MS = 0.001

    def __init__(
        self,
        router: BinderRouter,
        methods_of_interest: Iterable[str] = ("addView", "removeView"),
        sink: Optional[Callable[[MonitoredCall], None]] = None,
    ) -> None:
        self._methods: Set[str] = set(methods_of_interest)
        self._calls: List[MonitoredCall] = []
        self._sink = sink
        self._transactions_seen = 0
        self._overhead_ms = 0.0
        router.add_observer(self._observe)

    # ------------------------------------------------------------------
    @property
    def calls(self) -> List[MonitoredCall]:
        return list(self._calls)

    @property
    def transactions_seen(self) -> int:
        """All transactions inspected, matching or not."""
        return self._transactions_seen

    @property
    def overhead_ms(self) -> float:
        """Accumulated simulated inspection cost."""
        return self._overhead_ms

    def calls_by_caller(self, caller: str) -> List[MonitoredCall]:
        return [c for c in self._calls if c.caller == caller]

    def clear(self) -> None:
        self._calls.clear()

    # ------------------------------------------------------------------
    def _observe(self, txn: BinderTransaction) -> None:
        self._transactions_seen += 1
        self._overhead_ms += self.INSPECTION_COST_MS
        if txn.method not in self._methods:
            return
        call = MonitoredCall(
            time=txn.sent_at, caller=txn.sender, method=txn.method, txn_id=txn.txn_id
        )
        self._calls.append(call)
        if self._sink is not None:
            self._sink(call)
