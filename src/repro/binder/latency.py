"""Latency models for Binder transactions.

The attacks in the paper are pure timing attacks, so per-method IPC latency
distributions are first-class objects here. Device profiles
(:mod:`repro.devices`) instantiate a :class:`MethodLatencyTable` mapping the
paper's latency symbols onto methods:

* ``Tam`` — app main thread -> System Server, overlay *add* event;
* ``Trm`` — app main thread -> System Server, overlay *remove* event
  (``Tam < Trm``: the add event "always reaches System Server first");
* ``Tn``  — System Server -> System UI notification message (inflated by
  the Android Notification Assistant delay on Android 10/11).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, Optional

from ..sim.rng import SeededRng


class LatencyModel(ABC):
    """Samples a transit latency (ms) for a given method name."""

    @abstractmethod
    def sample(self, rng: SeededRng, method: str) -> float:
        """Draw one latency in milliseconds (always >= 0)."""

    @abstractmethod
    def mean(self, method: str) -> float:
        """Expected latency for analytical formulas (paper Eq. 2)."""


@dataclass(frozen=True)
class LatencySpec:
    """Parameters of one Gaussian-with-floor latency distribution."""

    mean_ms: float
    std_ms: float = 0.0
    min_ms: float = 0.0

    def __post_init__(self) -> None:
        if self.mean_ms < 0:
            raise ValueError(f"mean latency must be >= 0, got {self.mean_ms}")
        if self.std_ms < 0:
            raise ValueError(f"latency std must be >= 0, got {self.std_ms}")
        if self.min_ms < 0:
            raise ValueError(f"min latency must be >= 0, got {self.min_ms}")

    def sample(self, rng: SeededRng) -> float:
        return rng.gauss_clipped(self.mean_ms, self.std_ms, minimum=self.min_ms)

    def scaled(self, factor: float) -> "LatencySpec":
        """A spec with mean and std scaled (used for load modelling)."""
        return LatencySpec(
            mean_ms=self.mean_ms * factor,
            std_ms=self.std_ms * factor,
            min_ms=self.min_ms,
        )


class FixedLatency(LatencyModel):
    """Every transaction takes exactly ``value_ms`` — used in unit tests."""

    def __init__(self, value_ms: float) -> None:
        if value_ms < 0:
            raise ValueError(f"latency must be >= 0, got {value_ms}")
        self._value = float(value_ms)

    def sample(self, rng: SeededRng, method: str) -> float:
        return self._value

    def mean(self, method: str) -> float:
        return self._value


class MethodLatencyTable(LatencyModel):
    """Per-method latency distributions with a default fallback."""

    def __init__(
        self,
        specs: Optional[Dict[str, LatencySpec]] = None,
        default: LatencySpec = LatencySpec(mean_ms=0.5, std_ms=0.1),
    ) -> None:
        self._specs: Dict[str, LatencySpec] = dict(specs or {})
        self._default = default

    def set(self, method: str, spec: LatencySpec) -> None:
        self._specs[method] = spec

    def get(self, method: str) -> LatencySpec:
        return self._specs.get(method, self._default)

    def sample(self, rng: SeededRng, method: str) -> float:
        return self.get(method).sample(rng)

    def mean(self, method: str) -> float:
        return self.get(method).mean_ms

    def methods(self):
        return list(self._specs)
