"""Binder router: delivers transactions between simulated processes."""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..sim.process import SimProcess
from ..sim.simulation import Simulation
from .latency import FixedLatency, LatencyModel
from .transaction import BinderTransaction

TransactionHandler = Callable[[BinderTransaction], None]
TransactionObserver = Callable[[BinderTransaction], None]


class BinderRouter(SimProcess):
    """Routes Binder transactions with modelled latency.

    Receivers register a handler per ``(receiver, method)``; senders call
    :meth:`transact`. Delivery is scheduled on the simulation clock after a
    latency drawn from the router's :class:`LatencyModel` (or an explicit
    per-call latency, which the Android services use for the
    device-calibrated ``Tam``/``Trm``/``Tn`` paths).

    Observers see every transaction at *send* time — this is the hook the
    IPC-based defense (paper Section VII-A) plugs into: a "minor" change to
    the Binder code that forwards caller and timestamp to an analyzer.
    """

    def __init__(
        self,
        simulation: Simulation,
        latency_model: Optional[LatencyModel] = None,
        name: str = "binder",
        loss_probability: float = 0.0,
    ) -> None:
        super().__init__(simulation, name)
        if not 0.0 <= loss_probability < 1.0:
            raise ValueError(
                f"loss_probability must be in [0, 1), got {loss_probability}"
            )
        self._latency_model = latency_model or FixedLatency(0.5)
        self._handlers: Dict[str, Dict[str, TransactionHandler]] = {}
        self._observers: List[TransactionObserver] = []
        self._txn_counter = 0
        self._delivered = 0
        #: Per-FIFO-channel floor on delivery times. Clamping happens in
        #: the router *after* all latency (modelled, explicit and fault
        #: jitter) is known, so ordering guarantees hold even under
        #: adversarial Binder jitter.
        self._fifo_last: Dict[str, float] = {}
        #: Failure injection: fraction of transactions silently dropped in
        #: transit (0 in normal operation; real Binder does not lose
        #: messages — this knob exists for robustness testing).
        self.loss_probability = float(loss_probability)
        self._dropped = 0
        # Instruments resolved once; they survive rearm() so a registry
        # aggregates Binder traffic across every trial of an experiment.
        registry = simulation.metrics
        if registry is not None:
            self._m_sent = registry.counter("binder_transactions_sent_total")
            self._m_delivered = registry.counter(
                "binder_transactions_delivered_total")
            self._m_dropped = registry.counter(
                "binder_transactions_dropped_total")
            self._m_transit = registry.histogram("binder_transit_ms")
        else:
            self._m_sent = None
            self._m_delivered = None
            self._m_dropped = None
            self._m_transit = None

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    @property
    def latency_model(self) -> LatencyModel:
        return self._latency_model

    def register(self, receiver: str, method: str, handler: TransactionHandler) -> None:
        """Register ``handler`` for transactions to ``receiver.method``."""
        methods = self._handlers.setdefault(receiver, {})
        if method in methods:
            raise ValueError(f"handler for {receiver}.{method} already registered")
        methods[method] = handler

    def register_many(
        self, receiver: str, handlers: Dict[str, TransactionHandler]
    ) -> None:
        for method, handler in handlers.items():
            self.register(receiver, method, handler)

    def add_observer(self, observer: TransactionObserver) -> None:
        self._observers.append(observer)

    def rearm(self) -> None:
        """Reset routing state for stack reuse.

        Handlers are dropped too: the boot-time services re-register theirs
        in :meth:`AndroidStack.reset`, which reproduces ``build_stack``'s
        wiring exactly and sheds anything a defense or test registered
        mid-trial. The latency model is stateless and survives.
        """
        super().rearm()
        self._handlers.clear()
        self._observers.clear()
        self._txn_counter = 0
        self._delivered = 0
        self._fifo_last.clear()
        self.loss_probability = 0.0
        self._dropped = 0

    # ------------------------------------------------------------------
    # Transactions
    # ------------------------------------------------------------------
    @property
    def transactions_sent(self) -> int:
        return self._txn_counter

    @property
    def transactions_delivered(self) -> int:
        return self._delivered

    @property
    def transactions_dropped(self) -> int:
        return self._dropped

    def transact(
        self,
        sender: str,
        receiver: str,
        method: str,
        payload: Optional[dict] = None,
        latency_ms: Optional[float] = None,
        fifo_key: Optional[str] = None,
    ) -> BinderTransaction:
        """Send one transaction; returns the (already timestamped) record.

        ``fifo_key`` names a FIFO channel: deliveries sharing a key never
        reorder, even when fault jitter stretches an earlier transaction's
        transit time. Real Binder preserves per-connection ordering, so the
        System Server -> System UI alert channel depends on this (a hide
        overtaking its show would leave a phantom alert).
        """
        handler = self._lookup_handler(receiver, method)
        if latency_ms is None:
            latency_ms = self._latency_model.sample(self.rng, method)
        if latency_ms < 0:
            raise ValueError(f"negative binder latency {latency_ms} for {method}")
        plan = self.simulation.faults
        if plan is not None:
            # Fault jitter stacks on top of whatever latency was chosen,
            # including the explicit device-calibrated Tam/Trm paths —
            # a loaded Binder thread pool delays those the same way.
            latency_ms += plan.binder_delay()
        if fifo_key is not None:
            floor = self._fifo_last.get(fifo_key, 0.0)
            delivery = max(self.now + latency_ms, floor + 1e-6)
            self._fifo_last[fifo_key] = delivery
            latency_ms = delivery - self.now
        self._txn_counter += 1
        if self._m_sent is not None:
            self._m_sent.inc()
            # Transit time as scheduled, including model latency, fault
            # jitter and FIFO clamping — the "transit jitter" series.
            self._m_transit.observe(latency_ms)
        txn = BinderTransaction(
            txn_id=self._txn_counter,
            sender=sender,
            receiver=receiver,
            method=method,
            sent_at=self.now,
            delivered_at=self.now + latency_ms,
            payload=dict(payload or {}),
        )
        self.trace("binder.transact", txn_id=txn.txn_id, sender=sender,
                   receiver=receiver, method=method, latency_ms=round(latency_ms, 4))
        for observer in self._observers:
            observer(txn)
        dropped = bool(self.loss_probability) and self.rng.chance(self.loss_probability)
        if not dropped and plan is not None and plan.drop_binder():
            dropped = True
        if dropped:
            self._dropped += 1
            if self._m_dropped is not None:
                self._m_dropped.inc()
            self.trace("binder.dropped", txn_id=txn.txn_id, method=method)
            return txn

        def deliver() -> None:
            self._delivered += 1
            if self._m_delivered is not None:
                self._m_delivered.inc()
            handler(txn)

        self.schedule(latency_ms, deliver, name=f"deliver:{method}")
        return txn

    def _lookup_handler(self, receiver: str, method: str) -> TransactionHandler:
        methods = self._handlers.get(receiver)
        if methods is None:
            raise KeyError(f"no receiver registered under {receiver!r}")
        handler = methods.get(method)
        if handler is None:
            raise KeyError(f"receiver {receiver!r} has no handler for {method!r}")
        return handler
