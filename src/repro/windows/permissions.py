"""Android permission model (the slice the attacks need)."""

from __future__ import annotations

import enum
from typing import Dict, Set


class Permission(enum.Enum):
    """Permissions referenced by the paper's attacks and corpus study."""

    SYSTEM_ALERT_WINDOW = "android.permission.SYSTEM_ALERT_WINDOW"
    BIND_ACCESSIBILITY_SERVICE = "android.permission.BIND_ACCESSIBILITY_SERVICE"
    INTERNET = "android.permission.INTERNET"


class PermissionDenied(Exception):
    """An app attempted an operation without the required permission."""

    def __init__(self, app: str, permission: Permission) -> None:
        super().__init__(f"app {app!r} lacks permission {permission.value}")
        self.app = app
        self.permission = permission


class PermissionManager:
    """Tracks which app holds which permission.

    ``SYSTEM_ALERT_WINDOW`` gates overlay creation (built-in defense (i),
    paper Section II-A2). The draw-and-destroy *toast* attack needs no
    permission at all, which the threat model in Section IV-A highlights.
    """

    def __init__(self) -> None:
        self._grants: Dict[str, Set[Permission]] = {}

    def reset(self) -> None:
        """Revoke everything (stack reuse: trials grant their own)."""
        self._grants.clear()

    def grant(self, app: str, permission: Permission) -> None:
        self._grants.setdefault(app, set()).add(permission)

    def revoke(self, app: str, permission: Permission) -> None:
        self._grants.get(app, set()).discard(permission)

    def is_granted(self, app: str, permission: Permission) -> bool:
        return permission in self._grants.get(app, set())

    def require(self, app: str, permission: Permission) -> None:
        if not self.is_granted(app, permission):
            raise PermissionDenied(app, permission)

    def grants_of(self, app: str) -> Set[Permission]:
        return set(self._grants.get(app, set()))
