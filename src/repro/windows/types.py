"""Window types, flags and z-ordering.

Layer assignments mirror the relationships the paper relies on:

* toast windows sit above application windows and the input method ("the
  toast can be ... positioned on the topmost layer without requiring any
  privileges", Section II-B), which is how the fake keyboard covers the
  real one; and
* ``TYPE_APPLICATION_OVERLAY`` windows sit above toasts, which is how the
  transparent UI-intercepting overlays cover the fake keyboard (Section V).
* the status bar / System UI layer is above everything an app can create.

``TYPE_TOAST`` *windows* (the pre-Android-8 persistent trick) are
deliberately absent: the reproduction targets Android >= 8 where that type
was removed.
"""

from __future__ import annotations

import enum


class WindowType(enum.Enum):
    """Subset of Android window types needed by the reproduction."""

    BASE_APPLICATION = "base_application"
    INPUT_METHOD = "input_method"
    TOAST = "toast"
    APPLICATION_OVERLAY = "application_overlay"
    STATUS_BAR = "status_bar"


#: Z-order: higher layer is drawn on top and receives touches first.
WINDOW_LAYERS = {
    WindowType.BASE_APPLICATION: 1,
    WindowType.INPUT_METHOD: 2,
    WindowType.TOAST: 3,
    WindowType.APPLICATION_OVERLAY: 4,
    WindowType.STATUS_BAR: 5,
}


class WindowFlags(enum.Flag):
    """Window behaviour flags."""

    NONE = 0
    #: Touches pass through to the window beneath (clickjacking-style
    #: non-UI-intercepting overlays, paper Section II-A1).
    NOT_TOUCHABLE = enum.auto()
    #: The window is (semi-)transparent: content beneath remains visible.
    TRANSPARENT = enum.auto()
    FULLSCREEEN = enum.auto()


def layer_of(window_type: WindowType) -> int:
    return WINDOW_LAYERS[window_type]


#: Window types whose creation requires SYSTEM_ALERT_WINDOW.
PRIVILEGED_OVERLAY_TYPES = frozenset({WindowType.APPLICATION_OVERLAY})

#: Window types that never receive touch events. A toast "does not receive
#: touch events" (paper Section II-B) regardless of flags.
NEVER_TOUCHABLE_TYPES = frozenset(
    {WindowType.TOAST, WindowType.STATUS_BAR}
)
