"""Screen compositor: what the user actually sees at a point in time.

The window stack alone does not answer "what is visible": toasts carry
time-varying opacity, overlays may be transparent, and several layers can
blend. The compositor walks the z-order top-down, accumulating alpha, and
answers three questions the attacks and the perception model care about:

* :func:`visible_stack` — the layers contributing to a pixel, with their
  effective opacities;
* :func:`effective_content` — which window's content dominates a pixel
  (what the user perceives);
* :func:`coverage` — how opaque the composite is over a region (the
  flicker metric, generalized beyond toasts).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, List, Optional, Tuple

from ..obs.context import current_metrics
from ..sim.faults import FaultPlan
from ..toast.toast import Toast
from .geometry import Point, Rect
from .screen import Screen
from .window import Window

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..obs.metrics import Counter, MetricsRegistry

#: Frame accounting metric names. The counters are owned here — frames
#: exist to be composited to glass — but are *driven* by the animators
#: (:class:`repro.animation.animator.Animator`), which are the only places
#: that know when a frame actually rendered or was dropped by the fault
#: layer.
FRAMES_RENDERED_METRIC = "compositor_frames_rendered_total"
FRAMES_DROPPED_METRIC = "compositor_frames_dropped_total"

#: Visible-layer histogram buckets: layer counts are tiny integers.
_LAYER_BUCKETS = (0.0, 1.0, 2.0, 3.0, 4.0, 6.0, 8.0, 12.0, 16.0)


def frame_instruments(
    registry: "Optional[MetricsRegistry]",
) -> "Optional[Tuple[Counter, Counter]]":
    """Resolve the (rendered, dropped) frame counters, or ``None``."""
    if registry is None:
        return None
    return (registry.counter(FRAMES_RENDERED_METRIC),
            registry.counter(FRAMES_DROPPED_METRIC))


def _displayed_time(time: float, faults: Optional[FaultPlan]) -> float:
    """Map query time to the timestamp of the frame actually on glass.

    Under frame faults the display lags: the last rendered frame is late
    by its jitter and by one refresh interval per consecutively dropped
    frame before it. The mapping is a pure function of the fault plan's
    seed (no stream is consumed), so compositor queries stay idempotent
    and order-independent.
    """
    if faults is None:
        return time
    return faults.render_time(time)


@dataclass(frozen=True)
class VisibleLayer:
    """One window's contribution to a pixel."""

    window: Window
    #: The window's own opacity at query time (toasts animate).
    layer_alpha: float
    #: Opacity actually contributed after occlusion by layers above.
    effective_alpha: float

    @property
    def content(self) -> Any:
        return self.window.content


def _window_alpha(window: Window, time: float) -> float:
    """A window's intrinsic opacity at ``time``.

    Toast windows delegate to their toast's fade timeline; other windows
    use their static alpha — except fully transparent UI-intercepting
    overlays, which contribute nothing visually.
    """
    content = window.content
    if isinstance(content, Toast):
        return content.alpha_at(time)
    return window.alpha


def visible_stack(
    screen: Screen,
    point: Point,
    time: float,
    faults: Optional[FaultPlan] = None,
) -> List[VisibleLayer]:
    """Layers visible at ``point``, top to bottom, with effective alphas."""
    time = _displayed_time(time, faults)
    layers: List[VisibleLayer] = []
    transparency = 1.0  # how much of the lower layers still shows through
    for window in screen.windows_at(point):
        alpha = _window_alpha(window, time)
        if alpha <= 0.0:
            continue
        effective = alpha * transparency
        layers.append(
            VisibleLayer(window=window, layer_alpha=alpha,
                         effective_alpha=effective)
        )
        transparency *= 1.0 - alpha
        if transparency <= 1e-9:
            break
    registry = current_metrics()
    if registry is not None:
        registry.counter("compositor_queries_total").inc()
        registry.histogram("compositor_visible_layers",
                           buckets=_LAYER_BUCKETS).observe(len(layers))
    return layers


def effective_content(
    screen: Screen,
    point: Point,
    time: float,
    faults: Optional[FaultPlan] = None,
) -> Optional[Any]:
    """The content the user predominantly perceives at ``point``."""
    layers = visible_stack(screen, point, time, faults=faults)
    if not layers:
        return None
    dominant = max(layers, key=lambda layer: layer.effective_alpha)
    return dominant.content


def coverage(
    screen: Screen,
    rect: Rect,
    time: float,
    samples_per_axis: int = 3,
    predicate=None,
    faults: Optional[FaultPlan] = None,
) -> float:
    """Mean composite opacity of (optionally filtered) windows over
    ``rect``, sampled on a small grid.

    With ``predicate`` (e.g., ``lambda w: w.owner == malware``) only the
    matching windows' contributions count — the generalized form of the
    toast-attack coverage metric.
    """
    if samples_per_axis < 1:
        raise ValueError(f"samples_per_axis must be >= 1, got {samples_per_axis}")
    time = _displayed_time(time, faults)
    total = 0.0
    count = 0
    for ix in range(samples_per_axis):
        for iy in range(samples_per_axis):
            x = rect.left + rect.width * (ix + 0.5) / samples_per_axis
            y = rect.top + rect.height * (iy + 0.5) / samples_per_axis
            point = Point(x, y)
            transparency = 1.0
            for window in screen.windows_at(point):
                if predicate is not None and not predicate(window):
                    continue
                transparency *= 1.0 - _window_alpha(window, time)
            total += 1.0 - transparency
            count += 1
    registry = current_metrics()
    if registry is not None:
        registry.counter("compositor_queries_total").inc()
    return total / count if count else 0.0
