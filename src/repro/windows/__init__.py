"""Window-system substrate: geometry, windows, screen, permissions, touch
dispatch and the System Server (Window Manager Service)."""

from .compositor import VisibleLayer, coverage, effective_content, visible_stack
from .geometry import Point, Rect
from .permissions import Permission, PermissionDenied, PermissionManager
from .screen import Screen
from .system_server import SYSTEM_SERVER, SYSTEM_UI, OverlayAlertPolicy, SystemServer
from .touch import DEFAULT_COMMIT_MS, TapOutcome, TapRecord, TouchDispatcher
from .types import (
    NEVER_TOUCHABLE_TYPES,
    PRIVILEGED_OVERLAY_TYPES,
    WINDOW_LAYERS,
    WindowFlags,
    WindowType,
    layer_of,
)
from .window import Window

__all__ = [
    "DEFAULT_COMMIT_MS",
    "NEVER_TOUCHABLE_TYPES",
    "OverlayAlertPolicy",
    "PRIVILEGED_OVERLAY_TYPES",
    "Permission",
    "PermissionDenied",
    "PermissionManager",
    "Point",
    "Rect",
    "SYSTEM_SERVER",
    "SYSTEM_UI",
    "Screen",
    "SystemServer",
    "TapOutcome",
    "TapRecord",
    "TouchDispatcher",
    "VisibleLayer",
    "WINDOW_LAYERS",
    "Window",
    "coverage",
    "effective_content",
    "visible_stack",
    "WindowFlags",
    "WindowType",
    "layer_of",
]
