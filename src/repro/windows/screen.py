"""The screen: the z-ordered set of windows currently displayed."""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional

from .geometry import Point
from .types import WindowType
from .window import Window


class Screen:
    """Tracks on-screen windows and answers hit-testing queries.

    Ties in z-order (same layer) are broken by insertion order: a window
    added later is above an earlier one on the same layer, matching
    Android's behaviour for repeated ``addView`` calls from one app.
    """

    def __init__(self, width_px: int, height_px: int) -> None:
        if width_px <= 0 or height_px <= 0:
            raise ValueError(f"invalid screen size {width_px}x{height_px}")
        self.width_px = width_px
        self.height_px = height_px
        self._windows: List[Window] = []
        self._add_counter = 0
        self._add_order = {}

    def reset(self) -> None:
        """Clear every window, as a freshly built screen of this size."""
        self._windows.clear()
        self._add_counter = 0
        self._add_order.clear()

    # ------------------------------------------------------------------
    # Window management
    # ------------------------------------------------------------------
    def add(self, window: Window, time: float) -> None:
        if window.on_screen:
            raise ValueError(f"window {window.label!r} is already on screen")
        window.on_screen = True
        window.added_at = time
        window.removed_at = None
        self._add_counter += 1
        self._add_order[window.window_id] = self._add_counter
        self._windows.append(window)

    def remove(self, window: Window, time: float) -> None:
        if not window.on_screen:
            raise ValueError(f"window {window.label!r} is not on screen")
        window.on_screen = False
        window.removed_at = time
        self._windows.remove(window)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def windows(self) -> List[Window]:
        """All on-screen windows, bottom to top."""
        return sorted(
            self._windows, key=lambda w: (w.layer, self._add_order[w.window_id])
        )

    def windows_of(
        self, owner: str, window_type: Optional[WindowType] = None
    ) -> List[Window]:
        result = [w for w in self._windows if w.owner == owner]
        if window_type is not None:
            result = [w for w in result if w.window_type == window_type]
        return result

    def has_overlay_of(self, owner: str) -> bool:
        """Is any TYPE_APPLICATION_OVERLAY window of ``owner`` showing?

        This is exactly the check System Server performs after removing an
        overlay to decide whether the notification alert should stay
        (paper Section III-C Step 2)."""
        return bool(self.windows_of(owner, WindowType.APPLICATION_OVERLAY))

    def windows_at(self, point: Point) -> List[Window]:
        """On-screen windows containing ``point``, top to bottom."""
        return [w for w in reversed(self.windows) if w.contains(point)]

    def topmost_touchable_at(self, point: Point) -> Optional[Window]:
        """The window that would receive a touch at ``point``.

        Walks down the z-order skipping windows that never receive touches
        (toasts, status bar) and windows with FLAG_NOT_TOUCHABLE, through
        which touch events pass (paper Section II-A1)."""
        for window in self.windows_at(point):
            if window.touchable:
                return window
        return None

    def visible_windows_at(
        self, point: Point, predicate: Optional[Callable[[Window], bool]] = None
    ) -> Iterable[Window]:
        for window in self.windows_at(point):
            if predicate is None or predicate(window):
                yield window
