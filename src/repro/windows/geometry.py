"""Screen geometry primitives."""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class Point:
    """A screen coordinate in pixels."""

    x: float
    y: float

    def distance_to(self, other: "Point") -> float:
        return math.hypot(self.x - other.x, self.y - other.y)

    def offset(self, dx: float, dy: float) -> "Point":
        return Point(self.x + dx, self.y + dy)


@dataclass(frozen=True)
class Rect:
    """An axis-aligned rectangle: [left, right) x [top, bottom)."""

    left: float
    top: float
    right: float
    bottom: float

    def __post_init__(self) -> None:
        if self.right < self.left:
            raise ValueError(f"right {self.right} < left {self.left}")
        if self.bottom < self.top:
            raise ValueError(f"bottom {self.bottom} < top {self.top}")

    @property
    def width(self) -> float:
        return self.right - self.left

    @property
    def height(self) -> float:
        return self.bottom - self.top

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def center(self) -> Point:
        return Point((self.left + self.right) / 2.0, (self.top + self.bottom) / 2.0)

    def contains(self, point: Point) -> bool:
        return self.left <= point.x < self.right and self.top <= point.y < self.bottom

    def intersects(self, other: "Rect") -> bool:
        return not (
            other.left >= self.right
            or other.right <= self.left
            or other.top >= self.bottom
            or other.bottom <= self.top
        )

    def intersection(self, other: "Rect") -> "Rect":
        if not self.intersects(other):
            return Rect(self.left, self.top, self.left, self.top)
        return Rect(
            max(self.left, other.left),
            max(self.top, other.top),
            min(self.right, other.right),
            min(self.bottom, other.bottom),
        )

    def inset(self, dx: float, dy: float) -> "Rect":
        return Rect(self.left + dx, self.top + dy, self.right - dx, self.bottom - dy)

    def translated(self, dx: float, dy: float) -> "Rect":
        return Rect(self.left + dx, self.top + dy, self.right + dx, self.bottom + dy)
