"""The Window object: a rectangular on-screen area owned by one app."""

from __future__ import annotations

import itertools
from typing import Any, Callable, Optional

from .geometry import Point, Rect
from .types import NEVER_TOUCHABLE_TYPES, WindowFlags, WindowType, layer_of

_window_ids = itertools.count(1)

TouchCallback = Callable[["Window", Point, float], None]


def reset_window_ids() -> None:
    """Restart the window id allocator.

    Window ids are process-wide debug labels; the experiment runner resets
    them before each experiment so results never encode how many windows
    earlier experiments happened to create.
    """
    global _window_ids
    _window_ids = itertools.count(1)


class Window:
    """One window as tracked by the Window Manager Service.

    A window in Android "corresponds to a rectangular area on the screen,
    and is a basic class for constructing the user interface, in charge of
    drawing and event handling" (paper Section II-A2). The simulation keeps
    the drawing side abstract (``content`` + ``alpha``) and models event
    handling exactly (``touchable``, ``on_touch``).
    """

    def __init__(
        self,
        owner: str,
        window_type: WindowType,
        rect: Rect,
        flags: WindowFlags = WindowFlags.NONE,
        content: Any = None,
        alpha: float = 1.0,
        on_touch: Optional[TouchCallback] = None,
        label: str = "",
    ) -> None:
        if not 0.0 <= alpha <= 1.0:
            raise ValueError(f"alpha must be in [0, 1], got {alpha}")
        self.window_id = next(_window_ids)
        self.owner = owner
        self.window_type = window_type
        self.rect = rect
        self.flags = flags
        self.content = content
        self.alpha = alpha
        self.on_touch = on_touch
        self.label = label or f"{owner}:{window_type.value}:{self.window_id}"
        #: Set by the screen when the window is added/removed.
        self.on_screen = False
        self.added_at: Optional[float] = None
        self.removed_at: Optional[float] = None
        #: Count of touch events delivered to this window.
        self.touches_received = 0

    # ------------------------------------------------------------------
    @property
    def layer(self) -> int:
        return layer_of(self.window_type)

    @property
    def touchable(self) -> bool:
        """Whether this window intercepts touches at all."""
        if self.window_type in NEVER_TOUCHABLE_TYPES:
            return False
        return not bool(self.flags & WindowFlags.NOT_TOUCHABLE)

    @property
    def transparent(self) -> bool:
        return bool(self.flags & WindowFlags.TRANSPARENT) or self.alpha < 1.0

    def contains(self, point: Point) -> bool:
        return self.rect.contains(point)

    def deliver_touch(self, point: Point, time: float) -> None:
        """Deliver one touch-down to this window's handler."""
        self.touches_received += 1
        if self.on_touch is not None:
            self.on_touch(self, point, time)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "on-screen" if self.on_screen else "off-screen"
        return f"Window({self.label!r}, layer={self.layer}, {state})"
