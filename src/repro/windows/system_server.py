"""System Server: the Window-Manager side of the simulated Android system.

This process implements the behaviours from the paper's Fig. 3 sequence
chart:

* ``addView``: arriving from an app's main thread after ``Tam``, it takes
  ``Tas`` to create the window and put it on screen; for overlay windows it
  then notifies System UI (latency ``Tn``) to show the overlay-presence
  alert — built-in defense (ii) of Section II-A2.
* ``removeView``: arriving after ``Trm``, the window is removed *instantly*;
  System Server then checks whether the app still has an overlay in the
  foreground, and only if not notifies System UI to remove the alert.

The alert-removal path is pluggable (``overlay_alert_policy``) because that
is precisely where the paper's enhanced-notification defense intervenes
(Section VII-B): delaying the removal notification by ``t`` ms defeats the
draw-and-destroy overlay attack.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Set

from ..binder.router import BinderRouter
from ..binder.transaction import BinderTransaction
from ..devices.profiles import DeviceProfile
from ..sim.process import SimProcess
from ..sim.simulation import Simulation
from .permissions import Permission, PermissionManager
from .screen import Screen
from .types import PRIVILEGED_OVERLAY_TYPES, WindowType
from .window import Window

#: Binder receiver name for System Server.
SYSTEM_SERVER = "system_server"
#: Binder receiver name for System UI.
SYSTEM_UI = "system_ui"


class OverlayAlertPolicy:
    """Default policy: notify System UI immediately on show/hide."""

    def __init__(self, server: "SystemServer") -> None:
        self._server = server

    def on_overlay_shown(self, owner: str) -> None:
        self._server.notify_system_ui_show(owner)

    def on_all_overlays_removed(self, owner: str) -> None:
        self._server.notify_system_ui_hide(owner)


class SystemServer(SimProcess):
    """Simulated System Server (window management slice)."""

    def __init__(
        self,
        simulation: Simulation,
        router: BinderRouter,
        screen: Screen,
        permissions: PermissionManager,
        profile: DeviceProfile,
        name: str = SYSTEM_SERVER,
    ) -> None:
        super().__init__(simulation, name)
        self._router = router
        self._screen = screen
        self._permissions = permissions
        self._profile = profile
        self._protected_apps: Set[str] = set()
        self._foreground_app: Optional[str] = None
        self._rejected_overlays = 0
        self._windows_created = 0
        self._pending_creations: Dict[int, object] = {}
        #: Windows whose removeView was delivered before their addView
        #: (possible when Trm jitters below Tam): the pending removal
        #: tombstone makes the late add a no-op.
        self._removal_tombstones: Set[int] = set()
        #: Per-app overlay-alert notifications not yet dispatched to System
        #: UI (the dispatch is delayed by Tn — on Android 10/11 dominated
        #: by the ANA initialization delay). A hide arriving while the show
        #: is still pending cancels it before System UI ever hears of it.
        self._pending_show_notifications: Dict[str, object] = {}
        self._notifications_cancelled_before_post = 0
        #: FIFO channel key for messages to System UI (a hide must never
        #: overtake its show). The router clamps delivery per key after all
        #: latency — including fault jitter — is applied.
        self._ui_fifo_key = f"{name}->{SYSTEM_UI}"
        self.overlay_alert_policy: OverlayAlertPolicy = OverlayAlertPolicy(self)
        #: Optional callback fired whenever an app is flagged malicious by a
        #: defense (the IPC detector uses this to "terminate" the app).
        self.on_app_terminated: Optional[Callable[[str], None]] = None
        self._terminated_apps: Set[str] = set()
        router.register_many(
            name,
            {
                "addView": self._handle_add_view,
                "removeView": self._handle_remove_view,
            },
        )

    def rearm(self) -> None:
        """Reset to boot state for stack reuse.

        Besides the bookkeeping, this restores the two pluggable points a
        trial may have replaced: ``overlay_alert_policy`` (swapped by the
        enhanced-notification defense) and ``on_app_terminated`` (set by
        the IPC detector), and re-registers the Binder handlers the
        router's rearm dropped.
        """
        super().rearm()
        self._protected_apps.clear()
        self._foreground_app = None
        self._rejected_overlays = 0
        self._windows_created = 0
        self._pending_creations.clear()
        self._removal_tombstones.clear()
        self._pending_show_notifications.clear()
        self._notifications_cancelled_before_post = 0
        self.overlay_alert_policy = OverlayAlertPolicy(self)
        self.on_app_terminated = None
        self._terminated_apps.clear()
        self._router.register_many(
            self.name,
            {
                "addView": self._handle_add_view,
                "removeView": self._handle_remove_view,
            },
        )

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def screen(self) -> Screen:
        return self._screen

    @property
    def router(self) -> BinderRouter:
        return self._router

    @property
    def profile(self) -> DeviceProfile:
        return self._profile

    @property
    def permissions(self) -> PermissionManager:
        return self._permissions

    @property
    def rejected_overlays(self) -> int:
        return self._rejected_overlays

    @property
    def windows_created(self) -> int:
        return self._windows_created

    @property
    def terminated_apps(self) -> Set[str]:
        return set(self._terminated_apps)

    # ------------------------------------------------------------------
    # Foreground / protected apps (built-in defense (iii))
    # ------------------------------------------------------------------
    def set_foreground_app(self, app: Optional[str]) -> None:
        self._foreground_app = app

    @property
    def foreground_app(self) -> Optional[str]:
        return self._foreground_app

    def protect_app(self, app: str) -> None:
        """Mark an app (system Settings, the installer) as un-coverable:
        Android >= 8 prevents any overlay from covering it (Section
        II-A2)."""
        self._protected_apps.add(app)

    # ------------------------------------------------------------------
    # Binder entry points
    # ------------------------------------------------------------------
    def _handle_add_view(self, txn: BinderTransaction) -> None:
        window: Window = txn.payload["window"]
        owner = txn.sender
        if owner in self._terminated_apps:
            self.trace("wms.add_rejected", owner=owner, reason="terminated")
            self._rejected_overlays += 1
            return
        if window.on_screen or window.window_id in self._pending_creations:
            self.trace("wms.add_duplicate", owner=owner, label=window.label)
            return
        if window.window_id in self._removal_tombstones:
            self._removal_tombstones.discard(window.window_id)
            self.trace("wms.add_after_remove", owner=owner, label=window.label)
            return
        if window.window_type in PRIVILEGED_OVERLAY_TYPES:
            if not self._permissions.is_granted(owner, Permission.SYSTEM_ALERT_WINDOW):
                self.trace("wms.add_rejected", owner=owner, reason="permission")
                self._rejected_overlays += 1
                return
            if self._foreground_app in self._protected_apps:
                self.trace(
                    "wms.add_rejected", owner=owner, reason="protected_foreground"
                )
                self._rejected_overlays += 1
                return
        tas = self._profile.tas.sample(self.rng)
        self.trace("wms.creating_window", owner=owner, label=window.label,
                   tas_ms=round(tas, 4))

        def finish_creation() -> None:
            self._pending_creations.pop(window.window_id, None)
            if owner in self._terminated_apps:
                return
            self._screen.add(window, self.now)
            self._windows_created += 1
            self.trace("wms.window_added", owner=owner, label=window.label)
            if window.window_type is WindowType.APPLICATION_OVERLAY:
                if self._profile.android_version.overlay_alert:
                    self.overlay_alert_policy.on_overlay_shown(owner)

        handle = self.schedule(tas, finish_creation, name="create-window")
        self._pending_creations[window.window_id] = handle

    def _handle_remove_view(self, txn: BinderTransaction) -> None:
        window: Window = txn.payload["window"]
        owner = txn.sender
        pending = self._pending_creations.pop(window.window_id, None)
        if pending is not None:
            # Remove raced ahead of a still-pending creation: abort the
            # creation and treat the window as gone.
            pending.cancel_if_pending()
            self.trace("wms.creation_cancelled", owner=owner, label=window.label)
            if window.window_type is WindowType.APPLICATION_OVERLAY:
                if not self._screen.has_overlay_of(owner):
                    if self._profile.android_version.overlay_alert:
                        self.overlay_alert_policy.on_all_overlays_removed(owner)
            return
        if not window.on_screen:
            # The remove overtook the add in transit: leave a tombstone so
            # the late-arriving add does not resurrect the window.
            self._removal_tombstones.add(window.window_id)
            self.trace("wms.remove_before_add", owner=owner, label=window.label)
            return
        self._screen.remove(window, self.now)
        self.trace("wms.window_removed", owner=owner, label=window.label)
        if window.window_type is WindowType.APPLICATION_OVERLAY:
            if not self._screen.has_overlay_of(owner):
                if self._profile.android_version.overlay_alert:
                    self.overlay_alert_policy.on_all_overlays_removed(owner)

    # ------------------------------------------------------------------
    # Direct (same-process) window operations, used by the toast service
    # ------------------------------------------------------------------
    def add_window_direct(
        self, window: Window, on_added: Optional[Callable[[], None]] = None
    ) -> None:
        """Create and show a window from inside System Server (no Binder
        hop, but window creation still costs ``Tas``)."""
        tas = self._profile.tas.sample(self.rng)

        def finish() -> None:
            self._screen.add(window, self.now)
            self._windows_created += 1
            self.trace("wms.window_added", owner=window.owner, label=window.label)
            if on_added is not None:
                on_added()

        self.schedule(tas, finish, name="create-window-direct")

    def remove_window_direct(self, window: Window) -> None:
        if window.on_screen:
            self._screen.remove(window, self.now)
            self.trace("wms.window_removed", owner=window.owner, label=window.label)

    # ------------------------------------------------------------------
    # System UI notification plumbing
    # ------------------------------------------------------------------
    def notify_system_ui_show(self, owner: str) -> None:
        """Queue the overlay-presence alert for System UI.

        The notification spends ``Tn`` inside System Server before dispatch
        (on Android 10/11 this includes the intentional 100/200 ms ANA
        initialization delay the attack benefits from, Section VI-B); the
        Binder hop itself is fast. Ordering with the hide path is preserved
        because both run through this service.
        """
        if owner in self._pending_show_notifications:
            # An alert for this app is already on its way to System UI; a
            # further overlay does not restart the dispatch delay.
            return
        tn = self._profile.tn.sample(self.rng)

        def dispatch() -> None:
            self._pending_show_notifications.pop(owner, None)
            self._transact_system_ui("notifyOverlayShown", owner)

        handle = self.schedule(tn, dispatch, name=f"notify-show:{owner}")
        self._pending_show_notifications[owner] = handle

    def notify_system_ui_hide(self, owner: str) -> None:
        pending = self._pending_show_notifications.pop(owner, None)
        if pending is not None:
            # The alert was never posted: cancel it silently. This is the
            # common case during a well-timed draw-and-destroy attack.
            pending.cancel_if_pending()
            self._notifications_cancelled_before_post += 1
            self.trace("wms.notification_cancelled_before_post", owner=owner)
            return
        self._transact_system_ui("notifyOverlayHidden", owner)

    def _transact_system_ui(self, method: str, owner: str) -> None:
        latency = self._profile.tn_remove.sample(self.rng)
        self._router.transact(
            sender=self.name,
            receiver=SYSTEM_UI,
            method=method,
            payload={"app": owner},
            latency_ms=latency,
            fifo_key=self._ui_fifo_key,
        )

    @property
    def notifications_cancelled_before_post(self) -> int:
        return self._notifications_cancelled_before_post

    # ------------------------------------------------------------------
    # Defense support
    # ------------------------------------------------------------------
    def terminate_app(self, app: str) -> None:
        """Kill an app flagged by a defense: its windows are torn down and
        further addView calls are rejected."""
        self._terminated_apps.add(app)
        for window in list(self._screen.windows_of(app)):
            self._screen.remove(window, self.now)
        if self._profile.android_version.overlay_alert:
            self.overlay_alert_policy.on_all_overlays_removed(app)
        self.trace("wms.app_terminated", app=app)
        if self.on_app_terminated is not None:
            self.on_app_terminated(app)

    def has_overlay_of(self, owner: str) -> bool:
        return self._screen.has_overlay_of(owner)
