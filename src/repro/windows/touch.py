"""Touch input dispatch.

Semantics (both matter to the paper's two measurement styles):

* **Delivery at finger-down** — the topmost touchable window at the moment
  of ``ACTION_DOWN`` receives the touch callback (with coordinates)
  immediately. A UI-intercepting overlay therefore captures a tap's
  coordinates the instant it lands, which is all the password-stealing
  attack needs.
* **Gesture commitment** — the full gesture only *commits* if the target
  window survives a short input-pipeline window after down. If a
  draw-and-destroy cycle removes the overlay underneath the finger first,
  the event stream is cancelled (``ACTION_CANCEL``): the character never
  materializes anywhere. The paper's Fig. 7 testing app counts committed
  characters, which is why its capture rates sit below the pure
  gap-probability.

A tap landing during the mistouch gap ``Tmis`` — after the old overlay is
gone, before the new one is up — is delivered to whatever sits beneath
(usually the real keyboard), not to the attacker.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from ..sim.process import SimProcess
from ..sim.simulation import Simulation
from .geometry import Point
from .screen import Screen
from .window import Window


class TapOutcome(enum.Enum):
    """Terminal state of one tap gesture."""

    PENDING = "pending"
    DELIVERED = "delivered"
    CANCELLED_WINDOW_REMOVED = "cancelled_window_removed"
    NO_TARGET = "no_target"


@dataclass
class TapRecord:
    """The dispatcher's account of one tap."""

    down_time: float
    point: Point
    outcome: TapOutcome = TapOutcome.PENDING
    target_label: Optional[str] = None
    target_owner: Optional[str] = None
    committed_at: Optional[float] = None
    meta: dict = field(default_factory=dict)

    @property
    def committed(self) -> bool:
        return self.outcome is TapOutcome.DELIVERED


TapCallback = Callable[[TapRecord], None]

#: Default gesture commit latency (ms): time between finger-down and the
#: input pipeline durably binding the event stream to its target window.
DEFAULT_COMMIT_MS = 12.0


class TouchDispatcher(SimProcess):
    """Routes tap gestures to windows through the simulated input pipeline."""

    def __init__(
        self,
        simulation: Simulation,
        screen: Screen,
        name: str = "input",
        gesture_teardown_ms: float = 0.0,
    ) -> None:
        super().__init__(simulation, name)
        if gesture_teardown_ms < 0:
            raise ValueError(
                f"gesture_teardown_ms must be >= 0, got {gesture_teardown_ms}"
            )
        self._screen = screen
        self._taps: List[TapRecord] = []
        #: Version-dependent extra window (ms) during which removing the
        #: target window still cancels the gesture (longer on Android
        #: 10/11 after the per-window input channel rework).
        self.gesture_teardown_ms = float(gesture_teardown_ms)

    def rearm(self) -> None:
        """Forget past taps; ``gesture_teardown_ms`` is profile-derived
        and survives (stacks are only reused for the same device)."""
        super().rearm()
        self._taps.clear()

    @property
    def taps(self) -> List[TapRecord]:
        return list(self._taps)

    @property
    def committed_count(self) -> int:
        return sum(1 for t in self._taps if t.committed)

    def tap(
        self,
        point: Point,
        commit_ms: float = DEFAULT_COMMIT_MS,
        on_result: Optional[TapCallback] = None,
    ) -> TapRecord:
        """Perform one tap at ``point``.

        The hit window's ``on_touch`` fires immediately (ACTION_DOWN); the
        returned record resolves to DELIVERED or CANCELLED after
        ``commit_ms``, and ``on_result`` fires at that point.
        """
        if commit_ms < 0:
            raise ValueError(f"commit_ms must be >= 0, got {commit_ms}")
        record = TapRecord(down_time=self.now, point=point)
        self._taps.append(record)
        target = self._screen.topmost_touchable_at(point)
        if target is None:
            record.outcome = TapOutcome.NO_TARGET
            self.trace("touch.no_target", x=round(point.x, 1), y=round(point.y, 1))
            if on_result is not None:
                on_result(record)
            return record
        record.target_label = target.label
        record.target_owner = target.owner
        target.deliver_touch(point, record.down_time)
        self.trace("touch.down", target=target.label,
                   x=round(point.x, 1), y=round(point.y, 1))

        def commit(window: Window = target) -> None:
            if not window.on_screen:
                record.outcome = TapOutcome.CANCELLED_WINDOW_REMOVED
                self.trace("touch.cancelled", target=window.label)
            else:
                record.outcome = TapOutcome.DELIVERED
                record.committed_at = self.now
            if on_result is not None:
                on_result(record)

        self.schedule(commit_ms + self.gesture_teardown_ms, commit,
                      name="tap-commit")
        return record
