"""The 30 evaluation smartphones (paper Tables I and II).

Android versions follow Table II where Tables I and II disagree (Table I
lists the Pixel 2 XL and Pixel 4 under Android 9 while Table II measures
them on Android 10; the Table II assignment is consistent with the measured
bounds, so we use it and note the discrepancy in EXPERIMENTS.md).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .._registry import suggest_label
from .android_version import (
    ANDROID_8,
    ANDROID_9,
    ANDROID_9_1,
    ANDROID_10,
    ANDROID_11,
    AndroidVersion,
)
from .profiles import DeviceProfile, calibrated_profile

# (manufacturer, model, version, Table II upper bound of D for Λ1 in ms)
_TABLE_II_ROWS = [
    ("Samsung", "s8", ANDROID_8, 60.0),
    ("Samsung", "SMG9", ANDROID_9, 240.0),
    ("Google", "nexus6p", ANDROID_8, 150.0),
    ("Google", "pixel 2xl", ANDROID_10, 225.0),
    ("Google", "pixel 4", ANDROID_10, 185.0),
    ("Google", "pixel 2", ANDROID_11, 330.0),
    ("Xiaomi", "mi5", ANDROID_8, 125.0),
    ("Xiaomi", "mix 2s", ANDROID_9, 155.0),
    ("Xiaomi", "mi8", ANDROID_9, 215.0),
    ("Xiaomi", "mi6", ANDROID_9, 215.0),
    ("Xiaomi", "Redmi", ANDROID_10, 395.0),
    ("Xiaomi", "mi8", ANDROID_10, 300.0),
    ("Xiaomi", "mix3", ANDROID_10, 220.0),
    ("Xiaomi", "mi9", ANDROID_10, 210.0),
    ("Xiaomi", "mi10", ANDROID_11, 290.0),
    ("Huawei", "mate20", ANDROID_9, 200.0),
    ("Huawei", "EML-AL00", ANDROID_9, 365.0),
    ("Huawei", "PAR-AL00", ANDROID_9, 130.0),
    ("Huawei", "nova3", ANDROID_9_1, 285.0),
    ("Huawei", "mate20 x", ANDROID_10, 260.0),
    ("Huawei", "ELS-AN00", ANDROID_10, 220.0),
    ("Huawei", "ELE-AL00", ANDROID_10, 220.0),
    ("Huawei", "OXF-AN00", ANDROID_10, 240.0),
    ("Huawei", "HLK-AL00", ANDROID_10, 215.0),
    ("Oppo", "PMEM00", ANDROID_9, 135.0),
    ("Vivo", "x21iA", ANDROID_9, 85.0),
    ("Vivo", "v1816A", ANDROID_9, 95.0),
    ("Vivo", "v1813BA", ANDROID_9, 215.0),
    ("Vivo", "v1813A", ANDROID_9, 85.0),
    ("Vivo", "V1986A", ANDROID_10, 80.0),
]


def _build_devices() -> List[DeviceProfile]:
    return [
        calibrated_profile(manufacturer, model, version, bound)
        for manufacturer, model, version, bound in _TABLE_II_ROWS
    ]


#: All 30 calibrated evaluation devices, in Table II order.
DEVICES: List[DeviceProfile] = _build_devices()


def device(model: str, version_label: Optional[str] = None) -> DeviceProfile:
    """Look up a device by model name (and version label when ambiguous,
    e.g. the Xiaomi mi8 exists on both Android 9 and Android 10)."""
    matches = [d for d in DEVICES if d.model == model]
    if not matches:
        models = sorted({d.model for d in DEVICES})
        raise KeyError(
            f"no device model {model!r}; known models: {', '.join(models)}"
            f"{suggest_label(model, models)}")
    if version_label is not None:
        labels = sorted({d.android_version.label for d in matches})
        matches = [d for d in matches if d.android_version.label == version_label]
        if not matches:
            raise KeyError(
                f"device {model!r} does not run Android {version_label!r}; "
                f"available versions: {', '.join(labels)}"
            )
    if len(matches) > 1:
        labels = [d.android_version.label for d in matches]
        raise KeyError(
            f"device {model!r} is ambiguous across Android versions {labels}; "
            "pass version_label"
        )
    return matches[0]


def devices_by_version() -> Dict[str, List[DeviceProfile]]:
    """Devices grouped by major Android version ('8', '9', '10', '11').

    Android 9.1 is grouped with 9, matching the paper's Fig. 8 series
    ("Android 9.x")."""
    groups: Dict[str, List[DeviceProfile]] = {}
    for profile in DEVICES:
        groups.setdefault(str(profile.android_version.major), []).append(profile)
    return groups


def reference_device() -> DeviceProfile:
    """The paper's demo device: Google Pixel 2 on Android 11."""
    return device("pixel 2")


def version_of(label: str) -> AndroidVersion:
    for profile in DEVICES:
        if profile.android_version.label == label:
            return profile.android_version
    labels = sorted({d.android_version.label for d in DEVICES}, key=float)
    raise KeyError(
        f"no evaluation device runs Android {label!r}; "
        f"evaluated versions: {', '.join(labels)}"
        f"{suggest_label(label, labels)}"
    )
