"""Device substrate: Android version behaviours and the 30 evaluation
smartphones of the paper's Tables I/II, with timing profiles calibrated so
the simulated Λ1 boundary reproduces Table II."""

from .android_version import (
    ALL_VERSIONS,
    ANDROID_8,
    ANDROID_9,
    ANDROID_9_1,
    ANDROID_10,
    ANDROID_11,
    AndroidVersion,
    version_by_label,
)
from .profiles import (
    DEFAULT_NOTIFICATION_VIEW_HEIGHT_PX,
    DeviceProfile,
    calibrated_profile,
)
from .registry import (
    DEVICES,
    device,
    devices_by_version,
    reference_device,
)

__all__ = [
    "ALL_VERSIONS",
    "ANDROID_8",
    "ANDROID_9",
    "ANDROID_9_1",
    "ANDROID_10",
    "ANDROID_11",
    "AndroidVersion",
    "DEFAULT_NOTIFICATION_VIEW_HEIGHT_PX",
    "DEVICES",
    "DeviceProfile",
    "calibrated_profile",
    "device",
    "devices_by_version",
    "reference_device",
    "version_by_label",
]
