"""Device timing profiles.

A :class:`DeviceProfile` is the simulation's stand-in for one physical
smartphone from the paper's Table I: it carries the screen geometry, the
display refresh interval, and the latency distributions of every IPC and
rendering step in Figures 3 and 5 of the paper.

Calibration
-----------
The paper measures, per phone, the largest attacking window ``D`` that still
yields outcome Λ1 (no notification pixel ever visible) — Table II. In the
message-sequence model the alert first becomes visible at

    ``t_add + Tam + Tas + Tn + hop + Tv + Ta``

(`Ta` = first visible animation frame, ``hop`` the fast Binder transit to
System UI) and is cancelled by the next cycle at

    ``t_add + D + Trm + hop``.

Suppression therefore holds while ``D < Tmis + Tn + Tv + Ta`` with
``Tmis = Tam + Tas - Trm`` — the paper's Eq. (3) plus the small ``Tmis``
correction it folds away. Given a published bound ``B`` we fit the
device's total notification-dispatch latency

    ``E[Tn] = B - E[Tmis] - E[Tv] - Ta``

so the simulated Λ1 boundary lands on the published value. ``Tn`` is the
*total* dispatch latency including any Android-Notification-Assistant delay;
the version's nominal ANA delay (100 ms on 10, 200 ms on 11) is the reason
the fitted totals are systematically larger on Android 10/11, exactly as the
paper observes.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..animation.animator import DEFAULT_REFRESH_INTERVAL
from ..animation.interpolators import FastOutSlowInInterpolator
from ..animation.animator import ANIMATION_DURATION_STANDARD, first_visible_frame_time
from ..binder.latency import LatencySpec
from .android_version import AndroidVersion

#: Default notification view height (px). The paper's example device
#: (Google Nexus 6P) has a 72 px alert view (Section III-B).
DEFAULT_NOTIFICATION_VIEW_HEIGHT_PX = 72

#: Default notification view construction time E[Tv] (ms).
DEFAULT_TV = LatencySpec(mean_ms=10.0, std_ms=1.0, min_ms=3.0)

#: Default System Server -> System UI latency for *removing* the alert.
DEFAULT_TN_REMOVE = LatencySpec(mean_ms=1.0, std_ms=0.2, min_ms=0.2)


@dataclass(frozen=True)
class DeviceProfile:
    """Timing model of one smartphone."""

    manufacturer: str
    model: str
    android_version: AndroidVersion
    #: Published Table II upper boundary of D for Λ1 (ms); the calibration
    #: target, kept for paper-vs-measured comparisons.
    published_upper_bound_d: float
    #: Total System Server -> System UI notification dispatch latency (Tn),
    #: including any ANA delay.
    tn: LatencySpec
    tam: LatencySpec
    trm: LatencySpec
    tas: LatencySpec
    tv: LatencySpec = DEFAULT_TV
    tn_remove: LatencySpec = DEFAULT_TN_REMOVE
    notification_view_height_px: int = DEFAULT_NOTIFICATION_VIEW_HEIGHT_PX
    refresh_interval_ms: float = DEFAULT_REFRESH_INTERVAL
    screen_width_px: int = 1080
    screen_height_px: int = 2160
    #: Multiplier applied to IPC latencies to model background load
    #: (Section VI-B "Impact of the load": near 1.0 regardless of apps).
    load_factor: float = 1.0
    extra: dict = field(default_factory=dict, compare=False)

    # ------------------------------------------------------------------
    @property
    def key(self) -> str:
        """Stable identifier, e.g. ``"Xiaomi mi8 (Android 10)"``."""
        return f"{self.manufacturer} {self.model} (Android {self.android_version.label})"

    @property
    def mean_tmis_ms(self) -> float:
        """Expected mistouch gap, floored at zero."""
        return max(0.0, self.tas.mean_ms + self.tam.mean_ms - self.trm.mean_ms)

    @property
    def first_visible_frame_ms(self) -> float:
        """``Ta``: ms from animation start to the first >= 1 px frame."""
        return first_visible_frame_time(
            FastOutSlowInInterpolator(),
            ANIMATION_DURATION_STANDARD,
            self.refresh_interval_ms,
            self.notification_view_height_px,
        )

    @property
    def predicted_upper_bound_d(self) -> float:
        """Analytic Λ1 boundary implied by the latency means (see module
        docstring); equals ``published_upper_bound_d`` after calibration."""
        return (
            self.mean_tmis_ms
            + self.tn.mean_ms
            + self.tv.mean_ms
            + self.first_visible_frame_ms
        )

    def with_load(self, background_apps: int) -> "DeviceProfile":
        """Profile with background load applied.

        The paper finds the influence of background load on the Λ1 boundary
        is negligible (Section VI-B); the default model therefore perturbs
        IPC latencies by well under one animation frame per extra app.
        """
        if background_apps < 0:
            raise ValueError(f"background_apps must be >= 0, got {background_apps}")
        factor = 1.0 + 0.004 * background_apps
        return replace(
            self,
            load_factor=factor,
            tam=self.tam.scaled(factor),
            trm=self.trm.scaled(factor),
            tas=self.tas.scaled(factor),
            tn=self.tn.scaled(factor),
        )


def calibrated_profile(
    manufacturer: str,
    model: str,
    version: AndroidVersion,
    published_upper_bound_d: float,
    tn_std_ms: float = 2.0,
    **overrides,
) -> DeviceProfile:
    """Build a profile whose simulated Λ1 boundary matches Table II.

    The per-version ``Tam``/``Trm``/``Tas`` distributions come from the
    :class:`AndroidVersion`; only ``Tn`` is fitted per device.
    """
    if published_upper_bound_d <= 0:
        raise ValueError(
            f"published upper bound must be positive, got {published_upper_bound_d}"
        )
    tv = overrides.pop("tv", DEFAULT_TV)
    tn_remove = overrides.pop("tn_remove", DEFAULT_TN_REMOVE)
    height = overrides.pop(
        "notification_view_height_px", DEFAULT_NOTIFICATION_VIEW_HEIGHT_PX
    )
    refresh = overrides.pop("refresh_interval_ms", DEFAULT_REFRESH_INTERVAL)

    ta = first_visible_frame_time(
        FastOutSlowInInterpolator(), ANIMATION_DURATION_STANDARD, refresh, height
    )
    mean_tmis = max(0.0, version.tas.mean_ms + version.tam.mean_ms - version.trm.mean_ms)
    tn_mean = published_upper_bound_d - mean_tmis - tv.mean_ms - ta
    if tn_mean < 1.0:
        # A handful of vendor builds (e.g. Vivo V1986A on Android 10, bound
        # 80 ms) dispatch faster than the nominal stack; floor Tn rather
        # than fail, accepting a slightly-too-large simulated bound.
        tn_mean = 1.0
    return DeviceProfile(
        manufacturer=manufacturer,
        model=model,
        android_version=version,
        published_upper_bound_d=published_upper_bound_d,
        tn=LatencySpec(mean_ms=tn_mean, std_ms=tn_std_ms, min_ms=max(0.5, tn_mean / 4)),
        tam=version.tam,
        trm=version.trm,
        tas=version.tas,
        tv=tv,
        tn_remove=tn_remove,
        notification_view_height_px=height,
        refresh_interval_ms=refresh,
        **overrides,
    )
