"""Android version behaviours relevant to the attacks.

The paper traces two version-dependent effects:

* **Android 10/11 notification delay** — Android 10 introduces the Android
  Notification Assistant (ANA) and intentionally delays the System Server's
  notification dispatch by 100 ms (200 ms on Android 11) to give ANA time
  to initialize. The attacker benefits: the upper boundary of the attacking
  window ``D`` grows (paper Section VI-B, Table II).
* **Android 10/11 reduced ``Trm``** — the latency for the overlay *remove*
  event to reach System Server shrinks markedly on Android 10, while
  ``Tam`` and ``Tas`` stay put. That inflates the mistouch gap
  ``Tmis = Tas + Tam - Trm`` and *lowers* the touch-event capture rate
  (paper Fig. 8).

Also encoded: the built-in defenses' availability (overlay notification
alert since 8.0, removal of ``TYPE_TOAST``, serialized toast display).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..binder.latency import LatencySpec


@dataclass(frozen=True)
class AndroidVersion:
    """Feature and timing behaviour of one Android release."""

    major: int
    label: str
    #: Nominal extra notification-dispatch delay for ANA initialization.
    nominal_ana_delay_ms: float
    #: App -> System Server latency of the overlay *add* event (Tam).
    tam: LatencySpec
    #: App -> System Server latency of the overlay *remove* event (Trm).
    trm: LatencySpec
    #: System Server overlay creation time (Tas).
    tas: LatencySpec
    #: Extra input-pipeline teardown window (ms): on top of the user's
    #: gesture-commit latency, a window removed within this many ms of a
    #: finger-down still cancels the gesture. Android 10 reworked
    #: per-window input channels, lengthening the teardown — one of the two
    #: reasons its committed-character capture rate is lower (Fig. 8).
    gesture_teardown_ms: float = 2.0
    #: Overlay-presence notification alert exists (Android >= 8).
    overlay_alert: bool = True
    #: TYPE_TOAST windows removed (Android >= 8).
    type_toast_removed: bool = True
    #: Notification manager shows toasts one at a time (Android >= 8).
    toast_serialized: bool = True

    @property
    def mean_tmis_ms(self) -> float:
        """Expected mistouch gap ``E[Tmis] = E[Tas] + E[Tam] - E[Trm]``,
        floored at zero (a negative gap means the new overlay is up before
        the old one is gone, i.e., no gap)."""
        return max(0.0, self.tas.mean_ms + self.tam.mean_ms - self.trm.mean_ms)

    def __str__(self) -> str:
        return self.label


# ---------------------------------------------------------------------------
# Release catalog. IPC latency dispersions are deliberately small: within
# one draw-and-destroy cycle the add and remove transit the same Binder
# under the same system state, so their *difference* (Tmis) varies far
# less than independent draws would suggest — and a single sign flip of
# Tmis breaks a cycle (the alert sticks), which real traces do not show.
# Tam < Trm on every release (the add event "always reaches
# System Server first", paper Section III-C). On Android 8/9 the means are
# tuned so Tmis ~= 0 ("in Android 8 and 9, Tmis approaches 0"); on 10/11 Trm
# is reduced, leaving a positive gap.
# ---------------------------------------------------------------------------

ANDROID_8 = AndroidVersion(
    major=8,
    label="8",
    nominal_ana_delay_ms=0.0,
    tam=LatencySpec(mean_ms=2.0, std_ms=0.04, min_ms=0.8),
    trm=LatencySpec(mean_ms=9.3, std_ms=0.07, min_ms=3.0),
    tas=LatencySpec(mean_ms=8.0, std_ms=0.07, min_ms=3.0),
    gesture_teardown_ms=2.0,
)

ANDROID_9 = AndroidVersion(
    major=9,
    label="9",
    nominal_ana_delay_ms=0.0,
    tam=LatencySpec(mean_ms=2.0, std_ms=0.04, min_ms=0.8),
    trm=LatencySpec(mean_ms=9.3, std_ms=0.07, min_ms=3.0),
    tas=LatencySpec(mean_ms=8.0, std_ms=0.07, min_ms=3.0),
    gesture_teardown_ms=2.0,
)

ANDROID_9_1 = AndroidVersion(
    major=9,
    label="9.1",
    nominal_ana_delay_ms=0.0,
    tam=LatencySpec(mean_ms=2.0, std_ms=0.04, min_ms=0.8),
    trm=LatencySpec(mean_ms=9.3, std_ms=0.07, min_ms=3.0),
    tas=LatencySpec(mean_ms=8.0, std_ms=0.07, min_ms=3.0),
    gesture_teardown_ms=2.0,
)

ANDROID_10 = AndroidVersion(
    major=10,
    label="10",
    nominal_ana_delay_ms=100.0,
    tam=LatencySpec(mean_ms=2.0, std_ms=0.04, min_ms=0.8),
    # Trm reduced on Android 10 -> Tmis grows to ~4 ms (Section III-D);
    # together with the longer input-pipeline teardown this lowers the
    # version's capture rate (Fig. 8).
    trm=LatencySpec(mean_ms=6.5, std_ms=0.07, min_ms=1.0),
    tas=LatencySpec(mean_ms=8.5, std_ms=0.07, min_ms=3.0),
    gesture_teardown_ms=8.0,
)

ANDROID_11 = AndroidVersion(
    major=11,
    label="11",
    nominal_ana_delay_ms=200.0,
    tam=LatencySpec(mean_ms=2.0, std_ms=0.04, min_ms=0.8),
    trm=LatencySpec(mean_ms=7.0, std_ms=0.07, min_ms=1.0),
    tas=LatencySpec(mean_ms=9.7, std_ms=0.07, min_ms=3.0),
    gesture_teardown_ms=9.0,
)

ALL_VERSIONS = (ANDROID_8, ANDROID_9, ANDROID_9_1, ANDROID_10, ANDROID_11)


def version_by_label(label: str) -> AndroidVersion:
    for version in ALL_VERSIONS:
        if version.label == label:
            return version
    known = ", ".join(v.label for v in ALL_VERSIONS)
    raise KeyError(f"unknown Android version {label!r}; known labels: {known}")
