"""Analytical timing model of the draw-and-destroy overlay attack.

Implements the closed forms of paper Section III-D:

* Eq. (1)/(2): expected total mistouch time over an attack of duration
  ``T`` with attacking window ``D`` —
  ``E(Tm) = (ceil(T/D) - 1) E(Tmis) + E(Tam) + E(Tas)``;
* Eq. (3): the upper bound on ``D`` that still suppresses the alert —
  ``D <= Tn + Tv + Ta``;

plus :class:`UpperBoundFinder`, which recovers the Table II boundary
empirically by running the simulated attack across candidate ``D`` values
and classifying the notification outcome (the in-simulation analogue of the
paper's naked-eye trials).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from ..devices.profiles import DeviceProfile
from ..systemui.outcomes import NotificationOutcome


@dataclass(frozen=True)
class MistouchEstimate:
    """Expected mistouch budget of one attack configuration."""

    total_attack_ms: float
    attacking_window_ms: float
    cycles: int
    expected_mistouch_ms: float

    @property
    def expected_mistouch_fraction(self) -> float:
        if self.total_attack_ms <= 0:
            return 0.0
        return min(1.0, self.expected_mistouch_ms / self.total_attack_ms)


def expected_mistouch_time(
    total_attack_ms: float,
    attacking_window_ms: float,
    mean_tmis_ms: float,
    mean_tam_ms: float,
    mean_tas_ms: float,
) -> MistouchEstimate:
    """Paper Eq. (2): expected total mistouch time.

    The first draw pays the full ``Tam + Tas`` startup (no overlay exists
    yet); each of the remaining ``n - 1`` cycles contributes one expected
    gap ``E(Tmis)``.
    """
    if total_attack_ms <= 0:
        raise ValueError(f"total_attack_ms must be positive, got {total_attack_ms}")
    if attacking_window_ms <= 0:
        raise ValueError(
            f"attacking_window_ms must be positive, got {attacking_window_ms}"
        )
    cycles = math.ceil(total_attack_ms / attacking_window_ms)
    expected = (
        max(cycles - 1, 0) * max(mean_tmis_ms, 0.0) + mean_tam_ms + mean_tas_ms
    )
    return MistouchEstimate(
        total_attack_ms=total_attack_ms,
        attacking_window_ms=attacking_window_ms,
        cycles=cycles,
        expected_mistouch_ms=expected,
    )


def expected_mistouch_for_profile(
    profile: DeviceProfile, total_attack_ms: float, attacking_window_ms: float
) -> MistouchEstimate:
    """Eq. (2) evaluated with a device profile's latency means."""
    return expected_mistouch_time(
        total_attack_ms=total_attack_ms,
        attacking_window_ms=attacking_window_ms,
        mean_tmis_ms=profile.mean_tmis_ms,
        mean_tam_ms=profile.tam.mean_ms,
        mean_tas_ms=profile.tas.mean_ms,
    )


def upper_bound_d(tn_ms: float, tv_ms: float, ta_ms: float) -> float:
    """Paper Eq. (3): ``D <= Tn + Tv + Ta``."""
    return tn_ms + tv_ms + ta_ms


def upper_bound_d_for_profile(profile: DeviceProfile) -> float:
    """Eq. (3) with the profile's means (the paper's simplified bound;
    the profile's ``predicted_upper_bound_d`` adds the small ``Tmis`` and
    removal-notify corrections)."""
    return upper_bound_d(
        profile.tn.mean_ms, profile.tv.mean_ms, profile.first_visible_frame_ms
    )


def estimate_attack_duration(password_length: int, seconds_per_key: float) -> float:
    """``T = S x L`` (Section III-D): attack duration from typing speed."""
    if password_length <= 0:
        raise ValueError(f"password_length must be positive, got {password_length}")
    if seconds_per_key <= 0:
        raise ValueError(f"seconds_per_key must be positive, got {seconds_per_key}")
    return password_length * seconds_per_key * 1000.0

# ---------------------------------------------------------------------------
# Empirical boundary search
# ---------------------------------------------------------------------------

#: Signature of a single-trial runner: (profile, D, seed) -> worst outcome.
TrialRunner = Callable[[DeviceProfile, float, int], NotificationOutcome]


@dataclass(frozen=True)
class BoundarySearchResult:
    """Outcome of an empirical Λ1-boundary search for one device."""

    profile_key: str
    measured_upper_bound_d: float
    published_upper_bound_d: float
    probed: Tuple[Tuple[float, bool], ...]

    @property
    def error_ms(self) -> float:
        return self.measured_upper_bound_d - self.published_upper_bound_d


class UpperBoundFinder:
    """Finds the largest D that keeps every trial at Λ1 on a device."""

    def __init__(
        self,
        run_trial: TrialRunner,
        trials_per_d: int = 3,
        step_ms: float = 5.0,
        base_seed: int = 0,
    ) -> None:
        if trials_per_d <= 0:
            raise ValueError(f"trials_per_d must be positive, got {trials_per_d}")
        if step_ms <= 0:
            raise ValueError(f"step_ms must be positive, got {step_ms}")
        self._run_trial = run_trial
        self._trials_per_d = trials_per_d
        self._step = step_ms
        self._base_seed = base_seed

    def _suppressed_at(self, profile: DeviceProfile, d: float) -> bool:
        for trial in range(self._trials_per_d):
            outcome = self._run_trial(profile, d, self._base_seed + trial)
            if not outcome.suppressed:
                return False
        return True

    def find(
        self,
        profile: DeviceProfile,
        d_min: float = 10.0,
        d_max: Optional[float] = None,
    ) -> BoundarySearchResult:
        """Bisect to the largest probed D with all trials at Λ1."""
        if d_max is None:
            d_max = profile.published_upper_bound_d * 2.0 + 100.0
        probed: List[Tuple[float, bool]] = []
        lo, hi = d_min, d_max
        if not self._suppressed_at(profile, lo):
            probed.append((lo, False))
            return BoundarySearchResult(
                profile_key=profile.key,
                measured_upper_bound_d=0.0,
                published_upper_bound_d=profile.published_upper_bound_d,
                probed=tuple(probed),
            )
        probed.append((lo, True))
        if self._suppressed_at(profile, hi):
            probed.append((hi, True))
            return BoundarySearchResult(
                profile_key=profile.key,
                measured_upper_bound_d=hi,
                published_upper_bound_d=profile.published_upper_bound_d,
                probed=tuple(probed),
            )
        probed.append((hi, False))
        while hi - lo > self._step:
            mid = (lo + hi) / 2.0
            suppressed = self._suppressed_at(profile, mid)
            probed.append((mid, suppressed))
            if suppressed:
                lo = mid
            else:
                hi = mid
        return BoundarySearchResult(
            profile_key=profile.key,
            measured_upper_bound_d=lo,
            published_upper_bound_d=profile.published_upper_bound_d,
            probed=tuple(probed),
        )
