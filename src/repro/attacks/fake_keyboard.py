"""The fake keyboard rendered through toasts.

Each toast's content is a :class:`FakeKeyboardFrame` naming the sub-layout
it displays. The frames use the *same* :class:`KeyboardSpec` geometry as
the real input method, so "the fake keyboard and real keyboard are aligned
and appear the same" (paper Section V). Switching subkeyboards means
enqueueing a frame with the new layout and cancelling the current toast.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..apps.keyboard import KeyboardSpec, LAYOUT_LOWER


@dataclass(frozen=True)
class FakeKeyboardFrame:
    """One rendered fake-keyboard image (the content of one toast)."""

    layout_name: str

    def __str__(self) -> str:
        return f"fake-keyboard[{self.layout_name}]"


class FakeKeyboard:
    """Tracks which sub-layout the fake keyboard currently displays."""

    def __init__(self, spec: KeyboardSpec) -> None:
        self.spec = spec
        self.current_layout = LAYOUT_LOWER
        self.switch_count = 0

    def frame(self) -> FakeKeyboardFrame:
        """The content for the next toast."""
        return FakeKeyboardFrame(layout_name=self.current_layout)

    def switch_to(self, layout_name: str) -> bool:
        """Change the displayed layout; returns True if it changed."""
        if layout_name not in self.spec.layouts:
            raise KeyError(f"unknown layout {layout_name!r}")
        if layout_name == self.current_layout:
            return False
        self.current_layout = layout_name
        self.switch_count += 1
        return True
