"""The password-stealing attack (paper Section V).

Composition of the two draw-and-destroy attacks:

* the **toast attack** renders a fake keyboard aligned over the real one,
  re-rendering it whenever a subkeyboard switch is needed;
* the **overlay attack** stacks transparent UI-intercepting overlays over
  the fake keyboard, capturing every touch coordinate;
* captured coordinates are resolved to keys by nearest-center Euclidean
  distance, with the attack tracking (and driving) the active layout.

The attack launches when the accessibility service reports focus on the
victim's password widget; for Alipay-style hardened apps it falls back to
the username-widget trigger plus the getParent() traversal of Section
VI-C1, and fills the password widget afterwards to hide the theft.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional

from ..apps.accessibility import AccessibilityBus, AccessibilityEvent, AccessibilityEventType
from ..apps.app import App
from ..apps.keyboard import (
    KEY_ABC,
    KEY_ENTER,
    KEY_SHIFT,
    KEY_SYM,
    KeyboardSpec,
)
from ..apps.victim import VictimApp
from ..apps.widgets import InputWidget
from ..stack import AndroidStack
from ..toast.toast import TOAST_LENGTH_LONG_MS
from .fake_keyboard import FakeKeyboard
from .key_inference import KeyInference
from .overlay_attack import (
    CapturedTouch,
    DrawAndDestroyOverlayAttack,
    OverlayAttackConfig,
)
from .toast_attack import DrawAndDestroyToastAttack, ToastAttackConfig

PASSWORD_MALWARE_PACKAGE = "com.example.flashlight"


class PasswordErrorType(enum.Enum):
    """Error taxonomy of paper Table III."""

    SUCCESS = "success"
    #: Derived password shorter than the entered one (a mistouch or a
    #: swallowed character).
    LENGTH_ERROR = "length_error"
    #: Same length, differs only in letter case (a missed shift press).
    CAPITALIZATION_ERROR = "capitalization_error"
    #: Same length, at least one genuinely different character
    #: (user misspelling, or a missed subkeyboard switch).
    WRONG_KEY_ERROR = "wrong_key_error"
    #: Derived longer than entered (double-registered touch); the paper
    #: does not tabulate this case separately.
    OTHER_ERROR = "other_error"


def classify_password_attempt(truth: str, derived: str) -> PasswordErrorType:
    """Classify one attack attempt per the paper's error definitions."""
    if derived == truth:
        return PasswordErrorType.SUCCESS
    if len(derived) < len(truth):
        return PasswordErrorType.LENGTH_ERROR
    if len(derived) > len(truth):
        return PasswordErrorType.OTHER_ERROR
    if derived.lower() == truth.lower():
        return PasswordErrorType.CAPITALIZATION_ERROR
    return PasswordErrorType.WRONG_KEY_ERROR


@dataclass(frozen=True)
class PasswordAttackResult:
    """What the malware walked away with."""

    derived_password: str
    launched_at: Optional[float]
    finished_at: Optional[float]
    captured_touches: int
    keyboard_switches: int
    trigger_path: str

    def classify_against(self, truth: str) -> PasswordErrorType:
        return classify_password_attempt(truth, self.derived_password)


@dataclass(kw_only=True)
class PasswordStealingConfig:
    """Parameters of the composed attack."""

    #: Attacking window for the overlay half; ``None`` selects the device's
    #: calibrated Table II optimum ("we use different upper boundaries of D
    #: for different smartphones", Section VI-C1).
    attacking_window_ms: Optional[float] = None
    toast_duration_ms: float = TOAST_LENGTH_LONG_MS
    #: Safety margin subtracted from the device optimum (ms) so latency
    #: jitter cannot push a cycle past the Λ1 boundary.
    safety_margin_ms: float = 10.0

    def resolve_d(self, published_upper_bound: float) -> float:
        if self.attacking_window_ms is not None:
            return self.attacking_window_ms
        return max(20.0, published_upper_bound - self.safety_margin_ms)


class PasswordStealingAttack(App):
    """Orchestrates toast + overlay attacks into a password theft."""

    def __init__(
        self,
        stack: AndroidStack,
        bus: AccessibilityBus,
        victim: VictimApp,
        spec: KeyboardSpec,
        config: Optional[PasswordStealingConfig] = None,
        package: str = PASSWORD_MALWARE_PACKAGE,
    ) -> None:
        super().__init__(stack, package, label="password stealing")
        self.bus = bus
        self.victim = victim
        self.spec = spec
        self.config = config or PasswordStealingConfig()
        self.fake_keyboard = FakeKeyboard(spec)
        self.inference = KeyInference(spec=spec)

        d = self.config.resolve_d(stack.profile.published_upper_bound_d)
        self.overlay_attack = DrawAndDestroyOverlayAttack(
            stack,
            OverlayAttackConfig(attacking_window_ms=d, overlay_rect=spec.rect),
            package=package,
            on_captured=self._on_captured,
            process_name=f"{package}#overlay",
        )
        self.toast_attack = DrawAndDestroyToastAttack(
            stack,
            ToastAttackConfig(rect=spec.rect, duration_ms=self.config.toast_duration_ms),
            content_provider=self.fake_keyboard.frame,
            package=package,
            process_name=f"{package}#toast",
        )

        self._armed = False
        self._username_sibling_time: Optional[float] = None
        self._launched_at: Optional[float] = None
        self._finished_at: Optional[float] = None
        self._trigger_path = "none"
        self._target_widget: Optional[InputWidget] = None
        self._keys_captured: List[str] = []

    # ------------------------------------------------------------------
    @property
    def launched(self) -> bool:
        return self._launched_at is not None

    @property
    def finished(self) -> bool:
        return self._finished_at is not None

    @property
    def attacking_window_ms(self) -> float:
        return self.overlay_attack.config.attacking_window_ms

    # ------------------------------------------------------------------
    def arm(self) -> None:
        """Register the accessibility service and wait for the trigger."""
        if self._armed:
            return
        self._armed = True
        self.bus.register_service(self.name, self._on_accessibility_event)
        self.trace("attack.password_armed", victim=self.victim.package)

    def arm_with_side_channel(self, config=None):
        """Arm via the UI-state side channel instead of accessibility.

        The paper notes the accessibility trigger is "just an example";
        side channels (Chen et al. [9]) detect the password entry without
        any service registration — and are immune to Alipay-style
        accessibility hardening. Returns the channel for inspection.
        """
        from .timing_channels import UiStateSideChannel

        if self._armed:
            raise RuntimeError("attack is already armed")
        self._armed = True

        def trigger() -> None:
            if self.launched:
                return
            self._target_widget = self.victim.password_widget
            self._trigger_path = "ui_state_side_channel"
            self._launch()

        channel = UiStateSideChannel(
            self.stack, self.victim, trigger, config=config,
            name=f"{self.name}#sidechannel",
        )
        channel.start()
        self.trace("attack.password_armed_sidechannel",
                   victim=self.victim.package)
        return channel

    def _on_accessibility_event(self, event: AccessibilityEvent) -> None:
        if self.launched or event.package != self.victim.package:
            return
        password_id = self.victim.password_widget.widget_id
        username_id = self.victim.username_widget.widget_id
        if (
            event.source_node_id == password_id
            and event.event_type is AccessibilityEventType.TYPE_VIEW_FOCUSED
        ):
            # Normal path: the password widget itself announces focus.
            self._target_widget = self.victim.password_widget
            self._trigger_path = "password_focus"
            self._launch()
            return
        if not self.victim.spec.password_accessibility_disabled:
            return
        if event.source_node_id != username_id:
            return
        if event.event_type in (
            AccessibilityEventType.TYPE_VIEW_FOCUSED,
            AccessibilityEventType.TYPE_VIEW_TEXT_CHANGED,
        ):
            # Remember the sibling: a focus gain or keystroke emits a
            # TYPE_WINDOW_CONTENT_CHANGED at the same instant, which must
            # NOT be mistaken for the focus-switch signal.
            self._username_sibling_time = event.time
            return
        if event.event_type is AccessibilityEventType.TYPE_WINDOW_CONTENT_CHANGED:
            if event.time == self._username_sibling_time:
                return  # paired with typing/focus — user is still here
            # Alipay path (Section VI-C1): a *lone* content-changed event
            # marks the focus moving away from the username widget ("when a
            # user finished typing and switches the focus to another
            # widget, only one event was sent"); walk getParent() and
            # enumerate children to find the password widget.
            username_node = self.victim.username_node
            parent = username_node.get_parent()
            if parent is None:
                return
            password_node = parent.find(
                lambda node: node.widget is not None
                and getattr(node.widget, "is_password", False)
            )
            if password_node is None:
                return
            self._target_widget = password_node.widget
            self._trigger_path = "username_workaround"
            self._launch()

    def _launch(self) -> None:
        self._launched_at = self.now
        self.toast_attack.start()
        self.overlay_attack.start()
        self.trace("attack.password_launched", trigger=self._trigger_path,
                    d_ms=self.attacking_window_ms)

    # ------------------------------------------------------------------
    def _on_captured(self, touch: CapturedTouch) -> None:
        if self.finished:
            return
        inferred = self.inference.infer(touch.time, touch.point)
        self._keys_captured.append(inferred.key)
        key = inferred.key
        if key == KEY_ENTER:
            self.finish()
            return
        if key in (KEY_SHIFT, KEY_SYM, KEY_ABC):
            self._switch_fake_layout(key)
            return
        # One-shot shift: after a character on the upper layout, both the
        # (real-keyboard-mirroring) fake keyboard and the inference state
        # must drop back to lowercase.
        next_layout = KeyboardSpec.layout_after_key(self.fake_keyboard.current_layout, key)
        if next_layout != self.fake_keyboard.current_layout:
            self._apply_layout(next_layout)

    def _switch_fake_layout(self, special_key: str) -> None:
        next_layout = KeyboardSpec.layout_after_key(
            self.fake_keyboard.current_layout, special_key
        )
        self._apply_layout(next_layout)

    def _apply_layout(self, layout_name: str) -> None:
        if self.fake_keyboard.switch_to(layout_name):
            self.inference.set_layout(layout_name)
            self.trace("attack.layout_switched", layout=layout_name)
            self.toast_attack.force_refresh()

    # ------------------------------------------------------------------
    def finish(self) -> PasswordAttackResult:
        """Stop both attacks, fill the password widget, report the loot."""
        if not self.finished:
            self._finished_at = self.now
            self.overlay_attack.stop()
            self.toast_attack.stop()
            derived = self.inference.text()
            if self._target_widget is not None:
                # "Fill up the password input widget to hide the attack."
                self._target_widget.set_text(derived)
            self.trace("attack.password_finished", derived_len=len(derived))
        return self.result()

    def result(self) -> PasswordAttackResult:
        return PasswordAttackResult(
            derived_password=self.inference.text(),
            launched_at=self._launched_at,
            finished_at=self._finished_at,
            captured_touches=self.overlay_attack.stats.captured_count,
            keyboard_switches=self.fake_keyboard.switch_count,
            trigger_path=self._trigger_path,
        )
