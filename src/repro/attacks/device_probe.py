"""Device-aware attacking-window selection (paper Section VI-B).

"Since the performance of different smartphones varies, D is different for
distinct phones. To address this issue, the malicious app can collect the
phone information before launching the attack so as to select an
appropriate upper boundary of D."

:class:`DeviceProber` models exactly that: the malware reads the device's
build fingerprint (model + Android version — public, permissionless
information), consults a bundled measurement database (the attacker's own
Table II), and falls back to conservative per-version defaults for unknown
hardware.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..devices.profiles import DeviceProfile
from ..devices.registry import DEVICES

#: Conservative fallback bound (ms) per Android major version for devices
#: absent from the attacker's database: the minimum measured bound of that
#: version, minus a safety margin.
_FALLBACK_MARGIN_MS = 15.0

#: Floor for any chosen window: below this the mistouch fraction explodes.
MIN_USEFUL_WINDOW_MS = 20.0


@dataclass(frozen=True)
class ProbeResult:
    """What the malware decided for this device."""

    model: str
    android_version: str
    known_device: bool
    chosen_window_ms: float
    database_bound_ms: Optional[float]

    @property
    def source(self) -> str:
        return "database" if self.known_device else "version-fallback"


class DeviceProber:
    """Selects a safe attacking window from build information."""

    def __init__(self, safety_margin_ms: float = 10.0) -> None:
        if safety_margin_ms < 0:
            raise ValueError(
                f"safety_margin_ms must be >= 0, got {safety_margin_ms}"
            )
        self.safety_margin_ms = float(safety_margin_ms)
        self._database: Dict[Tuple[str, str], float] = {
            (profile.model, profile.android_version.label):
                profile.published_upper_bound_d
            for profile in DEVICES
        }
        self._version_floor: Dict[str, float] = {}
        for profile in DEVICES:
            major = str(profile.android_version.major)
            bound = profile.published_upper_bound_d
            current = self._version_floor.get(major)
            if current is None or bound < current:
                self._version_floor[major] = bound

    # ------------------------------------------------------------------
    @property
    def database_size(self) -> int:
        return len(self._database)

    def known_models(self):
        return sorted({model for model, _ in self._database})

    def probe(self, profile: DeviceProfile) -> ProbeResult:
        """Choose D for the device the malware finds itself on."""
        key = (profile.model, profile.android_version.label)
        bound = self._database.get(key)
        if bound is not None:
            chosen = max(MIN_USEFUL_WINDOW_MS, bound - self.safety_margin_ms)
            return ProbeResult(
                model=profile.model,
                android_version=profile.android_version.label,
                known_device=True,
                chosen_window_ms=chosen,
                database_bound_ms=bound,
            )
        major = str(profile.android_version.major)
        floor = self._version_floor.get(major, min(self._version_floor.values()))
        chosen = max(MIN_USEFUL_WINDOW_MS, floor - _FALLBACK_MARGIN_MS)
        return ProbeResult(
            model=profile.model,
            android_version=profile.android_version.label,
            known_device=False,
            chosen_window_ms=chosen,
            database_bound_ms=None,
        )
