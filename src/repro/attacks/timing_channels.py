"""Alternative triggers for "when does the user enter the password?".

The paper uses the accessibility service "as just an example to
demonstrate draw and destroy attacks while other approaches can be used to
detect when the user enters the password" (Section VI-C2), citing the
shared-memory side channel of Chen et al. [9] and others.

:class:`UiStateSideChannel` models that family: the malware periodically
samples a public side channel correlated with the victim's UI state (on
real Android: /proc counters, shared-memory sizes) and fires when the
inferred state becomes "password field focused". The channel has a polling
interval, a detection latency distribution and a false-negative rate —
enough to study how trigger quality affects end-to-end theft.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from ..apps.victim import VictimApp
from ..sim.event import EventHandle
from ..sim.process import SimProcess
from ..stack import AndroidStack


@dataclass(frozen=True)
class SideChannelConfig:
    """Quality parameters of the UI-state side channel."""

    #: How often the malware samples the channel (ms). Chen et al. poll in
    #: the tens of ms.
    poll_interval_ms: float = 30.0
    #: Per-poll probability that a true "password focused" state is missed
    #: (the side channel is noisy).
    miss_probability: float = 0.05
    #: Extra inference latency once a hit lands (feature extraction).
    inference_latency_ms: float = 15.0

    def __post_init__(self) -> None:
        if self.poll_interval_ms <= 0:
            raise ValueError(
                f"poll_interval_ms must be positive, got {self.poll_interval_ms}"
            )
        if not 0.0 <= self.miss_probability < 1.0:
            raise ValueError(
                f"miss_probability must be in [0, 1), got {self.miss_probability}"
            )
        if self.inference_latency_ms < 0:
            raise ValueError(
                f"inference_latency_ms must be >= 0, got {self.inference_latency_ms}"
            )


class UiStateSideChannel(SimProcess):
    """Polls the victim's UI state and fires a trigger callback.

    Unlike the accessibility path this needs *no* service registration —
    only the ability to read public side channels, which is exactly why
    Alipay-style accessibility hardening does not stop it.
    """

    def __init__(
        self,
        stack: AndroidStack,
        victim: VictimApp,
        on_password_focus: Callable[[], None],
        config: Optional[SideChannelConfig] = None,
        name: str = "sidechannel",
    ) -> None:
        super().__init__(stack.simulation, name)
        self.victim = victim
        self.config = config or SideChannelConfig()
        self._on_password_focus = on_password_focus
        self._handle: Optional[EventHandle] = None
        self._running = False
        self._fired = False
        self.polls = 0
        self.misses = 0
        self.detected_at: Optional[float] = None

    @property
    def running(self) -> bool:
        return self._running

    @property
    def fired(self) -> bool:
        return self._fired

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self._schedule_poll()

    def stop(self) -> None:
        self._running = False
        if self._handle is not None:
            self._handle.cancel_if_pending()
            self._handle = None

    # ------------------------------------------------------------------
    def _schedule_poll(self) -> None:
        self._handle = self.schedule(
            self.config.poll_interval_ms, self._poll, name="poll"
        )

    def _poll(self) -> None:
        self._handle = None
        if not self._running or self._fired:
            return
        self.polls += 1
        if self.victim.password_widget.focused:
            if self.rng.chance(self.config.miss_probability):
                self.misses += 1
            else:
                self._fired = True
                self.detected_at = self.now
                self.trace("sidechannel.detected", polls=self.polls)
                self.schedule(
                    self.config.inference_latency_ms,
                    self._on_password_focus,
                    name="trigger",
                )
                return
        self._schedule_poll()

    # ------------------------------------------------------------------
    def expected_detection_latency_ms(self) -> float:
        """Mean latency from focus to trigger: half a poll interval, plus
        retries for misses, plus inference."""
        poll = self.config.poll_interval_ms
        miss = self.config.miss_probability
        expected_polls = 1.0 / (1.0 - miss)
        return poll / 2.0 + (expected_polls - 1.0) * poll + \
            self.config.inference_latency_ms
