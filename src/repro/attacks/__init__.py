"""The paper's contribution: animation-exploiting UI attacks.

* :class:`DrawAndDestroyOverlayAttack` — suppresses the overlay-presence
  alert by exploiting the slow-in notification animation (Section III);
* :class:`DrawAndDestroyToastAttack` — keeps a customized toast on screen
  indefinitely by exploiting the fade-out animation (Section IV);
* :class:`PasswordStealingAttack` — composes both into a fake-keyboard
  password theft (Section V);
* :class:`NotificationFloodingAttack` — saturates the notification
  channel instead of racing its animation (Knock-Knock style);
* the analytical timing model (Eqs. 1–3) and the empirical Λ1-boundary
  finder behind Table II.

The attack *classes* re-exported here are deprecated aliases: construct
them via their concrete modules (``repro.attacks.overlay_attack`` etc.)
or, better, through the actor registry
(``repro.actors.get_attacker("draw-and-destroy")``), which owns
permissioning and lifecycle. The aliases warn once per process and then
behave identically — they are true subclasses of the real classes.
"""

from .._deprecation import deprecated_class
from .clickjacking import ClickjackRecord
from .clickjacking import ClickjackingAttack as _ClickjackingAttack
from .clickjacking import ContentHidingAttack as _ContentHidingAttack
from .device_probe import DeviceProber, MIN_USEFUL_WINDOW_MS, ProbeResult
from .fake_keyboard import FakeKeyboard, FakeKeyboardFrame
from .flooding import (
    FLOOD_PACKAGE,
    FloodingConfig,
    FloodingStats,
    NotificationFloodingAttack,
)
from .key_inference import InferredKey, KeyInference, infer_offline, reconstruct_text
from .overlay_attack import (
    CapturedTouch,
    MALWARE_PACKAGE,
    OverlayAttackConfig,
    OverlayAttackStats,
)
from .overlay_attack import DrawAndDestroyOverlayAttack as _DrawAndDestroyOverlayAttack
from .password_stealing import (
    PASSWORD_MALWARE_PACKAGE,
    PasswordAttackResult,
    PasswordErrorType,
    PasswordStealingConfig,
    classify_password_attempt,
)
from .password_stealing import PasswordStealingAttack as _PasswordStealingAttack
from .timing_channels import SideChannelConfig, UiStateSideChannel
from .timing import (
    BoundarySearchResult,
    MistouchEstimate,
    UpperBoundFinder,
    estimate_attack_duration,
    expected_mistouch_for_profile,
    expected_mistouch_time,
    upper_bound_d,
    upper_bound_d_for_profile,
)
from .toast_attack import (
    TOAST_MALWARE_PACKAGE,
    ToastAttackConfig,
)
from .toast_attack import DrawAndDestroyToastAttack as _DrawAndDestroyToastAttack

DrawAndDestroyOverlayAttack = deprecated_class(
    "repro.attacks.DrawAndDestroyOverlayAttack",
    _DrawAndDestroyOverlayAttack,
    "repro.attacks.overlay_attack.DrawAndDestroyOverlayAttack "
    "(or repro.actors.get_attacker('draw-and-destroy'))",
)
DrawAndDestroyToastAttack = deprecated_class(
    "repro.attacks.DrawAndDestroyToastAttack",
    _DrawAndDestroyToastAttack,
    "repro.attacks.toast_attack.DrawAndDestroyToastAttack "
    "(or repro.actors.get_attacker('draw-and-destroy-toast'))",
)
PasswordStealingAttack = deprecated_class(
    "repro.attacks.PasswordStealingAttack",
    _PasswordStealingAttack,
    "repro.attacks.password_stealing.PasswordStealingAttack "
    "(or repro.actors.get_attacker('password-stealing'))",
)
ClickjackingAttack = deprecated_class(
    "repro.attacks.ClickjackingAttack",
    _ClickjackingAttack,
    "repro.attacks.clickjacking.ClickjackingAttack "
    "(or repro.actors.get_attacker('clickjacking'))",
)
ContentHidingAttack = deprecated_class(
    "repro.attacks.ContentHidingAttack",
    _ContentHidingAttack,
    "repro.attacks.clickjacking.ContentHidingAttack",
)

__all__ = [
    "BoundarySearchResult",
    "CapturedTouch",
    "ClickjackRecord",
    "ClickjackingAttack",
    "ContentHidingAttack",
    "DeviceProber",
    "MIN_USEFUL_WINDOW_MS",
    "ProbeResult",
    "DrawAndDestroyOverlayAttack",
    "DrawAndDestroyToastAttack",
    "FLOOD_PACKAGE",
    "FakeKeyboard",
    "FakeKeyboardFrame",
    "FloodingConfig",
    "FloodingStats",
    "InferredKey",
    "KeyInference",
    "MALWARE_PACKAGE",
    "MistouchEstimate",
    "NotificationFloodingAttack",
    "OverlayAttackConfig",
    "OverlayAttackStats",
    "PASSWORD_MALWARE_PACKAGE",
    "PasswordAttackResult",
    "PasswordErrorType",
    "PasswordStealingAttack",
    "PasswordStealingConfig",
    "SideChannelConfig",
    "TOAST_MALWARE_PACKAGE",
    "UiStateSideChannel",
    "ToastAttackConfig",
    "UpperBoundFinder",
    "classify_password_attempt",
    "estimate_attack_duration",
    "expected_mistouch_for_profile",
    "expected_mistouch_time",
    "infer_offline",
    "reconstruct_text",
    "upper_bound_d",
    "upper_bound_d_for_profile",
]
