"""The paper's contribution: animation-exploiting UI attacks.

* :class:`DrawAndDestroyOverlayAttack` — suppresses the overlay-presence
  alert by exploiting the slow-in notification animation (Section III);
* :class:`DrawAndDestroyToastAttack` — keeps a customized toast on screen
  indefinitely by exploiting the fade-out animation (Section IV);
* :class:`PasswordStealingAttack` — composes both into a fake-keyboard
  password theft (Section V);
* the analytical timing model (Eqs. 1–3) and the empirical Λ1-boundary
  finder behind Table II.
"""

from .clickjacking import (
    ClickjackingAttack,
    ClickjackRecord,
    ContentHidingAttack,
)
from .device_probe import DeviceProber, MIN_USEFUL_WINDOW_MS, ProbeResult
from .fake_keyboard import FakeKeyboard, FakeKeyboardFrame
from .key_inference import InferredKey, KeyInference, infer_offline, reconstruct_text
from .overlay_attack import (
    CapturedTouch,
    DrawAndDestroyOverlayAttack,
    MALWARE_PACKAGE,
    OverlayAttackConfig,
    OverlayAttackStats,
)
from .password_stealing import (
    PASSWORD_MALWARE_PACKAGE,
    PasswordAttackResult,
    PasswordErrorType,
    PasswordStealingAttack,
    PasswordStealingConfig,
    classify_password_attempt,
)
from .timing_channels import SideChannelConfig, UiStateSideChannel
from .timing import (
    BoundarySearchResult,
    MistouchEstimate,
    UpperBoundFinder,
    estimate_attack_duration,
    expected_mistouch_for_profile,
    expected_mistouch_time,
    upper_bound_d,
    upper_bound_d_for_profile,
)
from .toast_attack import (
    DrawAndDestroyToastAttack,
    TOAST_MALWARE_PACKAGE,
    ToastAttackConfig,
)

__all__ = [
    "BoundarySearchResult",
    "CapturedTouch",
    "ClickjackRecord",
    "ClickjackingAttack",
    "ContentHidingAttack",
    "DeviceProber",
    "MIN_USEFUL_WINDOW_MS",
    "ProbeResult",
    "DrawAndDestroyOverlayAttack",
    "DrawAndDestroyToastAttack",
    "FakeKeyboard",
    "FakeKeyboardFrame",
    "InferredKey",
    "KeyInference",
    "MALWARE_PACKAGE",
    "MistouchEstimate",
    "OverlayAttackConfig",
    "OverlayAttackStats",
    "PASSWORD_MALWARE_PACKAGE",
    "PasswordAttackResult",
    "PasswordErrorType",
    "PasswordStealingAttack",
    "PasswordStealingConfig",
    "SideChannelConfig",
    "TOAST_MALWARE_PACKAGE",
    "UiStateSideChannel",
    "ToastAttackConfig",
    "UpperBoundFinder",
    "classify_password_attempt",
    "estimate_attack_duration",
    "expected_mistouch_for_profile",
    "expected_mistouch_time",
    "infer_offline",
    "reconstruct_text",
    "upper_bound_d",
    "upper_bound_d_for_profile",
]
