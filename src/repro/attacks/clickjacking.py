"""Clickjacking via non-UI-intercepting overlays (paper Section II-A1).

The draw-and-destroy building blocks support more than password stealing;
the paper names content hiding and payment hijack as further applications
(Section I). This module implements the two classic shapes:

* :class:`ClickjackingAttack` — a ``FLAG_NOT_TOUCHABLE`` overlay shows
  misleading content while touches pass through to the victim beneath
  ("granting administrative privileges via the system Settings app ... or
  installing another malicious app"). Combined with draw-and-destroy
  cycling, the overlay-presence alert stays suppressed.
* :class:`ContentHidingAttack` — a draw-and-destroy *toast* covers a
  region of the victim (e.g., a payment amount or a security warning) with
  attacker-chosen content; since toasts are never touchable, the victim
  app remains fully interactive — the user acts on a screen that lies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional

from ..stack import AndroidStack
from ..toast.toast import TOAST_LENGTH_LONG_MS
from ..windows.geometry import Point, Rect
from ..windows.types import WindowFlags
from .overlay_attack import DrawAndDestroyOverlayAttack, OverlayAttackConfig
from .toast_attack import DrawAndDestroyToastAttack, ToastAttackConfig

CLICKJACK_PACKAGE = "com.example.wallpaper"
CONTENT_HIDE_PACKAGE = "com.example.cleaner"


@dataclass
class ClickjackRecord:
    """One touch that passed through the decoy to the victim."""

    time: float
    point: Point
    victim_owner: Optional[str]


class ClickjackingAttack:
    """Draw-and-destroy cycling of a NOT_TOUCHABLE decoy overlay.

    The decoy displays ``decoy_content`` (e.g., a fake game button) over
    the victim's sensitive control; the user's taps land on the victim.
    The draw-and-destroy cycle keeps the overlay-presence alert at Λ1 the
    whole time.
    """

    def __init__(
        self,
        stack: AndroidStack,
        decoy_rect: Rect,
        decoy_content: Any = "decoy",
        attacking_window_ms: Optional[float] = None,
        package: str = CLICKJACK_PACKAGE,
    ) -> None:
        self.stack = stack
        self.decoy_content = decoy_content
        d = attacking_window_ms
        if d is None:
            d = max(20.0, stack.profile.published_upper_bound_d - 10.0)
        self._overlay_attack = DrawAndDestroyOverlayAttack(
            stack,
            OverlayAttackConfig(attacking_window_ms=d, overlay_rect=decoy_rect),
            package=package,
        )
        # Turn the UI-intercepting overlays into pass-through decoys.
        for overlay in self._overlay_attack.overlays:
            overlay.flags |= WindowFlags.NOT_TOUCHABLE
            overlay.content = decoy_content
            overlay.alpha = 1.0
        self.passed_through: List[ClickjackRecord] = []

    @property
    def package(self) -> str:
        return self._overlay_attack.package

    @property
    def attacking_window_ms(self) -> float:
        return self._overlay_attack.config.attacking_window_ms

    def start(self) -> None:
        self._overlay_attack.start()

    def stop(self) -> None:
        self._overlay_attack.stop()

    def decoy_visible_at(self, time: float) -> bool:
        """Whether a decoy overlay is on screen right now."""
        return any(w.on_screen for w in self._overlay_attack.overlays)

    def record_pass_through(self, time: float, point: Point,
                            victim_owner: Optional[str]) -> None:
        self.passed_through.append(
            ClickjackRecord(time=time, point=point, victim_owner=victim_owner)
        )


class ContentHidingAttack:
    """Hide/replace a region of the victim's UI with a persistent toast."""

    def __init__(
        self,
        stack: AndroidStack,
        cover_rect: Rect,
        fake_content: Any = "₿ 0.01  →  trusted-merchant",
        toast_duration_ms: float = TOAST_LENGTH_LONG_MS,
        package: str = CONTENT_HIDE_PACKAGE,
    ) -> None:
        self.stack = stack
        self.cover_rect = cover_rect
        self._content = fake_content
        self._toast_attack = DrawAndDestroyToastAttack(
            stack,
            ToastAttackConfig(rect=cover_rect, duration_ms=toast_duration_ms),
            content_provider=lambda: self._content,
            package=package,
        )

    @property
    def package(self) -> str:
        return self._toast_attack.package

    def start(self) -> None:
        """No permission needed: it is only toasts."""
        self._toast_attack.start()

    def stop(self) -> None:
        self._toast_attack.stop()

    def set_content(self, content: Any) -> None:
        """Swap what the victim sees (e.g., track the real UI underneath)."""
        self._content = content
        self._toast_attack.force_refresh()

    def displayed_content_at(self, time: float) -> Optional[Any]:
        return self._toast_attack.displayed_content_at(time)

    def coverage_at(self, time: float) -> float:
        return self._toast_attack.coverage_at(time)

    def switches(self):
        return self._toast_attack.switches()
