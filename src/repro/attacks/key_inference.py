"""Key inference from intercepted touch coordinates (paper Section V).

"The attacker first derives the center coordinate of each key on the real
keyboard by performing an offline analysis of the keyboard layout in
advance. Then the attacker computes the Euclidean distance between the
coordinate of the touched position ... and the center coordinate of each
real key. A key is chosen as the typed key if the touched position has the
smallest Euclidean distance to the center coordinate of the key."
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..apps.keyboard import (
    KEY_ABC,
    KEY_BACKSPACE,
    KEY_ENTER,
    KEY_SHIFT,
    KEY_SYM,
    KeyboardSpec,
)
from ..windows.geometry import Point


@dataclass(frozen=True)
class InferredKey:
    """One intercepted touch resolved to a key."""

    time: float
    point: Point
    layout: str
    key: str
    distance: float


@dataclass
class KeyInference:
    """Online nearest-center key inference with layout tracking.

    The attacker always knows which layout its fake keyboard shows, so each
    intercepted coordinate is matched against that layout's key centers.
    Layout transitions are the caller's job (the password-stealing attack
    switches the fake keyboard and then calls :meth:`set_layout`).
    """

    spec: KeyboardSpec
    current_layout: str = "lower"
    inferred: List[InferredKey] = field(default_factory=list)

    def set_layout(self, layout_name: str) -> None:
        if layout_name not in self.spec.layouts:
            raise KeyError(f"unknown layout {layout_name!r}")
        self.current_layout = layout_name

    def infer(self, time: float, point: Point) -> InferredKey:
        """Resolve one intercepted coordinate to the nearest key center."""
        layout = self.spec.layout(self.current_layout)
        key, distance = layout.nearest_key(point)
        record = InferredKey(
            time=time, point=point, layout=self.current_layout,
            key=key, distance=distance,
        )
        self.inferred.append(record)
        return record

    def text(self) -> str:
        """Reconstruct the typed text from the inferred key stream."""
        return reconstruct_text([k.key for k in self.inferred])


def reconstruct_text(keys: List[str]) -> str:
    """Fold a key stream (including special keys) into the typed string."""
    chars: List[str] = []
    for key in keys:
        if key == KEY_BACKSPACE:
            if chars:
                chars.pop()
            continue
        if key in (KEY_SHIFT, KEY_SYM, KEY_ABC, KEY_ENTER):
            continue
        chars.append(key)
    return "".join(chars)


def infer_offline(
    spec: KeyboardSpec,
    touches: List,
    layout_timeline: Optional[List] = None,
) -> str:
    """Offline variant: re-run inference over captured (time, point) pairs.

    ``layout_timeline`` is a list of ``(time, layout_name)`` changes; when
    omitted, the lowercase layout is assumed throughout.
    """
    inference = KeyInference(spec=spec)
    timeline = sorted(layout_timeline or [], key=lambda item: item[0])
    index = 0
    for touch in touches:
        time, point = touch
        # Strictly-before: a switch recorded at the same instant as a touch
        # was *caused* by that touch (online inference resolved it on the
        # old layout first), so it must not apply yet.
        while index < len(timeline) and timeline[index][0] < time:
            inference.set_layout(timeline[index][1])
            index += 1
        inference.infer(time, point)
    return inference.text()
