"""The notification-flooding attack (Knock-Knock style channel saturation).

Where the draw-and-destroy overlay attack *races* the overlay-presence
alert's slide-in animation, this attack concedes the race entirely: it
adds **one persistent overlay** — the alert animates to completion, a
clean Λ5 — and instead saturates the notification channel with junk
posts so the alert drowns. With :data:`~repro.systemui.system_ui.
STATUS_BAR_ICON_SLOTS` newer notifications above it, the alert's icon
falls off the status bar and its drawer row sits below the fold.

The defense-evaluation point: the IPC detector keys on paired
``addView``/``removeView`` cycling. This attack issues exactly one
``addView`` over its whole run, so the detector's recall against it is
structurally zero — the channel, not the animation, is the weak link.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from ..apps.app import App
from ..apps.threads import WorkerTimer
from ..stack import AndroidStack
from ..windows.geometry import Point, Rect
from ..windows.permissions import Permission
from ..windows.system_server import SYSTEM_UI
from ..windows.types import WindowFlags, WindowType
from ..windows.window import Window
from .overlay_attack import CapturedTouch

FLOOD_PACKAGE = "com.example.newsburst"


@dataclass(kw_only=True)
class FloodingConfig:
    """Parameters of one notification-flooding run."""

    #: Interval between successive junk posts (ms).
    flood_interval_ms: float = 150.0
    #: Posts to issue before going quiet (0 = flood until stopped).
    flood_count: int = 0
    #: Area covered by the persistent overlay (default: whole screen).
    overlay_rect: Optional[Rect] = None
    #: Delay between the overlay going up and the first junk post (ms).
    #: Posting *after* the alert starts is what buries it.
    first_post_delay_ms: float = 50.0

    def __post_init__(self) -> None:
        if self.flood_interval_ms <= 0:
            raise ValueError(
                f"flood interval must be positive, got {self.flood_interval_ms}")
        if self.flood_count < 0:
            raise ValueError(
                f"flood_count must be >= 0, got {self.flood_count}")
        if self.first_post_delay_ms < 0:
            raise ValueError(
                f"first_post_delay_ms must be >= 0, got {self.first_post_delay_ms}")


@dataclass
class FloodingStats:
    """Counters accumulated over one flooding run."""

    posts_sent: int = 0
    touches_captured: List[CapturedTouch] = field(default_factory=list)

    @property
    def captured_count(self) -> int:
        return len(self.touches_captured)


class NotificationFloodingAttack(App):
    """A malicious app burying the overlay alert under junk notifications."""

    def __init__(
        self,
        stack: AndroidStack,
        config: Optional[FloodingConfig] = None,
        package: str = FLOOD_PACKAGE,
        on_captured: Optional[Callable[[CapturedTouch], None]] = None,
        process_name: str = "",
    ) -> None:
        super().__init__(
            stack, package, label="notification flooding",
            process_name=process_name,
        )
        self.config = config or FloodingConfig()
        self.stats = FloodingStats()
        self.on_captured = on_captured
        rect = self.config.overlay_rect or Rect(
            0, 0, stack.profile.screen_width_px, stack.profile.screen_height_px
        )
        self._overlay = Window(
            owner=package,
            window_type=WindowType.APPLICATION_OVERLAY,
            rect=rect,
            flags=WindowFlags.TRANSPARENT,
            alpha=0.0,
            on_touch=self._on_touch,
            label=f"{package}:overlay",
        )
        self._worker: Optional[WorkerTimer] = None
        self._running = False

    # ------------------------------------------------------------------
    @property
    def running(self) -> bool:
        return self._running

    @property
    def overlay(self) -> Window:
        return self._overlay

    def start(self) -> None:
        """Add the persistent overlay, then open the flood."""
        if self._running:
            return
        self.stack.permissions.require(self.package,
                                       Permission.SYSTEM_ALERT_WINDOW)
        self._running = True
        overlay = self._overlay
        self.main_thread.post(lambda: self.add_view(overlay),
                              name="persistent-add")
        self._worker = WorkerTimer(
            self.simulation,
            f"{self.package}.flooder-{id(self)}",
            period_ms=self.config.flood_interval_ms,
            on_tick=self._on_flood_tick,
        )
        self._worker.start(initial_delay_ms=self.config.first_post_delay_ms)
        self.trace("attack.flooding_started",
                   interval_ms=self.config.flood_interval_ms)

    def stop(self) -> None:
        """End the flood and take the overlay down."""
        if not self._running:
            return
        self._running = False
        if self._worker is not None:
            self._worker.stop()
        overlay = self._overlay
        self.main_thread.post(lambda: self.remove_view(overlay),
                              name="final-remove")
        self.trace("attack.flooding_stopped", posts=self.stats.posts_sent)

    # ------------------------------------------------------------------
    def _on_flood_tick(self, tick: int) -> None:
        if not self._running:
            return
        if self.config.flood_count and \
                self.stats.posts_sent >= self.config.flood_count:
            if self._worker is not None:
                self._worker.stop()
            return
        self.stats.posts_sent += 1
        self.stack.router.transact(
            sender=self.package,
            receiver=SYSTEM_UI,
            method="postNotification",
            payload={"package": f"{self.package}.feed{self.stats.posts_sent}"},
            latency_ms=self.stack.profile.tam.sample(self.rng),
        )

    def _on_touch(self, window: Window, point: Point, time: float) -> None:
        captured = CapturedTouch(time=time, point=point,
                                 overlay_label=window.label)
        self.stats.touches_captured.append(captured)
        self.trace("attack.touch_captured", x=point.x, y=point.y)
        if self.on_captured is not None:
            self.on_captured(captured)
