"""The draw-and-destroy overlay attack (paper Section III).

The malicious app pre-creates two UI-intercepting overlay objects, then a
worker-thread timer drives the cycle every attacking window ``D``:

    add O1  ->  wait D  ->  [remove O1; add O2]  ->  wait D  ->
    [remove O2; add O1]  ->  ...

Calling ``removeView`` *before* ``addView`` within a cycle is essential:
``addView`` blocks the main thread, and issuing it first delays the remove
notification so the new overlay is up before the old one is gone — System
Server then never tells System UI to take the alert down and the slide-in
completes (``order_add_first=True`` reproduces that failure mode).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from ..stack import AndroidStack
from ..apps.app import App
from ..apps.threads import WorkerTimer
from ..systemui.outcomes import NotificationOutcome
from ..windows.geometry import Point, Rect
from ..windows.permissions import Permission
from ..windows.types import WindowFlags, WindowType
from ..windows.window import Window

MALWARE_PACKAGE = "com.example.innocuous"


@dataclass(frozen=True)
class CapturedTouch:
    """One user input intercepted by a malicious overlay."""

    time: float
    point: Point
    overlay_label: str


@dataclass(kw_only=True)
class OverlayAttackConfig:
    """Parameters of one draw-and-destroy overlay attack run."""

    #: The attacking window D (ms) — the wait between draw/destroy cycles.
    attacking_window_ms: float
    #: Area covered by the transparent overlays (default: whole screen).
    overlay_rect: Optional[Rect] = None
    #: removeView-then-addView (the working order). False reproduces the
    #: paper's failing add-first variant.
    remove_then_add: bool = True
    #: React to suppression failures: re-measure the observed ``Trm`` and
    #: widen ``D`` after each failure (bounded by ``max_adaptations``).
    #: A real attacker watching the drawer would do exactly this on a
    #: noisy device.
    adaptive: bool = False
    #: Most times the adaptive attack will widen its window before giving
    #: up and keeping the last value.
    max_adaptations: int = 3
    #: Multiplier applied to ``D`` on each adaptation.
    widen_factor: float = 1.3

    def __post_init__(self) -> None:
        if self.attacking_window_ms <= 0:
            raise ValueError(
                f"attacking window must be positive, got {self.attacking_window_ms}"
            )
        if self.max_adaptations < 0:
            raise ValueError(
                f"max_adaptations must be >= 0, got {self.max_adaptations}"
            )
        if self.widen_factor <= 1.0:
            raise ValueError(
                f"widen_factor must be > 1 (widening), got {self.widen_factor}"
            )


#: How many recent removeView round trips the adaptive attack averages
#: when re-measuring the observed Trm.
_TRM_MEASUREMENT_WINDOW = 8


@dataclass
class OverlayAttackStats:
    """Counters accumulated over one attack run."""

    cycles: int = 0
    touches_captured: List[CapturedTouch] = field(default_factory=list)
    #: Suppression failures noticed (alert records with a visible outcome).
    failures_observed: int = 0
    #: Times the adaptive attack widened its window.
    adaptations: int = 0
    #: Recent observed removeView transit times (ms), newest last.
    observed_trm_ms: List[float] = field(default_factory=list)

    @property
    def captured_count(self) -> int:
        return len(self.touches_captured)

    @property
    def mean_observed_trm_ms(self) -> float:
        """Mean of the recent observed ``Trm`` samples (0 when unmeasured)."""
        if not self.observed_trm_ms:
            return 0.0
        return sum(self.observed_trm_ms) / len(self.observed_trm_ms)


class DrawAndDestroyOverlayAttack(App):
    """A malicious overlay app running the draw-and-destroy cycle."""

    def __init__(
        self,
        stack: AndroidStack,
        config: OverlayAttackConfig,
        package: str = MALWARE_PACKAGE,
        on_captured: Optional[Callable[[CapturedTouch], None]] = None,
        process_name: str = "",
    ) -> None:
        super().__init__(
            stack, package, label="draw-and-destroy overlay", process_name=process_name
        )
        self.config = config
        self.stats = OverlayAttackStats()
        self.on_captured = on_captured
        rect = config.overlay_rect or Rect(
            0, 0, stack.profile.screen_width_px, stack.profile.screen_height_px
        )
        # "Creating the two overlay objects in advance allows accurate
        # control of the timing of the attack" (Section III-C Step 1).
        self._overlays = [
            Window(
                owner=package,
                window_type=WindowType.APPLICATION_OVERLAY,
                rect=rect,
                flags=WindowFlags.TRANSPARENT,
                alpha=0.0,
                on_touch=self._on_touch,
                label=f"{package}:overlay{i + 1}",
            )
            for i in range(2)
        ]
        self._current: Optional[Window] = None
        self._worker: Optional[WorkerTimer] = None
        self._running = False
        #: High-water mark of visible-outcome alert records seen for this
        #: package (the adaptive attack reacts only to *new* failures).
        self._seen_failures = 0

    # ------------------------------------------------------------------
    @property
    def running(self) -> bool:
        return self._running

    @property
    def current_window_ms(self) -> float:
        """The attacking window currently in force (grows when adaptive)."""
        if self._worker is not None:
            return self._worker.period_ms
        return self.config.attacking_window_ms

    @property
    def overlays(self) -> List[Window]:
        return list(self._overlays)

    @property
    def current_overlay(self) -> Optional[Window]:
        return self._current

    def start(self) -> None:
        """Begin the attack; requires SYSTEM_ALERT_WINDOW."""
        if self._running:
            return
        self.stack.permissions.require(self.package, Permission.SYSTEM_ALERT_WINDOW)
        self._running = True
        self._worker = WorkerTimer(
            self.simulation,
            f"{self.package}.worker-{id(self)}",
            period_ms=self.config.attacking_window_ms,
            on_tick=self._on_worker_tick,
        )
        self._worker.start(initial_delay_ms=0.0)
        self.trace("attack.overlay_started", d_ms=self.config.attacking_window_ms)

    def stop(self) -> None:
        """Finish the attack: the last displayed overlay is removed."""
        if not self._running:
            return
        self._running = False
        if self._worker is not None:
            self._worker.stop()
        current = self._current
        if current is not None:
            self.main_thread.post(lambda: self.remove_view(current), name="final-remove")
            self._current = None
        self.trace("attack.overlay_stopped", cycles=self.stats.cycles)

    # ------------------------------------------------------------------
    def _on_worker_tick(self, tick: int) -> None:
        if not self._running:
            return
        self.stats.cycles += 1
        if self.config.adaptive:
            self._react_to_failures()
        if self._current is None:
            # First round: only addView, displaying overlay one.
            first = self._overlays[0]
            self._current = first
            self.main_thread.post(lambda: self.add_view(first), name="first-add")
            return
        old = self._current
        new = self._other(old)
        self._current = new
        if self.config.remove_then_add:

            def swap() -> None:
                self._note_trm(self.remove_view(old))
                self.add_view(new)

            self.main_thread.post(swap, name="swap")
        else:
            # Failing variant: addView first. The blocking call keeps the
            # main thread busy, delaying the removeView dispatch by the
            # full synchronous round trip.
            def swap_add_first() -> None:
                self.add_view(new)
                block = self.add_view_blocking_ms
                self.main_thread.block(block)
                self.schedule(block, lambda: self.remove_view(old), name="late-remove")

            self.main_thread.post(swap_add_first, name="swap-add-first")

    def _other(self, overlay: Window) -> Window:
        return self._overlays[1] if overlay is self._overlays[0] else self._overlays[0]

    # ------------------------------------------------------------------
    # Adaptation (only active with config.adaptive)
    # ------------------------------------------------------------------
    def _note_trm(self, observed_ms: float) -> None:
        """Record one observed removeView transit time (re-measured Trm)."""
        samples = self.stats.observed_trm_ms
        samples.append(observed_ms)
        if len(samples) > _TRM_MEASUREMENT_WINDOW:
            del samples[: len(samples) - _TRM_MEASUREMENT_WINDOW]

    def _react_to_failures(self) -> None:
        """Widen the attacking window when a suppression failure shows up.

        A failure is an alert record with a visible outcome (anything past
        Λ1): the hide arrived too late and the user could have seen the
        notification. Each *new* failure widens ``D`` by ``widen_factor``,
        floored at twice the re-measured ``Trm`` so the previous cycle's
        remove has always cleared transit before the next swap — bounded
        by ``max_adaptations`` retries.
        """
        failures = sum(
            1
            for record in self.stack.system_ui.records
            if record.app == self.package
            and record.outcome > NotificationOutcome.LAMBDA1
        )
        if failures <= self._seen_failures:
            return
        self._seen_failures = failures
        self.stats.failures_observed = failures
        if self._worker is None or self.stats.adaptations >= self.config.max_adaptations:
            return
        widened = max(
            self._worker.period_ms * self.config.widen_factor,
            2.0 * self.stats.mean_observed_trm_ms,
        )
        self._worker.set_period(widened)
        self.stats.adaptations += 1
        self.trace(
            "attack.window_widened",
            d_ms=round(widened, 4),
            failures=failures,
            observed_trm_ms=round(self.stats.mean_observed_trm_ms, 4),
        )

    def _on_touch(self, window: Window, point: Point, time: float) -> None:
        captured = CapturedTouch(time=time, point=point, overlay_label=window.label)
        self.stats.touches_captured.append(captured)
        self.trace("attack.touch_captured", x=point.x, y=point.y)
        if self.on_captured is not None:
            self.on_captured(captured)
