"""The draw-and-destroy toast attack (paper Section IV).

The malicious app keeps a customized toast (e.g., a fake keyboard) on top
of the victim indefinitely by enqueueing the next toast before the current
one is removed. Android serializes toast display, but the 500 ms
``AccelerateInterpolator`` fade-out overlaps the successor's fast
``DecelerateInterpolator`` fade-in, so combined opacity barely dips and the
switch is imperceptible. No permission is required.

Queue discipline (Section IV-D): keep at least one token enqueued at all
times while never exceeding Android's 50-tokens-per-app cap. The attack
primes the queue with two toasts and then enqueues one per display period.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, List, Optional

from ..stack import AndroidStack
from ..apps.app import App
from ..apps.threads import WorkerTimer
from ..toast.lifecycle import ToastSwitch, analyze_switches
from ..toast.toast import TOAST_LENGTH_LONG_MS, Toast
from ..toast.token_queue import MAX_TOASTS_PER_APP
from ..windows.geometry import Rect

TOAST_MALWARE_PACKAGE = "com.example.helpful.widget"

ContentProvider = Callable[[], Any]


@dataclass(kw_only=True)
class ToastAttackConfig:
    """Parameters of one draw-and-destroy toast attack run."""

    #: Area the customized toast covers (e.g., the keyboard area).
    rect: Rect
    #: On-screen duration per toast; 3.5 s minimizes switches (Section IV-D).
    duration_ms: float = TOAST_LENGTH_LONG_MS
    #: Interval between successive enqueues; defaults to the duration so
    #: queue depth stays bounded at ~2.
    enqueue_period_ms: Optional[float] = None
    #: Tokens enqueued up front so the queue is never empty.
    prime_count: int = 2

    def __post_init__(self) -> None:
        if self.prime_count < 1:
            raise ValueError(f"prime_count must be >= 1, got {self.prime_count}")

    @property
    def period_ms(self) -> float:
        return self.enqueue_period_ms or self.duration_ms


class DrawAndDestroyToastAttack(App):
    """A malicious app keeping a customized toast continuously on screen."""

    def __init__(
        self,
        stack: AndroidStack,
        config: ToastAttackConfig,
        content_provider: ContentProvider,
        package: str = TOAST_MALWARE_PACKAGE,
        process_name: str = "",
    ) -> None:
        super().__init__(
            stack, package, label="draw-and-destroy toast", process_name=process_name
        )
        self.config = config
        self._content_provider = content_provider
        self._worker: Optional[WorkerTimer] = None
        self._running = False
        self._enqueued = 0
        self._skipped_at_cap = 0
        #: Toast objects we created and still hold references to (the real
        #: attack keeps them so it can Toast.cancel() stale queued frames).
        self._live: List[Toast] = []

    # ------------------------------------------------------------------
    @property
    def running(self) -> bool:
        return self._running

    @property
    def toasts_enqueued(self) -> int:
        return self._enqueued

    @property
    def skipped_at_cap(self) -> int:
        """Enqueues the attack itself skipped to respect the 50-token cap."""
        return self._skipped_at_cap

    def start(self) -> None:
        """Begin the attack. No permission is required (Section IV-A)."""
        if self._running:
            return
        self._running = True
        for _ in range(self.config.prime_count):
            self._enqueue_toast()
        self._worker = WorkerTimer(
            self.simulation,
            f"{self.package}.worker-{id(self)}",
            period_ms=self.config.period_ms,
            on_tick=lambda tick: self._enqueue_toast(),
        )
        self._worker.start(initial_delay_ms=self.config.period_ms)
        self.trace("attack.toast_started", period_ms=self.config.period_ms)

    def stop(self) -> None:
        if not self._running:
            return
        self._running = False
        if self._worker is not None:
            self._worker.stop()
        # Let the currently displayed toast expire naturally; just stop
        # feeding the queue.
        self.trace("attack.toast_stopped", enqueued=self._enqueued)

    def force_refresh(self) -> None:
        """Replace the displayed toast immediately (subkeyboard switch).

        Stale queued frames (enqueued before the switch, carrying the old
        layout) are cancelled first, then the new layout is enqueued, then
        the displayed toast is cancelled so the Notification Manager
        fetches the new frame right away. The three calls are issued
        back-to-back from one thread, so their delivery order is fixed
        (staggered latencies)."""
        self._prune_live()
        base_latency = self.stack.profile.tam.sample(self.rng)
        step = 0.3
        for index, toast in enumerate(t for t in self._live if t.shown_at is None):
            self.cancel_toast(toast, latency_ms=base_latency + index * step)
        self._enqueue_toast(latency_ms=base_latency + 5 * step)
        self.cancel_current_toast(latency_ms=base_latency + 6 * step)

    def _prune_live(self) -> None:
        self._live = [t for t in self._live if t.removed_at is None]

    # ------------------------------------------------------------------
    def _enqueue_toast(self, latency_ms=None) -> None:
        if not self._running:
            return
        queue = self.stack.notification_manager.queue
        if queue.depth_for(self.package) >= MAX_TOASTS_PER_APP - 1:
            self._skipped_at_cap += 1
            return
        toast = Toast(
            owner=self.package,
            content=self._content_provider(),
            rect=self.config.rect,
            duration_ms=self.config.duration_ms,
        )
        self._enqueued += 1
        self._live.append(toast)
        self.show_toast(toast, latency_ms=latency_ms)

    # ------------------------------------------------------------------
    # Analysis helpers
    # ------------------------------------------------------------------
    def displayed_toasts(self) -> List[Toast]:
        return [
            t
            for t in self.stack.notification_manager.history
            if t.owner == self.package
        ]

    def switches(self, threshold: float = 0.85) -> List[ToastSwitch]:
        return analyze_switches(self.displayed_toasts(), threshold=threshold)

    def coverage_at(self, time: float) -> float:
        return self.stack.notification_manager.coverage_at(time, self.config.rect)

    def displayed_content_at(self, time: float) -> Optional[Any]:
        """Which content the user saw at ``time`` (the most opaque toast)."""
        best: Optional[Toast] = None
        best_alpha = 0.0
        for toast in self.displayed_toasts():
            alpha = toast.alpha_at(time)
            if alpha > best_alpha:
                best = toast
                best_alpha = alpha
        return best.content if best is not None else None
