"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``devices`` — list the 30 calibrated evaluation devices (Table I/II);
* ``attack`` — run the draw-and-destroy overlay attack on one device and
  report the notification outcome and capture statistics;
* ``diagram`` — render the paper's Fig. 3 / Fig. 5 sequence charts from a
  live simulation trace;
* ``report`` — run the complete reproduction suite and print the
  paper-vs-measured report (EXPERIMENTS.md content); ``--metrics-out`` /
  ``--profile-dir`` attach observability artifacts to the run;
* ``metrics`` — run the suite with metrics collection and export the
  aggregated series as JSONL + Prometheus text;
* ``campaign`` — run a fleet-scale :class:`ScenarioMatrix` sweep from a
  JSON spec: sharded, supervised, resumable, with streaming aggregates;
* ``serve`` — boot the attack-feasibility query service: an HTTP front
  over a bounded job queue, single-flight coalescing, a warm worker
  pool and a content-addressed result cache (``/query``, ``/metrics``,
  ``/healthz``, ``/stats``);
* ``query`` — answer one feasibility query, either in-process or
  against a running ``repro serve`` endpoint (``--url``).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from . import __version__
from .analysis.sequence_diagram import (
    render_overlay_attack_figure,
    render_toast_attack_figure,
)
from .attacks.overlay_attack import (
    DrawAndDestroyOverlayAttack,
    OverlayAttackConfig,
)
from .attacks.toast_attack import DrawAndDestroyToastAttack, ToastAttackConfig
from .devices import DEVICES, device
from .stack import build_stack
from .systemui import AlertMode
from .windows.geometry import Point, Rect
from .windows.permissions import Permission


def _cmd_devices(args: argparse.Namespace) -> int:
    print(f"{'device':44s} {'Android':>8s} {'bound D (ms)':>13s} "
          f"{'Tmis (ms)':>10s}")
    for profile in DEVICES:
        print(f"{profile.manufacturer + ' ' + profile.model:44s} "
              f"{profile.android_version.label:>8s} "
              f"{profile.published_upper_bound_d:13.0f} "
              f"{profile.mean_tmis_ms:10.1f}")
    return 0


def _resolve_device(model: Optional[str], version: Optional[str]):
    if model is None:
        from .devices import reference_device

        return reference_device()
    return device(model, version)


def _cmd_attack(args: argparse.Namespace) -> int:
    profile = _resolve_device(args.device, args.android)
    d = args.window if args.window is not None else (
        profile.published_upper_bound_d - 10.0
    )
    stack = build_stack(seed=args.seed, profile=profile,
                        alert_mode=AlertMode.ANALYTIC, faults=args.faults)
    attack = DrawAndDestroyOverlayAttack(
        stack, OverlayAttackConfig(attacking_window_ms=d)
    )
    stack.permissions.grant(attack.package, Permission.SYSTEM_ALERT_WINDOW)
    attack.start()
    taps = 0
    while stack.now < args.duration:
        stack.run_for(300.0)
        stack.touch.tap(Point(540.0, 1200.0))
        taps += 1
    worst = stack.system_ui.worst_outcome()
    attack.stop()
    stack.run_for(500.0)
    worst = max(worst, stack.system_ui.worst_outcome())
    print(f"device            : {profile.key}")
    print(f"attacking window D: {d:.0f} ms "
          f"(published bound {profile.published_upper_bound_d:.0f} ms)")
    print(f"cycles run        : {attack.stats.cycles}")
    print(f"alert outcome     : {worst.label} "
          f"({'suppressed' if worst.suppressed else 'VISIBLE'})")
    print(f"touches captured  : {attack.stats.captured_count}/{taps}")
    if args.faults != "none":
        # The published bound is calibrated fault-free; under injected
        # faults a "wrong" outcome is a finding, not a failure.
        print(f"fault profile     : {args.faults}")
        return 0
    return 0 if worst.suppressed == (d < profile.published_upper_bound_d) else 1


def _cmd_diagram(args: argparse.Namespace) -> int:
    profile = _resolve_device(args.device, args.android)
    stack = build_stack(seed=args.seed, profile=profile,
                        alert_mode=AlertMode.ANALYTIC)
    if args.figure == "overlay":
        attack = DrawAndDestroyOverlayAttack(
            stack,
            OverlayAttackConfig(
                attacking_window_ms=profile.published_upper_bound_d - 10.0
            ),
        )
        stack.permissions.grant(attack.package, Permission.SYSTEM_ALERT_WINDOW)
        attack.start()
        stack.run_for(args.duration)
        attack.stop()
        stack.run_for(200.0)
        print("Fig. 3 — draw-and-destroy overlay attack "
              f"(one cycle window, {profile.key}):")
        print(render_overlay_attack_figure(
            stack.simulation.trace, 100.0, args.duration))
    else:
        toast_attack = DrawAndDestroyToastAttack(
            stack,
            ToastAttackConfig(rect=Rect(0, 1400, 1080, 2160),
                              duration_ms=3500.0),
            content_provider=lambda: "fake-keyboard",
        )
        toast_attack.start()
        stack.run_for(args.duration)
        toast_attack.stop()
        stack.run_for(4500.0)
        print(f"Fig. 5 — draw-and-destroy toast attack ({profile.key}):")
        print(render_toast_attack_figure(
            stack.simulation.trace, 0.0, args.duration))
    return 0


def _write_metrics_exports(results, out_dir: Path) -> None:
    """Write ``metrics.jsonl`` + ``metrics.prom`` for an AllResults run."""
    from .obs import merge_samples, render_prometheus, to_jsonl

    merged = merge_samples(em.samples for em in results.metrics or ())
    out_dir.mkdir(parents=True, exist_ok=True)
    (out_dir / "metrics.jsonl").write_text(to_jsonl(merged))
    (out_dir / "metrics.prom").write_text(render_prometheus(merged))


def _build_policy(args: argparse.Namespace):
    """Translate CLI supervision flags into a RunPolicy (None = defaults)."""
    from .experiments import RunPolicy

    if not (args.retries or args.deadline is not None or args.fail_fast):
        return None
    return RunPolicy(
        max_attempts=args.retries + 1,
        deadline_seconds=args.deadline,
        backoff_base_seconds=0.05 if args.retries else 0.0,
        fail_fast=args.fail_fast,
    )


def _write_failures_summary(results, out: Path) -> None:
    """Emit the machine-readable failure summary for --failures-out."""
    timings = results.timings or ()
    summary = {
        "scale": results.scale_name,
        "completed": sum(1 for t in timings if not t.failed),
        "failed": len(results.failures),
        "retries": sum(t.attempts - 1 for t in timings),
        "failures": [f.to_dict() for f in results.failures],
    }
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(summary, indent=2) + "\n")


def _report_failures(results, command: str) -> int:
    """Print the failure roll-up and return the process exit code."""
    if not results.failures:
        return 0
    for failure in results.failures:
        print(f"repro {command}: experiment {failure.name} FAILED "
              f"({failure.kind}, {failure.attempts} attempt(s)): "
              f"{failure.error}", file=sys.stderr)
    print(f"repro {command}: {len(results.failures)} experiment(s) failed",
          file=sys.stderr)
    return 1


def _cmd_report(args: argparse.Namespace) -> int:
    from .experiments import (
        FULL,
        QUICK,
        SMOKE,
        default_cache_dir,
        format_report,
        run_all,
    )
    from .experiments.resilience import JournalError

    scale = {"full": FULL, "quick": QUICK, "smoke": SMOKE}[args.scale]
    if args.faults != "none":
        scale = scale.with_faults(args.faults)
    collect_metrics = args.metrics_out is not None
    if args.no_cache or collect_metrics or args.profile_dir is not None:
        # Cached results carry no metric snapshots or profiles; a fresh
        # run is the only way to honor --metrics-out / --profile-dir.
        cache_dir = None
    elif args.cache_dir is not None:
        cache_dir = args.cache_dir
    else:
        cache_dir = default_cache_dir()
    if cache_dir is not None and cache_dir.exists() and not cache_dir.is_dir():
        print(f"repro report: --cache-dir {cache_dir} exists and is not a "
              "directory", file=sys.stderr)
        return 2
    if args.resume is not None and args.run_dir is not None:
        print("repro report: --resume already names the run directory; "
              "drop --run-dir", file=sys.stderr)
        return 2
    run_dir = args.resume if args.resume is not None else args.run_dir
    try:
        results = run_all(scale, verbose=args.verbose, jobs=args.jobs,
                          cache_dir=cache_dir,
                          collect_metrics=collect_metrics,
                          profile_dir=args.profile_dir,
                          policy=_build_policy(args), run_dir=run_dir,
                          resume=args.resume is not None)
    except JournalError as exc:
        print(f"repro report: {exc}", file=sys.stderr)
        return 2
    print(format_report(results, include_timings=args.verbose))
    if collect_metrics:
        _write_metrics_exports(results, args.metrics_out)
        print(f"\nmetrics written to {args.metrics_out}/metrics.jsonl "
              f"and {args.metrics_out}/metrics.prom", file=sys.stderr)
    if args.failures_out is not None:
        _write_failures_summary(results, args.failures_out)
    return _report_failures(results, "report")


def _cmd_metrics(args: argparse.Namespace) -> int:
    from .experiments import FULL, QUICK, SMOKE, run_all
    from .obs import merge_samples, render_prometheus

    scale = {"full": FULL, "quick": QUICK, "smoke": SMOKE}[args.scale]
    if args.faults != "none":
        scale = scale.with_faults(args.faults)
    results = run_all(scale, jobs=args.jobs, collect_metrics=True)
    if args.out is not None:
        _write_metrics_exports(results, args.out)
        print(f"metrics written to {args.out}/metrics.jsonl and "
              f"{args.out}/metrics.prom", file=sys.stderr)
        return _report_failures(results, "metrics")
    merged = merge_samples(em.samples for em in results.metrics or ())
    print(render_prometheus(merged), end="")
    return _report_failures(results, "metrics")


def _cmd_actors(args: argparse.Namespace) -> int:
    from .actors import attacker_names, channel_names, user_names

    print(f"attacker models ({len(attacker_names())}): "
          + ", ".join(attacker_names()))
    print(f"user models ({len(user_names())}): " + ", ".join(user_names()))
    print(f"alert channels ({len(channel_names())}): "
          + ", ".join(channel_names()))
    return 0


def _cmd_experiments(args: argparse.Namespace) -> int:
    from .experiments import EXPERIMENTS, family_names, get_family, scenario_names

    if args.run is not None:
        from .api import run_experiment
        from .experiments import FULL, QUICK, SMOKE

        scale = {"full": FULL, "quick": QUICK, "smoke": SMOKE}[args.scale]
        try:
            result = run_experiment(args.run, scale=scale)
        except KeyError as exc:
            print(f"repro experiments: {exc.args[0]}", file=sys.stderr)
            return 2
        except Exception as exc:  # noqa: BLE001 - CLI boundary
            print(f"repro experiments: experiment {args.run} FAILED: "
                  f"{exc!r}", file=sys.stderr)
            return 1
        print(result)
        return 0
    if args.list:
        print(f"{'experiment':22s} title")
        for spec in EXPERIMENTS:
            print(f"{spec.name:22s} {spec.title}")
        print()
        print(f"{'scenario family':22s} title")
        for name in family_names():
            print(f"{name:22s} {get_family(name).title}")
        print()
        print(f"registered scenarios ({len(scenario_names())}): "
              + ", ".join(scenario_names()))
        return 0
    print("repro experiments: nothing to do (try --list or --run NAME)",
          file=sys.stderr)
    return 2


def _cmd_campaign(args: argparse.Namespace) -> int:
    from .experiments.campaign import (
        GROUPERS,
        format_campaign,
        matrix_from_spec,
        run_campaign,
    )
    from .experiments.resilience import JournalError

    try:
        spec = json.loads(args.matrix.read_text())
    except (OSError, ValueError) as exc:
        print(f"repro campaign: cannot read matrix spec {args.matrix}: {exc}",
              file=sys.stderr)
        return 2
    try:
        matrix = matrix_from_spec(spec)
    except (KeyError, ValueError) as exc:
        print(f"repro campaign: bad matrix spec: {exc}", file=sys.stderr)
        return 2
    if args.resume is not None and args.run_dir is not None:
        print("repro campaign: --resume already names the run directory; "
              "drop --run-dir", file=sys.stderr)
        return 2
    run_dir = args.resume if args.resume is not None else args.run_dir
    try:
        result = run_campaign(
            matrix,
            shards=args.shards,
            jobs=args.jobs,
            policy=_build_policy(args),
            run_dir=run_dir,
            resume=args.resume is not None,
            group_by=GROUPERS[args.group_by],
            verbose=args.verbose,
        )
    except JournalError as exc:
        print(f"repro campaign: {exc}", file=sys.stderr)
        return 2
    print(format_campaign(result), end="")
    if args.out is not None:
        args.out.parent.mkdir(parents=True, exist_ok=True)
        args.out.write_text(result.aggregates_json())
        print(f"aggregates written to {args.out}", file=sys.stderr)
    if not result.failures:
        return 0
    for failure in result.failures:
        print(f"repro campaign: shard {failure.name} FAILED "
              f"({failure.kind}, {failure.attempts} attempt(s)): "
              f"{failure.error}", file=sys.stderr)
    print(f"repro campaign: {len(result.failures)} shard(s) failed",
          file=sys.stderr)
    return 1


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import signal

    from .experiments.resilience import DEFAULT_POLICY
    from .serve import (
        BreakerConfig,
        FeasibilityService,
        ServeConfig,
        start_http_server,
    )

    try:
        breaker = BreakerConfig(
            window=args.breaker_window,
            failure_threshold=args.breaker_failures,
            cooldown_rejections=args.breaker_cooldown,
        )
    except ValueError as exc:
        print(f"repro serve: {exc}", file=sys.stderr)
        return 2
    config = ServeConfig(
        workers=args.workers,
        queue_limit=args.queue_limit,
        cache_dir=args.cache_dir,
        policy=_build_policy(args) or DEFAULT_POLICY,
        breaker=breaker,
        retry_after_seconds=args.retry_after,
    )

    async def _serve() -> None:
        service = FeasibilityService(config)
        await service.start()
        server = await start_http_server(service, args.host, args.port)
        host, port = server.sockets[0].getsockname()[:2]
        loop = asyncio.get_running_loop()
        stop = asyncio.Event()
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(sig, stop.set)
            except (NotImplementedError, RuntimeError):
                pass  # platform without signal handlers; Ctrl-C still works
        print(f"repro serve: listening on http://{host}:{port} "
              f"({config.workers} workers, queue limit "
              f"{config.queue_limit})", flush=True)
        try:
            await stop.wait()
        finally:
            # Graceful drain: stop accepting connections, let every
            # queued job finish, flush the disk cache, then tear down.
            server.close()
            await server.wait_closed()
            elapsed = await service.drain()
            print(f"repro serve: drained in {elapsed:.3f}s", flush=True)
            await service.close()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        pass
    return 0


def _format_feasibility(payload: dict, source: str) -> str:
    """Human summary of a FeasibilityReport dict (local or HTTP answer)."""
    lines = [
        f"device           : {payload['device_key']}",
        f"faults / actors  : {payload['faults']} / {payload['attacker']} "
        f"vs {payload['user']}",
        f"{'D (ms)':>9s} {'suppressed':>11s} {'worst':>6s}",
    ]
    for point in payload["points"]:
        lines.append(
            f"{point['attacking_window_ms']:9.1f} "
            f"{point['suppressed_trials']:>5d}/{point['trials']:<5d} "
            f"{point['worst_outcome']:>6s}")
    bound = payload["published_upper_bound_d_ms"]
    feasible = payload["max_feasible_d_ms"]
    if feasible is not None:
        lines.append(f"max feasible D   : {feasible:.1f} ms "
                     f"(published bound {bound:.0f} ms)")
    else:
        lines.append(f"max feasible D   : none in the swept range "
                     f"(published bound {bound:.0f} ms)")
    lines.append(f"mean Tmis        : {payload['mean_tmis_ms']:.1f} ms")
    probe = payload.get("probe")
    if probe is not None:
        lines.append(
            f"capture probe    : {probe['captured_taps']}/"
            f"{probe['total_taps']} taps captured "
            f"({probe['capture_rate'] * 100.0:.0f}%) at "
            f"D={probe['attacking_window_ms']:.1f} ms")
    lines.append(f"answered via     : {source}")
    return "\n".join(lines)


def _retry_after_seconds(headers, fallback: float = 1.0) -> float:
    """Parse a ``Retry-After`` header (seconds form), clamped to keep a
    hostile or buggy server from pinning the client for minutes."""
    raw = headers.get("Retry-After") if headers is not None else None
    try:
        seconds = float(raw)
    except (TypeError, ValueError):
        seconds = fallback
    return min(max(seconds, 0.05), 30.0)


def _cmd_query(args: argparse.Namespace) -> int:
    from .serve import FeasibilityQuery

    try:
        query = FeasibilityQuery(
            device=args.device,
            android_version=args.android,
            faults=args.faults,
            attacker=args.attacker,
            user=args.user,
            d_min_ms=args.d_min,
            d_max_ms=args.d_max,
            d_step_ms=args.d_step,
            trials_per_d=args.trials,
            trial_duration_ms=args.trial_ms,
            probe_chars=args.probe_chars,
            probe_trials=args.probe_trials,
            seed=args.seed,
        )
    except (KeyError, ValueError) as exc:
        message = exc.args[0] if exc.args else exc
        print(f"repro query: invalid query: {message}", file=sys.stderr)
        return 2

    if args.url is None:
        from .api import query_feasibility

        report = query_feasibility(query).to_dict()
        source = "in-process"
    else:
        import time as time_module
        import urllib.error
        import urllib.request

        request = urllib.request.Request(
            args.url.rstrip("/") + "/query",
            data=query.canonical_json().encode("utf-8"),
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        # Bounded retry against an overloaded service: a 503 carries a
        # Retry-After the server chose; we honor it (clamped) up to
        # --retry times, so a storm against an open breaker backs off
        # and succeeds once the breaker half-opens.
        attempts = max(0, args.retry) + 1
        payload = None
        for attempt in range(1, attempts + 1):
            try:
                with urllib.request.urlopen(request,
                                            timeout=args.timeout) as resp:
                    payload = json.loads(resp.read())
                break
            except urllib.error.HTTPError as exc:
                try:
                    payload = json.loads(exc.read())
                except ValueError:
                    payload = {"error": f"HTTP {exc.code}"}
                if exc.code == 503:
                    if attempt < attempts:
                        delay = _retry_after_seconds(exc.headers)
                        print(f"repro query: service overloaded "
                              f"({payload.get('reason', 'unknown')}); "
                              f"retry {attempt}/{attempts - 1} in "
                              f"{delay:g}s", file=sys.stderr)
                        time_module.sleep(delay)
                        continue
                    print(f"repro query: {payload.get('error', exc)} "
                          f"(gave up after {attempts} attempt(s))",
                          file=sys.stderr)
                    return 1
                if "failure" in payload and payload["failure"] is not None:
                    failure = payload["failure"]
                    print(f"repro query: query FAILED ({failure['kind']}, "
                          f"{failure['attempts']} attempt(s)): "
                          f"{failure['error']}", file=sys.stderr)
                    return 1
                print(f"repro query: {payload.get('error', exc)}",
                      file=sys.stderr)
                return 2
            except (urllib.error.URLError, OSError) as exc:
                print(f"repro query: cannot reach {args.url}: {exc}",
                      file=sys.stderr)
                return 1
        assert payload is not None
        report = payload["report"]
        source = payload["provenance"]["source"]

    if args.json:
        print(json.dumps(report, sort_keys=True))
    else:
        print(_format_feasibility(report, source))
    return 0


def _cmd_fsck(args: argparse.Namespace) -> int:
    from .experiments.resilience import JournalError
    from .storage import format_fsck, fsck_run_dir

    try:
        report = fsck_run_dir(args.run_dir, sweep=args.sweep)
    except JournalError as exc:
        print(f"repro fsck: {exc}", file=sys.stderr)
        return 2
    print(format_fsck(report), end="")
    return 0 if report.ok else 1


def _cmd_fig6(args: argparse.Namespace) -> int:
    from .systemui.render import render_outcome_gallery

    print("Fig. 6 — possible outcomes of the notification view:")
    print(render_outcome_gallery())
    return 0


def _cmd_probe(args: argparse.Namespace) -> int:
    from .attacks.device_probe import DeviceProber

    prober = DeviceProber()
    if args.device:
        profiles = [_resolve_device(args.device, args.android)]
    else:
        profiles = DEVICES
    print(f"{'device':44s} {'source':>18s} {'chosen D (ms)':>14s}")
    for profile in profiles:
        result = prober.probe(profile)
        print(f"{profile.key:44s} {result.source:>18s} "
              f"{result.chosen_window_ms:14.0f}")
    return 0


def _fault_profile_names():
    from .sim.faults import PROFILES

    return tuple(sorted(PROFILES))


def _nonnegative_int(text: str) -> int:
    value = int(text)
    if value < 0:
        raise argparse.ArgumentTypeError(
            f"must be >= 0 (0 = one worker per core), got {value}"
        )
    return value


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Implication of Animation on Android "
                    "Security' (ICDCS 2022)",
    )
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("devices", help="list the 30 evaluation devices")

    attack = sub.add_parser("attack", help="run the overlay attack once")
    attack.add_argument("--device", help="device model (default: pixel 2)")
    attack.add_argument("--android", help="Android version label, for "
                                          "ambiguous models (e.g. mi8)")
    attack.add_argument("--window", type=float, default=None,
                        help="attacking window D in ms (default: device "
                             "bound - 10)")
    attack.add_argument("--duration", type=float, default=5000.0,
                        help="attack duration in simulated ms")
    attack.add_argument("--seed", type=int, default=1)
    attack.add_argument("--faults", choices=_fault_profile_names(),
                        default="none",
                        help="deterministic fault-injection profile")

    diagram = sub.add_parser("diagram", help="render Fig. 3 / Fig. 5 charts")
    diagram.add_argument("figure", choices=("overlay", "toast"))
    diagram.add_argument("--device", help="device model")
    diagram.add_argument("--android", help="Android version label")
    diagram.add_argument("--duration", type=float, default=500.0)
    diagram.add_argument("--seed", type=int, default=2)

    report = sub.add_parser("report", help="run the full reproduction suite")
    report.add_argument("--scale", choices=("smoke", "quick", "full"),
                        default="quick")
    report.add_argument("--verbose", action="store_true",
                        help="per-experiment progress + timing appendix")
    report.add_argument("--jobs", type=_nonnegative_int, default=1,
                        help="worker processes (0 = one per core; results "
                             "are identical at any job count)")
    report.add_argument("--no-cache", action="store_true",
                        help="disable the on-disk experiment result cache")
    report.add_argument("--cache-dir", type=Path, default=None,
                        help="cache root (default: $REPRO_CACHE_DIR or "
                             "~/.cache/repro/experiments)")
    report.add_argument("--faults", choices=_fault_profile_names(),
                        default="none",
                        help="run every experiment under this fault "
                             "profile (cached separately per profile)")
    report.add_argument("--metrics-out", type=Path, default=None,
                        help="collect metrics during the run and write "
                             "metrics.jsonl + metrics.prom into this "
                             "directory (disables the result cache)")
    report.add_argument("--profile-dir", type=Path, default=None,
                        help="dump a cProfile <experiment>.prof per "
                             "experiment into this directory (disables "
                             "the result cache)")
    report.add_argument("--retries", type=_nonnegative_int, default=0,
                        help="retry each failed experiment up to N extra "
                             "times with deterministic backoff")
    report.add_argument("--deadline", type=float, default=None,
                        help="per-experiment wall-clock deadline in "
                             "seconds; overruns count as failures")
    report.add_argument("--fail-fast", action="store_true",
                        help="abort on the first permanent experiment "
                             "failure instead of degrading gracefully")
    report.add_argument("--failures-out", type=Path, default=None,
                        help="write a machine-readable JSON failure "
                             "summary to this file")
    report.add_argument("--run-dir", type=Path, default=None,
                        help="journal per-experiment completions under "
                             "this directory (enables --resume later)")
    report.add_argument("--resume", type=Path, default=None, metavar="RUN_DIR",
                        help="resume a journaled run, re-executing only "
                             "the experiments missing from RUN_DIR")

    metrics = sub.add_parser(
        "metrics",
        help="run the suite with metrics collection and export the "
             "aggregated series",
    )
    metrics.add_argument("--scale", choices=("smoke", "quick", "full"),
                         default="quick")
    metrics.add_argument("--jobs", type=_nonnegative_int, default=1,
                         help="worker processes (0 = one per core)")
    metrics.add_argument("--faults", choices=_fault_profile_names(),
                         default="none",
                         help="deterministic fault-injection profile")
    metrics.add_argument("--out", type=Path, default=None,
                         help="write metrics.jsonl + metrics.prom here "
                              "(default: print Prometheus text to stdout)")

    experiments = sub.add_parser(
        "experiments", help="inspect the experiment / scenario registry"
    )
    experiments.add_argument(
        "--list", action="store_true",
        help="list runnable experiments and registered trial scenarios")
    experiments.add_argument(
        "--run", default=None, metavar="NAME",
        help="run one named experiment and print its result "
             "(exit 1 on failure)")
    experiments.add_argument("--scale", choices=("smoke", "quick", "full"),
                             default="quick")

    actors = sub.add_parser(
        "actors", help="inspect the attacker/user/channel model registries"
    )
    actors.add_argument(
        "--list", action="store_true",
        help="list registered behavior models (the default action)")

    campaign = sub.add_parser(
        "campaign",
        help="run a sharded fleet sweep over a ScenarioMatrix JSON spec",
    )
    campaign.add_argument("--matrix", type=Path, required=True,
                          help="JSON matrix spec (see "
                               "repro.experiments.campaign.matrix_from_spec)")
    campaign.add_argument("--shards", type=int, default=8,
                          help="work units the matrix is split into — the "
                               "checkpoint/retry granularity; never affects "
                               "results (default: 8)")
    campaign.add_argument("--jobs", type=_nonnegative_int, default=1,
                          help="worker processes (0 = one per core; "
                               "aggregates are identical at any job count)")
    campaign.add_argument("--group-by",
                          choices=("none", "device", "version", "faults"),
                          default="none",
                          help="aggregate trials separately per group "
                               "(default: one 'all' group)")
    campaign.add_argument("--out", type=Path, default=None,
                          help="write the canonical aggregates JSON here "
                               "(bit-identical across shard/job counts)")
    campaign.add_argument("--retries", type=_nonnegative_int, default=0,
                          help="retry each failed shard up to N extra times "
                               "with deterministic backoff")
    campaign.add_argument("--deadline", type=float, default=None,
                          help="per-shard wall-clock deadline in seconds; "
                               "overruns count as failures")
    campaign.add_argument("--fail-fast", action="store_true",
                          help="abort on the first permanent shard failure")
    campaign.add_argument("--verbose", action="store_true",
                          help="per-shard progress lines")
    campaign.add_argument("--run-dir", type=Path, default=None,
                          help="journal per-shard completions under this "
                               "directory (enables --resume later)")
    campaign.add_argument("--resume", type=Path, default=None,
                          metavar="RUN_DIR",
                          help="resume a journaled campaign, re-running only "
                               "the shards missing from RUN_DIR")

    serve = sub.add_parser(
        "serve",
        help="boot the attack-feasibility query service (HTTP)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8765,
                       help="TCP port (0 picks a free one; default: 8765)")
    serve.add_argument("--workers", type=int, default=2,
                       help="pool worker processes, each keeping a warm "
                            "stack pool between jobs (default: 2)")
    serve.add_argument("--queue-limit", type=int, default=32,
                       help="admission high-watermark: requests beyond it "
                            "get 503 + Retry-After (default: 32)")
    serve.add_argument("--cache-dir", type=Path, default=None,
                       help="persist answered queries here (default: "
                            "memory-only, dies with the service)")
    serve.add_argument("--retries", type=_nonnegative_int, default=0,
                       help="retry each failed query up to N extra times "
                            "with deterministic backoff")
    serve.add_argument("--deadline", type=float, default=None,
                       help="per-query wall-clock deadline in seconds; "
                            "overruns degrade to structured failures")
    serve.add_argument("--breaker-window", type=int, default=16,
                       help="circuit-breaker outcome window (default: 16)")
    serve.add_argument("--breaker-failures", type=int, default=8,
                       help="failures in the window that open the breaker; "
                            "0 disables it (default: 8)")
    serve.add_argument("--breaker-cooldown", type=int, default=8,
                       help="requests an open breaker sheds before "
                            "admitting one half-open probe (default: 8)")
    serve.add_argument("--retry-after", type=float, default=1.0,
                       help="Retry-After seconds attached to shed 503 "
                            "responses (default: 1.0)")
    serve.set_defaults(fail_fast=False)

    query = sub.add_parser(
        "query",
        help="answer one feasibility query (in-process, or --url for a "
             "running service)",
    )
    query.add_argument("--device", required=True,
                       help="device model (e.g. 'pixel 2')")
    query.add_argument("--android", default=None,
                       help="Android version label, for ambiguous models")
    query.add_argument("--faults", choices=_fault_profile_names(),
                       default="none",
                       help="deterministic fault-injection profile")
    query.add_argument("--attacker", default="draw-and-destroy",
                       help="registered attacker model label")
    query.add_argument("--user", default="stochastic-human",
                       help="registered user model label")
    query.add_argument("--d-min", type=float, default=50.0,
                       help="smallest attacking window D in ms")
    query.add_argument("--d-max", type=float, default=200.0,
                       help="largest attacking window D in ms")
    query.add_argument("--d-step", type=float, default=25.0,
                       help="sweep step in ms")
    query.add_argument("--trials", type=int, default=3,
                       help="trials per grid point")
    query.add_argument("--trial-ms", type=float, default=2000.0,
                       help="simulated attack duration per trial")
    query.add_argument("--probe-chars", type=int, default=8,
                       help="characters typed in the capture probe "
                            "(0 skips it)")
    query.add_argument("--probe-trials", type=int, default=2)
    query.add_argument("--seed", type=int, default=20220701)
    query.add_argument("--url", default=None,
                       help="a running `repro serve` base URL "
                            "(e.g. http://127.0.0.1:8765); default is "
                            "in-process execution")
    query.add_argument("--timeout", type=float, default=600.0,
                       help="HTTP timeout in seconds (with --url)")
    query.add_argument("--retry", type=_nonnegative_int, default=5,
                       help="extra attempts when the service sheds with "
                            "503, honoring its Retry-After (with --url; "
                            "default: 5, 0 disables)")
    query.add_argument("--json", action="store_true",
                       help="print the raw report JSON instead of the "
                            "human summary")

    fsck = sub.add_parser(
        "fsck",
        help="verify a journaled run directory offline (envelope "
             "checksums, manifest consistency, orphaned temp files)",
    )
    fsck.add_argument("--run-dir", type=Path, required=True,
                      help="a --run-dir previously written by "
                           "`repro report` or `repro campaign`")
    fsck.add_argument("--sweep", action="store_true",
                      help="also unlink orphaned *.tmp files")

    sub.add_parser("fig6", help="render the five Λ outcomes (paper Fig. 6)")

    probe = sub.add_parser(
        "probe", help="show the malware's device-aware choice of D"
    )
    probe.add_argument("--device", help="device model (default: all 30)")
    probe.add_argument("--android", help="Android version label")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "devices": _cmd_devices,
        "attack": _cmd_attack,
        "diagram": _cmd_diagram,
        "report": _cmd_report,
        "metrics": _cmd_metrics,
        "experiments": _cmd_experiments,
        "actors": _cmd_actors,
        "campaign": _cmd_campaign,
        "serve": _cmd_serve,
        "query": _cmd_query,
        "fsck": _cmd_fsck,
        "fig6": _cmd_fig6,
        "probe": _cmd_probe,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
