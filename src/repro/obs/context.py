"""Ambient metrics registry, mirroring the fault-profile pattern.

``use_metrics`` installs a registry for a dynamic extent; ``build_stack``
and ``Simulation`` resolve ``current_metrics()`` at construction time when
no registry is passed explicitly. No registry installed (the default)
means instrumentation resolves to ``None`` and hot paths skip all metric
work behind a single ``is not None`` check.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional

from .metrics import MetricsRegistry

_current: Optional[MetricsRegistry] = None


def current_metrics() -> Optional[MetricsRegistry]:
    """The ambiently installed registry, or ``None`` when disabled."""
    return _current


@contextmanager
def use_metrics(registry: Optional[MetricsRegistry]) -> Iterator[Optional[MetricsRegistry]]:
    """Install ``registry`` as the ambient metrics sink for the extent.

    Passing ``None`` explicitly disables metrics inside the block even if
    an outer block installed a registry.
    """
    global _current
    previous = _current
    _current = registry
    try:
        yield registry
    finally:
        _current = previous
