"""Export metric snapshots as JSONL and Prometheus text.

Both formats consume the same :class:`~repro.obs.metrics.MetricSample`
rows that ``MetricsRegistry.samples()`` produces, so anything the
registry can snapshot — a live run, a merged multi-worker aggregate, or
samples rebuilt from a serialized ``AllResults`` — exports identically.
"""

from __future__ import annotations

import json
import math
from typing import Iterable, List

from .metrics import MetricSample

#: The Prometheus text exposition content type, for HTTP endpoints that
#: serve :func:`render_prometheus` output live.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def render_registry(registry) -> str:
    """Prometheus text for a live registry — the ``/metrics`` body."""
    return render_prometheus(registry.samples())


def to_jsonl(samples: Iterable[MetricSample]) -> str:
    """One JSON object per sample, in registry (name, labels) order."""
    lines = []
    for sample in samples:
        row = sample.to_dict()
        # JSON has no inf; the overflow bucket bound serializes as null.
        if row.get("buckets"):
            row["buckets"] = [
                [None if math.isinf(bound) else bound, count]
                for bound, count in row["buckets"]
            ]
        lines.append(json.dumps(row, sort_keys=True))
    return "\n".join(lines) + ("\n" if lines else "")


def _format_value(value: float) -> str:
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _format_labels(pairs) -> str:
    if not pairs:
        return ""
    body = ",".join(f'{k}="{v}"' for k, v in pairs)
    return "{" + body + "}"


def render_prometheus(samples: Iterable[MetricSample]) -> str:
    """Prometheus text exposition format (type comments + series lines).

    Histogram buckets are emitted cumulatively with ``le`` labels plus
    ``_sum`` and ``_count`` series, per the exposition format spec.
    """
    by_name: dict = {}
    for sample in samples:
        by_name.setdefault(sample.name, []).append(sample)

    out: List[str] = []
    for name in sorted(by_name):
        group = by_name[name]
        kind = group[0].kind
        out.append(f"# TYPE {name} {kind}")
        for sample in group:
            if sample.kind != kind:
                raise ValueError(
                    f"metric {name!r} has mixed kinds {kind!r}/{sample.kind!r}"
                )
            if kind in ("counter", "gauge"):
                out.append(
                    f"{name}{_format_labels(sample.labels)} "
                    f"{_format_value(sample.value or 0.0)}"
                )
                continue
            cumulative = 0
            for bound, bucket_count in (sample.buckets or ()):
                cumulative += bucket_count
                le_labels = sample.labels + (("le", _format_value(bound)),)
                out.append(
                    f"{name}_bucket{_format_labels(le_labels)} {cumulative}"
                )
            base = _format_labels(sample.labels)
            out.append(f"{name}_sum{base} {_format_value(sample.sum or 0.0)}")
            out.append(f"{name}_count{base} {sample.count or 0}")
    return "\n".join(out) + ("\n" if out else "")
