"""Low-overhead metrics: counters, gauges and streaming histograms.

The observability plane of the simulator. Three design rules keep it safe
to wire into kernel hot paths:

* **Observation only** — instruments never touch the scheduler, the clock
  or any random stream, so enabling metrics cannot perturb a simulation
  (the determinism suite pins the QUICK golden report byte-identical with
  metrics on and off).
* **Disabled means absent** — components hold ``Optional`` instrument
  references resolved once at construction. With no registry installed the
  hot-path cost is a single ``is not None`` check; there is no null-object
  indirection to pay for.
* **Fixed memory** — histograms are streaming: fixed bucket counts plus
  running count/sum/min/max. Quantiles (p50/p95/p99) are estimated from
  the buckets at snapshot time, never from retained samples.

Snapshots are :class:`MetricSample` rows — frozen, serializable, and the
unit both export formats (JSONL and Prometheus text,
:mod:`repro.obs.export`) consume.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from ..serialization import SerializableMixin

Labels = Tuple[Tuple[str, str], ...]

#: Default histogram bucket upper bounds (ms-flavoured, geometric-ish).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0,
    250.0, 500.0, 1000.0, 2500.0, 5000.0, 10000.0,
)

#: Quantiles reported in every histogram snapshot.
SUMMARY_QUANTILES: Tuple[float, ...] = (0.5, 0.95, 0.99)


def _freeze_labels(labels: Optional[Mapping[str, str]]) -> Labels:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


@dataclass(frozen=True)
class MetricSample(SerializableMixin):
    """One exported metric value: the snapshot unit of the registry.

    ``kind`` is ``"counter"``, ``"gauge"`` or ``"histogram"``. Counters and
    gauges carry ``value``; histograms carry ``count``/``sum``/``min``/
    ``max``, per-bucket (non-cumulative) counts and bucket-estimated
    quantiles. Unused fields stay ``None`` so one row type serves all
    three kinds uniformly.
    """

    name: str
    kind: str
    labels: Labels = ()
    value: Optional[float] = None
    count: Optional[int] = None
    sum: Optional[float] = None
    min: Optional[float] = None
    max: Optional[float] = None
    #: ``((upper_bound, count), ...)``; the last bound is ``inf``.
    buckets: Optional[Tuple[Tuple[float, int], ...]] = None
    p50: Optional[float] = None
    p95: Optional[float] = None
    p99: Optional[float] = None

    @property
    def key(self) -> Tuple[str, Labels]:
        return (self.name, self.labels)

    def label_dict(self) -> Dict[str, str]:
        return dict(self.labels)


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("name", "labels", "_value")

    def __init__(self, name: str, labels: Labels = ()) -> None:
        self.name = name
        self.labels = labels
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def sample(self) -> MetricSample:
        return MetricSample(name=self.name, kind="counter",
                            labels=self.labels, value=self._value)


class Gauge:
    """Last-written value."""

    __slots__ = ("name", "labels", "_value")

    def __init__(self, name: str, labels: Labels = ()) -> None:
        self.name = name
        self.labels = labels
        self._value = 0.0

    def set(self, value: float) -> None:
        self._value = float(value)

    @property
    def value(self) -> float:
        return self._value

    def sample(self) -> MetricSample:
        return MetricSample(name=self.name, kind="gauge",
                            labels=self.labels, value=self._value)


class Histogram:
    """Streaming histogram: fixed buckets + running summary statistics.

    ``observe`` is the hot-path call: one bisect over the bucket bounds
    plus four scalar updates. Quantiles are derived lazily at snapshot
    time by linear interpolation inside the covering bucket, clamped to
    the observed ``[min, max]`` range.
    """

    __slots__ = ("name", "labels", "_bounds", "_counts",
                 "_count", "_sum", "_min", "_max")

    def __init__(self, name: str, labels: Labels = (),
                 buckets: Tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        if not buckets or tuple(sorted(buckets)) != tuple(buckets):
            raise ValueError(f"bucket bounds must be sorted, got {buckets!r}")
        self.name = name
        self.labels = labels
        self._bounds: Tuple[float, ...] = tuple(float(b) for b in buckets)
        # one overflow bucket past the last bound (upper bound +inf)
        self._counts: List[int] = [0] * (len(self._bounds) + 1)
        self._count = 0
        self._sum = 0.0
        self._min = float("inf")
        self._max = float("-inf")

    def observe(self, value: float) -> None:
        self._count += 1
        self._sum += value
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value
        self._counts[bisect_left(self._bounds, value)] += 1

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    def quantile(self, q: float) -> Optional[float]:
        """Bucket-interpolated quantile estimate, or ``None`` when empty."""
        if self._count == 0:
            return None
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        rank = q * self._count
        cumulative = 0
        for i, bucket_count in enumerate(self._counts):
            if bucket_count == 0:
                continue
            if cumulative + bucket_count >= rank:
                lower = self._bounds[i - 1] if i > 0 else min(self._min, self._bounds[0])
                upper = self._bounds[i] if i < len(self._bounds) else self._max
                lower = max(lower, self._min)
                upper = min(upper, self._max)
                if upper <= lower:
                    return lower
                fraction = (rank - cumulative) / bucket_count
                return lower + (upper - lower) * fraction
            cumulative += bucket_count
        return self._max

    def sample(self) -> MetricSample:
        bounds = self._bounds + (float("inf"),)
        quantiles = [self.quantile(q) for q in SUMMARY_QUANTILES]
        return MetricSample(
            name=self.name,
            kind="histogram",
            labels=self.labels,
            count=self._count,
            sum=self._sum,
            min=self._min if self._count else None,
            max=self._max if self._count else None,
            buckets=tuple(zip(bounds, tuple(self._counts))),
            p50=quantiles[0],
            p95=quantiles[1],
            p99=quantiles[2],
        )


class MetricsRegistry:
    """Factory and snapshot surface for a family of instruments.

    ``counter``/``gauge``/``histogram`` create-or-return the instrument
    registered under ``(name, labels)`` — components resolve instruments
    once at construction and keep direct references, so the registry's
    dict lookup never sits on a hot path.
    """

    def __init__(self) -> None:
        self._instruments: Dict[Tuple[str, Labels], object] = {}

    # ------------------------------------------------------------------
    def _get(self, cls, name: str, labels: Optional[Mapping[str, str]],
             **kwargs):
        key = (name, _freeze_labels(labels))
        instrument = self._instruments.get(key)
        if instrument is None:
            instrument = cls(name, key[1], **kwargs)
            self._instruments[key] = instrument
        elif not isinstance(instrument, cls):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(instrument).__name__}, not {cls.__name__}"
            )
        return instrument

    def counter(self, name: str,
                labels: Optional[Mapping[str, str]] = None) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str,
              labels: Optional[Mapping[str, str]] = None) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(self, name: str,
                  labels: Optional[Mapping[str, str]] = None,
                  buckets: Tuple[float, ...] = DEFAULT_BUCKETS) -> Histogram:
        return self._get(Histogram, name, labels, buckets=buckets)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._instruments)

    def samples(self) -> Tuple[MetricSample, ...]:
        """Snapshot every instrument, sorted by ``(name, labels)``."""
        rows = [instrument.sample()  # type: ignore[attr-defined]
                for instrument in self._instruments.values()]
        return tuple(sorted(rows, key=lambda s: s.key))

    def ingest(self, samples: Iterable[MetricSample]) -> None:
        """Merge foreign samples (e.g. from a worker process) into this
        registry: counters add, gauges overwrite, histograms merge bucket
        counts and summary statistics."""
        for s in samples:
            labels = s.label_dict()
            if s.kind == "counter":
                self.counter(s.name, labels).inc(s.value or 0.0)
            elif s.kind == "gauge":
                self.gauge(s.name, labels).set(s.value or 0.0)
            elif s.kind == "histogram":
                if not s.buckets:
                    continue
                bounds = tuple(b for b, _ in s.buckets[:-1])
                hist = self.histogram(s.name, labels, buckets=bounds)
                for i, (_, bucket_count) in enumerate(s.buckets):
                    hist._counts[i] += bucket_count
                hist._count += s.count or 0
                hist._sum += s.sum or 0.0
                if s.min is not None and s.min < hist._min:
                    hist._min = s.min
                if s.max is not None and s.max > hist._max:
                    hist._max = s.max
            else:
                raise ValueError(f"unknown metric kind {s.kind!r}")


def merge_samples(
    sample_sets: Iterable[Iterable[MetricSample]],
) -> Tuple[MetricSample, ...]:
    """Aggregate several snapshots into one (summing across sets)."""
    registry = MetricsRegistry()
    for samples in sample_sets:
        registry.ingest(samples)
    return registry.samples()


def diff_samples(
    before: Iterable[MetricSample],
    after: Iterable[MetricSample],
) -> Tuple[MetricSample, ...]:
    """What happened *between* two snapshots of one registry.

    Counters and histogram buckets subtract; gauges report their ``after``
    value (a gauge has no meaningful delta). A diffed histogram's min/max
    are unknown for the window, so its quantiles are re-estimated from the
    diffed buckets alone, bounded by the first/last non-empty bucket.
    This is how per-trial snapshots attach to ``TrialOutcome``: diff the
    experiment registry around each trial.
    """
    by_key = {s.key: s for s in before}
    out = []
    for s in after:
        prev = by_key.get(s.key)
        if s.kind in ("counter", "gauge"):
            value = s.value or 0.0
            if s.kind == "counter" and prev is not None:
                value -= prev.value or 0.0
            out.append(MetricSample(name=s.name, kind=s.kind,
                                    labels=s.labels, value=value))
            continue
        if not s.buckets:
            out.append(s)
            continue
        prev_counts = {b: c for b, c in (prev.buckets or ())} if prev else {}
        counts = [c - prev_counts.get(b, 0) for b, c in s.buckets]
        bounds = tuple(b for b, _ in s.buckets[:-1])
        hist = Histogram(s.name, s.labels, buckets=bounds)
        hist._counts = counts
        hist._count = (s.count or 0) - ((prev.count or 0) if prev else 0)
        hist._sum = (s.sum or 0.0) - ((prev.sum or 0.0) if prev else 0.0)
        nonzero = [i for i, c in enumerate(counts) if c]
        if nonzero:
            hist._min = 0.0 if nonzero[0] == 0 else bounds[nonzero[0] - 1]
            hist._max = bounds[min(nonzero[-1], len(bounds) - 1)]
        out.append(hist.sample())
    return tuple(sorted(out, key=lambda s: s.key))


@dataclass(frozen=True)
class ExperimentMetrics(SerializableMixin):
    """One experiment's metric snapshot, as attached to ``AllResults``."""

    name: str
    samples: Tuple[MetricSample, ...] = field(default_factory=tuple)
