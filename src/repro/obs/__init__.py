"""``repro.obs`` — the metrics and profiling subsystem.

A :class:`MetricsRegistry` of counters, gauges and streaming histograms
is threaded through the simulation kernel (scheduler, Binder router,
compositor/animator, toast queue) and the experiment layer (trial
engine, parallel runner). Install one ambiently with :func:`use_metrics`
or pass it to ``build_stack(metrics=...)`` / ``run_all(collect_metrics=True)``;
snapshot with ``registry.samples()`` and export via :func:`to_jsonl` or
:func:`render_prometheus`. See ``docs/ARCHITECTURE.md`` §10.
"""

from .context import current_metrics, use_metrics
from .export import (
    PROMETHEUS_CONTENT_TYPE,
    render_prometheus,
    render_registry,
    to_jsonl,
)
from .metrics import (
    DEFAULT_BUCKETS,
    Counter,
    ExperimentMetrics,
    Gauge,
    Histogram,
    MetricSample,
    MetricsRegistry,
    diff_samples,
    merge_samples,
)

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "ExperimentMetrics",
    "Gauge",
    "Histogram",
    "MetricSample",
    "MetricsRegistry",
    "PROMETHEUS_CONTENT_TYPE",
    "current_metrics",
    "diff_samples",
    "merge_samples",
    "render_prometheus",
    "render_registry",
    "to_jsonl",
    "use_metrics",
]
