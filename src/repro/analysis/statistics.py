"""Statistics helpers for experiment results.

Small, dependency-light tools: summary statistics, bootstrap confidence
intervals (for capture rates and success rates, which are means of
bounded per-participant values), and binomial Wilson intervals.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence

from ..sim.rng import SeededRng


@dataclass(frozen=True)
class Summary:
    """Five-number-ish summary of a sample."""

    count: int
    mean: float
    std: float
    minimum: float
    median: float
    maximum: float


def summarize(values: Sequence[float]) -> Summary:
    if not values:
        raise ValueError("cannot summarize an empty sample")
    ordered = sorted(values)
    n = len(ordered)
    mean = sum(ordered) / n
    variance = sum((v - mean) ** 2 for v in ordered) / n if n > 1 else 0.0
    mid = n // 2
    median = ordered[mid] if n % 2 else (ordered[mid - 1] + ordered[mid]) / 2
    return Summary(
        count=n,
        mean=mean,
        std=math.sqrt(variance),
        minimum=ordered[0],
        median=median,
        maximum=ordered[-1],
    )


@dataclass(frozen=True)
class ConfidenceInterval:
    lower: float
    upper: float
    level: float

    def contains(self, value: float) -> bool:
        return self.lower <= value <= self.upper

    @property
    def width(self) -> float:
        return self.upper - self.lower


def bootstrap_mean_ci(
    values: Sequence[float],
    level: float = 0.95,
    resamples: int = 2000,
    seed: int = 0,
) -> ConfidenceInterval:
    """Percentile-bootstrap CI for the sample mean."""
    if not values:
        raise ValueError("cannot bootstrap an empty sample")
    if not 0.0 < level < 1.0:
        raise ValueError(f"level must be in (0, 1), got {level}")
    rng = SeededRng(seed, "bootstrap")
    data = list(values)
    n = len(data)
    means: List[float] = []
    for _ in range(resamples):
        total = 0.0
        for _ in range(n):
            total += data[rng.randint(0, n - 1)]
        means.append(total / n)
    means.sort()
    alpha = (1.0 - level) / 2.0
    lo_index = max(0, int(alpha * resamples) - 1)
    hi_index = min(resamples - 1, int((1.0 - alpha) * resamples))
    return ConfidenceInterval(means[lo_index], means[hi_index], level)


def wilson_interval(successes: int, trials: int, level: float = 0.95) -> ConfidenceInterval:
    """Wilson score interval for a binomial proportion (e.g., Table III
    success rates)."""
    if trials <= 0:
        raise ValueError(f"trials must be positive, got {trials}")
    if not 0 <= successes <= trials:
        raise ValueError(f"successes {successes} out of range for {trials} trials")
    z = {0.90: 1.6449, 0.95: 1.9600, 0.99: 2.5758}.get(round(level, 2))
    if z is None:
        raise ValueError(f"unsupported level {level}; use 0.90/0.95/0.99")
    p = successes / trials
    denom = 1.0 + z * z / trials
    center = (p + z * z / (2 * trials)) / denom
    spread = z * math.sqrt(p * (1 - p) / trials + z * z / (4 * trials * trials)) / denom
    return ConfidenceInterval(max(0.0, center - spread),
                              min(1.0, center + spread), level)
