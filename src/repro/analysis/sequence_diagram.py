"""Render message-sequence charts from simulation traces.

The paper's Fig. 3 (draw-and-destroy overlay attack) and Fig. 5
(draw-and-destroy toast attack) are entity-interaction diagrams. Because
the simulation records every Binder transaction and service action in its
trace, the same diagrams can be rendered from an actual run — a strong
check that the implemented protocol matches the published one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..sim.tracing import TraceLog, TraceRecord


@dataclass(frozen=True)
class DiagramEvent:
    """One row of a sequence diagram."""

    time: float
    lane: str
    text: str
    arrow_to: Optional[str] = None


#: trace kind -> (lane, human label, arrow target lane or None)
_KIND_RENDERING = {
    "binder.transact": None,  # handled specially (sender -> receiver)
    "wms.window_added": ("System Server", "window added: {label}", None),
    "wms.window_removed": ("System Server", "window removed: {label}", None),
    "wms.creating_window": ("System Server", "creating window ({tas_ms} ms)", None),
    "wms.notification_cancelled_before_post": (
        "System Server", "notification cancelled before post", None),
    "systemui.view_requested": ("System UI", "creating notification view", None),
    "systemui.animation_started": ("System UI", "startTopAnimation()", None),
    "systemui.alert_removed": ("System UI", "alert removed ({outcome})", None),
    "systemui.view_cancelled_precreation": (
        "System UI", "view creation cancelled", None),
    "nms.toast_enqueued": ("System Server", "token enqueued (queue={queue_len})", None),
    "nms.toast_shown": ("System Server", "toast #{toast_id} shown", None),
    "nms.toast_fading_out": (
        "System Server", "toast #{toast_id} fade-out (removeView)", None),
    "nms.toast_removed": ("System Server", "toast #{toast_id} removed", None),
    "attack.overlay_started": ("Malicious App", "attack started (D={d_ms} ms)", None),
    "attack.overlay_stopped": ("Malicious App", "attack stopped", None),
    "attack.toast_started": ("Malicious App", "toast attack started", None),
}

_LANE_OF_PROCESS = {
    "system_server": "System Server",
    "system_ui": "System UI",
    "notification_manager": "System Server",
    "binder": "Binder",
}


def _lane_for(source: str) -> str:
    return _LANE_OF_PROCESS.get(source, "Malicious App")


def extract_events(
    trace: TraceLog,
    start_ms: float = 0.0,
    end_ms: float = float("inf"),
    kinds: Optional[Sequence[str]] = None,
) -> List[DiagramEvent]:
    """Pull renderable events out of a trace window."""
    events: List[DiagramEvent] = []
    for record in trace:
        if not start_ms <= record.time <= end_ms:
            continue
        if kinds is not None and record.kind not in kinds:
            continue
        event = _render_record(record)
        if event is not None:
            events.append(event)
    return events


def _render_record(record: TraceRecord) -> Optional[DiagramEvent]:
    if record.kind == "binder.transact":
        sender = record.detail.get("sender", "?")
        receiver = record.detail.get("receiver", "?")
        method = record.detail.get("method", "?")
        return DiagramEvent(
            time=record.time,
            lane=_lane_for(sender),
            text=f"{method}()",
            arrow_to=_lane_for(receiver),
        )
    rendering = _KIND_RENDERING.get(record.kind)
    if rendering is None:
        return None
    lane, template, arrow = rendering
    try:
        text = template.format(**record.detail)
    except (KeyError, IndexError):
        text = template
    return DiagramEvent(time=record.time, lane=lane, text=text, arrow_to=arrow)


DEFAULT_LANES = ("Malicious App", "System Server", "System UI")


def render_ascii(
    events: Sequence[DiagramEvent],
    lanes: Sequence[str] = DEFAULT_LANES,
    lane_width: int = 30,
) -> str:
    """Render events as an ASCII sequence chart (one row per event)."""
    positions: Dict[str, int] = {
        lane: index * lane_width + lane_width // 2
        for index, lane in enumerate(lanes)
    }
    total_width = lane_width * len(lanes)
    lines: List[str] = []

    header = ""
    for lane in lanes:
        header += lane.center(lane_width)
    lines.append(" " * 12 + header)
    lines.append(" " * 12 + "|".center(lane_width) * len(lanes))

    label_slack = 48  # room for right-lane annotations past the last lane
    for event in events:
        row = [" "] * (total_width + label_slack)
        for position in positions.values():
            row[position] = "|"
        source = positions.get(event.lane)
        if source is None:
            continue
        if event.arrow_to is not None and event.arrow_to in positions \
                and event.arrow_to != event.lane:
            target = positions[event.arrow_to]
            lo, hi = sorted((source, target))
            for i in range(lo + 1, hi):
                row[i] = "-"
            row[target] = ">" if target > source else "<"
            label = f" {event.text} "
            mid = (lo + hi) // 2 - len(label) // 2
            for offset, char in enumerate(label):
                index = mid + offset
                if lo < index < hi:
                    row[index] = char
        else:
            label = f" {event.text}"
            for offset, char in enumerate(label):
                index = source + 1 + offset
                if index < total_width + label_slack:
                    row[index] = char
        lines.append(f"[{event.time:9.2f}] " + "".join(row).rstrip())
    return "\n".join(lines)


def render_overlay_attack_figure(trace: TraceLog, start_ms: float,
                                 end_ms: float) -> str:
    """Paper Fig. 3: entity interaction of the overlay attack."""
    kinds = (
        "binder.transact",
        "wms.creating_window",
        "wms.window_added",
        "wms.window_removed",
        "wms.notification_cancelled_before_post",
        "systemui.view_requested",
        "systemui.animation_started",
        "systemui.alert_removed",
        "systemui.view_cancelled_precreation",
    )
    events = [
        e for e in extract_events(trace, start_ms, end_ms, kinds)
        if "Toast" not in e.text
    ]
    return render_ascii(events)


def render_toast_attack_figure(trace: TraceLog, start_ms: float,
                               end_ms: float) -> str:
    """Paper Fig. 5: entity interaction of the toast attack."""
    kinds = (
        "binder.transact",
        "nms.toast_enqueued",
        "nms.toast_shown",
        "nms.toast_fading_out",
        "nms.toast_removed",
    )
    events = [
        e for e in extract_events(trace, start_ms, end_ms, kinds)
        if e.text not in ("addView()", "removeView()")
    ]
    return render_ascii(events, lanes=("Malicious App", "System Server"))
