"""Measuring actual mistouch exposure from a trace.

Paper Eq. (1)/(2) predict the total time no malicious overlay covers the
screen during an attack (the mistouch budget). The simulation's trace
records every window add/remove, so the *actual* uncovered time is
directly measurable — the empirical counterpart the closed form is
validated against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..sim.tracing import TraceLog


@dataclass(frozen=True)
class CoverageTimeline:
    """Windows of overlay presence for one app within [start, end]."""

    start_ms: float
    end_ms: float
    covered_intervals: Tuple[Tuple[float, float], ...]

    @property
    def covered_ms(self) -> float:
        return sum(b - a for a, b in self.covered_intervals)

    @property
    def uncovered_ms(self) -> float:
        return (self.end_ms - self.start_ms) - self.covered_ms

    @property
    def gap_count(self) -> int:
        """Number of uncovered gaps strictly inside the window."""
        gaps = 0
        cursor = self.start_ms
        for a, b in self.covered_intervals:
            if a > cursor:
                gaps += 1
            cursor = max(cursor, b)
        if cursor < self.end_ms:
            gaps += 1
        return gaps


def measure_overlay_coverage(
    trace: TraceLog,
    package: str,
    start_ms: float,
    end_ms: float,
) -> CoverageTimeline:
    """Reconstruct when ``package`` had >= 1 overlay on screen.

    Reads ``wms.window_added`` / ``wms.window_removed`` records. Windows
    already on screen at ``start_ms`` are accounted for by replaying the
    events from the beginning of the trace.
    """
    if end_ms < start_ms:
        raise ValueError(f"end {end_ms} before start {start_ms}")
    on_screen = 0
    covered_since: float = 0.0
    intervals: List[Tuple[float, float]] = []

    def clip_and_emit(a: float, b: float) -> None:
        a = max(a, start_ms)
        b = min(b, end_ms)
        if b > a:
            intervals.append((a, b))

    for record in trace:
        if record.detail.get("owner") != package:
            continue
        if record.kind == "wms.window_added":
            if on_screen == 0:
                covered_since = record.time
            on_screen += 1
        elif record.kind == "wms.window_removed":
            if on_screen > 0:
                on_screen -= 1
                if on_screen == 0:
                    clip_and_emit(covered_since, record.time)
        if record.time > end_ms and on_screen == 0:
            break
    if on_screen > 0:
        clip_and_emit(covered_since, end_ms)
    # Merge adjacent/overlapping intervals (paranoia; they are ordered).
    merged: List[Tuple[float, float]] = []
    for a, b in sorted(intervals):
        if merged and a <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], b))
        else:
            merged.append((a, b))
    return CoverageTimeline(
        start_ms=start_ms, end_ms=end_ms, covered_intervals=tuple(merged)
    )
