"""Trace persistence: JSON-lines export/import.

Long experiment runs produce traces worth keeping (for offline analysis,
diff-ing against future runs, or rendering sequence diagrams later).
JSONL keeps them streamable and greppable. Non-JSON-serializable detail
values (window objects, toasts) are stringified on export — the trace is
an observation record, not a pickle.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, List, Union

from ..sim.tracing import TraceLog, TraceRecord

PathLike = Union[str, Path]


def _jsonable(value):
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def record_to_dict(record: TraceRecord) -> dict:
    return {
        "time": record.time,
        "source": record.source,
        "kind": record.kind,
        "detail": {key: _jsonable(value) for key, value in record.detail.items()},
    }


def dict_to_record(payload: dict) -> TraceRecord:
    return TraceRecord(
        time=float(payload["time"]),
        source=str(payload["source"]),
        kind=str(payload["kind"]),
        detail=dict(payload.get("detail", {})),
    )


def export_jsonl(records: Iterable[TraceRecord], path: PathLike) -> int:
    """Write records to ``path`` as JSON lines; returns the count."""
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for record in records:
            handle.write(json.dumps(record_to_dict(record)) + "\n")
            count += 1
    return count


def load_jsonl(path: PathLike) -> List[TraceRecord]:
    """Read records back from a JSONL file."""
    records: List[TraceRecord] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                records.append(dict_to_record(json.loads(line)))
            except (json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
                raise ValueError(
                    f"{path}:{line_number}: malformed trace line"
                ) from exc
    return records


def load_into(path: PathLike, trace: TraceLog) -> int:
    """Append a stored trace into an existing :class:`TraceLog`."""
    records = load_jsonl(path)
    for record in records:
        trace.record(record.time, record.source, record.kind, **record.detail)
    return len(records)
