"""Analysis utilities: trace-driven sequence diagrams (the paper's Figs. 3
and 5), statistics helpers, and calibration/sensitivity tooling."""

from .calibration import (
    CalibrationCheck,
    SensitivityResult,
    ana_delay_ablation,
    check_all_calibrations,
    first_visible_frame_for,
    refresh_interval_sensitivity,
    tn_sensitivity,
    view_height_sensitivity,
)
from .sequence_diagram import (
    DiagramEvent,
    extract_events,
    render_ascii,
    render_overlay_attack_figure,
    render_toast_attack_figure,
)
from .replay import CapturedEvidence, extract_evidence, rederive_password
from .uncovered_time import CoverageTimeline, measure_overlay_coverage
from .trace_io import (
    dict_to_record,
    export_jsonl,
    load_into,
    load_jsonl,
    record_to_dict,
)
from .statistics import (
    ConfidenceInterval,
    Summary,
    bootstrap_mean_ci,
    summarize,
    wilson_interval,
)

__all__ = [
    "CalibrationCheck",
    "CapturedEvidence",
    "ConfidenceInterval",
    "DiagramEvent",
    "SensitivityResult",
    "Summary",
    "ana_delay_ablation",
    "bootstrap_mean_ci",
    "CoverageTimeline",
    "check_all_calibrations",
    "dict_to_record",
    "export_jsonl",
    "extract_events",
    "extract_evidence",
    "load_into",
    "load_jsonl",
    "measure_overlay_coverage",
    "record_to_dict",
    "rederive_password",
    "first_visible_frame_for",
    "refresh_interval_sensitivity",
    "render_ascii",
    "render_overlay_attack_figure",
    "render_toast_attack_figure",
    "summarize",
    "tn_sensitivity",
    "view_height_sensitivity",
    "wilson_interval",
]
