"""Calibration checks and sensitivity analysis of the device model.

Beyond the empirical boundary search (Table II), the timing model admits a
closed-form boundary prediction; this module compares the two and exposes
the sensitivities that explain the paper's observations:

* the boundary grows 1:1 with the notification-dispatch latency ``Tn`` —
  why the ANA delay on Android 10/11 helps the attacker;
* the boundary shrinks with the alert view height (a taller view shows a
  pixel earlier);
* refresh-interval changes shift the boundary only by frame quantization:
  more frequent frames each render less eased progress, so a 120 Hz panel
  does not simply halve the attacker's window — but a coarser panel
  strictly helps the attacker.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Sequence

from ..animation.animator import ANIMATION_DURATION_STANDARD, first_visible_frame_time
from ..animation.interpolators import FastOutSlowInInterpolator
from ..binder.latency import LatencySpec
from ..devices.profiles import DeviceProfile
from ..devices.registry import DEVICES


@dataclass(frozen=True)
class CalibrationCheck:
    """Analytic boundary vs the published Table II value for one device."""

    device_key: str
    published_ms: float
    predicted_ms: float

    @property
    def error_ms(self) -> float:
        return self.predicted_ms - self.published_ms


def check_all_calibrations(
    profiles: Sequence[DeviceProfile] = tuple(DEVICES),
) -> List[CalibrationCheck]:
    return [
        CalibrationCheck(
            device_key=profile.key,
            published_ms=profile.published_upper_bound_d,
            predicted_ms=profile.predicted_upper_bound_d,
        )
        for profile in profiles
    ]


@dataclass(frozen=True)
class SensitivityResult:
    """Boundary shift per unit change of one parameter."""

    parameter: str
    base_boundary_ms: float
    shifted_boundary_ms: float
    delta: float

    @property
    def boundary_shift_ms(self) -> float:
        return self.shifted_boundary_ms - self.base_boundary_ms

    @property
    def sensitivity(self) -> float:
        """d(boundary)/d(parameter)."""
        if self.delta == 0:
            return 0.0
        return self.boundary_shift_ms / self.delta


def _with_tn(profile: DeviceProfile, delta_ms: float) -> DeviceProfile:
    return replace(
        profile,
        tn=LatencySpec(
            mean_ms=profile.tn.mean_ms + delta_ms,
            std_ms=profile.tn.std_ms,
            min_ms=profile.tn.min_ms,
        ),
    )


def tn_sensitivity(profile: DeviceProfile, delta_ms: float = 50.0) -> SensitivityResult:
    """Boundary shift per ms of extra dispatch latency (exactly 1.0:
    every ANA-delay millisecond is an attacker millisecond)."""
    shifted = _with_tn(profile, delta_ms)
    return SensitivityResult(
        parameter="tn_ms",
        base_boundary_ms=profile.predicted_upper_bound_d,
        shifted_boundary_ms=shifted.predicted_upper_bound_d,
        delta=delta_ms,
    )


def view_height_sensitivity(
    profile: DeviceProfile, new_height_px: int
) -> SensitivityResult:
    """Boundary shift from changing the alert view height: a shorter view
    needs a larger completeness fraction for its first visible pixel,
    buying the attacker extra frames."""
    shifted = replace(profile, notification_view_height_px=new_height_px)
    return SensitivityResult(
        parameter="view_height_px",
        base_boundary_ms=profile.predicted_upper_bound_d,
        shifted_boundary_ms=shifted.predicted_upper_bound_d,
        delta=float(new_height_px - profile.notification_view_height_px),
    )


def refresh_interval_sensitivity(
    profile: DeviceProfile, new_refresh_ms: float
) -> SensitivityResult:
    """Boundary shift from a different display refresh interval.

    The shift is frame quantization: each more-frequent frame renders less
    eased progress, so faster panels move the first visible pixel by at
    most about one frame in either direction, while coarser panels
    strictly enlarge the attacker's window."""
    shifted = replace(profile, refresh_interval_ms=new_refresh_ms)
    return SensitivityResult(
        parameter="refresh_interval_ms",
        base_boundary_ms=profile.predicted_upper_bound_d,
        shifted_boundary_ms=shifted.predicted_upper_bound_d,
        delta=new_refresh_ms - profile.refresh_interval_ms,
    )


def ana_delay_ablation(profile: DeviceProfile) -> Dict[str, float]:
    """What if Android removed the ANA dispatch delay? The Android 10/11
    advantage disappears: the boundary drops by the nominal delay."""
    nominal = profile.android_version.nominal_ana_delay_ms
    without = _with_tn(profile, -min(nominal, profile.tn.mean_ms - 1.0))
    return {
        "with_ana_ms": profile.predicted_upper_bound_d,
        "without_ana_ms": without.predicted_upper_bound_d,
        "attacker_loses_ms": (
            profile.predicted_upper_bound_d - without.predicted_upper_bound_d
        ),
    }


def first_visible_frame_for(height_px: int, refresh_ms: float = 10.0) -> float:
    """Convenience: Ta for arbitrary view geometry."""
    return first_visible_frame_time(
        FastOutSlowInInterpolator(), ANIMATION_DURATION_STANDARD,
        refresh_ms, height_px,
    )
