"""Offline replay: re-derive a stolen password from a recorded trace.

Paper Section V describes the inference as an *offline-capable* step: the
attacker "first derives the center coordinate of each key ... by
performing an offline analysis of the keyboard layout in advance", then
matches captured coordinates. This module completes that loop over the
simulation's own evidence: given a trace (live, or re-loaded from a JSONL
export), it extracts the captured touch coordinates and the fake-keyboard
layout timeline and re-runs nearest-center inference — the forensic
counterpart of the online attack, and a strong self-check that the online
result equals what the raw capture data supports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

from ..apps.keyboard import KeyboardSpec
from ..attacks.key_inference import infer_offline
from ..sim.tracing import TraceRecord
from ..windows.geometry import Point


@dataclass(frozen=True)
class CapturedEvidence:
    """Everything the trace holds about one attack's captures."""

    touches: Tuple[Tuple[float, Point], ...]
    layout_timeline: Tuple[Tuple[float, str], ...]

    @property
    def touch_count(self) -> int:
        return len(self.touches)


def extract_evidence(
    records: Iterable[TraceRecord],
    attack_source: Optional[str] = None,
) -> CapturedEvidence:
    """Pull captured touches and layout switches from trace records.

    ``attack_source`` filters by the tracing process name (the overlay
    attack's process); leave None to accept any source — fine when a
    single attack ran.
    """
    touches: List[Tuple[float, Point]] = []
    timeline: List[Tuple[float, str]] = []
    for record in records:
        if attack_source is not None and not record.source.startswith(
            attack_source
        ):
            continue
        if record.kind == "attack.touch_captured":
            touches.append(
                (record.time,
                 Point(float(record.detail["x"]), float(record.detail["y"])))
            )
        elif record.kind == "attack.layout_switched":
            timeline.append((record.time, str(record.detail["layout"])))
    return CapturedEvidence(
        touches=tuple(touches), layout_timeline=tuple(timeline)
    )


def rederive_password(
    records: Iterable[TraceRecord],
    spec: KeyboardSpec,
    attack_source: Optional[str] = None,
) -> str:
    """Re-run nearest-center inference over a trace's captured evidence.

    The layout switches in the trace are applied *before* the touch that
    triggered them resolves against the new layout — matching the online
    attack, which switches its inference state upon capturing the special
    key and interprets subsequent touches on the new layout.
    """
    evidence = extract_evidence(records, attack_source)
    return infer_offline(
        spec,
        [(time, point) for time, point in evidence.touches],
        layout_timeline=list(evidence.layout_timeline),
    )
