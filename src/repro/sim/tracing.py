"""Structured trace log for simulation runs.

The trace serves three consumers:

* tests, which assert on the exact sequence of kernel-level happenings;
* the IPC-based defense (Section VII-A of the paper), which inspects the
  Binder transaction portion of the trace; and
* debugging, via :meth:`TraceLog.format`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from itertools import islice
from typing import Any, Callable, Deque, Dict, Iterator, List, Optional


@dataclass(frozen=True)
class TraceRecord:
    """One timestamped happening inside the simulation."""

    time: float
    source: str
    kind: str
    detail: Dict[str, Any] = field(default_factory=dict)

    def matches(self, kind: Optional[str] = None, source: Optional[str] = None) -> bool:
        if kind is not None and self.kind != kind:
            return False
        if source is not None and self.source != source:
            return False
        return True


class TraceLog:
    """Append-only event trace with filtering helpers."""

    def __init__(self, enabled: bool = True, capacity: Optional[int] = None) -> None:
        # deque(maxlen=...) evicts the oldest record in O(1); the previous
        # list-based eviction cost O(n) per append once the log was full.
        self._records: Deque[TraceRecord] = deque(maxlen=capacity)
        self._enabled = enabled
        self._capacity = capacity
        self._subscribers: List[Callable[[TraceRecord], None]] = []

    @property
    def enabled(self) -> bool:
        return self._enabled

    def disable(self) -> None:
        """Stop recording (subscribers still fire); used by large benches."""
        self._enabled = False

    def enable(self) -> None:
        self._enabled = True

    def subscribe(self, callback: Callable[[TraceRecord], None]) -> None:
        """Register a live consumer (e.g., the IPC defense monitor)."""
        self._subscribers.append(callback)

    def record(self, time: float, source: str, kind: str, **detail: Any) -> None:
        """Append one record (when enabled) and notify subscribers.

        Subscribers fire even while recording is disabled — by design, not
        by accident. ``enabled`` only gates the in-memory history that
        large sweeps cannot afford to keep; live consumers like the IPC
        defense's Binder monitor are part of the *simulated system* and
        must keep observing regardless (experiments run with
        ``trace_enabled=False`` and still expect detections).
        """
        # Fast path: with recording off and nobody listening, skip the
        # TraceRecord construction entirely — the record would be built
        # only to be thrown away, and disabled-trace sweeps call here once
        # per kernel happening.
        if not self._enabled and not self._subscribers:
            return
        rec = TraceRecord(time=time, source=source, kind=kind, detail=detail)
        if self._enabled:
            self._records.append(rec)
        for callback in self._subscribers:
            callback(rec)

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    def filter(
        self, kind: Optional[str] = None, source: Optional[str] = None
    ) -> List[TraceRecord]:
        return [r for r in self._records if r.matches(kind=kind, source=source)]

    def kinds(self) -> List[str]:
        """Ordered unique record kinds, for quick trace inspection."""
        seen: Dict[str, None] = {}
        for rec in self._records:
            seen.setdefault(rec.kind, None)
        return list(seen)

    def last(self, kind: Optional[str] = None) -> Optional[TraceRecord]:
        for rec in reversed(self._records):
            if rec.matches(kind=kind):
                return rec
        return None

    def clear(self) -> None:
        self._records.clear()

    def reset(self, enabled: Optional[bool] = None) -> None:
        """Drop all records *and* subscribers, as a fresh log would have.

        ``clear()`` keeps live consumers attached; ``reset()`` is for stack
        reuse, where last trial's subscribers (e.g. a defense monitor) must
        not observe the next trial.
        """
        self._records.clear()
        self._subscribers.clear()
        if enabled is not None:
            self._enabled = enabled

    def format(self, limit: int = 50) -> str:
        """Human-readable tail of the trace (most recent ``limit`` records)."""
        lines = []
        tail_start = max(len(self._records) - limit, 0)
        for rec in islice(self._records, tail_start, None):
            detail = " ".join(f"{k}={v}" for k, v in rec.detail.items())
            lines.append(f"[{rec.time:10.3f}ms] {rec.source:>24s} {rec.kind:<28s} {detail}")
        return "\n".join(lines)
