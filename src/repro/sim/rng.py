"""Seeded randomness with named sub-streams.

Every stochastic component (IPC latency, user typing, touch noise, corpus
generation, ...) draws from its own named child stream so that adding a new
random consumer never perturbs the draws seen by existing ones. This is the
standard trick for reproducible discrete-event simulations.
"""

from __future__ import annotations

import hashlib
import math
import random
from typing import Optional, Sequence, TypeVar

T = TypeVar("T")


class SeededRng:
    """A reproducible random stream with convenience samplers."""

    def __init__(self, seed: int, path: str = "root") -> None:
        self._seed = int(seed)
        self._path = path
        #: Created on first draw: streams that are never drawn from (many
        #: processes never sample during a short trial) never pay for
        #: ``Random`` construction and seeding.
        self._random: Optional[random.Random] = None
        self._stale = False

    @staticmethod
    def _derive(seed: int, path: str) -> int:
        digest = hashlib.sha256(f"{seed}:{path}".encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "big")

    @property
    def seed(self) -> int:
        return self._seed

    @property
    def path(self) -> str:
        return self._path

    def child(self, name: str) -> "SeededRng":
        """Create an independent sub-stream identified by ``name``."""
        return SeededRng(self._seed, f"{self._path}/{name}")

    def reseed(self, seed: int) -> None:
        """Re-arm this stream in place for a new root seed.

        Because a stream's state is a pure function of ``(seed, path)``
        (``random.Random(n)`` and ``Random().seed(n)`` produce identical
        generators), reseeding an existing object is bit-identical to
        constructing ``SeededRng(seed, path)`` fresh — the property stack
        reuse relies on, without re-allocating a ``Random`` per trial.

        The underlying generator is re-armed lazily, on the first draw
        after the reseed: generator state is observable only through
        draws, so deferring the (comparatively costly) ``Random.seed``
        call is invisible — and streams that never draw during a trial
        never pay for it.
        """
        self._seed = int(seed)
        self._stale = True

    def _rand(self) -> random.Random:
        rand = self._random
        if rand is None:
            rand = self._random = random.Random(
                self._derive(self._seed, self._path)
            )
            self._stale = False
        elif self._stale:
            rand.seed(self._derive(self._seed, self._path))
            self._stale = False
        return rand

    def uniform(self, low: float, high: float) -> float:
        return self._rand().uniform(low, high)

    def gauss(self, mean: float, std: float) -> float:
        if std <= 0:
            return mean
        return self._rand().gauss(mean, std)

    def gauss_clipped(
        self,
        mean: float,
        std: float,
        minimum: Optional[float] = None,
        maximum: Optional[float] = None,
    ) -> float:
        """Gaussian sample clipped into ``[minimum, maximum]``.

        Latencies must never be negative; clipping (rather than resampling)
        keeps the number of underlying draws fixed, which preserves stream
        alignment across runs with different parameters.
        """
        value = self.gauss(mean, std)
        if minimum is not None and value < minimum:
            value = minimum
        if maximum is not None and value > maximum:
            value = maximum
        return value

    def exponential(self, mean: float) -> float:
        if mean <= 0:
            raise ValueError(f"exponential mean must be positive, got {mean}")
        return self._rand().expovariate(1.0 / mean)

    def lognormal(self, mean: float, sigma: float = 0.6) -> float:
        """Heavy-tailed positive sample with expectation ``mean``.

        Parameterized by the distribution's *mean* (not ``mu``) so fault
        profiles can state latencies in milliseconds directly:
        ``mu = ln(mean) - sigma^2 / 2`` makes ``E[X] = mean``.
        """
        if mean <= 0:
            raise ValueError(f"lognormal mean must be positive, got {mean}")
        if sigma <= 0:
            return mean
        mu = math.log(mean) - 0.5 * sigma * sigma
        return self._rand().lognormvariate(mu, sigma)

    def random(self) -> float:
        return self._rand().random()

    def chance(self, probability: float) -> bool:
        """Bernoulli trial; probabilities outside [0, 1] are clamped."""
        if probability <= 0:
            return False
        if probability >= 1:
            return True
        return self._rand().random() < probability

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in the inclusive range ``[low, high]``."""
        return self._rand().randint(low, high)

    def choice(self, options: Sequence[T]) -> T:
        if not options:
            raise ValueError("cannot choose from an empty sequence")
        return self._rand().choice(options)

    def shuffle(self, items: list) -> None:
        self._rand().shuffle(items)

    def sample(self, options: Sequence[T], count: int) -> list:
        return self._rand().sample(list(options), count)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SeededRng(seed={self._seed}, path={self._path!r})"
