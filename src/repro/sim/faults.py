"""Deterministic fault injection: jitter, drops and freezes on demand.

The paper's attacks live on millisecond margins (the 360 ms slide-in, the
500 ms toast fade, the mistouch gap ``Tmis``), and the paper measured them
on real, noisy devices. This module recreates that noise *reproducibly*:
a :class:`FaultProfile` names a regime (how much jitter, how many drops),
and a :class:`FaultPlan` binds it to one simulation's seeded RNG so the
perturbed run is exactly as deterministic as an unperturbed one — same
seed, same plan, bit-identical trace (pinned by
``tests/sim/test_faults_properties.py``).

Four fault classes, matching where real-device noise enters:

* **frame faults** — per-frame render jitter and dropped frames, consumed
  by :class:`~repro.animation.animator.Animator` (schedule side) and by
  the compositor's query-side staleness mapping (:meth:`FaultPlan.render_time`);
* **dispatch latency** — every scheduled callback fires a little late
  (uniform or lognormal), installed as the event scheduler's perturbation
  hook;
* **Binder faults** — extra transaction transit latency and outright
  transaction drops, applied inside :class:`~repro.binder.router.BinderRouter`;
* **GC pauses** — periodic freezes during which nothing dispatches:
  events that would fire inside a pause window slip to its end.

Every perturbation only ever *delays* (never advances) an event, so the
kernel's ordering guarantees survive any profile: the clock stays
monotone, no event is lost, and dispatch order remains non-decreasing in
time.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, replace
from typing import Dict, Iterator, List, Optional, Tuple

from .framecache import FaultFrameVectors, kernels_enabled
from .rng import SeededRng

#: Display refresh interval assumed by the query-side frame-staleness
#: mapping (matches ``repro.animation.animator.DEFAULT_REFRESH_INTERVAL``;
#: redeclared here because the kernel must not import the animation layer).
_RENDER_FRAME_MS = 10.0

#: Most consecutive dropped frames the compositor staleness walk considers
#: (beyond this the screen would visibly hang; the bound keeps the mapping
#: O(1) per query).
_MAX_CONSECUTIVE_DROPPED_FRAMES = 3

_DISTRIBUTIONS = ("uniform", "lognormal")


@dataclass(frozen=True)
class FaultProfile:
    """Parameters of one fault regime. All magnitudes in milliseconds.

    A zero value disables that fault class entirely — a profile whose
    every knob is zero is a no-op and injects nothing (and consumes no
    random draws), which is what makes the ``jitter = 0`` point of a sweep
    bit-identical to a run with no fault layer at all.
    """

    name: str
    #: Mean extra delay added to each animation frame (uniform in
    #: ``[0, 2 * mean]``).
    frame_jitter_ms: float = 0.0
    #: Probability an animation frame renders nothing (the machinery still
    #: advances, so animations always finish).
    frame_drop_probability: float = 0.0
    #: Mean extra dispatch latency added to every scheduled event.
    dispatch_jitter_ms: float = 0.0
    #: Shape of the dispatch/Binder latency noise: ``uniform`` draws from
    #: ``[0, 2 * mean]``; ``lognormal`` is heavy-tailed with the same mean.
    distribution: str = "uniform"
    #: Mean extra Binder transaction transit latency.
    binder_jitter_ms: float = 0.0
    #: Probability a Binder transaction is dropped in transit.
    binder_drop_probability: float = 0.0
    #: Mean period between GC pauses (0 disables them).
    gc_period_ms: float = 0.0
    #: Mean duration of one GC pause.
    gc_pause_ms: float = 0.0

    def __post_init__(self) -> None:
        for field_name in ("frame_jitter_ms", "dispatch_jitter_ms",
                           "binder_jitter_ms", "gc_period_ms", "gc_pause_ms"):
            value = getattr(self, field_name)
            if value < 0:
                raise ValueError(f"{field_name} must be >= 0, got {value}")
        for field_name in ("frame_drop_probability", "binder_drop_probability"):
            value = getattr(self, field_name)
            if not 0.0 <= value <= 0.9:
                raise ValueError(
                    f"{field_name} must be in [0, 0.9] (1.0 would let a "
                    f"retry loop spin forever), got {value}"
                )
        if self.distribution not in _DISTRIBUTIONS:
            raise ValueError(
                f"distribution must be one of {_DISTRIBUTIONS}, "
                f"got {self.distribution!r}"
            )
        if (self.gc_period_ms > 0) != (self.gc_pause_ms > 0):
            raise ValueError(
                "gc_period_ms and gc_pause_ms must be both zero or both "
                f"positive, got {self.gc_period_ms}/{self.gc_pause_ms}"
            )

    @property
    def is_noop(self) -> bool:
        """True when no fault class is active."""
        return (
            self.frame_jitter_ms == 0.0
            and self.frame_drop_probability == 0.0
            and self.dispatch_jitter_ms == 0.0
            and self.binder_jitter_ms == 0.0
            and self.binder_drop_probability == 0.0
            and self.gc_period_ms == 0.0
        )

    def scaled(self, factor: float, name: Optional[str] = None) -> "FaultProfile":
        """This profile with every magnitude and probability scaled.

        The jitter-sweep experiment runs one base profile at several
        factors; ``scaled(0.0)`` is exactly the no-op profile.
        """
        if factor < 0:
            raise ValueError(f"scale factor must be >= 0, got {factor}")
        gc_pause = self.gc_pause_ms * factor
        # Pauses scale; the period between them does not — but a zero-length
        # pause disables the class entirely (period alone is meaningless).
        gc_period = self.gc_period_ms if gc_pause > 0 else 0.0
        return replace(
            self,
            name=name or f"{self.name}x{factor:g}",
            frame_jitter_ms=self.frame_jitter_ms * factor,
            frame_drop_probability=min(0.9, self.frame_drop_probability * factor),
            dispatch_jitter_ms=self.dispatch_jitter_ms * factor,
            binder_jitter_ms=self.binder_jitter_ms * factor,
            binder_drop_probability=min(0.9, self.binder_drop_probability * factor),
            gc_period_ms=gc_period,
            gc_pause_ms=gc_pause,
        )


#: The no-fault reference regime.
NONE = FaultProfile(name="none")

#: Everyday noise on a healthy device: sub-millisecond scheduling slop,
#: occasional late frames, no drops.
MILD = FaultProfile(
    name="mild",
    frame_jitter_ms=1.0,
    dispatch_jitter_ms=0.3,
    binder_jitter_ms=0.5,
)

#: A loaded Pixel-class device: visible frame jank, heavier-tailed IPC
#: latency, periodic background GC.
PIXEL_LOADED = FaultProfile(
    name="pixel-loaded",
    frame_jitter_ms=4.0,
    frame_drop_probability=0.05,
    dispatch_jitter_ms=1.5,
    distribution="lognormal",
    binder_jitter_ms=2.0,
    gc_period_ms=900.0,
    gc_pause_ms=12.0,
)

#: The harshest regime CI proves the simulation survives: heavy jitter on
#: every channel, dropped frames, dropped Binder transactions, long GC
#: stalls.
ADVERSARIAL = FaultProfile(
    name="adversarial",
    frame_jitter_ms=8.0,
    frame_drop_probability=0.15,
    dispatch_jitter_ms=3.0,
    distribution="lognormal",
    binder_jitter_ms=5.0,
    binder_drop_probability=0.02,
    gc_period_ms=500.0,
    gc_pause_ms=30.0,
)

#: Named profiles addressable from the CLI (``--faults <name>``) and the
#: experiment scale (``ExperimentScale.faults``).
PROFILES: Dict[str, FaultProfile] = {
    p.name: p for p in (NONE, MILD, PIXEL_LOADED, ADVERSARIAL)
}


def profile(name: str) -> FaultProfile:
    """Look up a named profile; raises with the valid names on a miss."""
    try:
        return PROFILES[name]
    except KeyError:
        raise KeyError(
            f"unknown fault profile {name!r}; valid profiles: "
            f"{', '.join(sorted(PROFILES))}"
        ) from None


# ---------------------------------------------------------------------------
# Ambient default profile (what `build_stack(faults=None)` resolves to)
# ---------------------------------------------------------------------------

_default_profile_name = "none"


def default_profile_name() -> str:
    """Profile applied when a stack is built without an explicit one."""
    return _default_profile_name


def set_default_profile(name: str) -> str:
    """Set the ambient profile; returns the previous name.

    The experiment runner sets this from ``ExperimentScale.faults`` around
    each experiment (in whichever worker process runs it), so every stack
    an experiment builds sees the same regime without threading a
    parameter through twenty call sites.
    """
    global _default_profile_name
    profile(name)  # validate eagerly
    previous = _default_profile_name
    _default_profile_name = name
    return previous


@contextmanager
def use_default_profile(name: str) -> Iterator[None]:
    """Scoped :func:`set_default_profile` (always restores on exit)."""
    previous = set_default_profile(name)
    try:
        yield
    finally:
        set_default_profile(previous)


# ---------------------------------------------------------------------------
# The runtime plan
# ---------------------------------------------------------------------------

class FaultPlan:
    """One profile bound to one simulation's seeded random streams.

    Each fault class draws from its own named sub-stream, so frame faults
    never shift the Binder fault draws and vice versa — adding a fault
    class to a profile perturbs only that class. Inactive classes consume
    no draws at all, which keeps a zero-magnitude plan bit-identical to
    running with no plan.
    """

    def __init__(self, fault_profile: FaultProfile, rng: SeededRng) -> None:
        self.profile = fault_profile
        self._frame = rng.child("frame")
        self._dispatch = rng.child("dispatch")
        self._binder = rng.child("binder")
        self._gc = rng.child("gc")
        # Pure-function staleness derivation material (query-side faults
        # must not consume a stream: compositor queries are read-only and
        # may happen in any order and any number of times).
        self._staleness_seed = rng.seed
        self._staleness_path = rng.path
        #: GC pause windows [(start, end)], generated lazily in time order.
        self._gc_windows: List[Tuple[float, float]] = []
        self._gc_horizon = 0.0
        #: Events deferred out of a GC pause (introspection/testing).
        self.events_deferred_by_gc = 0
        # Batched frame-fault rows (kernel fast path). Only built when the
        # profile actually has frame faults: a no-op (or frame-quiet)
        # profile must skip the machinery entirely, and `render_time`'s
        # identity early-return already bypasses it. Rows are derived *by*
        # `_frame_faults_at`, so they are bit-identical to scalar queries.
        if kernels_enabled() and (fault_profile.frame_jitter_ms > 0.0
                                  or fault_profile.frame_drop_probability > 0.0):
            self._frame_vectors: Optional[FaultFrameVectors] = \
                FaultFrameVectors(self._frame_faults_at)
        else:
            self._frame_vectors = None

    @property
    def is_noop(self) -> bool:
        return self.profile.is_noop

    @property
    def perturbs_dispatch(self) -> bool:
        """Whether the plan needs the scheduler's perturbation hook."""
        return (self.profile.dispatch_jitter_ms > 0
                or self.profile.gc_period_ms > 0)

    # ------------------------------------------------------------------
    # Shared latency sampler
    # ------------------------------------------------------------------
    def _latency(self, stream: SeededRng, mean: float) -> float:
        if mean <= 0:
            return 0.0
        if self.profile.distribution == "lognormal":
            return stream.lognormal(mean, sigma=0.6)
        return stream.uniform(0.0, 2.0 * mean)

    # ------------------------------------------------------------------
    # (a) frame faults — schedule side (Animator)
    # ------------------------------------------------------------------
    def frame_delay(self) -> float:
        """Extra delay before the next animation frame fires."""
        return self._latency(self._frame, self.profile.frame_jitter_ms)

    def drop_frame(self) -> bool:
        """Whether the frame about to fire renders nothing."""
        return self._frame.chance(self.profile.frame_drop_probability)

    # ------------------------------------------------------------------
    # (a') frame faults — query side (compositor)
    # ------------------------------------------------------------------
    def _frame_faults_at(self, index: int) -> Tuple[float, bool]:
        """(jitter delay, dropped?) of display frame ``index``.

        A pure function of ``(plan seed, index)`` — hashed, not streamed —
        so compositor queries are idempotent and order-independent.
        """
        stream = SeededRng(self._staleness_seed,
                          f"{self._staleness_path}/render/{index}")
        delay = stream.uniform(0.0, 2.0 * self.profile.frame_jitter_ms) \
            if self.profile.frame_jitter_ms > 0 else 0.0
        dropped = stream.chance(self.profile.frame_drop_probability)
        return delay, dropped

    def render_time(self, time_ms: float) -> float:
        """Timestamp of the content actually on glass at ``time_ms``.

        Under frame faults the displayed frame is stale: late by its
        jitter, and by one extra refresh interval per consecutively
        dropped frame before it. With no frame faults this is the
        identity, so fault-free compositing is untouched.
        """
        if (self.profile.frame_jitter_ms == 0.0
                and self.profile.frame_drop_probability == 0.0):
            return time_ms
        index = int(time_ms // _RENDER_FRAME_MS)
        faults_at = (self._frame_vectors.get if self._frame_vectors is not None
                     else self._frame_faults_at)
        delay, _ = faults_at(index)
        staleness = delay
        for back in range(1, _MAX_CONSECUTIVE_DROPPED_FRAMES + 1):
            if index - back < 0:
                break
            _, dropped = faults_at(index - back)
            if not dropped:
                break
            staleness += _RENDER_FRAME_MS
        return max(0.0, time_ms - staleness)

    @property
    def frame_fault_rows_materialized(self) -> int:
        """Batched frame-fault rows computed so far (0 on the scalar path)."""
        if self._frame_vectors is None:
            return 0
        return self._frame_vectors.materialized_frames

    # ------------------------------------------------------------------
    # (b) scheduler dispatch latency + (d) GC pauses
    # ------------------------------------------------------------------
    def perturb_event_time(self, time_ms: float, now: float, name: str) -> float:
        """The scheduler's perturbation hook: when does this event fire?

        Adds dispatch latency, then slips the event past any GC pause
        window covering it. The result is never earlier than requested, so
        the scheduler's "no scheduling in the past" invariant holds.
        """
        perturbed = time_ms + self._latency(
            self._dispatch, self.profile.dispatch_jitter_ms
        )
        deferred = self.defer_past_gc_pause(perturbed)
        if deferred > perturbed:
            self.events_deferred_by_gc += 1
        return deferred

    def defer_past_gc_pause(self, time_ms: float) -> float:
        """Slip ``time_ms`` to the end of the GC pause covering it."""
        if self.profile.gc_period_ms <= 0:
            return time_ms
        self._extend_gc_windows(time_ms)
        for start, end in reversed(self._gc_windows):
            if start <= time_ms < end:
                return end
            if end <= time_ms:
                break
        return time_ms

    def gc_windows_until(self, horizon_ms: float) -> List[Tuple[float, float]]:
        """GC pause windows up to ``horizon_ms`` (generated on demand)."""
        self._extend_gc_windows(horizon_ms)
        return [w for w in self._gc_windows if w[0] <= horizon_ms]

    def _extend_gc_windows(self, horizon_ms: float) -> None:
        while self._gc_horizon <= horizon_ms:
            period = self._gc.gauss_clipped(
                self.profile.gc_period_ms, 0.2 * self.profile.gc_period_ms,
                minimum=1.0,
            )
            pause = self._gc.gauss_clipped(
                self.profile.gc_pause_ms, 0.2 * self.profile.gc_pause_ms,
                minimum=0.0,
            )
            start = self._gc_horizon + period
            self._gc_windows.append((start, start + pause))
            self._gc_horizon = start + pause

    # ------------------------------------------------------------------
    # (c) Binder faults
    # ------------------------------------------------------------------
    def binder_delay(self) -> float:
        """Extra transit latency for one Binder transaction."""
        return self._latency(self._binder, self.profile.binder_jitter_ms)

    def drop_binder(self) -> bool:
        """Whether one Binder transaction is lost in transit."""
        return self._binder.chance(self.profile.binder_drop_probability)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"FaultPlan(profile={self.profile.name!r})"


def plan_for(
    faults: "Optional[str | FaultProfile | FaultPlan]",
    rng: SeededRng,
) -> Optional[FaultPlan]:
    """Normalize a user-facing ``faults`` argument into a plan.

    ``None`` resolves through the ambient default profile; a no-op profile
    resolves to ``None`` (no plan installed at all), keeping the fault-free
    path exactly as fast and exactly as random as before this layer
    existed.
    """
    if isinstance(faults, FaultPlan):
        return None if faults.is_noop else faults
    if faults is None:
        resolved = profile(default_profile_name())
    elif isinstance(faults, str):
        resolved = profile(faults)
    else:
        resolved = faults
    if resolved.is_noop:
        return None
    return FaultPlan(resolved, rng)
