"""Simulated clock.

All kernel time is measured in **milliseconds** as a ``float``. Milliseconds
are the natural unit for this reproduction: every latency the paper reports
(animation durations, IPC latencies, attacking windows ``D``) is given in
milliseconds.
"""

from __future__ import annotations

from .errors import ClockError


class Clock:
    """A monotonically non-decreasing simulated clock.

    The clock is advanced only by the event scheduler; simulation code reads
    it through :attr:`now`.
    """

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise ClockError(f"clock cannot start at negative time {start!r}")
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulated time in milliseconds."""
        return self._now

    def reset(self, start: float = 0.0) -> None:
        """Rewind the clock for a new run.

        Only :meth:`~repro.sim.simulation.Simulation.reset` may call this —
        it is the single sanctioned violation of monotonicity, taken while
        no events are pending so nothing can observe time going backwards.
        """
        if start < 0:
            raise ClockError(f"clock cannot restart at negative time {start!r}")
        self._now = float(start)

    def advance_to(self, time_ms: float) -> None:
        """Move the clock forward to ``time_ms``.

        Raises:
            ClockError: if ``time_ms`` is earlier than the current time.
        """
        if time_ms < self._now:
            raise ClockError(
                f"cannot move clock backwards from {self._now} to {time_ms}"
            )
        self._now = float(time_ms)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Clock(now={self._now:.3f}ms)"
