"""Top-level simulation container.

A :class:`Simulation` owns the clock, scheduler, trace log and root random
stream, and keeps a registry of the processes participating in a run. All
higher layers (Binder, window manager, attacks, ...) are built against this
object, never against module-level globals, so multiple independent
simulations can coexist in one Python process — a property both the tests
and the parameter-sweep benchmarks rely on.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional

from .clock import Clock
from .errors import ProcessError, SimulationError
from .event import Callback, EventHandle
from .faults import FaultPlan
from .rng import SeededRng
from .scheduler import EventScheduler
from .tracing import TraceLog

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..obs.metrics import MetricsRegistry


class Simulation:
    """A single deterministic simulation run."""

    def __init__(
        self,
        seed: int = 0,
        trace_enabled: bool = True,
        faults: Optional[FaultPlan] = None,
        metrics: "Optional[MetricsRegistry]" = None,
    ) -> None:
        if metrics is None:
            from ..obs.context import current_metrics

            metrics = current_metrics()
        self._metrics = metrics
        self._clock = Clock()
        self._scheduler = EventScheduler(self._clock, metrics=metrics)
        self._rng = SeededRng(seed)
        self._trace = TraceLog(enabled=trace_enabled)
        self._processes: Dict[str, "object"] = {}
        self._faults: Optional[FaultPlan] = None
        if faults is not None:
            self.install_faults(faults)

    # ------------------------------------------------------------------
    # Core accessors
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in milliseconds."""
        return self._clock.now

    @property
    def clock(self) -> Clock:
        return self._clock

    @property
    def scheduler(self) -> EventScheduler:
        return self._scheduler

    @property
    def rng(self) -> SeededRng:
        return self._rng

    @property
    def trace(self) -> TraceLog:
        return self._trace

    @property
    def metrics(self) -> "Optional[MetricsRegistry]":
        """The metrics registry observing this run, or ``None`` (disabled).

        Resolved once at construction — explicitly passed, else the
        ambient :func:`repro.obs.use_metrics` registry. Components resolve
        their instruments from it at construction time and guard hot paths
        with a single ``is not None`` check, so a disabled registry costs
        nothing measurable (gated <5% by
        ``benchmarks/bench_metrics_overhead.py``).
        """
        return self._metrics

    @property
    def faults(self) -> Optional[FaultPlan]:
        """The installed fault plan, or ``None`` for a fault-free run.

        Consumers (the animator, the Binder router, the compositor hooks)
        treat ``None`` as "inject nothing" and skip every fault code path,
        so the unperturbed simulation behaves exactly as it did before the
        fault layer existed — same events, same random draws.
        """
        return self._faults

    def install_faults(self, plan: FaultPlan) -> None:
        """Attach a fault plan; at most one per simulation.

        Installing mid-run would shift random streams relative to a run
        that was born with the plan, so installation is only allowed while
        the simulation is pristine (no events dispatched yet).
        """
        if self._faults is not None:
            raise SimulationError("a fault plan is already installed")
        if self._scheduler.dispatched_count:
            raise SimulationError(
                "cannot install faults after events have dispatched"
            )
        self._faults = plan
        if plan.perturbs_dispatch:
            self._scheduler.install_perturbation(plan.perturb_event_time)

    def reset(self, seed: int, trace_enabled: Optional[bool] = None) -> None:
        """Re-arm this simulation for a new run under ``seed``.

        After ``reset`` the container is indistinguishable from a freshly
        constructed ``Simulation(seed, trace_enabled)``: the clock is back
        at zero, the scheduler is empty with zeroed counters and no fault
        perturbation, the trace has no records and no subscribers, the
        root random stream is re-derived from ``(seed, "root")``, the
        process registry is empty and no fault plan is installed. The
        metrics registry (if any) survives — it aggregates across every
        trial run on this container.

        Every ``SeededRng`` sub-stream is a pure function of
        ``(seed, path)`` — children derive from the parent's *seed*, never
        from its stream state — which is what makes in-place reset
        bit-identical to rebuilding. Long-lived processes must re-register
        and re-derive their streams afterwards (see
        :meth:`~repro.sim.process.SimProcess.rearm`); a new fault plan, if
        any, is installed separately via :meth:`install_faults`.
        """
        self._scheduler.reset()
        self._clock.reset()
        self._rng.reseed(seed)
        self._trace.reset(enabled=trace_enabled)
        self._processes.clear()
        self._faults = None

    # ------------------------------------------------------------------
    # Process registry
    # ------------------------------------------------------------------
    def register_process(self, process) -> None:
        name = getattr(process, "name", None)
        if not name:
            raise ProcessError(f"process {process!r} has no name")
        if name in self._processes:
            raise ProcessError(f"duplicate process name {name!r}")
        self._processes[name] = process

    def process(self, name: str) -> Optional[object]:
        return self._processes.get(name)

    @property
    def process_names(self):
        return list(self._processes)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def schedule_at(self, time_ms: float, callback: Callback, name: str = "") -> EventHandle:
        return self._scheduler.schedule_at(time_ms, callback, name)

    def schedule_after(self, delay_ms: float, callback: Callback, name: str = "") -> EventHandle:
        return self._scheduler.schedule_after(delay_ms, callback, name)

    def run_until(self, time_ms: float) -> int:
        """Run the simulation up to (and including) ``time_ms``."""
        return self._scheduler.run_until(time_ms)

    def run_for(self, duration_ms: float) -> int:
        """Run the simulation for a further ``duration_ms``."""
        return self._scheduler.run_until(self._clock.now + duration_ms)

    def run_to_completion(self, max_events: int = 10_000_000) -> int:
        return self._scheduler.run_to_completion(max_events=max_events)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Simulation(now={self.now:.3f}ms, "
            f"processes={len(self._processes)}, "
            f"pending={self._scheduler.pending_count})"
        )
