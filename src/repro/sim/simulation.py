"""Top-level simulation container.

A :class:`Simulation` owns the clock, scheduler, trace log and root random
stream, and keeps a registry of the processes participating in a run. All
higher layers (Binder, window manager, attacks, ...) are built against this
object, never against module-level globals, so multiple independent
simulations can coexist in one Python process — a property both the tests
and the parameter-sweep benchmarks rely on.
"""

from __future__ import annotations

from typing import Dict, Optional

from .clock import Clock
from .errors import ProcessError
from .event import Callback, EventHandle
from .rng import SeededRng
from .scheduler import EventScheduler
from .tracing import TraceLog


class Simulation:
    """A single deterministic simulation run."""

    def __init__(self, seed: int = 0, trace_enabled: bool = True) -> None:
        self._clock = Clock()
        self._scheduler = EventScheduler(self._clock)
        self._rng = SeededRng(seed)
        self._trace = TraceLog(enabled=trace_enabled)
        self._processes: Dict[str, "object"] = {}

    # ------------------------------------------------------------------
    # Core accessors
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in milliseconds."""
        return self._clock.now

    @property
    def clock(self) -> Clock:
        return self._clock

    @property
    def scheduler(self) -> EventScheduler:
        return self._scheduler

    @property
    def rng(self) -> SeededRng:
        return self._rng

    @property
    def trace(self) -> TraceLog:
        return self._trace

    # ------------------------------------------------------------------
    # Process registry
    # ------------------------------------------------------------------
    def register_process(self, process) -> None:
        name = getattr(process, "name", None)
        if not name:
            raise ProcessError(f"process {process!r} has no name")
        if name in self._processes:
            raise ProcessError(f"duplicate process name {name!r}")
        self._processes[name] = process

    def process(self, name: str) -> Optional[object]:
        return self._processes.get(name)

    @property
    def process_names(self):
        return list(self._processes)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def schedule_at(self, time_ms: float, callback: Callback, name: str = "") -> EventHandle:
        return self._scheduler.schedule_at(time_ms, callback, name)

    def schedule_after(self, delay_ms: float, callback: Callback, name: str = "") -> EventHandle:
        return self._scheduler.schedule_after(delay_ms, callback, name)

    def run_until(self, time_ms: float) -> int:
        """Run the simulation up to (and including) ``time_ms``."""
        return self._scheduler.run_until(time_ms)

    def run_for(self, duration_ms: float) -> int:
        """Run the simulation for a further ``duration_ms``."""
        return self._scheduler.run_until(self._clock.now + duration_ms)

    def run_to_completion(self, max_events: int = 10_000_000) -> int:
        return self._scheduler.run_to_completion(max_events=max_events)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Simulation(now={self.now:.3f}ms, "
            f"processes={len(self._processes)}, "
            f"pending={self._scheduler.pending_count})"
        )
