"""Deterministic event scheduler built on a binary heap."""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING, Callable, List, Optional, Tuple

from .clock import Clock
from .errors import SchedulingError
from .event import Callback, Event, EventHandle, noop
from .framecache import kernels_enabled

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..obs.metrics import MetricsRegistry

#: Fault hook signature: ``(requested_time, now, name) -> effective_time``.
#: The effective time must be >= the requested time (faults only delay).
TimePerturbation = Callable[[float, float, str], float]

#: Heap entries are ``(time, seq, event)`` tuples: the C tuple comparison
#: replaces a Python-level ``Event.__lt__`` call per sift step, and orders
#: identically — ``seq`` is unique, so the event itself is never compared.
HeapEntry = Tuple[float, int, Event]

#: Upper bound on the event free list. The pool only needs to cover the
#: peak number of simultaneously-queued events, which is tiny; the cap
#: keeps a pathological burst from pinning memory forever.
_POOL_CAP = 256


class EventScheduler:
    """Priority-queue scheduler driving a :class:`~repro.sim.clock.Clock`.

    The scheduler pops events in ``(time, insertion order)`` order, advances
    the clock to each event's timestamp and invokes its callback. Cancelled
    events are skipped lazily, which makes cancellation O(1).

    An optional :data:`TimePerturbation` hook (installed by the fault
    layer, :mod:`repro.sim.faults`) may delay each event at schedule time —
    modelling dispatch latency and GC pauses. Because the hook can only
    move events *later* and the heap still pops by ``(time, seq)``, every
    kernel invariant survives: the clock is monotone, no event is lost,
    and dispatch order is non-decreasing in time.

    When kernels are enabled (no ``REPRO_NO_KERNELS``), dispatched and
    discarded :class:`Event` objects are recycled through a free list
    instead of being re-allocated per schedule. Recycling is invisible to
    callers: handles snapshot their metadata and go inert the moment their
    event's generation is bumped (see :mod:`repro.sim.event`), and the
    regression suite pins identical dispatch traces and counter accounting
    with pooling on and off.
    """

    def __init__(self, clock: Clock,
                 metrics: "Optional[MetricsRegistry]" = None) -> None:
        self._clock = clock
        self._heap: List[HeapEntry] = []
        self._seq = 0
        self._dispatched = 0
        self._pending = 0
        self._cancelled = 0
        self._perturb: Optional[TimePerturbation] = None
        # Event pooling — snapshot of the kernel switch at construction.
        self._pooling = kernels_enabled()
        self._pool: List[Event] = []
        # Instruments are resolved once here; every hot-path guard below is
        # a single `is not None`. Metrics only *observe* (no clock, RNG or
        # heap interaction), so enabling them cannot perturb a run.
        if metrics is not None:
            self._m_scheduled = metrics.counter(
                "sim_scheduler_events_scheduled_total")
            self._m_dispatched = metrics.counter(
                "sim_scheduler_events_dispatched_total")
            self._m_cancelled = metrics.counter(
                "sim_scheduler_events_cancelled_total")
            self._m_delay = metrics.histogram("sim_scheduler_event_delay_ms")
            self._m_depth = metrics.histogram("sim_scheduler_queue_depth")
        else:
            self._m_scheduled = None
            self._m_dispatched = None
            self._m_cancelled = None
            self._m_delay = None
            self._m_depth = None

    @property
    def now(self) -> float:
        return self._clock.now

    @property
    def pending_count(self) -> int:
        """Number of not-yet-cancelled events still in the queue.

        O(1): the counter is maintained on schedule/dispatch, and each
        event's ``on_cancel`` hook decrements it the moment a handle
        cancels the event — no heap scan.
        """
        return self._pending

    @property
    def dispatched_count(self) -> int:
        """Total number of callbacks executed so far."""
        return self._dispatched

    @property
    def cancelled_count(self) -> int:
        """Total events cancelled while still queued.

        Together with :attr:`dispatched_count` and :attr:`pending_count`
        this accounts for every event ever scheduled
        (``scheduled == dispatched + cancelled + pending``) — the
        no-event-is-ever-lost invariant the chaos tests assert under every
        fault profile.
        """
        return self._cancelled

    @property
    def scheduled_count(self) -> int:
        """Total events ever scheduled."""
        return self._seq

    @property
    def pooled_event_count(self) -> int:
        """Events currently parked on the free list (0 with pooling off)."""
        return len(self._pool)

    def install_perturbation(self, perturb: Optional[TimePerturbation]) -> None:
        """Install (or clear) the fault layer's schedule-time hook."""
        self._perturb = perturb

    def reset(self) -> None:
        """Return the scheduler to its just-constructed state.

        Pending events are discarded (their handles become inert: the
        ``on_cancel`` hook is detached first so a late ``cancel()`` cannot
        corrupt the counters of the next run), all counters rewind to zero
        and any fault perturbation is cleared so the next run starts from
        the same state a fresh ``EventScheduler(clock)`` would.

        Metric instruments deliberately survive: a registry aggregates over
        every trial of an experiment, across stack resets. So does the
        event free list — it is an allocation cache with no observable
        state, and stack reuse is exactly where it pays off.
        """
        for _, _, event in self._heap:
            event.on_cancel = None
            self._release(event)
        self._heap.clear()
        self._seq = 0
        self._dispatched = 0
        self._pending = 0
        self._cancelled = 0
        self._perturb = None

    def schedule_at(self, time_ms: float, callback: Callback, name: str = "") -> EventHandle:
        """Schedule ``callback`` at an absolute simulated time."""
        if time_ms < self._clock.now:
            raise SchedulingError(
                f"cannot schedule {name!r} at {time_ms} (now={self._clock.now})"
            )
        if self._perturb is not None:
            # Faults may only delay: clamp so a buggy hook can never
            # schedule into the past or reorder an event before its
            # requested time.
            time_ms = max(time_ms, self._perturb(float(time_ms), self._clock.now, name))
        pool = self._pool
        if pool:
            event = pool.pop()
            event.time = float(time_ms)
            event.seq = self._seq
            event.callback = callback
            event.name = name
            event.cancelled = False
        else:
            event = Event(float(time_ms), self._seq, callback, name)
        event.on_cancel = self._note_cancelled
        self._seq += 1
        heapq.heappush(self._heap, (event.time, event.seq, event))
        self._pending += 1
        if self._m_delay is not None:
            self._m_scheduled.inc()
            # Dispatch latency in *simulated* time: how far ahead of "now"
            # the event lands after fault perturbation. Deterministic, so
            # the metric itself is reproducible run to run.
            self._m_delay.observe(event.time - self._clock.now)
        return EventHandle(event)

    def schedule_after(self, delay_ms: float, callback: Callback, name: str = "") -> EventHandle:
        """Schedule ``callback`` after a relative delay from now."""
        if delay_ms < 0:
            raise SchedulingError(f"negative delay {delay_ms} for {name!r}")
        return self.schedule_at(self._clock.now + delay_ms, callback, name)

    def peek_time(self) -> Optional[float]:
        """Timestamp of the next pending event, or ``None`` if drained."""
        self._drop_cancelled_head()
        if not self._heap:
            return None
        return self._heap[0][0]

    def step(self) -> bool:
        """Dispatch the next pending event.

        Returns:
            ``True`` if an event was dispatched, ``False`` if the queue was
            empty.
        """
        self._drop_cancelled_head()
        if not self._heap:
            return False
        event = heapq.heappop(self._heap)[2]
        # The event has left the queue: detach the cancel hook so a late
        # handle.cancel() cannot drive the pending counter negative.
        event.on_cancel = None
        time = event.time
        callback = event.callback
        if self._m_depth is not None:
            self._m_dispatched.inc()
            self._m_depth.observe(self._pending)
        self._pending -= 1
        self._clock.advance_to(time)
        self._dispatched += 1
        # Recycle before the callback runs: the callback's own
        # schedule_after may then reuse this very object. Local copies of
        # time/callback above keep the dispatch itself untouched.
        self._release(event)
        callback()
        return True

    def run_until(self, time_ms: float) -> int:
        """Dispatch every event with timestamp ``<= time_ms``.

        The clock finishes exactly at ``time_ms`` even when the queue drains
        earlier, so post-run measurements line up with the requested horizon.

        Returns:
            Number of events dispatched.
        """
        dispatched = 0
        heap = self._heap
        while True:
            # Inline head inspection: peek_time() + step() would scan the
            # cancelled head twice per event on this hottest of loops.
            self._drop_cancelled_head()
            if not heap or heap[0][0] > time_ms:
                break
            self.step()
            dispatched += 1
        if time_ms > self._clock.now:
            self._clock.advance_to(time_ms)
        return dispatched

    def run_to_completion(self, max_events: int = 10_000_000) -> int:
        """Dispatch until no events remain.

        Args:
            max_events: safety bound against runaway self-rescheduling loops.
        """
        dispatched = 0
        while self.step():
            dispatched += 1
            if dispatched >= max_events:
                raise SchedulingError(
                    f"run_to_completion exceeded {max_events} events; "
                    "likely an unbounded rescheduling loop"
                )
        return dispatched

    def _note_cancelled(self) -> None:
        self._pending -= 1
        self._cancelled += 1
        if self._m_cancelled is not None:
            self._m_cancelled.inc()

    def _drop_cancelled_head(self) -> None:
        # Cancelled events already left the pending count via the hook;
        # this only reclaims their heap slots (and recycles the objects).
        heap = self._heap
        while heap and heap[0][2].cancelled:
            self._release(heapq.heappop(heap)[2])

    def _release(self, event: Event) -> None:
        """Retire an event that has left the queue.

        With pooling on, the generation bump makes every outstanding
        handle to this incarnation inert, after which the object is safe
        to hand to a future ``schedule_at``. With pooling off this is a
        no-op — the object is garbage, exactly the legacy behaviour.
        """
        if not self._pooling:
            return
        event.generation += 1
        event.callback = noop  # drop the closure reference, keep slot typed
        event.on_cancel = None
        pool = self._pool
        if len(pool) < _POOL_CAP:
            pool.append(event)
