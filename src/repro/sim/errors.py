"""Exception hierarchy for the simulation kernel.

Every error raised by :mod:`repro.sim` derives from :class:`SimulationError`
so callers can catch kernel problems without masking unrelated bugs.
"""

from __future__ import annotations


class SimulationError(Exception):
    """Base class for all simulation-kernel errors."""


class SchedulingError(SimulationError):
    """An event was scheduled at an invalid time (e.g., in the past)."""


class EventCancelledError(SimulationError):
    """An operation was attempted on an already-cancelled event."""


class ProcessError(SimulationError):
    """A simulated process was misused (e.g., registered twice)."""


class ClockError(SimulationError):
    """The simulated clock was asked to move backwards."""
