"""Base class for simulated OS processes and services."""

from __future__ import annotations

from typing import TYPE_CHECKING

from .event import Callback, EventHandle
from .rng import SeededRng

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .simulation import Simulation


class SimProcess:
    """A named participant in the simulation.

    Each Android entity in the reproduction — System Server, System UI, the
    malicious app's main and worker threads, the simulated user — is a
    ``SimProcess``. The base class provides clock access, scheduling and a
    private random stream, mirroring how each real process has its own
    execution context.
    """

    def __init__(self, simulation: "Simulation", name: str) -> None:
        self._simulation = simulation
        self._name = name
        self._rng = simulation.rng.child(name)
        simulation.register_process(self)

    def rearm(self) -> None:
        """Re-attach this process after :meth:`Simulation.reset`.

        Re-derives the private random stream from the simulation's (new)
        root seed and re-enters the process registry — exactly what
        ``__init__`` did, so a re-armed process draws the same values a
        newly constructed one would. The existing stream object is reseeded
        in place (its path already is ``root/<name>``), which
        :meth:`SeededRng.reseed` guarantees is bit-identical to deriving a
        fresh child — and keeps the reset path allocation-free. Subclasses
        extend this to clear their own per-run state.
        """
        self._rng.reseed(self._simulation.rng.seed)
        self._simulation.register_process(self)

    @property
    def simulation(self) -> "Simulation":
        return self._simulation

    @property
    def name(self) -> str:
        return self._name

    @property
    def now(self) -> float:
        return self._simulation.now

    @property
    def rng(self) -> SeededRng:
        return self._rng

    def schedule(self, delay_ms: float, callback: Callback, name: str = "") -> EventHandle:
        """Schedule a callback relative to now, tagged with this process."""
        label = name or callback.__name__
        return self._simulation.scheduler.schedule_after(
            delay_ms, callback, f"{self._name}:{label}"
        )

    def trace(self, kind: str, **detail) -> None:
        """Record a trace event attributed to this process."""
        log = self._simulation.trace
        if not log._enabled and not log._subscribers:
            # Early out before even reading the clock: disabled-trace
            # sweeps pay one attribute test per happening instead of a
            # record construction. `TraceLog.record` repeats this check,
            # so behaviour is identical either way.
            return
        log.record(self.now, self._name, kind, **detail)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}(name={self._name!r})"
