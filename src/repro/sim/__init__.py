"""Deterministic discrete-event simulation kernel.

The kernel is intentionally small: a millisecond-resolution clock, a heap
scheduler with O(1) cancellation, seeded random sub-streams, a structured
trace log, a process base class, and the :class:`Simulation` container that
ties them together.
"""

from .clock import Clock
from .errors import (
    ClockError,
    EventCancelledError,
    ProcessError,
    SchedulingError,
    SimulationError,
)
from .event import Event, EventHandle
from .faults import (
    ADVERSARIAL,
    MILD,
    NONE,
    PIXEL_LOADED,
    PROFILES,
    FaultPlan,
    FaultProfile,
    default_profile_name,
    plan_for,
    profile,
    set_default_profile,
    use_default_profile,
)
from .process import SimProcess
from .rng import SeededRng
from .scheduler import EventScheduler
from .simulation import Simulation
from .tracing import TraceLog, TraceRecord

__all__ = [
    "ADVERSARIAL",
    "Clock",
    "ClockError",
    "Event",
    "EventCancelledError",
    "EventHandle",
    "EventScheduler",
    "FaultPlan",
    "FaultProfile",
    "MILD",
    "NONE",
    "PIXEL_LOADED",
    "PROFILES",
    "ProcessError",
    "SchedulingError",
    "SeededRng",
    "SimProcess",
    "Simulation",
    "SimulationError",
    "TraceLog",
    "TraceRecord",
    "default_profile_name",
    "plan_for",
    "profile",
    "set_default_profile",
    "use_default_profile",
]
