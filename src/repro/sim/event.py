"""Scheduled events and their cancellation handles."""

from __future__ import annotations

from typing import Callable, Optional

from .errors import EventCancelledError

Callback = Callable[[], None]


class Event:
    """A single scheduled callback.

    Events are ordered by ``(time, seq)``: ties on time are broken by the
    order in which the events were scheduled, which keeps the kernel fully
    deterministic.
    """

    __slots__ = ("time", "seq", "callback", "name", "cancelled", "on_cancel")

    def __init__(self, time: float, seq: int, callback: Callback, name: str) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.name = name
        self.cancelled = False
        #: Invoked exactly once when the event is cancelled while still
        #: queued; the scheduler uses it to keep its pending-event counter
        #: exact without scanning the heap.
        self.on_cancel: Optional[Callback] = None

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self.cancelled else "pending"
        return f"Event({self.name!r} @ {self.time:.3f}ms, {state})"


class EventHandle:
    """A caller-facing handle to a scheduled event.

    Handles support cancellation (used pervasively: the attacks cancel
    pending animation frames, defenses cancel delayed notifications) and
    expose scheduling metadata for tests and trace analysis.
    """

    __slots__ = ("_event",)

    def __init__(self, event: Event) -> None:
        self._event = event

    @property
    def time(self) -> float:
        """Simulated time at which the event fires."""
        return self._event.time

    @property
    def name(self) -> str:
        return self._event.name

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled

    def cancel(self) -> None:
        """Cancel the event; cancelling twice is an error."""
        if self._event.cancelled:
            raise EventCancelledError(f"event {self._event.name!r} already cancelled")
        self._mark_cancelled()

    def cancel_if_pending(self) -> bool:
        """Cancel the event if it has not been cancelled yet.

        Returns:
            ``True`` if this call performed the cancellation.
        """
        if self._event.cancelled:
            return False
        self._mark_cancelled()
        return True

    def _mark_cancelled(self) -> None:
        self._event.cancelled = True
        notify = self._event.on_cancel
        if notify is not None:
            self._event.on_cancel = None
            notify()


def noop() -> None:
    """A callback that does nothing (useful as a timer sentinel)."""


OptionalHandle = Optional[EventHandle]
