"""Scheduled events and their cancellation handles.

Event objects are pooled by the scheduler when kernels are enabled (see
:mod:`repro.sim.framecache`): a dispatched or discarded ``Event`` is
recycled for a future ``schedule_at`` instead of being garbage. Recycling
is made safe by a **generation counter** — every release bumps
``Event.generation``, and an :class:`EventHandle` only touches its event
while the generation it captured at creation still matches. A stale
handle (to an event that was dispatched, reset away, or recycled) is
inert: it keeps answering from its own snapshot and never corrupts the
recycled event. Handles behave identically whether pooling is on or off.
"""

from __future__ import annotations

from typing import Callable, Optional

from .errors import EventCancelledError

Callback = Callable[[], None]


class Event:
    """A single scheduled callback.

    Events are ordered by ``(time, seq)``: ties on time are broken by the
    order in which the events were scheduled, which keeps the kernel fully
    deterministic. (The scheduler's heap stores ``(time, seq, event)``
    tuples, so ordering never actually reaches ``__lt__`` — it is kept for
    direct comparisons in tests and debugging.)
    """

    __slots__ = ("time", "seq", "callback", "name", "cancelled", "on_cancel",
                 "generation")

    def __init__(self, time: float, seq: int, callback: Callback, name: str) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.name = name
        self.cancelled = False
        #: Invoked exactly once when the event is cancelled while still
        #: queued; the scheduler uses it to keep its pending-event counter
        #: exact without scanning the heap.
        self.on_cancel: Optional[Callback] = None
        #: Incarnation counter for pooling: bumped every time the scheduler
        #: releases this object for reuse, which instantly invalidates
        #: every handle created for the previous incarnation.
        self.generation = 0

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self.cancelled else "pending"
        return f"Event({self.name!r} @ {self.time:.3f}ms, {state})"


class EventHandle:
    """A caller-facing handle to a scheduled event.

    Handles support cancellation (used pervasively: the attacks cancel
    pending animation frames, defenses cancel delayed notifications) and
    expose scheduling metadata for tests and trace analysis.

    The handle snapshots the event's time and name at creation and tracks
    its own cancelled flag, so it remains valid — and answers identically
    — after the underlying ``Event`` object has been dispatched and
    recycled into an unrelated event by the scheduler's pool.
    """

    __slots__ = ("_event", "_generation", "_time", "_name", "_cancelled")

    def __init__(self, event: Event) -> None:
        self._event = event
        self._generation = event.generation
        self._time = event.time
        self._name = event.name
        self._cancelled = event.cancelled

    @property
    def time(self) -> float:
        """Simulated time at which the event fires."""
        return self._time

    @property
    def name(self) -> str:
        return self._name

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def cancel(self) -> None:
        """Cancel the event; cancelling twice is an error."""
        if self._cancelled:
            raise EventCancelledError(f"event {self._name!r} already cancelled")
        self._mark_cancelled()

    def cancel_if_pending(self) -> bool:
        """Cancel the event if it has not been cancelled yet.

        Returns:
            ``True`` if this call performed the cancellation.
        """
        if self._cancelled:
            return False
        self._mark_cancelled()
        return True

    def _mark_cancelled(self) -> None:
        self._cancelled = True
        event = self._event
        if event.generation != self._generation:
            # The event object has moved on (dispatched and pooled, or the
            # scheduler was reset). Cancelling a no-longer-queued event was
            # always a silent no-op; the snapshot flag above preserves the
            # handle-side bookkeeping.
            return
        event.cancelled = True
        notify = event.on_cancel
        if notify is not None:
            event.on_cancel = None
            notify()


def noop() -> None:
    """A callback that does nothing (useful as a timer sentinel)."""


OptionalHandle = Optional[EventHandle]
