"""Hot-path kernel caches: frame tables and fault frame vectors.

The inner loops of every trial — eased-animation frame math, the
compositor's frame-staleness mapping, scheduler heap churn — are pure
functions executed once per event. This module owns the machinery that
lets those loops read precomputed rows instead:

* the **kernel switch** (:func:`kernels_enabled`) — ``REPRO_NO_KERNELS=1``
  in the environment selects the original scalar code paths everywhere.
  The differential harness (``tests/test_kernel_equivalence.py``) runs
  every scenario both ways and asserts byte-identical results, which is
  what licenses the fast paths in the first place;
* the **frame-table cache** (:class:`FrameTableCache`) — one immutable
  per-(animation curve, duration, refresh interval, view height) table of
  per-frame rows, memoized under a content key so every animator and
  notification entry on the same device shares one table across trials
  (tables survive :meth:`~repro.stack.AndroidStack.reset` by living here,
  outside any stack);
* **fault frame vectors** (:class:`FaultFrameVectors`) — the compositor's
  per-display-frame ``(jitter delay, dropped?)`` derivation batched into
  chunked vectors per horizon, replacing one ``SeededRng`` construction
  (and sha256 derivation) per query with a list read.

Consumers snapshot the kernel switch at *construction* time (one animator,
one fault plan, one scheduler reset); flipping the environment variable
mid-object is deliberately not supported — the differential harness builds
fresh stacks per arm.
"""

from __future__ import annotations

import os
from typing import Callable, Dict, List, Optional, Tuple

#: Environment variable selecting the scalar reference paths.
NO_KERNELS_ENV = "REPRO_NO_KERNELS"


def kernels_enabled() -> bool:
    """Whether the vectorized kernel paths are active.

    Kernels are on by default; set ``REPRO_NO_KERNELS=1`` (any non-empty
    value) to force the original scalar code paths. Read the switch once
    per constructed object, not per frame — it is an escape hatch and a
    differential-test arm selector, not a per-call feature flag.
    """
    return not os.environ.get(NO_KERNELS_ENV)


# ---------------------------------------------------------------------------
# Frame-table cache
# ---------------------------------------------------------------------------

#: A table's content key: (interpolator curve key, duration, refresh
#: interval, view height). Two animations with equal keys render exactly
#: the same per-frame values, so they may share one table.
TableKey = Tuple[Tuple, float, float, int]


class FrameTableCache:
    """Content-keyed memo for immutable frame tables.

    The cache key is derived purely from the *content* that determines a
    table's rows — the interpolator's curve parameters (via
    :meth:`~repro.animation.interpolators.Interpolator.cache_key`), the
    animation duration, the display refresh interval and the view height
    — never from object identity. Identical animations on identical
    devices therefore share one table across every stack, trial and
    ``reset()`` in the process.

    The cache is unbounded by design: the key space is the set of
    distinct (curve, duration, refresh, height) combinations in a run,
    which is O(device profiles x animation kinds) — a few dozen entries
    even for fleet campaigns.
    """

    def __init__(self) -> None:
        self._tables: Dict[TableKey, object] = {}
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._tables)

    def get_or_build(self, key: TableKey, build: Callable[[], object]) -> object:
        table = self._tables.get(key)
        if table is not None:
            self.hits += 1
            return table
        self.misses += 1
        table = build()
        self._tables[key] = table
        return table

    def clear(self) -> None:
        """Drop every table (test isolation; never needed in production)."""
        self._tables.clear()
        self.hits = 0
        self.misses = 0


#: The process-wide table cache. Lives at module level precisely so tables
#: survive stack reuse: ``AndroidStack.reset()`` tears down per-trial
#: state, but the tables are pure functions of device constants.
FRAME_TABLE_CACHE = FrameTableCache()


# ---------------------------------------------------------------------------
# Fault frame vectors
# ---------------------------------------------------------------------------

class FaultFrameVectors:
    """Batched per-display-frame fault draws for one fault plan.

    :meth:`repro.sim.faults.FaultPlan._frame_faults_at` derives display
    frame ``index``'s ``(jitter delay, dropped?)`` as a pure function of
    ``(plan seed, index)`` — one sha256 + one ``random.Random`` per query.
    This class batches that derivation: rows are materialized one chunk
    (``chunk_frames`` indices) at a time and memoized, so the compositor's
    staleness walk (which revisits an index and its three predecessors on
    every query) reads list entries instead.

    The rows are byte-identical to the scalar derivation because they are
    produced *by* the scalar derivation — batching only changes when the
    work happens, never what is computed.
    """

    def __init__(
        self,
        derive: Callable[[int], Tuple[float, bool]],
        chunk_frames: int = 256,
    ) -> None:
        if chunk_frames < 1:
            raise ValueError(f"chunk_frames must be >= 1, got {chunk_frames}")
        self._derive = derive
        self._chunk = chunk_frames
        self._rows: List[Tuple[float, bool]] = []

    @property
    def materialized_frames(self) -> int:
        """Number of frame rows computed so far (grows in chunk steps)."""
        return len(self._rows)

    def get(self, index: int) -> Tuple[float, bool]:
        """``(jitter delay, dropped?)`` of display frame ``index``."""
        rows = self._rows
        if index >= len(rows):
            # Extend to the chunk boundary covering `index`: queries walk
            # forward in time, so the whole chunk will be wanted anyway.
            target = ((index // self._chunk) + 1) * self._chunk
            derive = self._derive
            rows.extend(derive(i) for i in range(len(rows), target))
        return rows[index]


__all__ = [
    "NO_KERNELS_ENV",
    "kernels_enabled",
    "FrameTableCache",
    "FRAME_TABLE_CACHE",
    "FaultFrameVectors",
    "TableKey",
]
