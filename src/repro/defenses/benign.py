"""Benign overlay workloads for false-positive evaluation.

Overlay apps are common and legitimate ("Google Maps uses the overlay for
navigation", paper Section III-A): they add a floating widget, keep it up
for a long time, and remove it when done. The IPC defense must not flag
them.
"""

from __future__ import annotations

from typing import Optional

from ..apps.app import App
from ..stack import AndroidStack
from ..windows.geometry import Rect
from ..windows.permissions import Permission
from ..windows.types import WindowType
from ..windows.window import Window


class BenignOverlayApp(App):
    """A floating-widget app: long-lived overlays, slow add/remove cadence."""

    def __init__(
        self,
        stack: AndroidStack,
        package: str = "com.music.player",
        dwell_ms: float = 45_000.0,
        pause_ms: float = 15_000.0,
        jitter_fraction: float = 0.2,
    ) -> None:
        super().__init__(stack, package, label="benign floating widget")
        if dwell_ms <= 0 or pause_ms < 0:
            raise ValueError("dwell must be positive and pause non-negative")
        self.dwell_ms = dwell_ms
        self.pause_ms = pause_ms
        self.jitter_fraction = jitter_fraction
        self._widget: Optional[Window] = None
        self._running = False
        self.cycles = 0

    def start(self) -> None:
        self.stack.permissions.require(self.package, Permission.SYSTEM_ALERT_WINDOW)
        self._running = True
        self._show_widget()

    def stop(self) -> None:
        self._running = False
        if self._widget is not None and self._widget.on_screen:
            self.remove_view(self._widget)
            self._widget = None

    # ------------------------------------------------------------------
    def _jittered(self, base: float) -> float:
        spread = base * self.jitter_fraction
        return self.rng.uniform(max(base - spread, 1.0), base + spread)

    def _show_widget(self) -> None:
        if not self._running:
            return
        self.cycles += 1
        widget = Window(
            owner=self.package,
            window_type=WindowType.APPLICATION_OVERLAY,
            rect=Rect(800, 1200, 1000, 1400),
            label=f"{self.package}:float{self.cycles}",
        )
        self._widget = widget
        self.add_view(widget)
        self.schedule(self._jittered(self.dwell_ms), self._hide_widget, name="dwell")

    def _hide_widget(self) -> None:
        if self._widget is not None:
            self.remove_view(self._widget)
            self._widget = None
        if self._running:
            self.schedule(self._jittered(self.pause_ms), self._show_widget, name="pause")
