"""IPC-based defense (paper Section VII-A).

The Binder code is changed "in a minor fashion" to forward the caller and
timestamp of each ``addView``/``removeView`` transaction to an analyzer.
The analyzer's decision rule considers two factors — the *number* of
add/remove calls and the *duration* between a paired add and remove — and
terminates apps matching the draw-and-destroy signature.

A benign overlay app (a music player's floating widget, a navigation
bubble) adds an overlay and keeps it up for minutes; the attack pairs an
add with a remove every few hundred milliseconds, dozens of times. The
rule separates the two with a wide margin.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, Optional, Set

from ..binder.monitor import BinderMonitor, MonitoredCall
from ..binder.router import BinderRouter
from ..windows.system_server import SystemServer


@dataclass(frozen=True)
class DetectionRule:
    """Decision rule over paired addView/removeView transactions."""

    #: Sliding observation window (ms).
    window_ms: float = 3000.0
    #: Flag a caller once this many qualifying pairs land in the window.
    min_pairs: int = 8
    #: A pair qualifies when its add->remove (or remove->add) spacing is
    #: below this; draw-and-destroy cycles are a few hundred ms apart,
    #: legitimate overlays live for minutes.
    max_pair_gap_ms: float = 600.0

    def __post_init__(self) -> None:
        if self.window_ms <= 0:
            raise ValueError(f"window_ms must be positive, got {self.window_ms}")
        if self.min_pairs <= 0:
            raise ValueError(f"min_pairs must be positive, got {self.min_pairs}")
        if self.max_pair_gap_ms <= 0:
            raise ValueError(
                f"max_pair_gap_ms must be positive, got {self.max_pair_gap_ms}"
            )


@dataclass
class Detection:
    """One app flagged as running a draw-and-destroy overlay attack."""

    caller: str
    time: float
    pairs_observed: int


class IpcDetector:
    """The analyzer consuming monitored Binder transactions."""

    #: Simulated analyzer cost per inspected call (ms) — a dict lookup and
    #: a couple of deque operations.
    ANALYSIS_COST_MS = 0.002

    def __init__(
        self,
        router: BinderRouter,
        system_server: Optional[SystemServer] = None,
        rule: Optional[DetectionRule] = None,
        terminate_on_detection: bool = True,
        on_detection: Optional[Callable[[Detection], None]] = None,
    ) -> None:
        self.rule = rule or DetectionRule()
        self._system_server = system_server
        self._terminate = terminate_on_detection
        self._on_detection = on_detection
        self._monitor = BinderMonitor(
            router, methods_of_interest=("addView", "removeView"), sink=self._ingest
        )
        #: Per caller: last unpaired add time.
        self._last_add: Dict[str, float] = {}
        #: Per caller: qualifying pair timestamps inside the window.
        self._pairs: Dict[str, Deque[float]] = {}
        self._flagged: Set[str] = set()
        self._detections: List[Detection] = []
        self._overhead_ms = 0.0

    # ------------------------------------------------------------------
    @property
    def monitor(self) -> BinderMonitor:
        return self._monitor

    @property
    def detections(self) -> List[Detection]:
        return list(self._detections)

    @property
    def flagged(self) -> Set[str]:
        return set(self._flagged)

    @property
    def overhead_ms(self) -> float:
        """Total simulated analyzer cost (monitor inspection is accounted
        separately on the monitor)."""
        return self._overhead_ms

    def is_flagged(self, caller: str) -> bool:
        return caller in self._flagged

    # ------------------------------------------------------------------
    def _ingest(self, call: MonitoredCall) -> None:
        self._overhead_ms += self.ANALYSIS_COST_MS
        if call.caller in self._flagged:
            return
        if call.method == "addView":
            self._last_add[call.caller] = call.time
            return
        # removeView: pair with the caller's most recent unpaired add.
        added_at = self._last_add.pop(call.caller, None)
        if added_at is None:
            return
        gap = call.time - added_at
        if gap > self.rule.max_pair_gap_ms:
            return
        pairs = self._pairs.setdefault(call.caller, deque())
        pairs.append(call.time)
        cutoff = call.time - self.rule.window_ms
        while pairs and pairs[0] < cutoff:
            pairs.popleft()
        if len(pairs) >= self.rule.min_pairs:
            self._flag(call.caller, call.time, len(pairs))

    def _flag(self, caller: str, time: float, pairs: int) -> None:
        self._flagged.add(caller)
        detection = Detection(caller=caller, time=time, pairs_observed=pairs)
        self._detections.append(detection)
        if self._system_server is not None and self._terminate:
            self._system_server.terminate_app(caller)
        if self._on_detection is not None:
            self._on_detection(detection)
