"""Enhanced-notification defense (paper Section VII-B).

The draw-and-destroy overlay attack survives because every ``removeView``
makes System Server tell System UI to take the alert down before its
slide-in could show anything. The defense postpones that hide message by
``t`` ms (the paper validates ``t = 690 ms`` on a Pixel 2):

* the app removes its overlay -> System Server waits ``t`` before
  notifying System UI;
* if the *same app* adds a new overlay during the wait, the hide is
  dropped entirely — the alert keeps animating to full visibility and the
  user sees it.

With the 360 ms slide-in plus view construction, ``t = 690 ms`` guarantees
the alert completes no matter how the attacker picks ``D``.
"""

from __future__ import annotations

from typing import Dict

from ..sim.event import EventHandle
from ..windows.system_server import OverlayAlertPolicy, SystemServer

#: The delay the paper installs in its AOSP 10 build.
DEFAULT_HIDE_DELAY_MS = 690.0


class EnhancedNotificationDefense(OverlayAlertPolicy):
    """Alert policy that debounces the hide notification."""

    def __init__(
        self, server: SystemServer, hide_delay_ms: float = DEFAULT_HIDE_DELAY_MS
    ) -> None:
        super().__init__(server)
        if hide_delay_ms < 0:
            raise ValueError(f"hide_delay_ms must be >= 0, got {hide_delay_ms}")
        self._server = server
        self.hide_delay_ms = float(hide_delay_ms)
        self._pending_hides: Dict[str, EventHandle] = {}
        self._hides_suppressed = 0
        self._hides_delivered = 0

    # ------------------------------------------------------------------
    @property
    def hides_suppressed(self) -> int:
        """Hide messages dropped because the app re-added an overlay."""
        return self._hides_suppressed

    @property
    def hides_delivered(self) -> int:
        return self._hides_delivered

    def install(self) -> "EnhancedNotificationDefense":
        self._server.overlay_alert_policy = self
        return self

    # ------------------------------------------------------------------
    def on_overlay_shown(self, owner: str) -> None:
        pending = self._pending_hides.pop(owner, None)
        if pending is not None:
            # The same app re-added during the delay: keep the alert.
            pending.cancel_if_pending()
            self._hides_suppressed += 1
        self._server.notify_system_ui_show(owner)

    def on_all_overlays_removed(self, owner: str) -> None:
        existing = self._pending_hides.pop(owner, None)
        if existing is not None:
            existing.cancel_if_pending()

        def deliver_hide() -> None:
            self._pending_hides.pop(owner, None)
            if not self._server.has_overlay_of(owner):
                self._hides_delivered += 1
                self._server.notify_system_ui_hide(owner)

        self._pending_hides[owner] = self._server.schedule(
            self.hide_delay_ms, deliver_hide, name=f"delayed-hide:{owner}"
        )
