"""Defense mechanisms of paper Section VII: the Binder-transaction (IPC)
detector, the enhanced-notification hide delay, and toast spacing — plus
benign overlay workloads for false-positive evaluation."""

from .benign import BenignOverlayApp
from .enhanced_notification import DEFAULT_HIDE_DELAY_MS, EnhancedNotificationDefense
from .ipc_detector import Detection, DetectionRule, IpcDetector
from .toast_spacing import DEFAULT_TOAST_GAP_MS, ToastSpacingDefense

__all__ = [
    "BenignOverlayApp",
    "DEFAULT_HIDE_DELAY_MS",
    "DEFAULT_TOAST_GAP_MS",
    "Detection",
    "DetectionRule",
    "EnhancedNotificationDefense",
    "IpcDetector",
    "ToastSpacingDefense",
]
