"""Toast-spacing defense (paper Section VII-B, last paragraph).

"To defeat the draw and destroy toast attack, we may change the scheduling
algorithm for adding more delay between successive toasts so that the
flicker of successively displayed toasts may alert the user."

The Notification Manager Service already supports an inter-toast gap; this
module packages it as a defense with an effectiveness check: with the gap
installed, every toast switch drops combined opacity to zero for the whole
gap, far past any perception threshold.
"""

from __future__ import annotations

from ..toast.notification_manager import NotificationManagerService

#: Default extra scheduling delay between successive toasts (ms). One full
#: fade length guarantees a dead interval with nothing on screen.
DEFAULT_TOAST_GAP_MS = 500.0


class ToastSpacingDefense:
    """Installs a scheduling gap between successive toasts."""

    def __init__(
        self,
        notification_manager: NotificationManagerService,
        gap_ms: float = DEFAULT_TOAST_GAP_MS,
    ) -> None:
        if gap_ms <= 0:
            raise ValueError(f"gap_ms must be positive, got {gap_ms}")
        self._nms = notification_manager
        self.gap_ms = float(gap_ms)
        self._installed = False

    @property
    def installed(self) -> bool:
        return self._installed

    def install(self) -> "ToastSpacingDefense":
        self._nms.inter_toast_gap_ms = self.gap_ms
        self._installed = True
        return self

    def uninstall(self) -> None:
        self._nms.inter_toast_gap_ms = 0.0
        self._installed = False
