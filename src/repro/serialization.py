"""Uniform ``to_dict``/``from_dict`` for the repo's result dataclasses.

Every experiment result and metric snapshot mixes in
:class:`SerializableMixin`, giving one JSON-safe, round-trippable codec
instead of N hand-written ones. The codec is driven entirely by the
dataclass field type hints:

* primitives (``int``/``float``/``str``/``bool``/``None``) pass through;
* ``Enum`` fields serialize by ``.name`` (stable across reordering);
* nested dataclasses recurse;
* ``Tuple[X, ...]``, fixed ``Tuple[X, Y]``, ``List[X]`` and
  ``Dict[K, V]`` map over their element types (tuples become JSON
  lists and are rebuilt as tuples on the way in);
* ``Optional[X]`` / ``Union`` tries each member type in order.

Anything else raises ``TypeError`` with the offending field named, so an
unsupported type is a loud failure at serialization time rather than a
silently lossy dict.
"""

from __future__ import annotations

import dataclasses
from enum import Enum
from typing import Any, Dict, Union, get_args, get_origin, get_type_hints

_NoneType = type(None)


def _encode(value: Any) -> Any:
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, Enum):
        return value.name
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return to_dict(value)
    if isinstance(value, (list, tuple)):
        return [_encode(item) for item in value]
    if isinstance(value, dict):
        return {_encode_key(k): _encode(v) for k, v in value.items()}
    raise TypeError(
        f"cannot serialize value of type {type(value).__name__}: {value!r}"
    )


def _encode_key(key: Any) -> Any:
    if isinstance(key, Enum):
        return key.name
    if isinstance(key, (bool, int, float, str)):
        return key
    raise TypeError(f"cannot serialize dict key of type {type(key).__name__}")


def to_dict(obj: Any) -> Dict[str, Any]:
    """Encode a dataclass instance as a JSON-safe dict."""
    if not dataclasses.is_dataclass(obj) or isinstance(obj, type):
        raise TypeError(f"to_dict expects a dataclass instance, got {obj!r}")
    return {
        f.name: _encode(getattr(obj, f.name))
        for f in dataclasses.fields(obj)
    }


def _decode(hint: Any, value: Any, *, where: str) -> Any:
    if hint is Any:
        return value
    origin = get_origin(hint)

    if origin is Union:
        members = get_args(hint)
        if value is None and _NoneType in members:
            return None
        errors = []
        for member in members:
            if member is _NoneType:
                continue
            try:
                return _decode(member, value, where=where)
            except (TypeError, ValueError, KeyError) as exc:
                errors.append(str(exc))
        raise TypeError(
            f"{where}: {value!r} matched no member of {hint}: {errors}"
        )

    if origin in (tuple,):
        args = get_args(hint)
        if not isinstance(value, (list, tuple)):
            raise TypeError(f"{where}: expected sequence, got {value!r}")
        if len(args) == 2 and args[1] is Ellipsis:
            return tuple(_decode(args[0], item, where=where) for item in value)
        if args and len(args) != len(value):
            raise TypeError(
                f"{where}: expected {len(args)} items, got {len(value)}"
            )
        if not args:
            return tuple(value)
        return tuple(
            _decode(arg, item, where=where)
            for arg, item in zip(args, value)
        )

    if origin in (list,):
        (elem,) = get_args(hint) or (Any,)
        if not isinstance(value, (list, tuple)):
            raise TypeError(f"{where}: expected sequence, got {value!r}")
        return [_decode(elem, item, where=where) for item in value]

    if origin in (dict,):
        args = get_args(hint) or (Any, Any)
        key_hint, value_hint = args
        if not isinstance(value, dict):
            raise TypeError(f"{where}: expected mapping, got {value!r}")
        return {
            _decode(key_hint, k, where=where): _decode(value_hint, v,
                                                       where=where)
            for k, v in value.items()
        }

    if isinstance(hint, type):
        if issubclass(hint, Enum):
            if isinstance(hint, type) and isinstance(value, hint):
                return value
            return hint[value]
        if dataclasses.is_dataclass(hint):
            if isinstance(value, hint):
                return value
            if not isinstance(value, dict):
                raise TypeError(
                    f"{where}: expected mapping for {hint.__name__}, "
                    f"got {value!r}"
                )
            return from_dict(hint, value)
        if hint is float and isinstance(value, (int, float)) \
                and not isinstance(value, bool):
            return float(value)
        if hint is int and isinstance(value, float) \
                and value.is_integer():
            return int(value)
        if hint is _NoneType:
            if value is not None:
                raise TypeError(f"{where}: expected None, got {value!r}")
            return None
        if isinstance(value, hint) and (
            hint is not int or not isinstance(value, bool) or hint is bool
        ):
            return value
        if isinstance(value, hint):
            return value
        raise TypeError(
            f"{where}: expected {hint.__name__}, got "
            f"{type(value).__name__} ({value!r})"
        )

    raise TypeError(f"{where}: unsupported type hint {hint!r}")


def from_dict(cls, data: Dict[str, Any]):
    """Rebuild a dataclass instance of ``cls`` from :func:`to_dict` output."""
    if not (isinstance(cls, type) and dataclasses.is_dataclass(cls)):
        raise TypeError(f"from_dict expects a dataclass type, got {cls!r}")
    if not isinstance(data, dict):
        raise TypeError(
            f"from_dict expects a mapping for {cls.__name__}, got {data!r}"
        )
    hints = get_type_hints(cls)
    kwargs = {}
    for f in dataclasses.fields(cls):
        if not f.init:
            continue
        if f.name not in data:
            continue
        kwargs[f.name] = _decode(
            hints.get(f.name, Any), data[f.name],
            where=f"{cls.__name__}.{f.name}",
        )
    return cls(**kwargs)


class SerializableMixin:
    """Adds uniform ``to_dict()`` / ``from_dict()`` to a dataclass."""

    def to_dict(self) -> Dict[str, Any]:
        return to_dict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]):
        return from_dict(cls, data)
