"""Tests for the clickjacking and content-hiding applications."""

import pytest

from repro.attacks.clickjacking import ClickjackingAttack, ContentHidingAttack
from repro.systemui import NotificationOutcome
from repro.windows import Permission, Window, WindowType
from repro.windows.geometry import Point, Rect

VICTIM_BUTTON = Rect(300, 900, 780, 1050)


@pytest.fixture
def victim_window(analytic_stack):
    hits = []
    window = Window(
        "com.android.settings.like", WindowType.BASE_APPLICATION,
        Rect(0, 0, 1080, 2160),
        on_touch=lambda w, p, t: hits.append((p, t)),
    )
    analytic_stack.system_server.add_window_direct(window)
    analytic_stack.run_for(50.0)
    return window, hits


class TestClickjacking:
    def test_taps_pass_through_decoy_to_victim(self, analytic_stack, victim_window):
        window, hits = victim_window
        attack = ClickjackingAttack(analytic_stack, decoy_rect=VICTIM_BUTTON,
                                    decoy_content="FREE COINS")
        analytic_stack.permissions.grant(attack.package,
                                         Permission.SYSTEM_ALERT_WINDOW)
        attack.start()
        analytic_stack.run_for(100.0)
        assert attack.decoy_visible_at(analytic_stack.now)
        analytic_stack.touch.tap(Point(540, 975))  # on the decoy
        analytic_stack.run_for(100.0)
        attack.stop()
        assert len(hits) == 1  # the victim received the tap

    def test_alert_suppressed_during_clickjack(self, analytic_stack, victim_window):
        attack = ClickjackingAttack(analytic_stack, decoy_rect=VICTIM_BUTTON)
        analytic_stack.permissions.grant(attack.package,
                                         Permission.SYSTEM_ALERT_WINDOW)
        attack.start()
        analytic_stack.run_for(5000.0)
        assert analytic_stack.system_ui.worst_outcome() is NotificationOutcome.LAMBDA1
        attack.stop()

    def test_default_d_uses_device_bound(self, analytic_stack):
        attack = ClickjackingAttack(analytic_stack, decoy_rect=VICTIM_BUTTON)
        bound = analytic_stack.profile.published_upper_bound_d
        assert attack.attacking_window_ms == pytest.approx(bound - 10.0)


class TestContentHiding:
    def test_fake_content_covers_region_without_permission(self, analytic_stack,
                                                           victim_window):
        attack = ContentHidingAttack(
            analytic_stack, cover_rect=VICTIM_BUTTON,
            fake_content="Pay $1.00 to App Store",
        )
        attack.start()  # no permission grant: toasts need none
        analytic_stack.run_for(1000.0)
        assert attack.coverage_at(analytic_stack.now) > 0.9
        assert attack.displayed_content_at(analytic_stack.now) == \
            "Pay $1.00 to App Store"
        attack.stop()

    def test_victim_remains_interactive_under_cover(self, analytic_stack,
                                                    victim_window):
        window, hits = victim_window
        attack = ContentHidingAttack(analytic_stack, cover_rect=VICTIM_BUTTON)
        attack.start()
        analytic_stack.run_for(1000.0)
        analytic_stack.touch.tap(Point(540, 975))
        analytic_stack.run_for(100.0)
        assert len(hits) == 1  # toast never intercepts
        attack.stop()

    def test_content_can_be_swapped_live(self, analytic_stack, victim_window):
        attack = ContentHidingAttack(analytic_stack, cover_rect=VICTIM_BUTTON,
                                     fake_content="$1.00")
        attack.start()
        analytic_stack.run_for(800.0)
        attack.set_content("$9,999.00")
        analytic_stack.run_for(800.0)
        assert attack.displayed_content_at(analytic_stack.now) == "$9,999.00"
        attack.stop()

    def test_persists_past_single_toast_lifetime(self, analytic_stack,
                                                 victim_window):
        attack = ContentHidingAttack(analytic_stack, cover_rect=VICTIM_BUTTON)
        attack.start()
        analytic_stack.run_for(12_000.0)  # > 3 toast lifetimes
        assert attack.coverage_at(analytic_stack.now) > 0.9
        attack.stop()
